"""Unit tests for the pluggable storage backends (repro.arrays.backend)."""

from __future__ import annotations

import math
import pickle

import pytest

from repro.arrays.associative import AssociativeArray
from repro.arrays.backend import NumericBackend, VECTORIZE_MIN_NNZ
from repro.arrays.io import read_tsv_triples, write_tsv_triples
from repro.arrays.keys import KeyError_
from repro.arrays.matmul import multiply
from repro.values.semiring import get_op_pair


def _numeric_array():
    data = {("r0", "c0"): 1.0, ("r0", "c2"): 2.0, ("r2", "c1"): 3.0}
    return AssociativeArray(data, row_keys=["r0", "r1", "r2"],
                            col_keys=["c0", "c1", "c2"])


class TestBackendChoice:
    def test_default_is_dict(self):
        assert _numeric_array().backend == "dict"

    def test_explicit_numeric(self):
        a = _numeric_array().with_backend("numeric")
        assert a.backend == "numeric"
        assert a == _numeric_array()

    def test_constructor_backend_kwarg(self):
        a = AssociativeArray({("r", "c"): 2}, backend="numeric")
        assert a.backend == "numeric"
        assert a["r", "c"] == 2

    def test_numeric_refuses_exotic_values(self):
        with pytest.raises(KeyError_):
            AssociativeArray({("r", "c"): "text"}, backend="numeric")

    def test_numeric_refuses_nan_zero(self):
        with pytest.raises(KeyError_):
            AssociativeArray({("r", "c"): 1.0}, zero=float("nan"),
                             backend="numeric")

    def test_unknown_backend_rejected(self):
        with pytest.raises(KeyError_):
            AssociativeArray({}, backend="csr")
        with pytest.raises(KeyError_):
            _numeric_array().with_backend("csr")

    def test_pinned_dict_never_promotes(self):
        a = _numeric_array().with_backend("dict")
        assert a.numeric_backend() is None

    def test_auto_lifts_pin(self):
        a = _numeric_array().with_backend("dict").with_backend("auto")
        assert a.numeric_backend() is not None

    def test_promotion_is_cached(self):
        a = _numeric_array()
        assert a.numeric_backend() is a.numeric_backend()
        assert a.backend == "dict"          # promotion does not rebind

    def test_exotic_values_do_not_promote(self):
        a = AssociativeArray({("r", "c"): frozenset({"x"})},
                             zero=frozenset())
        assert a.numeric_backend() is None

    def test_zero_filtering_matches_dict_semantics(self):
        data = {("r", "a"): 0.0, ("r", "b"): 1.0}
        eager = AssociativeArray(data, backend="numeric",
                                 col_keys=["a", "b"])
        lazy = AssociativeArray(data, col_keys=["a", "b"])
        assert eager.nnz == lazy.nnz == 1
        assert eager == lazy


class TestPersistence:
    def test_csr_view_is_cached(self):
        a = _numeric_array().with_backend("numeric")
        nb = a.numeric_backend()
        assert nb.csr() is nb.csr()

    def test_transpose_inherits_compiled_form(self):
        a = _numeric_array().with_backend("numeric")
        t = a.transpose()
        assert t.backend == "numeric"
        # The CSC of A *is* the CSR of Aᵀ — seeded, not rebuilt.
        assert t.numeric_backend()._csr is not None
        assert t.transpose() == _numeric_array()

    def test_matmul_result_is_numeric_backed(self):
        pair = get_op_pair("plus_times")
        a = _numeric_array().with_backend("numeric")
        c = multiply(a.transpose(), a, pair)
        assert c.backend == "numeric"

    def test_pickle_round_trip_drops_derived_views(self):
        a = _numeric_array().with_backend("numeric")
        a.numeric_backend().csr()           # populate the memo
        back = pickle.loads(pickle.dumps(a))
        assert back == a
        assert back.backend == "numeric"
        assert back.numeric_backend()._csr is None

    def test_pickle_round_trip_dict_pinned(self):
        a = _numeric_array().with_backend("dict")
        back = pickle.loads(pickle.dumps(a))
        assert back == a
        assert back.numeric_backend() is None


class TestNumericStructuralOps:
    def test_entries_in_key_order(self):
        a = _numeric_array().with_backend("numeric")
        assert a.triples() == _numeric_array().triples()

    def test_select_and_getitem(self):
        a = _numeric_array().with_backend("numeric")
        sub = a["r0", ":"]
        assert sub.backend == "numeric"
        assert sub == _numeric_array()["r0", ":"]

    def test_with_keys_superset_embedding(self):
        a = _numeric_array().with_backend("numeric")
        wide = a.with_keys(["r0", "r1", "r2", "r3"], None)
        assert wide.backend == "numeric"
        assert wide["r0", "c2"] == 2.0
        assert len(wide.row_keys) == 4

    def test_with_keys_rejects_dropping_stored_rows(self):
        a = _numeric_array().with_backend("numeric")
        with pytest.raises(KeyError_, match="row key"):
            a.with_keys(["r0", "r1"], None)
        with pytest.raises(KeyError_, match="column key"):
            a.with_keys(None, ["c0", "c1"])

    def test_rows_cols_nonempty(self):
        a = _numeric_array().with_backend("numeric")
        assert list(a.rows_nonempty()) == ["r0", "r2"]
        assert list(a.cols_nonempty()) == ["c0", "c1", "c2"]

    def test_infinity_zero_round_trip(self):
        a = AssociativeArray({("r", "c"): 3.0}, zero=-math.inf,
                             backend="numeric")
        assert a.transpose()["c", "r"] == 3.0
        assert a.transpose().zero == -math.inf


class TestIoBackend:
    def test_tsv_round_trip_numeric(self, tmp_path):
        a = _numeric_array().with_backend("numeric")
        path = tmp_path / "a.tsv"
        write_tsv_triples(a, path)
        back = read_tsv_triples(path, row_keys=a.row_keys,
                                col_keys=a.col_keys, backend="numeric")
        assert back.backend == "numeric"
        assert back == a

    def test_tsv_bytes_identical_across_backends(self, tmp_path):
        a = _numeric_array()
        p1 = tmp_path / "dict.tsv"
        p2 = tmp_path / "numeric.tsv"
        write_tsv_triples(a.with_backend("dict"), p1)
        write_tsv_triples(a.with_backend("numeric"), p2)
        assert p1.read_bytes() == p2.read_bytes()


class TestFastPathGating:
    def test_small_dict_arrays_stay_generic_typed(self):
        # Paper-figure-sized int arrays keep exact Python int values.
        pair = get_op_pair("plus_times")
        a = AssociativeArray({("r", "k"): 2}, row_keys=["r"], col_keys=["k"])
        b = AssociativeArray({("k", "c"): 3}, row_keys=["k"], col_keys=["c"])
        c = multiply(a, b, pair)
        assert isinstance(c["r", "c"], int)

    def test_large_arrays_promote(self):
        pair = get_op_pair("plus_times")
        n = VECTORIZE_MIN_NNZ
        rows = [f"r{i:04d}" for i in range(n)]
        a = AssociativeArray({(r, "k"): 1.0 for r in rows},
                             row_keys=rows, col_keys=["k"])
        b = AssociativeArray({("k", r): 1.0 for r in rows},
                             row_keys=["k"], col_keys=rows)
        c = multiply(a, b, pair)
        assert c.backend == "numeric"
        assert c.nnz == n * n

    def test_pinned_operands_force_generic_results(self):
        pair = get_op_pair("plus_times")
        n = VECTORIZE_MIN_NNZ
        rows = [f"r{i:04d}" for i in range(n)]
        a = AssociativeArray({(r, "k"): 1.0 for r in rows},
                             row_keys=rows, col_keys=["k"], backend="dict")
        c = multiply(a, a.transpose().with_backend("dict"), pair)
        assert c.backend == "dict"

    def test_pin_survives_merge_tree(self):
        # backend="dict" must force the generic paths *end to end*:
        # derived arrays (and merge intermediates) inherit the pin, so
        # int values are preserved through every ⊕-merge level.
        from repro.shard.merge import merge_adjacency
        pair = get_op_pair("plus_times")
        n = VECTORIZE_MIN_NNZ
        shards = []
        for s in range(4):
            rows = [f"r{i:04d}" for i in range(s, n + s)]
            shards.append(AssociativeArray(
                {(r, "c"): 1 for r in rows}, row_keys=rows,
                col_keys=["c"], backend="dict"))
        merged = merge_adjacency(shards, pair)
        assert merged.backend == "dict" and merged.pinned
        assert all(isinstance(v, int) for v in merged.values_list())

    def test_derived_arrays_inherit_pin(self):
        a = _numeric_array().with_backend("dict")
        assert a.transpose().pinned
        assert a.select(":", ":").pinned
        assert a.with_keys(["r0", "r1", "r2", "r3"], None).pinned
        assert a.map_values(lambda v: v + 1).pinned
        assert not _numeric_array().transpose().pinned

    def test_huge_ints_never_promote(self):
        # Integers beyond 2**53 lose exactness under float64; such
        # arrays must stay on the (arbitrary-precision) dict path even
        # past the promotion threshold.
        big = 2 ** 53 + 1
        rows = [f"r{i:04d}" for i in range(VECTORIZE_MIN_NNZ)]
        data = {(r, "c"): 1 for r in rows}
        data[(rows[0], "c")] = big
        a = AssociativeArray(data, row_keys=rows, col_keys=["c"])
        b = AssociativeArray({(r, "c"): 1 for r in rows},
                             row_keys=rows, col_keys=["c"])
        assert a.numeric_backend() is None
        summed = a.add(b, get_op_pair("plus_times").add)
        assert summed[rows[0], "c"] == big + 1     # exact, not rounded
        with pytest.raises(KeyError_):
            a.with_backend("numeric")


class TestFoldIdentitySeeding:
    def test_reductions_seed_the_identity_fold(self):
        # The generic fold starts at the identity, which is visible when
        # stored values fall outside the identity's neutral range —
        # max0 (identity 0) over negative entries.  Dict ≡ Numeric must
        # hold there too.
        from repro.arrays.reductions import (
            reduce_cols, reduce_rows, total_reduce)
        from repro.values.operations import get_operation
        op = get_operation("max0")
        n = VECTORIZE_MIN_NNZ + 8
        rows = [f"r{i:04d}" for i in range(n)]
        a = AssociativeArray({(r, "c"): -1.0 - i for i, r in enumerate(rows)},
                             row_keys=rows, col_keys=["c"], zero=-math.inf)
        ad = a.with_backend("dict")
        assert a.numeric_backend() is not None
        assert reduce_rows(a, op) == reduce_rows(ad, op)
        assert reduce_cols(a, op) == reduce_cols(ad, op)
        assert total_reduce(a, op) == total_reduce(ad, op) == 0


class TestEmptyOperands:
    def test_dense_blocked_empty_row_keys(self):
        pair = get_op_pair("plus_times")
        a = AssociativeArray({}, row_keys=[], col_keys=["k1", "k2"],
                             zero=0.0, backend="numeric")
        b = AssociativeArray({("k1", "c"): 1.0}, row_keys=["k1", "k2"],
                             col_keys=["c"], backend="numeric")
        out = multiply(a, b, pair, mode="dense")
        assert out.shape == (0, 1) and out.nnz == 0

    def test_tiny_dict_operands_do_not_promote(self):
        pair = get_op_pair("plus_times")
        a = AssociativeArray({("r", "k"): 2}, row_keys=["r"], col_keys=["k"])
        b = AssociativeArray({("k", "c"): 3}, row_keys=["k"], col_keys=["c"])
        multiply(a, b, pair)
        # Kernel selection must not have paid the columnar conversion.
        assert "numeric_backend" not in a._cache
        assert "numeric_backend" not in b._cache


class TestFromScipy:
    def test_duplicate_coo_coordinates_are_summed(self):
        sp = pytest.importorskip("scipy.sparse")
        from repro.arrays.sparse_backend import from_scipy
        m = sp.coo_matrix(([1.0, 2.0], ([0, 0], [1, 1])), shape=(2, 2))
        a = from_scipy(m, ["r0", "r1"], ["c0", "c1"])
        assert a.nnz == 1
        assert a["r0", "c1"] == 3.0
        assert a.triples() == [("r0", "c1", 3.0)]

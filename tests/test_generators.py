"""Tests for graph and value generators."""

from __future__ import annotations

import pytest

from repro.graphs.digraph import GraphError
from repro.graphs.generators import (
    complete_bipartite_graph,
    cycle_graph,
    erdos_renyi_multigraph,
    path_graph,
    random_incidence_values,
    rmat_multigraph,
    star_graph,
)
from repro.values.semiring import get_op_pair


class TestErdosRenyi:
    def test_edge_count(self):
        g = erdos_renyi_multigraph(10, 25, seed=1)
        assert g.num_edges == 25

    def test_deterministic_per_seed(self):
        g1 = erdos_renyi_multigraph(10, 25, seed=7)
        g2 = erdos_renyi_multigraph(10, 25, seed=7)
        assert g1 == g2

    def test_seed_changes_graph(self):
        g1 = erdos_renyi_multigraph(10, 25, seed=7)
        g2 = erdos_renyi_multigraph(10, 25, seed=8)
        assert g1 != g2

    def test_no_self_loops_option(self):
        g = erdos_renyi_multigraph(5, 40, seed=3, allow_self_loops=False)
        assert g.self_loops() == []

    def test_vertex_bound(self):
        g = erdos_renyi_multigraph(4, 50, seed=2)
        assert g.num_vertices <= 4

    def test_needs_a_vertex(self):
        with pytest.raises(GraphError):
            erdos_renyi_multigraph(0, 1, seed=1)


class TestRmat:
    def test_edge_count_and_bounds(self):
        g = rmat_multigraph(4, 60, seed=5)
        assert g.num_edges == 60
        assert g.num_vertices <= 16

    def test_deterministic(self):
        assert rmat_multigraph(4, 30, seed=5) == rmat_multigraph(4, 30, seed=5)

    def test_skew_produces_hubs(self):
        g = rmat_multigraph(6, 400, seed=9)
        degs = sorted((g.out_degree(v) for v in g.out_vertices),
                      reverse=True)
        # Heavily skewed: the busiest source should dominate the median.
        assert degs[0] >= 4 * max(degs[len(degs) // 2], 1)

    def test_invalid_probabilities(self):
        with pytest.raises(GraphError):
            rmat_multigraph(3, 10, seed=1, a=0.5, b=0.4, c=0.3)


class TestFixedShapes:
    def test_path(self):
        g = path_graph(4)
        assert g.num_edges == 3
        assert g.has_edge_between("v000", "v001")
        with pytest.raises(GraphError):
            path_graph(1)

    def test_cycle(self):
        g = cycle_graph(3)
        assert g.num_edges == 3
        assert g.has_edge_between("v002", "v000")

    def test_star(self):
        g = star_graph(5)
        assert g.out_degree("v000") == 5
        with pytest.raises(GraphError):
            star_graph(0)

    def test_complete_bipartite(self):
        g = complete_bipartite_graph(2, 3)
        assert g.num_edges == 6
        assert tuple(g.out_vertices) == ("l000", "l001")
        with pytest.raises(GraphError):
            complete_bipartite_graph(0, 1)


class TestRandomIncidenceValues:
    def test_nonzero_everywhere(self):
        g = erdos_renyi_multigraph(6, 15, seed=4)
        pair = get_op_pair("min_plus")
        out_vals, in_vals = random_incidence_values(g, pair, seed=11)
        assert set(out_vals) == set(g.edge_keys)
        assert all(not pair.is_zero(v) for v in out_vals.values())
        assert all(not pair.is_zero(v) for v in in_vals.values())

    def test_deterministic(self):
        g = erdos_renyi_multigraph(6, 15, seed=4)
        pair = get_op_pair("plus_times")
        assert random_incidence_values(g, pair, seed=11) == \
            random_incidence_values(g, pair, seed=11)

    def test_domain_override(self):
        from repro.values.domains import FiniteField2
        g = erdos_renyi_multigraph(4, 8, seed=4)
        pair = get_op_pair("plus_times")
        out_vals, _ = random_incidence_values(
            g, pair, seed=2, domain=FiniteField2())
        assert set(out_vals.values()) == {1}

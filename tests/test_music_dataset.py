"""Tests pinning the music dataset to the paper's figures."""

from __future__ import annotations

import pytest

from repro.datasets.music import (
    FIGURE1_ROW_COUNTS,
    FIGURE4_GENRE_WEIGHTS,
    GENRE_COLUMNS,
    WRITER_COLUMNS,
    music_e1,
    music_e1_weighted,
    music_e2,
    music_incidence,
    music_table,
)
from repro.experiments import expected as X


class TestFigure1:
    def test_shape(self):
        e = music_incidence()
        assert e.shape == (22, 31)

    def test_row_keys_match_paper(self):
        assert tuple(music_incidence().row_keys) == X.FIG1_ROW_KEYS

    def test_col_keys_match_paper(self):
        assert tuple(music_incidence().col_keys) == X.FIG1_COL_KEYS

    def test_row_counts_match_paper(self):
        e = music_incidence()
        counts = {r: 0 for r in e.row_keys}
        for (r, _c) in e.nonzero_pattern():
            counts[r] += 1
        assert counts == FIGURE1_ROW_COUNTS == X.FIG1_ROW_COUNTS

    def test_total_nnz(self):
        assert music_incidence().nnz == X.FIG1_NNZ == 186

    def test_every_column_used(self):
        e = music_incidence()
        assert len(e.cols_nonempty()) == 31

    def test_values_all_one(self):
        assert all(v == 1 for v in music_incidence().to_dict().values())

    def test_table_fields(self):
        t = music_table()
        assert len(t) == 22
        # The writerless bonus track has neither Writer nor Label.
        assert "Writer" not in t["093012ktnA8"]
        assert "Label" not in t["093012ktnA8"]


class TestFigure2:
    def test_e1_pattern(self):
        e1 = music_e1()
        got = {t: tuple(sorted(c for (tt, c) in e1.nonzero_pattern()
                               if tt == t))
               for t in e1.row_keys}
        want = {t: tuple(sorted(cs)) for t, cs in X.FIG2_E1_PATTERN.items()}
        assert got == want

    def test_e2_pattern(self):
        e2 = music_e2()
        got = {t: tuple(sorted(c for (tt, c) in e2.nonzero_pattern()
                               if tt == t))
               for t in e2.row_keys}
        want = {t: tuple(sorted(cs)) for t, cs in X.FIG2_E2_PATTERN.items()}
        assert got == want

    def test_columns(self):
        assert tuple(music_e1().col_keys) == GENRE_COLUMNS
        assert tuple(music_e2().col_keys) == WRITER_COLUMNS

    def test_selection_by_paper_syntax_equals_prefix(self):
        e = music_incidence()
        assert e.select(":", "Genre|A : Genre|Z") == e.select(":", "Genre|*")

    def test_writerless_track_row_empty_in_e2(self):
        e2 = music_e2()
        assert "093012ktnA8" in e2.row_keys
        assert e2.row("093012ktnA8") == {}

    def test_e1_e2_share_track_rows(self):
        assert music_e1().row_keys == music_e2().row_keys


class TestFigure4:
    def test_values(self):
        got = {rc: int(v) for rc, v in music_e1_weighted().to_dict().items()}
        assert got == X.FIG4_E1_VALUES

    def test_weights_constant(self):
        assert FIGURE4_GENRE_WEIGHTS == {
            "Genre|Electronic": 1, "Genre|Pop": 2, "Genre|Rock": 3}

    def test_pattern_unchanged(self):
        assert music_e1_weighted().same_pattern(music_e1())


class TestRowSums:
    """The Figure 3 +.× row sums that pinned the reconstruction."""

    def test_genre_incidence_totals(self):
        e1, e2 = music_e1(), music_e2()
        writers_per_track = {t: 0 for t in e2.row_keys}
        for (t, _w) in e2.nonzero_pattern():
            writers_per_track[t] += 1
        sums = {}
        for (t, g) in e1.nonzero_pattern():
            sums[g] = sums.get(g, 0) + writers_per_track[t]
        assert sums == {"Genre|Electronic": 18, "Genre|Pop": 29,
                        "Genre|Rock": 13}

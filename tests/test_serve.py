"""Tests for the adjacency query service (repro.serve)."""

from __future__ import annotations

import threading

import pytest

from repro.arrays.associative import AssociativeArray
from repro.core.construction import adjacency_array
from repro.core.streaming import StreamingAdjacencyBuilder
from repro.graphs.incidence import incidence_arrays
from repro.serve import (
    AdjacencyService,
    QueryCache,
    ServeError,
    Snapshot,
    UnknownVertexError,
)
from repro.shard import ShardedAdjacencyPlan
from repro.values.semiring import get_op_pair


PAIR = get_op_pair("plus_times")


def small_service(**options) -> AdjacencyService:
    svc = AdjacencyService(PAIR, **options)
    svc.add_edges([("e1", "alice", "bob", 2.0, 1.0),
                   ("e2", "bob", "carol", 3.0, 1.0),
                   ("e3", "alice", "carol", 1.5, 1.0)])
    svc.publish()
    return svc


class TestSources:
    def test_from_array(self):
        arr = AssociativeArray({("a", "b"): 2.0, ("b", "c"): 1.0})
        svc = AdjacencyService(PAIR, initial=arr)
        assert svc.epoch == 0
        assert svc.neighbors("a") == {"b": 2.0}

    def test_initial_array_squared_over_vertex_union(self):
        arr = AssociativeArray({("a", "b"): 1.0})
        svc = AdjacencyService(PAIR, initial=arr)
        snap = svc.snapshot()
        assert snap.adjacency.row_keys == snap.adjacency.col_keys
        assert list(snap.vertices) == ["a", "b"]

    def test_from_tsv(self, tmp_path):
        p = tmp_path / "adj.tsv"
        p.write_text("a\tb\t2.0\nb\tc\t3.0\n", encoding="utf-8")
        svc = AdjacencyService.from_tsv(p, PAIR)
        assert svc.neighbors("a") == {"b": 2.0}

    def test_from_tsv_folds_duplicates_through_oplus(self, tmp_path):
        p = tmp_path / "adj.tsv"
        p.write_text("a\tb\t2\na\tb\t3\n", encoding="utf-8")
        svc = AdjacencyService.from_tsv(p, PAIR)
        assert svc.neighbors("a") == {"b": 5}

    def test_from_builder(self):
        b = StreamingAdjacencyBuilder(PAIR)
        b.add_edge("e1", "x", "y", 4.0)
        svc = AdjacencyService.from_builder(b)
        assert svc.neighbors("x") == {"y": 4.0}

    def test_from_manifest(self, tmp_path):
        wd = tmp_path / "shards"
        plan = ShardedAdjacencyPlan(PAIR, n_shards=2, workdir=wd,
                                    keep_workdir=True)
        plan.partition([("e1", "a", "b", 2.0, 1.0),
                        ("e2", "b", "c", 3.0, 1.0),
                        ("e3", "a", "b", 1.0, 1.0)])
        svc = AdjacencyService.from_manifest(wd)  # pair from manifest
        assert svc.neighbors("a") == {"b": 3.0}
        assert svc.neighbors("b") == {"c": 3.0}

    def test_from_manifest_missing(self, tmp_path):
        from repro.shard import ShardError
        with pytest.raises(ShardError, match="no manifest"):
            AdjacencyService.from_manifest(tmp_path)

    def test_unsafe_pair_refused(self):
        with pytest.raises(ServeError, match="Theorem II.1"):
            AdjacencyService(get_op_pair("int_plus_times"))

    def test_unsafe_pair_accepted_with_override(self):
        svc = AdjacencyService(get_op_pair("int_plus_times"),
                               unsafe_ok=True)
        svc.add_edge("e1", "a", "b", 2)
        assert svc.publish() == 1


class TestQueries:
    def test_neighbors_out_in(self):
        svc = small_service()
        assert svc.neighbors("alice") == {"bob": 2.0, "carol": 1.5}
        assert svc.neighbors("carol", direction="in") == \
            {"alice": 1.5, "bob": 3.0}

    def test_degrees(self):
        svc = small_service()
        assert svc.degrees() == {"alice": 2, "bob": 1, "carol": 0}
        assert svc.degrees(direction="in") == \
            {"alice": 0, "bob": 1, "carol": 2}
        assert svc.degrees(vertex="alice") == 2

    def test_khop(self):
        svc = small_service()
        assert svc.khop("alice", 0) == {"alice": 1}
        assert svc.khop("alice", 1) == {"bob": 2.0, "carol": 1.5}
        assert svc.khop("alice", 2) == {"carol": 6.0}

    def test_khop_alternative_pair(self):
        svc = small_service()
        # min.+ along alice→bob→carol (5.0) vs alice→carol (1.5).
        assert svc.khop("alice", 1, pair="min_plus") == \
            {"bob": 2.0, "carol": 1.5}
        assert svc.khop("alice", 2, pair="min_plus") == {"carol": 5.0}

    def test_khop_uncertified_pair_refused(self):
        svc = small_service()
        with pytest.raises(ServeError, match="Theorem II.1"):
            svc.khop("alice", 1, pair="gf2_xor_and")

    def test_khop_unknown_pair(self):
        svc = small_service()
        with pytest.raises(ServeError, match="unknown op-pair"):
            svc.khop("alice", 1, pair="bogus")

    def test_path_lengths(self):
        svc = small_service()
        assert svc.path_lengths("alice") == \
            {"alice": 0.0, "bob": 2.0, "carol": 1.5}

    def test_top_k(self):
        svc = small_service()
        assert svc.top_k(2) == [["bob", "carol", 3.0],
                                ["alice", "bob", 2.0]]
        # k beyond nnz returns everything.
        assert len(svc.top_k(99)) == 3

    def test_stats_shape(self):
        svc = small_service()
        svc.neighbors("alice")
        stats = svc.stats()
        assert stats["epoch"] == 1
        assert stats["vertices"] == 3
        assert stats["nnz"] == 3
        assert stats["op_pair"] == "plus_times"
        assert stats["publications"] == 1
        assert {"hits", "misses", "hit_rate",
                "cold_seconds_total"} <= set(stats["cache"])

    def test_stats_last_publication_summary(self):
        svc = small_service()
        pub = svc.stats()["last_publication"]
        assert pub["epoch"] == 1
        assert pub["delta_edges"] == 3
        assert pub["merged_nnz"] == 3
        assert pub["duration_seconds"] >= 0.0
        assert pub["published_at"] > 0.0
        assert pub["trace_id"].startswith("t")
        stages = pub["stages"]
        assert set(stages) == {"fold_delta", "merge", "swap"}
        assert all(v >= 0.0 for v in stages.values())
        # The trace id resolves in the service's own span ring.
        tree = svc.tracer.lookup(pub["trace_id"])
        assert tree.name == "service.publish"
        # Re-publishing updates the summary.
        svc.add_edge("e4", "carol", "dave", 7.0)
        svc.publish()
        pub2 = svc.stats()["last_publication"]
        assert pub2["epoch"] == 2 and pub2["delta_edges"] == 1

    def test_stats_last_publication_none_before_any(self):
        svc = AdjacencyService(PAIR)
        assert svc.stats()["last_publication"] is None

    def test_envelope_carries_epoch_and_kind(self):
        svc = small_service()
        out = svc.query("neighbors", vertex="alice")
        assert out["epoch"] == 1 and out["kind"] == "neighbors"
        assert out["result"] == {"bob": 2.0, "carol": 1.5}


class TestQueryErrors:
    def test_unknown_kind(self):
        with pytest.raises(ServeError, match="unknown query kind"):
            small_service().query("pagerank")

    def test_unknown_vertex(self):
        with pytest.raises(UnknownVertexError):
            small_service().neighbors("nobody")

    def test_unknown_vertex_is_serve_error(self):
        assert issubclass(UnknownVertexError, ServeError)

    def test_bad_direction(self):
        with pytest.raises(ServeError, match="direction"):
            small_service().neighbors("alice", direction="sideways")

    def test_missing_vertex_param(self):
        with pytest.raises(ServeError, match="required"):
            small_service().query("neighbors")

    def test_bad_k(self):
        svc = small_service()
        with pytest.raises(ServeError, match=">= 0"):
            svc.khop("alice", -1)
        with pytest.raises(ServeError, match="integer"):
            svc.query("khop", vertex="alice", k="two")

    def test_unknown_extra_param(self):
        with pytest.raises(ServeError, match="unknown query param"):
            small_service().query("neighbors", vertex="alice",
                                  flavor="spicy")


class TestPublication:
    def test_publish_advances_epoch_and_results(self):
        svc = small_service()
        assert svc.epoch == 1
        svc.add_edge("e4", "carol", "dave", 7.0)
        assert svc.pending_edges == 1
        # Readers see nothing until publication.
        with pytest.raises(UnknownVertexError):
            svc.neighbors("dave")
        assert svc.publish() == 2
        assert svc.pending_edges == 0
        assert svc.neighbors("carol") == {"dave": 7.0}

    def test_delta_oplus_merges_into_existing_entries(self):
        svc = small_service()
        svc.add_edge("e4", "alice", "bob", 10.0)
        svc.publish()
        assert svc.neighbors("alice")["bob"] == 12.0  # 2 ⊕ 10

    def test_empty_publish_is_noop(self):
        svc = small_service()
        assert svc.publish() == 1
        assert svc.publish() == 1

    def test_discard_pending(self):
        svc = small_service()
        svc.add_edge("e4", "x", "y")
        assert svc.discard_pending() == 1
        assert svc.publish() == 1  # nothing left to publish

    def test_edge_keys_scoped_per_batch(self):
        svc = small_service()
        svc.add_edge("d1", "a", "b")
        svc.publish()
        svc.add_edge("d1", "a", "b")  # same key, next batch: fine
        svc.publish()
        assert svc.neighbors("a") == {"b": 2.0}

    def test_matches_batch_construction(self):
        """Epoch merging equals batch over all edges ever ingested."""
        edges = [(f"e{i}", f"v{i % 7}", f"v{(i * 3) % 7}",
                  float(1 + i % 5), 1.0) for i in range(40)]
        svc = AdjacencyService(PAIR)
        for chunk_start in range(0, len(edges), 9):
            svc.add_edges(edges[chunk_start:chunk_start + 9])
            svc.publish()
        from repro.graphs.digraph import EdgeKeyedDigraph
        graph = EdgeKeyedDigraph((k, s, t) for k, s, t, _o, _i in edges)
        eout, ein = incidence_arrays(
            graph, zero=PAIR.zero,
            out_values={k: o for k, _s, _t, o, _i in edges},
            in_values={k: i for k, _s, _t, _o, i in edges})
        batch = adjacency_array(eout, ein, PAIR)
        vertices = svc.snapshot().vertices
        batch = batch.with_keys(vertices, vertices)
        assert svc.snapshot().adjacency.allclose(batch)

    def test_snapshot_isolation_old_reference_stays_valid(self):
        svc = small_service()
        old = svc.snapshot()
        svc.add_edge("e4", "alice", "zed", 9.0)
        svc.publish()
        assert old.epoch == 1
        assert "zed" not in old.vertices
        assert svc.snapshot().epoch == 2
        assert old.neighbors_out("alice") == {"bob": 2.0, "carol": 1.5}


class TestCaching:
    def test_hit_on_repeat_query(self):
        svc = small_service()
        first = svc.query("khop", vertex="alice", k=2)
        second = svc.query("khop", vertex="alice", k=2)
        assert first["cached"] is False
        assert second["cached"] is True
        assert first["result"] == second["result"]

    def test_publication_invalidates(self):
        svc = small_service()
        svc.query("neighbors", vertex="alice")
        svc.add_edge("e4", "alice", "dave", 1.0)
        svc.publish()
        after = svc.query("neighbors", vertex="alice")
        assert after["cached"] is False
        assert after["result"] == {"bob": 2.0, "carol": 1.5, "dave": 1.0}
        assert svc.stats()["cache"]["invalidations"] >= 1

    def test_cache_disabled(self):
        svc = small_service(cache_size=0)
        svc.query("neighbors", vertex="alice")
        out = svc.query("neighbors", vertex="alice")
        assert out["cached"] is False

    def test_stats_not_cached(self):
        svc = small_service()
        a = svc.query("stats")
        b = svc.query("stats")
        assert a["cached"] is False and b["cached"] is False
        assert b["result"]["queries"] > a["result"]["queries"]


class TestQueryCacheUnit:
    def test_lru_eviction(self):
        cache = QueryCache(maxsize=2)
        cache.store((0, "a"), 1)
        cache.store((0, "b"), 2)
        cache.lookup((0, "a"))          # refresh a
        cache.store((0, "c"), 3)        # evicts b
        assert cache.lookup((0, "a")) == (True, 1)
        assert cache.lookup((0, "b")) == (False, None)
        assert cache.evictions == 1

    def test_invalidate_below(self):
        cache = QueryCache()
        cache.store((0, "a"), 1)
        cache.store((1, "a"), 2)
        assert cache.invalidate_below(1) == 1
        assert cache.lookup((1, "a")) == (True, 2)
        assert len(cache) == 1

    def test_get_or_compute_counts_latency(self):
        cache = QueryCache()
        value, cached = cache.get_or_compute((0, "x"), lambda: 42)
        assert (value, cached) == (42, False)
        value, cached = cache.get_or_compute((0, "x"), lambda: 99)
        assert (value, cached) == (42, True)
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["cold_seconds_total"] >= 0.0

    def test_bad_maxsize(self):
        with pytest.raises(ValueError, match=">= 0"):
            QueryCache(maxsize=-1)


class TestConcurrency:
    def test_concurrent_readers_during_publication(self):
        """Stress: readers never see torn state or a stale-epoch cache.

        Each epoch adds one *new* spoke to a hub, so
        ``len(neighbors(hub)) == epoch`` and ``degree(hub) == epoch``
        hold at every epoch — any torn read, or a cache entry served
        across epochs, breaks the equality.  Readers yield briefly per
        iteration (as I/O-bound HTTP readers do) so the GIL doesn't
        starve the publishing writer.
        """
        import time as _time
        svc = AdjacencyService(PAIR)
        svc.add_edge("seed", "hub", "spoke_0")
        svc.publish()  # epoch 1: 1 spoke
        errors = []
        reads = []
        stop = threading.Event()

        def reader():
            count = 0
            while not stop.is_set():
                try:
                    out = svc.query("neighbors", vertex="hub")
                    epoch, result = out["epoch"], out["result"]
                    if len(result) != epoch:
                        errors.append(
                            f"epoch {epoch} served {len(result)} "
                            f"neighbors: {sorted(result)}")
                        return
                    deg = svc.query("degrees", vertex="hub")
                    if deg["result"] != deg["epoch"]:
                        errors.append(
                            f"degree {deg['result']} at epoch "
                            f"{deg['epoch']}")
                        return
                    count += 2
                    _time.sleep(0.0005)
                except Exception as exc:  # pragma: no cover - failure
                    errors.append(repr(exc))
                    return
            reads.append(count)

        threads = [threading.Thread(target=reader) for _ in range(6)]
        for t in threads:
            t.start()
        try:
            for e in range(2, 21):
                svc.add_edge(f"d{e}", "hub", f"spoke_{e - 1}")
                assert svc.publish() == e
                _time.sleep(0.002)  # let readers observe the epoch
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=30)
        assert not any(t.is_alive() for t in threads)
        assert not errors, errors[:3]
        assert sum(reads) > 0  # the readers actually read
        assert svc.epoch == 20
        assert len(svc.neighbors("hub")) == 20


class TestSnapshotUnit:
    def test_numeric_and_dict_paths_agree(self):
        data = {("a", "b"): 2.0, ("a", "c"): 1.0, ("c", "b"): 5.0}
        arr = AssociativeArray(data)
        numeric = Snapshot.from_array(arr.with_backend("numeric"), 0)
        generic = Snapshot.from_array(arr.with_backend("dict"), 0)
        for v in "abc":
            assert numeric.neighbors_out(v) == generic.neighbors_out(v)
            assert numeric.neighbors_in(v) == generic.neighbors_in(v)
        assert numeric.out_degrees() == generic.out_degrees()
        assert numeric.in_degrees() == generic.in_degrees()
        assert numeric.top_k(3) == generic.top_k(3)

    def test_non_numeric_values_served_generically(self):
        arr = AssociativeArray(
            {("d1", "d2"): frozenset({"w"}), ("d2", "d3"): "text"},
            zero=frozenset())
        snap = Snapshot.from_array(arr, 0)
        assert snap.neighbors_out("d1") == {"d2": frozenset({"w"})}
        assert snap.in_degrees() == {"d1": 0, "d2": 1, "d3": 1}
        with pytest.raises(ServeError, match="orderable"):
            snap.top_k(1)

    def test_top_k_requires_positive_k(self):
        snap = Snapshot.from_array(AssociativeArray({("a", "b"): 1.0}), 0)
        with pytest.raises(ServeError, match="k >= 1"):
            snap.top_k(0)


class TestReviewHardening:
    """Regression tests for the review findings on the query gate."""

    def test_khop_k_capped(self):
        svc = small_service()
        with pytest.raises(ServeError, match="max_khop"):
            svc.khop("alice", 999999999)
        tight = AdjacencyService(PAIR, max_khop=2,
                                 initial=small_service().snapshot()
                                 .adjacency)
        assert tight.khop("alice", 2) == {"carol": 6.0}
        with pytest.raises(ServeError, match="max_khop"):
            tight.khop("alice", 3)

    def test_bad_max_khop_rejected(self):
        with pytest.raises(ServeError, match="max_khop"):
            AdjacencyService(PAIR, max_khop=0)

    def test_khop_breaks_on_empty_frontier(self):
        # carol is a sink: large (in-cap) k must return quickly and {}.
        svc = small_service()
        assert svc.khop("carol", 256) == {}

    def test_order_sensitive_query_pair_refused(self):
        # skew_plus_times passes the criteria but its ⊕ is flagged
        # non-associative/non-commutative — same refusal as the
        # construction gate (and as the README promises).
        svc = small_service()
        with pytest.raises(ServeError, match="associative"):
            svc.khop("alice", 1, pair="skew_plus_times")

"""Every shipped example must run clean — they are executable docs."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=240)


@pytest.mark.parametrize("script,expect", [
    ("quickstart.py", "reverse-graph adjacency verified"),
    ("music_graph.py", "All five figures reproduce exactly."),
    ("semiring_gallery.py", "Every catalog verdict matches the paper."),
    ("document_words.py", "zero-divisor failure, live"),
    ("flight_network.py", "Section IV in action"),
    ("sharded_build.py", "sharded construction verified against batch"),
    ("adjacency_service.py", "adjacency service demo complete"),
    ("lazy_pipeline.py", "lazy pipeline demo complete"),
    ("observability.py", "observability demo complete"),
    ("loadgen_sweep.py", "loadgen sweep demo complete"),
    ("profiling.py", "profiling demo complete"),
])
def test_example_runs_and_reports(script, expect):
    proc = _run(script)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert expect in proc.stdout


def test_scaling_study_quick():
    proc = _run("scaling_study.py", "--quick")
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "speedup" in proc.stdout

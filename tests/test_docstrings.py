"""Docstring examples are executable documentation — run them."""

from __future__ import annotations

import doctest

import pytest

import repro
import repro.core.pipeline
import repro.core.streaming
import repro.serve.service
import repro.shard.plan


@pytest.mark.parametrize("module", [
    repro,
    repro.core.pipeline,
    repro.core.streaming,
    repro.serve.service,
    repro.shard.plan,
], ids=lambda m: m.__name__)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False,
                             optionflags=doctest.NORMALIZE_WHITESPACE)
    assert result.failed == 0, f"{result.failed} doctest failure(s)"
    assert result.attempted > 0, "expected at least one doctest"

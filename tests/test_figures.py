"""Exact-reproduction tests: every paper artifact must verify."""

from __future__ import annotations

import pytest

from repro.experiments.expected import (
    FIG1_NNZ,
    FIG3_TABLES,
    FIG35_STACKS,
    FIG5_TABLES,
    expected_array,
)
from repro.experiments.figures import (
    CriteriaTableExperiment,
    Figure1Experiment,
    Figure2Experiment,
    Figure3Experiment,
    Figure4Experiment,
    Figure5Experiment,
    ReverseGraphExperiment,
    StructuredUnionIntersectionExperiment,
    all_experiments,
)


ALL = all_experiments()


@pytest.mark.parametrize("experiment", ALL, ids=[e.name for e in ALL])
def test_experiment_matches_paper(experiment):
    verification = experiment.verify()
    assert verification.matched, verification.describe()


@pytest.mark.parametrize("experiment", ALL, ids=[e.name for e in ALL])
def test_experiment_renders(experiment):
    text = experiment.render()
    assert isinstance(text, str) and len(text) > 20


class TestExpectedDataConsistency:
    """Sanity of the hard-coded expectations themselves."""

    def test_fig1_nnz(self):
        assert FIG1_NNZ == 186

    def test_fig3_and_fig5_share_pattern(self):
        for name in FIG3_TABLES:
            assert set(FIG3_TABLES[name]) == set(FIG5_TABLES[name])

    def test_all_tables_have_eleven_entries(self):
        for tables in (FIG3_TABLES, FIG5_TABLES):
            for name, table in tables.items():
                assert len(table) == 11, name  # 5 + 3 + 3

    def test_stacks_cover_seven_pairs(self):
        flat = [n for stack in FIG35_STACKS for n in stack]
        assert len(flat) == 7 and len(set(flat)) == 7

    def test_stacked_tables_really_equal(self):
        for tables in (FIG3_TABLES, FIG5_TABLES):
            for stack in FIG35_STACKS:
                first = tables[stack[0]]
                for other in stack[1:]:
                    assert tables[other] == first

    def test_expected_array_builder(self):
        arr = expected_array(FIG3_TABLES["plus_times"])
        assert arr.shape == (3, 5)
        assert arr.get("Genre|Pop", "Writer|Chad Anderson") == 13


class TestSpecificFigureFacts:
    """Spot-checks quoted directly from the paper's prose."""

    def test_fig3_plus_times_electronic_row(self):
        t = FIG3_TABLES["plus_times"]
        assert [t[("Genre|Electronic", w)] for w in (
            "Writer|Barrett Rich", "Writer|Chad Anderson",
            "Writer|Chloe Chaidez", "Writer|Julian Chaidez",
            "Writer|Nicholas Johns")] == [1, 7, 7, 2, 1]

    def test_fig5_plus_times_rows_scaled_2_and_3(self):
        """'the values in the adjacency array rows Genre|Pop and
        Genre|Rock are multiplied by 2 and 3'."""
        for col in ("Writer|Chad Anderson", "Writer|Chloe Chaidez"):
            assert FIG5_TABLES["plus_times"][("Genre|Pop", col)] \
                == 2 * FIG3_TABLES["plus_times"][("Genre|Pop", col)]
            assert FIG5_TABLES["plus_times"][("Genre|Rock", col)] \
                == 3 * FIG3_TABLES["plus_times"][("Genre|Rock", col)]

    def test_fig5_max_plus_rows_larger_by_1_and_2(self):
        """'the values ... are larger by 1 and 2' for max.+/min.+."""
        for col in ("Writer|Chad Anderson", "Writer|Chloe Chaidez"):
            assert FIG5_TABLES["max_plus"][("Genre|Pop", col)] \
                == FIG3_TABLES["max_plus"][("Genre|Pop", col)] + 1
            assert FIG5_TABLES["max_plus"][("Genre|Rock", col)] \
                == FIG3_TABLES["max_plus"][("Genre|Rock", col)] + 2

    def test_fig5_max_min_unchanged(self):
        """'For the max.min semiring, Figure 3 and Figure 5 have the same
        adjacency array because E2 is unchanged.'"""
        assert FIG5_TABLES["max_min"] == FIG3_TABLES["max_min"]

    def test_fig5_min_max_selects_larger_e1_values(self):
        """'the ⊗ operator selecting the larger non-zero values from E1'."""
        assert FIG5_TABLES["min_max"][("Genre|Pop",
                                       "Writer|Chad Anderson")] == 2
        assert FIG5_TABLES["min_max"][("Genre|Rock",
                                       "Writer|Chad Anderson")] == 3

    def test_computed_figures_match_through_experiments(self):
        f3 = Figure3Experiment().run()
        f5 = Figure5Experiment().run()
        # 1⊗1 = 2 only where ⊗ = + (paper's Figure 3 remark).
        assert f3["max_plus"].get("Genre|Electronic",
                                  "Writer|Chad Anderson") == 2
        assert f3["max_times"].get("Genre|Electronic",
                                   "Writer|Chad Anderson") == 1
        # Figure 5's min.max Pop row shows 2s.
        assert f5["min_max"].get("Genre|Pop", "Writer|Chloe Chaidez") == 2

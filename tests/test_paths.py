"""Tests for matrix powers and closures, cross-checked with networkx."""

from __future__ import annotations

import math

import networkx as nx
import pytest

from repro.arrays.associative import AssociativeArray
from repro.core.construction import adjacency_array
from repro.graphs.digraph import EdgeKeyedDigraph, GraphError
from repro.graphs.generators import erdos_renyi_multigraph
from repro.graphs.incidence import incidence_arrays
from repro.graphs.paths import (
    all_pairs_shortest_paths,
    all_pairs_widest_paths,
    closure,
    matrix_power,
    transitive_closure_pattern,
    walk_counts,
)
from repro.values.semiring import get_op_pair


def _square(graph, pair_name, weights=None):
    pair = get_op_pair(pair_name)
    kwargs = {"zero": pair.zero}
    if weights is not None:
        kwargs.update(out_values=weights, in_values=pair.one)
    eout, ein = incidence_arrays(graph, **kwargs)
    adj = adjacency_array(eout, ein, pair, kernel="generic")
    verts = graph.vertices
    return adj.with_keys(row_keys=verts, col_keys=verts)


class TestMatrixPower:
    def test_requires_square(self):
        a = AssociativeArray({("r", "c"): 1}, row_keys=["r"],
                             col_keys=["c"])
        with pytest.raises(GraphError, match="square"):
            matrix_power(a, 2, get_op_pair("plus_times"))

    def test_exponent_validation(self):
        a = AssociativeArray({("r", "r"): 1})
        with pytest.raises(ValueError):
            matrix_power(a, 0, get_op_pair("plus_times"))

    def test_power_one_is_identity(self):
        g = erdos_renyi_multigraph(5, 12, seed=1)
        adj = _square(g, "plus_times")
        assert matrix_power(adj, 1, get_op_pair("plus_times")) == adj

    @pytest.mark.parametrize("seed", [3, 4])
    @pytest.mark.parametrize("k", [2, 3])
    def test_walk_counts_match_networkx(self, seed, k):
        graph = erdos_renyi_multigraph(7, 20, seed=seed)
        adj = _square(graph, "plus_times")
        counts = walk_counts(adj, k)

        g = nx.MultiDiGraph()
        g.add_nodes_from(graph.vertices)
        g.add_edges_from(graph.edge_pairs())
        import numpy as np
        order = list(graph.vertices)
        m = nx.to_numpy_array(g, nodelist=order)
        want = np.linalg.matrix_power(m, k)
        for i, u in enumerate(order):
            for j, v in enumerate(order):
                assert counts.get(u, v) == pytest.approx(want[i, j])


class TestShortestPathClosure:
    @pytest.mark.parametrize("seed", [5, 6, 7])
    def test_matches_floyd_warshall(self, seed):
        import random
        graph = erdos_renyi_multigraph(8, 25, seed=seed)
        rng = random.Random(seed)
        weights = {k: float(rng.randint(1, 9)) for k in graph.edge_keys}
        adj = _square(graph, "min_plus", weights)
        dist = all_pairs_shortest_paths(adj)

        g = nx.MultiDiGraph()
        g.add_nodes_from(graph.vertices)
        for k, s, t in graph.edges():
            g.add_edge(s, t, weight=weights[k])
        want = dict(nx.all_pairs_dijkstra_path_length(g))
        for u in graph.vertices:
            for v in graph.vertices:
                expected = want.get(u, {}).get(v, math.inf)
                got = dist.get(u, v)
                if math.isinf(expected):
                    assert math.isinf(got)
                else:
                    assert got == pytest.approx(expected), (u, v)

    def test_diagonal_is_zero(self):
        graph = erdos_renyi_multigraph(5, 10, seed=2)
        adj = _square(graph, "min_plus",
                      {k: 2.0 for k in graph.edge_keys})
        dist = all_pairs_shortest_paths(adj)
        for v in graph.vertices:
            assert dist.get(v, v) == 0


class TestWidestPathClosure:
    def test_hand_case(self):
        g = EdgeKeyedDigraph([
            ("e1", "a", "b"), ("e2", "b", "c"), ("e3", "a", "c")])
        adj = _square(g, "max_min",
                      {"e1": 5.0, "e2": 2.0, "e3": 1.0})
        width = all_pairs_widest_paths(adj)
        assert width.get("a", "c") == 2.0   # via b
        assert width.get("a", "b") == 5.0
        assert width.get("a", "a") == math.inf  # empty path

    @pytest.mark.parametrize("seed", [8, 9])
    def test_widest_at_least_direct_edge(self, seed):
        import random
        graph = erdos_renyi_multigraph(7, 20, seed=seed)
        rng = random.Random(seed)
        weights = {k: float(rng.randint(1, 9)) for k in graph.edge_keys}
        adj = _square(graph, "max_min", weights)
        width = all_pairs_widest_paths(adj)
        for (u, v) in adj.nonzero_pattern():
            assert width.get(u, v) >= adj.get(u, v)


class TestTransitiveClosure:
    @pytest.mark.parametrize("seed", [10, 11, 12])
    def test_matches_networkx(self, seed):
        graph = erdos_renyi_multigraph(8, 15, seed=seed)
        adj = _square(graph, "max_min")
        got = transitive_closure_pattern(adj)

        g = nx.DiGraph()
        g.add_nodes_from(graph.vertices)
        g.add_edges_from(graph.edge_pairs())
        closure_g = nx.transitive_closure(g, reflexive=True)
        want = frozenset(closure_g.edges()) | frozenset(
            (v, v) for v in g.nodes)
        assert got == want

    def test_or_and_closure_pattern_agrees(self):
        graph = erdos_renyi_multigraph(6, 12, seed=13)
        pair = get_op_pair("or_and")
        eout, ein = incidence_arrays(graph, one=True, zero=False)
        adj = adjacency_array(eout, ein, pair, kernel="generic")
        verts = graph.vertices
        adj = adj.with_keys(row_keys=verts, col_keys=verts)
        closed = closure(adj, pair)
        assert closed.nonzero_pattern() == transitive_closure_pattern(adj)


class TestClosureGuards:
    def test_plus_times_bounded_iterations(self):
        """On a cycle, +.× closure diverges; the iteration bound applies
        and the result covers bounded-length walks."""
        g = EdgeKeyedDigraph([("e1", "a", "b"), ("e2", "b", "a")])
        adj = _square(g, "plus_times")
        out = closure(adj, get_op_pair("plus_times"), max_iterations=2)
        assert out.get("a", "a") >= 1  # diagonal seeded + walks

    def test_empty_array(self):
        empty = AssociativeArray.empty([], [], zero=math.inf)
        assert closure(empty, get_op_pair("min_plus")) == empty

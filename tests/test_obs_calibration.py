"""Tests for the persistent kernel-calibration store
(repro.obs.calibration) and its cost-model integration."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs.calibration import (
    SCHEMA,
    CalibrationStore,
    calibration_enabled,
    default_path,
    get_calibration_store,
    machine_fingerprint,
    reset_calibration_store,
)

SRC = str(Path(__file__).resolve().parent.parent / "src")


class TestFingerprint:
    def test_stable_and_short(self):
        assert machine_fingerprint() == machine_fingerprint()
        assert len(machine_fingerprint()) == 12

    def test_distinct_machines_distinct_prints(self):
        a = machine_fingerprint({"machine": "x86_64", "cpu_count": 8})
        b = machine_fingerprint({"machine": "arm64", "cpu_count": 8})
        assert a != b


class TestStore:
    def test_record_and_rate(self, tmp_path):
        store = CalibrationStore(tmp_path / "cal.json")
        assert store.rate("scipy") is None
        store.record("scipy", terms=1000.0, seconds=0.01)
        assert store.rate("scipy") == pytest.approx(1e-5)

    def test_ewma_blends_samples(self, tmp_path):
        store = CalibrationStore(tmp_path / "cal.json", alpha=0.5)
        store.record("scipy", terms=100.0, seconds=0.01)   # 1e-4
        store.record("scipy", terms=100.0, seconds=0.03)   # 3e-4
        assert store.rate("scipy") == pytest.approx(2e-4)
        kernels = store.kernels()
        assert kernels["scipy"]["samples"] == 2
        assert kernels["scipy"]["terms_total"] == 200.0

    def test_degenerate_samples_ignored(self, tmp_path):
        store = CalibrationStore(tmp_path / "cal.json")
        store.record("scipy", terms=0.0, seconds=0.1)
        store.record("scipy", terms=10.0, seconds=0.0)
        assert store.rate("scipy") is None

    def test_round_trip_across_instances(self, tmp_path):
        path = tmp_path / "cal.json"
        first = CalibrationStore(path)
        first.record("reduceat", terms=500.0, seconds=0.02)
        first.save()
        second = CalibrationStore(path)    # fresh load, same machine
        assert second.rate("reduceat") == pytest.approx(0.02 / 500.0)
        doc = json.loads(path.read_text())
        assert doc["schema"] == SCHEMA

    def test_corrupt_file_starts_fresh(self, tmp_path):
        path = tmp_path / "cal.json"
        path.write_text("{not json")
        store = CalibrationStore(path)
        assert store.rate("scipy") is None
        store.record("scipy", 10.0, 0.1)
        store.save()
        assert json.loads(path.read_text())["schema"] == SCHEMA

    def test_wrong_schema_starts_fresh(self, tmp_path):
        path = tmp_path / "cal.json"
        path.write_text(json.dumps({"schema": "other/v9",
                                    "machines": {}}))
        assert CalibrationStore(path).rate("scipy") is None

    def test_rates_are_fingerprint_isolated(self, tmp_path):
        path = tmp_path / "cal.json"
        store = CalibrationStore(path)
        store.record("scipy", 100.0, 0.01)
        store.save()
        # Another "machine" writing to the same file must not see (or
        # clobber) this fingerprint's rates.
        doc = json.loads(path.read_text())
        other_fp = "0" * 12
        doc["machines"][other_fp] = {
            "info": {}, "kernels": {"scipy": {"seconds_per_term": 99.0}}}
        path.write_text(json.dumps(doc))
        reloaded = CalibrationStore(path)
        assert reloaded.rate("scipy") == pytest.approx(1e-4)
        snap = reloaded.snapshot()
        assert snap["active_fingerprint"] == reloaded.fingerprint
        assert other_fp in snap["machines"]

    def test_maybe_save_throttles(self, tmp_path):
        path = tmp_path / "cal.json"
        store = CalibrationStore(path)
        for _ in range(3):
            store.record("scipy", 10.0, 0.01)
        assert store.maybe_save(min_updates=8) is False
        assert not path.exists()
        for _ in range(10):
            store.record("scipy", 10.0, 0.01)
        assert store.maybe_save(min_updates=8, min_interval=0.0) is True
        assert path.exists()

    def test_flush_persists_pending(self, tmp_path):
        path = tmp_path / "cal.json"
        store = CalibrationStore(path)
        store.flush()                      # nothing dirty — no file
        assert not path.exists()
        store.record("generic", 10.0, 0.01)
        store.flush()
        assert path.exists()


class TestEnvironment:
    def test_default_path_honors_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CALIBRATION_PATH",
                           str(tmp_path / "here.json"))
        assert default_path() == tmp_path / "here.json"

    def test_toggle_disables_store(self, monkeypatch):
        monkeypatch.setenv("REPRO_CALIBRATION", "0")
        reset_calibration_store()
        try:
            assert not calibration_enabled()
            assert get_calibration_store() is None
        finally:
            monkeypatch.delenv("REPRO_CALIBRATION")
            reset_calibration_store()

    def test_global_store_is_singleton(self):
        reset_calibration_store()
        try:
            a = get_calibration_store()
            assert a is not None
            assert get_calibration_store() is a
        finally:
            reset_calibration_store()


class TestCostModelIntegration:
    def test_seconds_per_term_prefers_measured(self, tmp_path,
                                               monkeypatch):
        from repro.expr.cost import record_kernel_sample, seconds_per_term
        monkeypatch.setenv("REPRO_CALIBRATION_PATH",
                           str(tmp_path / "cal.json"))
        reset_calibration_store()
        try:
            kernel = "cal_test_kernel_a"
            rate, source = seconds_per_term(kernel)
            assert rate is None and source == ""
            record_kernel_sample(kernel, terms=1000.0, seconds=0.01)
            rate, source = seconds_per_term(kernel)
            assert source == "measured"
            assert rate == pytest.approx(1e-5)
        finally:
            reset_calibration_store()

    def test_seconds_per_term_falls_back_to_calibrated(self, tmp_path,
                                                       monkeypatch):
        from repro.expr.cost import seconds_per_term
        path = tmp_path / "cal.json"
        seeded = CalibrationStore(path)
        kernel = "cal_test_kernel_b"   # never measured in-process
        seeded.record(kernel, terms=100.0, seconds=0.02)
        seeded.save()
        monkeypatch.setenv("REPRO_CALIBRATION_PATH", str(path))
        reset_calibration_store()
        try:
            rate, source = seconds_per_term(kernel)
            assert source == "calibrated"
            assert rate == pytest.approx(2e-4)
        finally:
            reset_calibration_store()


_PROCESS_A = """
import sys
sys.path.insert(0, {src!r})
from repro.arrays.associative import AssociativeArray
from repro.expr import lazy, plan
from repro.values.semiring import get_op_pair

pair = get_op_pair("plus_times")
n = 40
eout = AssociativeArray.from_triples(
    [(f"e{{i}}", f"v{{i % n}}", 1.0) for i in range(4 * n)], zero=0.0)
ein = AssociativeArray.from_triples(
    [(f"e{{i}}", f"v{{(i + 1) % n}}", 1.0) for i in range(4 * n)], zero=0.0)
expr = lazy(eout, "Eout").T.matmul(lazy(ein, "Ein"), pair)
result = plan(expr).execute()
assert result.nnz > 0
"""

_PROCESS_B = """
import sys
sys.path.insert(0, {src!r})
from repro.arrays.associative import AssociativeArray
from repro.expr import lazy, plan
from repro.expr.cost import estimate_plan, seconds_per_term
from repro.values.semiring import get_op_pair

pair = get_op_pair("plus_times")
n = 40
eout = AssociativeArray.from_triples(
    [(f"e{{i}}", f"v{{i % n}}", 1.0) for i in range(4 * n)], zero=0.0)
ein = AssociativeArray.from_triples(
    [(f"e{{i}}", f"v{{(i + 1) % n}}", 1.0) for i in range(4 * n)], zero=0.0)
expr = lazy(eout, "Eout").T.matmul(lazy(ein, "Ein"), pair)
the_plan = plan(expr)
ests = estimate_plan(the_plan.root)
products = [e for e in ests.values() if e.kernel != "-"]
assert products, "no product node in the plan"
calibrated = [e for e in products if e.seconds_source == "calibrated"]
assert calibrated, (
    "cold process produced no calibrated estimates: "
    + repr([(e.kernel, e.seconds_source) for e in products]))
assert all(e.seconds is not None and e.seconds > 0 for e in calibrated)
text = the_plan.explain()
assert "calibrated" in text, text
print("COLD_CALIBRATED_OK")
"""


class TestTwoProcessCalibration:
    def test_cold_process_plans_with_calibrated_rates(self, tmp_path):
        """The acceptance path: process A executes products and persists
        its measured rates at exit; a *fresh* process B, having run
        nothing, produces explain() estimates sourced from the
        calibration store — measured, not static."""
        path = tmp_path / "calibration.json"
        env = dict(os.environ)
        env["REPRO_CALIBRATION_PATH"] = str(path)
        env.pop("REPRO_CALIBRATION", None)

        run_a = subprocess.run(
            [sys.executable, "-c", _PROCESS_A.format(src=SRC)],
            env=env, capture_output=True, text=True, timeout=120)
        assert run_a.returncode == 0, run_a.stderr
        assert path.exists(), "process A persisted no calibration"
        doc = json.loads(path.read_text())
        assert doc["schema"] == SCHEMA
        assert doc["machines"], "no machine entry was calibrated"

        run_b = subprocess.run(
            [sys.executable, "-c", _PROCESS_B.format(src=SRC)],
            env=env, capture_output=True, text=True, timeout=120)
        assert run_b.returncode == 0, run_b.stderr
        assert "COLD_CALIBRATED_OK" in run_b.stdout

"""Tests for row/column reductions."""

from __future__ import annotations

import math

import pytest

from repro.arrays.associative import AssociativeArray
from repro.arrays.reductions import (
    col_counts,
    reduce_cols,
    reduce_rows,
    row_counts,
    scale_cols,
    scale_rows,
    total_reduce,
)
from repro.values.operations import MAX_ZERO, MIN, PLUS, TIMES
from repro.values.exotic import SKEW_PLUS


@pytest.fixture
def arr():
    return AssociativeArray(
        {("r1", "c1"): 1, ("r1", "c2"): 2, ("r2", "c2"): 3,
         ("r2", "c3"): 4},
        row_keys=["r1", "r2", "r3"], col_keys=["c1", "c2", "c3"])


class TestReduce:
    def test_reduce_rows_plus(self, arr):
        assert reduce_rows(arr, PLUS) == {"r1": 3, "r2": 7}

    def test_reduce_rows_max(self, arr):
        assert reduce_rows(arr, MAX_ZERO) == {"r1": 2, "r2": 4}

    def test_reduce_cols_plus(self, arr):
        assert reduce_cols(arr, PLUS) == {"c1": 1, "c2": 5, "c3": 4}

    def test_empty_rows_omitted(self, arr):
        assert "r3" not in reduce_rows(arr, PLUS)

    def test_reduce_rows_fold_order_key_sorted(self):
        # Non-associative ⊕̃: fold must run in column-key order.
        a = AssociativeArray({("r", "c2"): 2, ("r", "c1"): 1,
                              ("r", "c3"): 3},
                             row_keys=["r"], col_keys=["c1", "c2", "c3"])
        got = reduce_rows(a, SKEW_PLUS)[("r")]
        want = SKEW_PLUS(SKEW_PLUS(1, 2), 3)
        assert got == want

    def test_total_reduce(self, arr):
        assert total_reduce(arr, PLUS) == 10
        assert total_reduce(arr, MAX_ZERO) == 4

    def test_total_reduce_empty_is_identity(self):
        empty = AssociativeArray.empty(["r"], ["c"])
        assert total_reduce(empty, PLUS) == 0
        assert total_reduce(empty, MIN) == math.inf


class TestCounts:
    def test_row_counts_zero_filled(self, arr):
        assert row_counts(arr) == {"r1": 2, "r2": 2, "r3": 0}

    def test_col_counts(self, arr):
        assert col_counts(arr) == {"c1": 1, "c2": 2, "c3": 1}

    def test_counts_on_music_are_figure1_counts(self):
        from repro.datasets.music import FIGURE1_ROW_COUNTS, music_incidence
        assert row_counts(music_incidence()) == FIGURE1_ROW_COUNTS


class TestScaling:
    def test_scale_rows(self, arr):
        scaled = scale_rows(arr, {"r1": 10}, TIMES)
        assert scaled.get("r1", "c2") == 20
        assert scaled.get("r2", "c2") == 3  # missing factor → identity

    def test_scale_rows_explicit_missing(self, arr):
        scaled = scale_rows(arr, {}, TIMES, missing=0)
        assert scaled.nnz == 0  # everything multiplied by 0 → dropped

    def test_scale_cols_right_operand(self):
        from repro.values.operations import CONCAT
        a = AssociativeArray({("r", "c"): "ab"}, zero="\0")
        scaled = scale_cols(a, {"c": "xy"}, CONCAT)
        assert scaled.get("r", "c") == "abxy"  # factor on the right

    def test_scale_preserves_keysets_and_zero(self, arr):
        scaled = scale_rows(arr, {"r1": 2}, TIMES)
        assert scaled.row_keys == arr.row_keys
        assert scaled.col_keys == arr.col_keys
        assert scaled.zero == arr.zero

    def test_degree_normalisation_use_case(self):
        """Row-stochastic normalisation: A(r,c) / rowsum(r)."""
        from repro.values.operations import BinaryOp
        a = AssociativeArray({("r", "c1"): 1.0, ("r", "c2"): 3.0})
        sums = reduce_rows(a, PLUS)
        div = BinaryOp("divide_into", lambda s, v: v / s, 1.0)
        normal = scale_rows(a, sums, div)
        assert normal.get("r", "c1") == 0.25
        assert normal.get("r", "c2") == 0.75

"""Unit tests for repro.values.semiring (OpPair and the catalog)."""

from __future__ import annotations

import math

import pytest

from repro.values.domains import Naturals, NonNegativeReals
from repro.values.operations import BinaryOp, MAX, PLUS, STR_MIN, TIMES
from repro.values.semiring import (
    OpPair,
    PAPER_FIGURE_PAIRS,
    PAPER_FIGURE_STACKS,
    SECTION_III_EXAMPLES,
    SECTION_III_NON_EXAMPLES,
    SemiringError,
    get_op_pair,
    list_op_pairs,
    register_op_pair,
)

import repro.values.exotic  # noqa: F401  (registers exotic pairs)


class TestOpPairBasics:
    def test_zero_and_one(self):
        pt = get_op_pair("plus_times")
        assert pt.zero == 0 and pt.one == 1

    @pytest.mark.parametrize("name,zero,one", [
        ("plus_times", 0, 1),
        ("max_times", 0, 1),
        ("min_times", math.inf, 1),
        ("max_plus", -math.inf, 0),
        ("min_plus", math.inf, 0),
        ("max_min", 0, math.inf),
        ("min_max", math.inf, 0),
        ("or_and", False, True),
    ])
    def test_figure_pair_identities(self, name, zero, one):
        pair = get_op_pair(name)
        assert pair.zero == zero
        assert pair.one == one

    def test_is_zero(self):
        mp = get_op_pair("min_plus")
        assert mp.is_zero(math.inf)
        assert not mp.is_zero(0)

    def test_is_zero_nan(self):
        class _NanDomain(NonNegativeReals):
            name = "nonneg_with_nan_t"

            def contains(self, value):
                return (isinstance(value, float) and math.isnan(value)) \
                    or super().contains(value)

        pair = OpPair("nan_pair_t", "t",
                      BinaryOp("a_t", lambda a, b: a, float("nan")),
                      BinaryOp("m_t", lambda a, b: a, 1.0),
                      _NanDomain())
        assert pair.is_zero(float("nan"))
        assert not pair.is_zero(0.0)

    def test_multiply_operand_order(self):
        mc = get_op_pair("max_concat")
        assert mc.multiply("ab", "cd") == "abcd"

    def test_fold_add_empty_is_zero(self):
        assert get_op_pair("plus_times").fold_add([]) == 0
        assert get_op_pair("min_plus").fold_add([]) == math.inf

    def test_fold_add_key_order(self):
        sk = get_op_pair("skew_plus_times")
        # Left fold of the non-associative ⊕̃ over [1, 2, 3].
        add = sk.add
        expected = add(add(1, 2), 3)
        assert sk.fold_add([1, 2, 3]) == expected

    def test_has_ufuncs(self):
        assert get_op_pair("plus_times").has_ufuncs
        assert get_op_pair("max_min").has_ufuncs
        assert not get_op_pair("union_intersection").has_ufuncs
        assert not get_op_pair("skew_plus_times").has_ufuncs

    def test_is_numeric(self):
        assert get_op_pair("min_plus").is_numeric
        assert not get_op_pair("or_and").is_numeric  # bools excluded
        assert not get_op_pair("string_max_min").is_numeric

    def test_repr_mentions_display(self):
        assert "+.×" in repr(get_op_pair("plus_times"))


class TestValidation:
    def test_mul_identity_none_rejected(self):
        with pytest.raises(SemiringError, match="no concrete identity"):
            OpPair("bad_t", "b", PLUS, STR_MIN, Naturals())

    def test_zero_outside_domain_rejected(self):
        with pytest.raises(SemiringError, match="zero"):
            OpPair("bad_t2", "b", MAX, TIMES, Naturals())  # -inf ∉ ℕ

    def test_one_outside_domain_rejected(self):
        bad_mul = BinaryOp("badmul_t", lambda a, b: a * b, -1)
        with pytest.raises(SemiringError, match="one"):
            OpPair("bad_t3", "b", PLUS, bad_mul, Naturals())


class TestRegistry:
    def test_get_known(self):
        assert get_op_pair("plus_times").name == "plus_times"

    def test_get_unknown(self):
        with pytest.raises(SemiringError, match="unknown op-pair"):
            get_op_pair("definitely_missing")

    def test_duplicate_rejected(self):
        pair = OpPair("plus_times", "+.×", PLUS, TIMES, NonNegativeReals())
        with pytest.raises(SemiringError, match="already registered"):
            register_op_pair(pair)

    def test_list_sorted(self):
        names = list_op_pairs()
        assert names == sorted(names)


class TestPaperCatalog:
    def test_figure_pairs_complete(self):
        assert PAPER_FIGURE_PAIRS == (
            "plus_times", "max_times", "min_times", "max_plus",
            "min_plus", "max_min", "min_max")
        for name in PAPER_FIGURE_PAIRS:
            assert get_op_pair(name) is not None

    def test_stacks_partition_figure_pairs(self):
        flattened = [n for stack in PAPER_FIGURE_STACKS for n in stack]
        assert sorted(flattened) == sorted(PAPER_FIGURE_PAIRS)

    def test_examples_marked_safe(self):
        for name in SECTION_III_EXAMPLES:
            assert get_op_pair(name).expected_safe is True

    def test_non_examples_marked_unsafe(self):
        for name in SECTION_III_NON_EXAMPLES:
            assert get_op_pair(name).expected_safe is False

    def test_every_figure_pair_has_synopsis_description(self):
        for name in PAPER_FIGURE_PAIRS:
            assert len(get_op_pair(name).description) > 20

    def test_zero_one_belong_to_domain(self):
        for name in list_op_pairs():
            pair = get_op_pair(name)
            assert pair.domain.contains(pair.zero), name
            assert pair.domain.contains(pair.one), name

    def test_identities_verified_empirically(self):
        from repro.values.properties import check_identity
        for name in list_op_pairs():
            pair = get_op_pair(name)
            if name == "nonneg_max_plus":
                continue  # deliberately degenerate (one == zero) but valid
            assert check_identity(pair.add, pair.domain, seed=3), name
            assert check_identity(pair.mul, pair.domain, seed=3), name

"""Unit tests for repro.values.operations."""

from __future__ import annotations

import math

import pytest

from repro.values.operations import (
    AND,
    BinaryOp,
    CONCAT,
    CONCAT_ZERO,
    COMPLETED_PLUS,
    GCD,
    LCM,
    MAX,
    MAX_ZERO,
    MIN,
    OR,
    OperationError,
    PLUS,
    STR_MAX,
    STR_MAX_WITH_ZERO,
    SYMMETRIC_DIFFERENCE,
    TIMES,
    UNION,
    XOR,
    get_operation,
    list_operations,
    make_intersection,
    make_str_min,
    register_operation,
)


class TestBinaryOpBasics:
    def test_call_applies_function(self):
        assert PLUS(2, 3) == 5
        assert TIMES(2, 3) == 6

    def test_identity_attributes(self):
        assert PLUS.identity == 0
        assert TIMES.identity == 1
        assert MAX.identity == -math.inf
        assert MIN.identity == math.inf
        assert MAX_ZERO.identity == 0

    def test_non_callable_rejected(self):
        with pytest.raises(OperationError):
            BinaryOp("bad", 42, 0)

    def test_empty_name_rejected(self):
        with pytest.raises(OperationError):
            BinaryOp("", lambda a, b: a, 0)

    def test_is_identity(self):
        assert PLUS.is_identity(0)
        assert not PLUS.is_identity(1)
        assert MAX.is_identity(-math.inf)

    def test_is_identity_nan_safe(self):
        op = BinaryOp("nan_id", lambda a, b: a, float("nan"))
        assert op.is_identity(float("nan"))


class TestFold:
    def test_fold_empty_returns_identity(self):
        assert PLUS.fold([]) == 0
        assert MIN.fold([]) == math.inf

    def test_fold_single(self):
        assert PLUS.fold([7]) == 7

    def test_fold_left_order(self):
        # Non-associative op: order must be left-to-right.
        op = BinaryOp("skew", lambda a, b: a + b + a * a * b, 0,
                      associative=False)
        # fold([1, 2, 3]) = ((0⊕1)⊕2)⊕3 = (1⊕2)⊕3 = 5 ⊕ 3 = 5+3+75 = 83
        assert op.fold([1, 2, 3]) == 83

    def test_fold_initial(self):
        assert PLUS.fold([1, 2], initial=10) == 13


class TestStandardOps:
    @pytest.mark.parametrize("op,a,b,expected", [
        (MAX, 3, 5, 5),
        (MIN, 3, 5, 3),
        (MAX_ZERO, 0, 2, 2),
        (OR, False, True, True),
        (AND, True, False, False),
        (XOR, True, True, False),
        (GCD, 12, 18, 6),
        (LCM, 4, 6, 12),
    ])
    def test_values(self, op, a, b, expected):
        assert op(a, b) == expected

    def test_gcd_identity_is_zero(self):
        assert GCD(7, 0) == 7
        assert GCD(0, 7) == 7

    def test_lcm_identity_is_one(self):
        assert LCM(7, 1) == 7

    def test_union_intersection(self):
        a, b = frozenset({1, 2}), frozenset({2, 3})
        assert UNION(a, b) == frozenset({1, 2, 3})
        inter = make_intersection(frozenset({1, 2, 3}))
        assert inter(a, b) == frozenset({2})
        assert inter(a, inter.identity) == a

    def test_symmetric_difference(self):
        assert SYMMETRIC_DIFFERENCE(frozenset({1, 2}), frozenset({2, 3})) \
            == frozenset({1, 3})

    def test_union_accepts_plain_sets(self):
        assert UNION({1}, {2}) == frozenset({1, 2})


class TestCompletedPlus:
    def test_finite_addition(self):
        assert COMPLETED_PLUS(2, 3) == 5

    def test_indeterminate_resolves_to_plus_inf(self):
        # The naive completion (the paper's non-example); DESIGN.md §5.
        assert COMPLETED_PLUS(math.inf, -math.inf) == math.inf
        assert COMPLETED_PLUS(-math.inf, math.inf) == math.inf

    def test_minus_inf_absorbs_finite(self):
        assert COMPLETED_PLUS(-math.inf, 5) == -math.inf

    def test_plus_inf_with_finite(self):
        assert COMPLETED_PLUS(math.inf, 5) == math.inf


class TestStringOps:
    def test_str_max(self):
        assert STR_MAX("apple", "banana") == "banana"
        assert STR_MAX("", "a") == "a"
        assert STR_MAX.identity == ""

    def test_make_str_min(self):
        op = make_str_min("zzz")
        assert op("abc", "abd") == "abc"
        assert op("abc", "zzz") == "abc"
        assert op("zzz", "abc") == "abc"

    def test_concat(self):
        assert CONCAT("ab", "cd") == "abcd"
        assert CONCAT("ab", "") == "ab"
        assert CONCAT("", "ab") == "ab"

    def test_concat_zero_annihilates(self):
        assert CONCAT("ab", CONCAT_ZERO) == CONCAT_ZERO
        assert CONCAT(CONCAT_ZERO, "ab") == CONCAT_ZERO

    def test_concat_non_commutative(self):
        assert CONCAT("ab", "cd") != CONCAT("cd", "ab")

    def test_str_max_with_zero_bottom(self):
        # The distinguished zero is the bottom even though Python would
        # sort "\0" above "".
        assert STR_MAX_WITH_ZERO(CONCAT_ZERO, "") == ""
        assert STR_MAX_WITH_ZERO("", CONCAT_ZERO) == ""
        assert STR_MAX_WITH_ZERO(CONCAT_ZERO, CONCAT_ZERO) == CONCAT_ZERO
        assert STR_MAX_WITH_ZERO("a", "b") == "b"


class TestRegistry:
    def test_get_known(self):
        assert get_operation("plus") is PLUS
        assert get_operation("max") is MAX

    def test_get_unknown_raises_with_catalog(self):
        with pytest.raises(OperationError, match="unknown operation"):
            get_operation("nonexistent_op")

    def test_list_operations_sorted(self):
        names = list_operations()
        assert names == sorted(names)
        assert "plus" in names and "times" in names

    def test_duplicate_registration_rejected(self):
        op = BinaryOp("plus", lambda a, b: a + b, 0)
        with pytest.raises(OperationError, match="already registered"):
            register_operation(op)

    def test_overwrite_allowed_when_requested(self):
        op = BinaryOp("test_overwrite_tmp", lambda a, b: a, 0)
        register_operation(op)
        register_operation(op, overwrite=True)
        assert get_operation("test_overwrite_tmp") is op

"""Optimizer soundness, property-based.

The refactor contract of the lazy expression engine: for **random
expression trees** over **random certified op-pairs**, the optimized
plan — transpose pushdown, incidence-to-adjacency fusion,
reduction-into-matmul fusion, dead-branch pruning, CSE, cost-model
kernel choices, everything — must produce exactly the array that eager,
node-for-node evaluation produces.

Trees are grown over square arrays on a shared vertex key set so every
unary/binary step stays conformable; values are small integer-valued
floats, for which every catalog fold is exact in float64 (so strict
``==`` is the right comparison even for rewrites that re-associate
``⊕``).  A final optional reduction exercises the reduce-into-matmul
rule; transposes of products exercise the pushdown; ``.T.matmul``
chains exercise the fusion.

A second suite runs the same trees over an *uncertified* pair and
asserts the optimizer changes nothing semantically there either — the
gate refuses the algebra-dependent rewrites, and refusal must be as
sound as application.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arrays.associative import AssociativeArray
from repro.expr import evaluate, lazy, plan
from repro.values.semiring import get_op_pair

from tests.helpers import SAFE_NUMERIC_PAIRS

COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow])

#: Unary/binary growth steps applied while building a random tree.
_STEPS = ("transpose", "matmul", "fused_matmul", "ewise_add",
          "ewise_mul", "noop")


@st.composite
def expression_trees(draw, pair_name: str, max_depth: int = 4):
    """A random lazy expression plus the same tree's eager blueprint.

    Returns ``(expr, seed)`` where ``expr`` is the root
    :class:`~repro.expr.ast.LazyArray`; equivalence is checked by
    evaluating the identical DAG with and without the optimizer.
    """
    pair = get_op_pair(pair_name)
    zero = float(pair.zero)
    n = draw(st.integers(2, 5))
    keys = [f"v{i}" for i in range(n)]
    rng = random.Random(draw(st.integers(0, 2 ** 20)))

    def fresh_array() -> AssociativeArray:
        nnz = rng.randint(0, n * n)
        data = {}
        for _ in range(nnz):
            r, c = rng.choice(keys), rng.choice(keys)
            data[(r, c)] = float(rng.randint(1, 9))
        return AssociativeArray(data, row_keys=keys, col_keys=keys,
                                zero=zero)

    expr = lazy(fresh_array(), "seed")
    depth = draw(st.integers(1, max_depth))
    for i in range(depth):
        step = draw(st.sampled_from(_STEPS))
        if step == "transpose":
            expr = expr.T
        elif step == "matmul":
            expr = expr.matmul(lazy(fresh_array(), f"m{i}"), pair)
        elif step == "fused_matmul":
            # The paper's shape: transpose-of-left feeding a product.
            expr = expr.T.matmul(lazy(fresh_array(), f"f{i}"), pair)
        elif step == "ewise_add":
            expr = expr.add(lazy(fresh_array(), f"a{i}"), pair.add)
        elif step == "ewise_mul":
            expr = expr.multiply_elementwise(
                lazy(fresh_array(), f"x{i}"), pair.mul)
    if draw(st.booleans()):
        expr = expr.reduce_rows(pair.add) if draw(st.booleans()) \
            else expr.reduce_cols(pair.add)
    return expr


def _make_equivalence_test(name: str):
    @settings(max_examples=25, **COMMON)
    @given(expr=expression_trees(name))
    def _test(expr):
        optimized = evaluate(expr, optimize=True)
        eager = evaluate(expr, optimize=False)
        assert optimized == eager
        # Every applied rewrite must carry its license (structural
        # rules record an empty property tuple by design).
        for rw in plan(expr).applied:
            assert rw.rule
            assert rw.description

    _test.__name__ = f"test_optimized_equals_eager_{name}"
    return _test


for _name in SAFE_NUMERIC_PAIRS:
    globals()[f"test_optimized_equals_eager_{_name}"] = \
        _make_equivalence_test(_name)
del _name


@settings(max_examples=15, **COMMON)
@given(expr=expression_trees("plus_times", max_depth=3))
def test_memory_budget_never_changes_results(expr):
    """Routing over-budget fused products through the shard executor is
    an execution detail, not a semantics change."""
    assert evaluate(expr, optimize=True, memory_budget=1) == \
        evaluate(expr, optimize=False)


def _make_uncertified_test(name: str):
    pair = get_op_pair(name)
    if not isinstance(pair.zero, (int, float)) \
            or isinstance(pair.zero, bool):   # pragma: no cover
        raise AssertionError("uncertified suite expects numeric zeros")

    @settings(max_examples=15, **COMMON)
    @given(expr=expression_trees(name, max_depth=3))
    def _test(expr):
        assert evaluate(expr, optimize=True) == \
            evaluate(expr, optimize=False)

    _test.__name__ = f"test_uncertified_unchanged_{name}"
    return _test


#: Uncertified pairs with plain numeric carriers: the gate must refuse
#: the algebra-dependent rewrites and leave evaluation untouched.
for _name in ("gf2_xor_and", "int_plus_times"):
    globals()[f"test_uncertified_unchanged_{_name}"] = \
        _make_uncertified_test(_name)
del _name

"""Fold-order semantics, property-based.

The paper refuses to assume ``⊕`` associative or commutative, so
Definition I.3's sum has a definite order: the inner key set's total
order.  These tests pin the implementation to an *independently coded*
left fold for the non-associative ``⊕̃`` and the non-commutative ``⊗``.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arrays.associative import AssociativeArray
from repro.arrays.matmul import multiply_generic
from repro.values.semiring import get_op_pair

import repro.values.exotic  # noqa: F401

COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow])


@st.composite
def one_row_one_col_operands(draw, zero=0.0):
    """A 1×k row array and k×1 column array with dense-ish values."""
    k = draw(st.integers(1, 7))
    inner = [f"k{i}" for i in range(k)]
    a_vals = draw(st.lists(st.integers(1, 5), min_size=k, max_size=k))
    b_vals = draw(st.lists(st.integers(1, 5), min_size=k, max_size=k))
    mask = draw(st.lists(st.booleans(), min_size=k, max_size=k))
    a = AssociativeArray(
        {("r", kk): float(v) for kk, v, keep in zip(inner, a_vals, mask)
         if keep},
        row_keys=["r"], col_keys=inner, zero=zero)
    b = AssociativeArray(
        {(kk, "c"): float(v) for kk, v, keep in zip(inner, b_vals, mask)
         if keep},
        row_keys=inner, col_keys=["c"], zero=zero)
    return a, b


def _manual_sparse_fold(a, b, pair):
    """Independent reference: gather terms in inner-key order, left-fold."""
    terms = []
    for k in a.col_keys:
        av = a.to_dict().get(("r", k))
        bv = b.to_dict().get((k, "c"))
        if av is not None and bv is not None:
            terms.append(pair.mul(av, bv))
    if not terms:
        return None
    acc = terms[0]
    for t in terms[1:]:
        acc = pair.add(acc, t)
    return acc


@settings(max_examples=60, **COMMON)
@given(ab=one_row_one_col_operands())
def test_skew_pair_folds_in_key_order(ab):
    a, b = ab
    pair = get_op_pair("skew_twisted")
    got = multiply_generic(a, b, pair)
    want = _manual_sparse_fold(a, b, pair)
    if want is None or pair.is_zero(want):
        assert got.nnz == 0
    else:
        assert got.get("r", "c") == want


@settings(max_examples=60, **COMMON)
@given(ab=one_row_one_col_operands())
def test_reversed_key_order_changes_result_when_it_should(ab):
    """If the manual fold over *reversed* key order differs, the library
    must agree with the forward order, not the reversed one."""
    a, b = ab
    pair = get_op_pair("skew_plus_times")
    terms = []
    for k in a.col_keys:
        av = a.to_dict().get(("r", k))
        bv = b.to_dict().get((k, "c"))
        if av is not None and bv is not None:
            terms.append(pair.mul(av, bv))
    if len(terms) < 2:
        return
    fwd = terms[0]
    for t in terms[1:]:
        fwd = pair.add(fwd, t)
    rev = terms[-1]
    for t in reversed(terms[:-1]):
        rev = pair.add(rev, t)
    got = multiply_generic(a, b, pair).get("r", "c")
    assert got == fwd
    if fwd != rev:
        assert got != rev


@settings(max_examples=40, **COMMON)
@given(strings=st.lists(
    st.text(alphabet="abc", min_size=1, max_size=3), min_size=1,
    max_size=5))
def test_concat_products_preserve_operand_and_key_order(strings):
    """Over max.concat with a single in-value, ⊕ = lexicographic max picks
    the largest concatenation; each term is A-value ⊗ B-value in that
    operand order."""
    pair = get_op_pair("max_concat")
    zero = pair.zero
    inner = [f"k{i}" for i in range(len(strings))]
    a = AssociativeArray({("r", k): s for k, s in zip(inner, strings)},
                         row_keys=["r"], col_keys=inner, zero=zero)
    b = AssociativeArray({(k, "c"): "z" for k in inner},
                         row_keys=inner, col_keys=["c"], zero=zero)
    got = multiply_generic(a, b, pair).get("r", "c")
    assert got == max(s + "z" for s in strings)

"""Hypothesis strategies shared by the property-based tests."""

from __future__ import annotations

import random
from typing import Any, Dict, List, Tuple

from hypothesis import strategies as st

from repro.arrays.associative import AssociativeArray
from repro.graphs.digraph import EdgeKeyedDigraph
from repro.values.semiring import OpPair

__all__ = [
    "edge_lists",
    "graphs",
    "graph_with_values",
    "conformable_numeric_arrays",
    "aligned_numeric_arrays",
    "overlapping_numeric_arrays",
]

#: Vertex pool for generated graphs (small on purpose: collisions create
#: parallel edges and self-loops, the hard cases of the theorem).
_VERTICES = tuple(f"v{i}" for i in range(6))


def edge_lists(min_edges: int = 1, max_edges: int = 12):
    """Lists of (source, target) pairs over a small vertex pool."""
    vertex = st.sampled_from(_VERTICES)
    return st.lists(st.tuples(vertex, vertex),
                    min_size=min_edges, max_size=max_edges)


@st.composite
def graphs(draw, min_edges: int = 1, max_edges: int = 12):
    """Random edge-keyed multigraphs (self-loops and parallels likely)."""
    pairs = draw(edge_lists(min_edges, max_edges))
    return EdgeKeyedDigraph.from_pairs(pairs)


@st.composite
def graph_with_values(draw, pair: OpPair, min_edges: int = 1,
                      max_edges: int = 10):
    """A random graph plus nonzero incidence values from the pair's domain.

    Values are drawn through the domain's own seeded sampler (so every
    value set in the catalog — sets, strings, booleans — is exercised),
    with the seed controlled by hypothesis for shrinkability.
    """
    graph = draw(graphs(min_edges, max_edges))
    seed = draw(st.integers(0, 2**20))
    rng = random.Random(seed)
    keys = list(graph.edge_keys)
    out_vals = dict(zip(keys, pair.domain.sample(
        rng, len(keys), exclude=pair.zero)))
    in_vals = dict(zip(keys, pair.domain.sample(
        rng, len(keys), exclude=pair.zero)))
    return graph, out_vals, in_vals


@st.composite
def conformable_numeric_arrays(draw, zero: float = 0.0,
                               max_dim: int = 8):
    """Two conformable arrays with integer values in 1..9."""
    m = draw(st.integers(1, max_dim))
    k = draw(st.integers(1, max_dim))
    n = draw(st.integers(1, max_dim))
    rows = [f"r{i}" for i in range(m)]
    inner = [f"k{i}" for i in range(k)]
    cols = [f"c{i}" for i in range(n)]
    a_entries = draw(st.dictionaries(
        st.tuples(st.sampled_from(rows), st.sampled_from(inner)),
        st.integers(1, 9), max_size=m * k))
    b_entries = draw(st.dictionaries(
        st.tuples(st.sampled_from(inner), st.sampled_from(cols)),
        st.integers(1, 9), max_size=k * n))
    a = AssociativeArray({rc: float(v) for rc, v in a_entries.items()},
                         row_keys=rows, col_keys=inner, zero=zero)
    b = AssociativeArray({rc: float(v) for rc, v in b_entries.items()},
                         row_keys=inner, col_keys=cols, zero=zero)
    return a, b


@st.composite
def aligned_numeric_arrays(draw, zero: float = 0.0, max_dim: int = 8):
    """Two arrays over identical key sets (element-wise operands)."""
    m = draw(st.integers(1, max_dim))
    n = draw(st.integers(1, max_dim))
    rows = [f"r{i}" for i in range(m)]
    cols = [f"c{i}" for i in range(n)]
    coord = st.tuples(st.sampled_from(rows), st.sampled_from(cols))
    a_entries = draw(st.dictionaries(coord, st.integers(1, 9), max_size=m * n))
    b_entries = draw(st.dictionaries(coord, st.integers(1, 9), max_size=m * n))
    a = AssociativeArray({rc: float(v) for rc, v in a_entries.items()},
                         row_keys=rows, col_keys=cols, zero=zero)
    b = AssociativeArray({rc: float(v) for rc, v in b_entries.items()},
                         row_keys=rows, col_keys=cols, zero=zero)
    return a, b


@st.composite
def overlapping_numeric_arrays(draw, zero: float = 0.0, max_dim: int = 6):
    """Two arrays over *overlapping but distinct* key sets (⊕-merge
    operands: shard results cover different vertex subsets)."""
    m = draw(st.integers(1, max_dim))
    n = draw(st.integers(1, max_dim))
    row_off = draw(st.integers(0, 3))
    col_off = draw(st.integers(0, 3))
    rows_a = [f"r{i}" for i in range(m)]
    cols_a = [f"c{i}" for i in range(n)]
    rows_b = [f"r{i + row_off}" for i in range(m)]
    cols_b = [f"c{i + col_off}" for i in range(n)]
    a_entries = draw(st.dictionaries(
        st.tuples(st.sampled_from(rows_a), st.sampled_from(cols_a)),
        st.integers(1, 9), max_size=m * n))
    b_entries = draw(st.dictionaries(
        st.tuples(st.sampled_from(rows_b), st.sampled_from(cols_b)),
        st.integers(1, 9), max_size=m * n))
    a = AssociativeArray({rc: float(v) for rc, v in a_entries.items()},
                         row_keys=rows_a, col_keys=cols_a, zero=zero)
    b = AssociativeArray({rc: float(v) for rc, v in b_entries.items()},
                         row_keys=rows_b, col_keys=cols_b, zero=zero)
    return a, b

"""Sharded construction ≡ batch construction, property-based.

The blocked decomposition ``A = ⊕ₛ (Eout|Kₛ)ᵀ ⊕.⊗ (Ein|Kₛ)`` must equal
batch ``adjacency_array`` for *every* op-pair the merge gate admits
(certified safe + associative/commutative ``⊕``), on arbitrary random
multigraphs with arbitrary nonzero incidence values, across shard counts
1–5 and all three executors.

Comparison is exact (``==``) except for the pairs whose ``⊕`` performs
floating-point *sums* — reassociating a float sum may drift an ulp, which
is inherent to the decomposition, not a bug; those compare ``allclose``.
Selection-style ``⊕`` (min/max/gcd/or/lexicographic) is order-exact.

Process pools spawn per example, so the process-executor leg runs as a
deterministic parametrized sweep rather than under hypothesis.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.certify import certify
from repro.core.construction import adjacency_array
from repro.graphs.incidence import incidence_arrays
from repro.shard import sharded_adjacency
from repro.values.semiring import get_op_pair, list_op_pairs

from tests.helpers import SAFE_PAIRS  # noqa: F401  (registers catalog)
from tests.property.strategies import graph_with_values

#: Catalog pairs the shard merge gate admits.
MERGEABLE_PAIRS = tuple(
    name for name in list_op_pairs()
    if certify(get_op_pair(name), seed=0xD4, build_witness=False).safe
    and get_op_pair(name).add.associative
    and get_op_pair(name).add.commutative)

#: Pairs whose ⊕ sums floats — reassociation may drift an ulp.
APPROX_PAIRS = frozenset({"plus_times", "plus_twisted_times",
                          "log_semiring"})

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def test_gate_admits_a_meaningful_catalog_slice():
    """Sanity: the sweep below is not vacuous, and excludes both the
    unsafe pairs and the safe-but-order-sensitive ones."""
    assert "plus_times" in MERGEABLE_PAIRS
    assert "string_max_min" in MERGEABLE_PAIRS
    assert "int_plus_times" not in MERGEABLE_PAIRS
    assert "skew_plus_times" not in MERGEABLE_PAIRS
    assert len(MERGEABLE_PAIRS) >= 12


def _assert_shard_equals_batch(name, data, n_shards, executor):
    pair = get_op_pair(name)
    graph, out_vals, in_vals = data
    eout, ein = incidence_arrays(graph, zero=pair.zero,
                                 out_values=out_vals, in_values=in_vals)
    want = adjacency_array(eout, ein, pair, kernel="generic")
    got = sharded_adjacency((eout, ein), pair, n_shards=n_shards,
                            executor=executor, n_workers=2,
                            kernel="generic")
    if name in APPROX_PAIRS:
        assert got.row_keys == want.row_keys
        assert got.col_keys == want.col_keys
        assert got.allclose(want), f"{name}: sharded ≉ batch"
    else:
        assert got == want, f"{name}: sharded ≠ batch"


def _make_equivalence_test(name: str):
    pair = get_op_pair(name)

    @settings(max_examples=12, **COMMON)
    @given(data=graph_with_values(pair),
           n_shards=st.integers(1, 5),
           executor=st.sampled_from(("serial", "thread")))
    def _test(data, n_shards, executor):
        _assert_shard_equals_batch(name, data, n_shards, executor)

    _test.__name__ = f"test_shard_equivalence_{name}"
    return _test


for _name in MERGEABLE_PAIRS:
    globals()[f"test_shard_equivalence_{_name}"] = \
        _make_equivalence_test(_name)
del _name


@pytest.mark.parametrize("n_shards", [1, 2, 3, 4, 5])
@pytest.mark.parametrize("name", ["plus_times", "max_min"])
def test_shard_equivalence_process_executor(name, n_shards):
    """The process-executor leg of the sweep (deterministic examples:
    integer-valued weights make even ⊕ = + bit-exact)."""
    from repro.graphs.generators import erdos_renyi_multigraph
    pair = get_op_pair(name)
    graph = erdos_renyi_multigraph(10, 45, seed=31 + n_shards)
    weights = {k: float(1 + (i % 5))
               for i, k in enumerate(graph.edge_keys)}
    eout, ein = incidence_arrays(graph, zero=pair.zero,
                                 out_values=weights, in_values=weights)
    want = adjacency_array(eout, ein, pair)
    got = sharded_adjacency((eout, ein), pair, n_shards=n_shards,
                            executor="process", n_workers=2)
    assert got == want

"""Corollary III.1, property-based.

``EinᵀEout`` is an adjacency array of the reverse graph for every
compliant op-pair, random multigraph, and nonzero incidence values.  The
corollary's proof device — reading ``(Ein, Eout)`` as incidence arrays of
``Ḡ`` — is also checked directly.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings

from repro.core.construction import (
    adjacency_array,
    is_adjacency_array_of_graph,
    reverse_adjacency_array,
)
from repro.graphs.incidence import (
    incidence_arrays,
    is_source_incidence_of,
    is_target_incidence_of,
)
from repro.values.semiring import get_op_pair

from tests.property.strategies import graph_with_values

COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow])

#: A representative spread: arithmetic, tropical, lattice, boolean,
#: string, and exotic non-associative algebras.
REVERSE_PAIRS = ("plus_times", "min_plus", "max_min", "or_and",
                 "string_max_min", "skew_twisted")


def _make_reverse_test(name: str):
    pair = get_op_pair(name)

    @settings(max_examples=25, **COMMON)
    @given(data=graph_with_values(pair))
    def _test(data):
        graph, out_vals, in_vals = data
        eout, ein = incidence_arrays(graph, zero=pair.zero,
                                     out_values=out_vals,
                                     in_values=in_vals)
        rev = reverse_adjacency_array(eout, ein, pair, kernel="generic")
        assert is_adjacency_array_of_graph(rev, graph.reverse())

    _test.__name__ = f"test_reverse_{name}"
    return _test


for _name in REVERSE_PAIRS:
    globals()[f"test_reverse_{_name}"] = _make_reverse_test(_name)
del _name


def _pair():
    return get_op_pair("plus_times")


@settings(max_examples=25, **COMMON)
@given(data=graph_with_values(get_op_pair("plus_times")))
def test_swapped_arrays_are_incidence_arrays_of_reverse(data):
    """The proof's observation: choosing E̅out = Ein and E̅in = Eout gives
    valid incidence arrays of Ḡ."""
    pair = _pair()
    graph, out_vals, in_vals = data
    eout, ein = incidence_arrays(graph, zero=pair.zero,
                                 out_values=out_vals, in_values=in_vals)
    rev = graph.reverse()
    assert is_source_incidence_of(ein, rev)
    assert is_target_incidence_of(eout, rev)


@settings(max_examples=25, **COMMON)
@given(data=graph_with_values(get_op_pair("plus_times")))
def test_reverse_product_equals_adjacency_of_reverse_construction(data):
    """``EinᵀEout`` computed directly equals ``E̅outᵀE̅in`` built from the
    reversed graph's own incidence arrays (same values per edge)."""
    pair = _pair()
    graph, out_vals, in_vals = data
    eout, ein = incidence_arrays(graph, zero=pair.zero,
                                 out_values=out_vals, in_values=in_vals)
    via_swap = reverse_adjacency_array(eout, ein, pair, kernel="generic")
    rev_graph = graph.reverse()
    rev_eout, rev_ein = incidence_arrays(
        rev_graph, zero=pair.zero, out_values=in_vals, in_values=out_vals)
    direct = adjacency_array(rev_eout, rev_ein, pair, kernel="generic")
    assert via_swap == direct

"""Sortmerge kernel equivalence, property-based.

The whole-catalog speed path must be *exactly* interchangeable with the
reference implementation: for every certified ufunc op-pair and random
conformable arrays, ``sortmerge`` ≡ ``generic`` (and ≡ ``scipy`` where
scipy applies, i.e. genuine ``+.×``).  Degenerate shapes — empty inner
dimension, single-row/column operands — and NaN-zero domains (which
must fall back to the generic path, never run vectorised) are covered
deterministically.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings

from repro.arrays.associative import AssociativeArray
from repro.arrays.matmul import (
    MatmulError,
    _pick_kernel,
    multiply,
    multiply_generic,
    multiply_sortmerge,
)
from repro.arrays.sparse_backend import multiply_vectorized
from repro.graphs.algorithms import semiring_vecmat
from repro.values.semiring import get_op_pair

from tests.helpers import SAFE_NUMERIC_PAIRS
from tests.property.strategies import conformable_numeric_arrays

COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow])


def _make_sortmerge_test(name: str):
    pair = get_op_pair(name)

    @settings(max_examples=40, **COMMON)
    @given(ab=conformable_numeric_arrays(zero=float(pair.zero)))
    def _test(ab):
        a, b = ab
        ref = multiply_generic(a, b, pair, mode="sparse")
        got = multiply_vectorized(a, b, pair, kernel="sortmerge")
        assert got.allclose(ref)

    _test.__name__ = f"test_sortmerge_{name}"
    return _test


def _make_sortmerge_vs_reduceat_test(name: str):
    pair = get_op_pair(name)

    @settings(max_examples=25, **COMMON)
    @given(ab=conformable_numeric_arrays(zero=float(pair.zero)))
    def _test(ab):
        a, b = ab
        sm = multiply_vectorized(a, b, pair, kernel="sortmerge")
        ra = multiply_vectorized(a, b, pair, kernel="reduceat")
        assert sm.allclose(ra)

    _test.__name__ = f"test_sortmerge_vs_reduceat_{name}"
    return _test


for _name in SAFE_NUMERIC_PAIRS:
    globals()[f"test_sortmerge_{_name}"] = _make_sortmerge_test(_name)
    globals()[f"test_sortmerge_vs_reduceat_{_name}"] = \
        _make_sortmerge_vs_reduceat_test(_name)
del _name


@settings(max_examples=40, **COMMON)
@given(ab=conformable_numeric_arrays())
def test_sortmerge_matches_scipy_on_plus_times(ab):
    a, b = ab
    pair = get_op_pair("plus_times")
    sm = multiply_vectorized(a, b, pair, kernel="sortmerge")
    sc = multiply_vectorized(a, b, pair, kernel="scipy")
    assert sm.allclose(sc)


@settings(max_examples=30, **COMMON)
@given(ab=conformable_numeric_arrays(zero=math.inf))
def test_vecmat_vectorized_matches_reference(ab):
    """The vectorised vector–matrix relaxation (which shares the
    sortmerge grouping helper) agrees with the per-edge reference loop
    on every random square min.+ adjacency and frontier."""
    a, _b = ab
    pair = get_op_pair("min_plus")
    verts = list(a.row_keys) + [f"x{i}" for i in range(len(a.col_keys))]
    data = {}
    for (r, c), v in a.to_dict().items():
        data[(r, f"x{list(a.col_keys).index(c)}")] = v
    adj = AssociativeArray(data, row_keys=verts, col_keys=verts,
                           zero=pair.zero)
    frontier = {v: float(i % 4) for i, v in enumerate(verts) if i % 2 == 0}
    fast = semiring_vecmat(frontier, adj.with_backend("numeric"), pair)
    ref = semiring_vecmat(frontier, adj.with_backend("dict"), pair)
    assert fast == ref


class TestDegenerateShapes:
    def test_empty_inner_dimension(self):
        pair = get_op_pair("min_plus")
        a = AssociativeArray.empty(["r0", "r1"], [], zero=pair.zero)
        b = AssociativeArray.empty([], ["c0", "c1", "c2"], zero=pair.zero)
        got = multiply(a, b, pair, kernel="sortmerge")
        assert got.nnz == 0
        assert got.shape == (2, 3)

    def test_no_shared_inner_codes(self):
        pair = get_op_pair("max_min")
        a = AssociativeArray({("r", "k1"): 2.0}, row_keys=["r"],
                             col_keys=["k1", "k2"], zero=pair.zero)
        b = AssociativeArray({("k2", "c"): 3.0}, row_keys=["k1", "k2"],
                             col_keys=["c"], zero=pair.zero)
        assert multiply(a, b, pair, kernel="sortmerge").nnz == 0

    @pytest.mark.parametrize("name", SAFE_NUMERIC_PAIRS)
    def test_single_row_operand(self, name):
        pair = get_op_pair(name)
        a = AssociativeArray({("r", "k0"): 2.0, ("r", "k2"): 5.0},
                             row_keys=["r"], col_keys=["k0", "k1", "k2"],
                             zero=pair.zero)
        b = AssociativeArray(
            {("k0", "c0"): 3.0, ("k2", "c0"): 1.0, ("k2", "c1"): 4.0},
            row_keys=["k0", "k1", "k2"], col_keys=["c0", "c1"],
            zero=pair.zero)
        ref = multiply_generic(a, b, pair)
        got = multiply(a, b, pair, kernel="sortmerge")
        assert got.allclose(ref)

    @pytest.mark.parametrize("name", SAFE_NUMERIC_PAIRS)
    def test_single_column_output(self, name):
        pair = get_op_pair(name)
        a = AssociativeArray(
            {("r0", "k0"): 2.0, ("r1", "k0"): 7.0, ("r1", "k1"): 1.0},
            row_keys=["r0", "r1"], col_keys=["k0", "k1"], zero=pair.zero)
        b = AssociativeArray({("k0", "c"): 3.0, ("k1", "c"): 6.0},
                             row_keys=["k0", "k1"], col_keys=["c"],
                             zero=pair.zero)
        ref = multiply_generic(a, b, pair)
        got = multiply(a, b, pair, kernel="sortmerge")
        assert got.allclose(ref)


class TestNaNZeroDomain:
    """Arrays whose zero is NaN cannot drive the vectorised filters
    (NaN != NaN): auto routing must stay generic and the sortmerge
    kernel must refuse cleanly."""

    def _nan_zero_operands(self):
        pair = get_op_pair("min_plus")
        a = AssociativeArray({("r", "k0"): 2.0, ("r", "k1"): 5.0},
                             row_keys=["r"], col_keys=["k0", "k1"],
                             zero=float("nan"))
        b = AssociativeArray({("k0", "c"): 3.0, ("k1", "c"): 1.0},
                             row_keys=["k0", "k1"], col_keys=["c"],
                             zero=float("nan"))
        return a, b, pair

    def test_auto_routes_generic(self):
        a, b, pair = self._nan_zero_operands()
        assert _pick_kernel(a, b, pair, "sparse") == "generic"
        got = multiply(a, b, pair)                   # auto
        ref = multiply_generic(a, b, pair)
        assert got.to_dict() == ref.to_dict()

    def test_sortmerge_refuses(self):
        a, b, pair = self._nan_zero_operands()
        with pytest.raises(MatmulError, match="vectoris"):
            multiply_sortmerge(a, b, pair)


class TestExtensionCatalog:
    """Certified ufunc pairs beyond the paper-figure seven also ride
    sortmerge (the log semiring's logaddexp.⊕ has a ufunc form)."""

    def test_log_semiring_matches_generic(self):
        import tests.helpers  # noqa: F401  (registers extension pairs)
        pair = get_op_pair("log_semiring")
        a = AssociativeArray(
            {("r0", "k0"): -1.5, ("r0", "k1"): -0.25, ("r1", "k1"): -3.0},
            row_keys=["r0", "r1"], col_keys=["k0", "k1"], zero=pair.zero)
        b = AssociativeArray(
            {("k0", "c0"): -0.5, ("k1", "c0"): -2.0, ("k1", "c1"): -1.0},
            row_keys=["k0", "k1"], col_keys=["c0", "c1"], zero=pair.zero)
        ref = multiply_generic(a, b, pair)
        got = multiply(a, b, pair, kernel="sortmerge")
        assert got.allclose(ref)
        assert _pick_kernel(a.with_backend("numeric"),
                            b.with_backend("numeric"),
                            pair, "sparse") == "sortmerge"

"""Structural laws of associative arrays, property-based.

Includes the Section III remark: ``(AB)ᵀ = BᵀAᵀ`` holds when ``⊗`` is
commutative and can fail when it is not — both directions are tested, the
former as a universal property, the latter by explicit counterexample over
the compliant-but-non-commutative ``max.concat`` algebra.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arrays.associative import AssociativeArray
from repro.arrays.elementwise import elementwise_add
from repro.arrays.matmul import multiply_generic
from repro.values.semiring import get_op_pair

from tests.property.strategies import conformable_numeric_arrays

COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow])


@st.composite
def small_arrays(draw, max_dim: int = 6):
    m = draw(st.integers(1, max_dim))
    n = draw(st.integers(1, max_dim))
    rows = [f"r{i}" for i in range(m)]
    cols = [f"c{i}" for i in range(n)]
    entries = draw(st.dictionaries(
        st.tuples(st.sampled_from(rows), st.sampled_from(cols)),
        st.integers(1, 9), max_size=m * n))
    return AssociativeArray({rc: float(v) for rc, v in entries.items()},
                            row_keys=rows, col_keys=cols)


class TestTranspose:
    @settings(max_examples=50, **COMMON)
    @given(a=small_arrays())
    def test_involution(self, a):
        assert a.T.T == a

    @settings(max_examples=50, **COMMON)
    @given(a=small_arrays())
    def test_definition_pointwise(self, a):
        t = a.T
        for r, c, v in a.entries():
            assert t.get(c, r) == v

    @settings(max_examples=30, **COMMON)
    @given(ab=conformable_numeric_arrays())
    def test_product_transpose_for_commutative_mul(self, ab):
        """(AB)ᵀ = BᵀAᵀ whenever ⊗ is commutative (here +.×)."""
        a, b = ab
        pair = get_op_pair("plus_times")
        left = multiply_generic(a, b, pair).T
        right = multiply_generic(b.T, a.T, pair)
        assert left == right

    @settings(max_examples=30, **COMMON)
    @given(ab=conformable_numeric_arrays())
    def test_product_transpose_max_min(self, ab):
        a, b = ab
        pair = get_op_pair("max_min")
        assert multiply_generic(a, b, pair).T \
            == multiply_generic(b.T, a.T, pair)

    def test_transpose_property_fails_for_non_commutative_mul(self):
        """Section III: over max.concat, (EoutᵀEin)ᵀ ≠ EinᵀEout."""
        pair = get_op_pair("max_concat")
        zero = pair.zero
        eout = AssociativeArray({("k", "a"): "x"},
                                row_keys=["k"], col_keys=["a"], zero=zero)
        ein = AssociativeArray({("k", "b"): "y"},
                               row_keys=["k"], col_keys=["b"], zero=zero)
        forward = multiply_generic(eout.T, ein, pair)       # "xy"
        swapped = multiply_generic(ein.T, eout, pair)       # "yx"
        assert forward.get("a", "b") == "xy"
        assert swapped.get("b", "a") == "yx"
        assert forward.T.get("b", "a") != swapped.get("b", "a")


class TestSelection:
    @settings(max_examples=50, **COMMON)
    @given(a=small_arrays())
    def test_select_all_is_identity(self, a):
        assert a.select(":", ":") == a

    @settings(max_examples=50, **COMMON)
    @given(a=small_arrays())
    def test_select_idempotent(self, a):
        once = a.select(":", list(a.col_keys)[:1] or ":")
        twice = once.select(":", ":")
        assert once == twice

    @settings(max_examples=50, **COMMON)
    @given(a=small_arrays())
    def test_prune_preserves_entries(self, a):
        p = a.prune_to_pattern()
        assert p.to_dict() == a.to_dict()


class TestAlgebraicLaws:
    @settings(max_examples=30, **COMMON)
    @given(ab=conformable_numeric_arrays())
    def test_right_distributivity_of_matmul_over_add(self, ab):
        """(A ⊕ A') B = AB ⊕ A'B over the +.× semiring."""
        a, b = ab
        pair = get_op_pair("plus_times")
        a2 = a.map_values(lambda v: v + 1)
        left = multiply_generic(elementwise_add(a, a2, pair.add), b, pair)
        right = elementwise_add(multiply_generic(a, b, pair),
                                multiply_generic(a2, b, pair), pair.add)
        assert left.allclose(right)

    @settings(max_examples=30, **COMMON)
    @given(ab=conformable_numeric_arrays())
    def test_matmul_with_identity_pattern(self, ab):
        """Multiplying by the identity-patterned array is the identity."""
        a, _ = ab
        pair = get_op_pair("plus_times")
        eye = AssociativeArray({(k, k): 1.0 for k in a.col_keys},
                               row_keys=a.col_keys, col_keys=a.col_keys)
        assert multiply_generic(a, eye, pair).allclose(a)

    @settings(max_examples=40, **COMMON)
    @given(a=small_arrays())
    def test_with_zero_roundtrip(self, a):
        import math
        back = a.with_zero(math.inf).with_zero(0)
        assert back == a

"""Property tests for semiring closures.

Closure laws over idempotent ``⊕``: the closure is a fixpoint
(idempotent), dominates the seeded matrix entrywise in the ``⊕`` order,
and is transitively consistent (any two-leg path bound holds).
"""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings

from repro.core.construction import adjacency_array
from repro.graphs.incidence import incidence_arrays
from repro.graphs.paths import closure
from repro.values.semiring import get_op_pair

from tests.property.strategies import graph_with_values

COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow])


def _square_adj(graph, out_vals, in_vals, pair):
    eout, ein = incidence_arrays(graph, zero=pair.zero,
                                 out_values=out_vals, in_values=in_vals)
    adj = adjacency_array(eout, ein, pair, kernel="generic")
    verts = graph.vertices
    return adj.with_keys(row_keys=verts, col_keys=verts)


@settings(max_examples=20, **COMMON)
@given(data=graph_with_values(get_op_pair("min_plus"), max_edges=8))
def test_min_plus_closure_idempotent(data):
    pair = get_op_pair("min_plus")
    graph, out_vals, in_vals = data
    # min.+ needs non-negative weights for closure convergence; fold the
    # sampled values through abs().
    out_vals = {k: abs(v) if v != math.inf else 1.0
                for k, v in out_vals.items()}
    in_vals = {k: abs(v) if v != math.inf else 1.0
               for k, v in in_vals.items()}
    adj = _square_adj(graph, out_vals, in_vals, pair)
    closed = closure(adj, pair)
    assert closure(closed, pair) == closed


@settings(max_examples=20, **COMMON)
@given(data=graph_with_values(get_op_pair("min_plus"), max_edges=8))
def test_min_plus_closure_triangle_inequality(data):
    pair = get_op_pair("min_plus")
    graph, out_vals, in_vals = data
    out_vals = {k: abs(v) if v != math.inf else 1.0
                for k, v in out_vals.items()}
    in_vals = {k: abs(v) if v != math.inf else 1.0
               for k, v in in_vals.items()}
    adj = _square_adj(graph, out_vals, in_vals, pair)
    d = closure(adj, pair)
    verts = list(adj.row_keys)
    eps = 1e-9
    for u in verts:
        for v in verts:
            for w in verts:
                assert d.get(u, w) <= d.get(u, v) + d.get(v, w) + eps


@settings(max_examples=20, **COMMON)
@given(data=graph_with_values(get_op_pair("max_min"), max_edges=8))
def test_max_min_closure_dominates_edges(data):
    pair = get_op_pair("max_min")
    graph, out_vals, in_vals = data
    adj = _square_adj(graph, out_vals, in_vals, pair)
    width = closure(adj, pair)
    for (u, v) in adj.nonzero_pattern():
        assert width.get(u, v) >= adj.get(u, v)
    # Diagonal is the ⊗-identity (+∞): the empty path.
    for v in adj.row_keys:
        assert width.get(v, v) == math.inf

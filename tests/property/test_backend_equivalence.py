"""Storage-backend equivalence, property-based.

The refactor contract of the pluggable-backend architecture: for every
certified numeric op-pair in the catalog — including the −∞- and
+∞-zero pairs, whose zeros stress the semiring-aware fill/filter logic —
an operation must produce the *same array* whether its operands are
pinned to the dict backend (forcing the generic Python implementations)
or compiled to the numeric columnar/CSR backend (taking the vectorised
fast paths):

* array multiplication (sparse and dense modes);
* element-wise ``⊕`` and ``⊗``;
* row/column reductions, pattern counts, and row/column scaling;
* transpose and selection;
* the shard ⊕-merge (``oplus_union`` over differing key sets).

Equality is the strict ``==`` (key sets, zero, pattern, values — with
int/float mixing allowed by design); values here are small-int-valued
floats, for which every catalog fold is exact in float64.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings

from repro.arrays.elementwise import elementwise_add, elementwise_multiply
from repro.arrays.matmul import multiply
from repro.arrays.reductions import (
    col_counts,
    reduce_cols,
    reduce_rows,
    row_counts,
    scale_cols,
    scale_rows,
    total_reduce,
)
from repro.shard.merge import oplus_union
from repro.values.semiring import get_op_pair

from tests.helpers import SAFE_NUMERIC_PAIRS
from tests.property.strategies import (
    aligned_numeric_arrays,
    conformable_numeric_arrays,
    overlapping_numeric_arrays,
)

COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow])

#: Pairs whose zero is an infinity — the hard cases of the fill logic.
INFINITY_ZERO_PAIRS = ("min_times", "max_plus", "min_plus", "min_max")
assert set(INFINITY_ZERO_PAIRS) <= set(SAFE_NUMERIC_PAIRS)


def _dict(array):
    return array.with_backend("dict")


def _numeric(array):
    return array.with_backend("numeric")


def _make_matmul_test(name: str):
    pair = get_op_pair(name)

    @settings(max_examples=30, **COMMON)
    @given(ab=conformable_numeric_arrays(zero=float(pair.zero)))
    def _test(ab):
        a, b = ab
        ref = multiply(_dict(a), _dict(b), pair)
        got = multiply(_numeric(a), _numeric(b), pair)
        assert got == ref
        if got.nnz:
            # The fast path result is itself numeric-backed, so chained
            # correlations never leave NumPy.
            assert got.backend == "numeric"
            assert multiply(got, got.transpose(), pair) == \
                multiply(_dict(got), _dict(got.transpose()), pair)

    _test.__name__ = f"test_matmul_{name}"
    return _test


def _make_matmul_dense_test(name: str):
    pair = get_op_pair(name)

    @settings(max_examples=15, **COMMON)
    @given(ab=conformable_numeric_arrays(zero=float(pair.zero)))
    def _test(ab):
        a, b = ab
        ref = multiply(_dict(a), _dict(b), pair, mode="dense")
        got = multiply(_numeric(a), _numeric(b), pair, mode="dense")
        assert got == ref

    _test.__name__ = f"test_matmul_dense_{name}"
    return _test


def _make_elementwise_test(name: str):
    pair = get_op_pair(name)

    @settings(max_examples=30, **COMMON)
    @given(ab=aligned_numeric_arrays(zero=float(pair.zero)))
    def _test(ab):
        a, b = ab
        assert elementwise_add(_numeric(a), _numeric(b), pair.add) == \
            elementwise_add(_dict(a), _dict(b), pair.add)
        assert elementwise_multiply(_numeric(a), _numeric(b), pair.mul) == \
            elementwise_multiply(_dict(a), _dict(b), pair.mul)

    _test.__name__ = f"test_elementwise_{name}"
    return _test


def _make_reductions_test(name: str):
    pair = get_op_pair(name)

    @settings(max_examples=30, **COMMON)
    @given(ab=aligned_numeric_arrays(zero=float(pair.zero)))
    def _test(ab):
        a, _b = ab
        an, ad = _numeric(a), _dict(a)
        assert reduce_rows(an, pair.add) == reduce_rows(ad, pair.add)
        assert reduce_cols(an, pair.add) == reduce_cols(ad, pair.add)
        assert row_counts(an) == row_counts(ad)
        assert col_counts(an) == col_counts(ad)
        assert total_reduce(an, pair.add) == total_reduce(ad, pair.add)
        factors = {r: float(i % 4 + 1) for i, r in enumerate(a.row_keys)}
        assert scale_rows(an, factors, pair.mul) == \
            scale_rows(ad, factors, pair.mul)
        cfactors = {c: float(i % 3 + 1) for i, c in enumerate(a.col_keys)}
        assert scale_cols(an, cfactors, pair.mul) == \
            scale_cols(ad, cfactors, pair.mul)

    _test.__name__ = f"test_reductions_{name}"
    return _test


def _make_structural_test(name: str):
    pair = get_op_pair(name)

    @settings(max_examples=30, **COMMON)
    @given(ab=aligned_numeric_arrays(zero=float(pair.zero)))
    def _test(ab):
        a, _b = ab
        an, ad = _numeric(a), _dict(a)
        assert an.transpose() == ad.transpose()
        assert an.transpose().transpose() == a
        half_r = list(a.row_keys)[: max(1, len(a.row_keys) // 2)]
        assert an.select(half_r, ":") == ad.select(half_r, ":")
        assert an.prune_to_pattern() == ad.prune_to_pattern()
        wide_rows = list(a.row_keys) + ["zz_extra_row"]
        assert an.with_keys(wide_rows, a.col_keys) == \
            ad.with_keys(wide_rows, a.col_keys)

    _test.__name__ = f"test_structural_{name}"
    return _test


def _make_merge_test(name: str):
    pair = get_op_pair(name)

    @settings(max_examples=30, **COMMON)
    @given(ab=overlapping_numeric_arrays(zero=float(pair.zero)))
    def _test(ab):
        a, b = ab
        ref = oplus_union(_dict(a), _dict(b), pair)
        got = oplus_union(_numeric(a), _numeric(b), pair)
        assert got == ref

    _test.__name__ = f"test_merge_{name}"
    return _test


for _name in SAFE_NUMERIC_PAIRS:
    globals()[f"test_matmul_{_name}"] = _make_matmul_test(_name)
    globals()[f"test_matmul_dense_{_name}"] = _make_matmul_dense_test(_name)
    globals()[f"test_elementwise_{_name}"] = _make_elementwise_test(_name)
    globals()[f"test_reductions_{_name}"] = _make_reductions_test(_name)
    globals()[f"test_structural_{_name}"] = _make_structural_test(_name)
    globals()[f"test_merge_{_name}"] = _make_merge_test(_name)
del _name

"""Theorem II.1, property-based.

**Sufficiency** (criteria ⇒ adjacency array): for every certified op-pair
in the catalog and *arbitrary* random multigraphs with arbitrary nonzero
incidence values — including self-loops and parallel edges, the shapes the
lemmas weaponise — the product ``EoutᵀEin`` is an adjacency array of the
graph, under both sparse and dense evaluation.

**Necessity** (¬criteria ⇒ some graph fails): for every non-compliant pair
the certification engine's lemma-built witness refutes; for the
annihilator-violating pairs the dense/sparse divergence is exhibited
explicitly.

Because ``@given`` strategies need the op-pair object at collection time,
the sufficiency tests are generated per catalog pair at module level.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.certify import certify
from repro.core.construction import (
    adjacency_array,
    is_adjacency_array_of_graph,
)
from repro.graphs.incidence import incidence_arrays
from repro.values.semiring import get_op_pair

from tests.helpers import SAFE_PAIRS, UNSAFE_PAIRS
from tests.property.strategies import graph_with_values

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _run_sufficiency(name: str, data, mode: str) -> None:
    pair = get_op_pair(name)
    graph, out_vals, in_vals = data
    eout, ein = incidence_arrays(graph, zero=pair.zero,
                                 out_values=out_vals, in_values=in_vals)
    adj = adjacency_array(eout, ein, pair, mode=mode, kernel="generic")
    assert is_adjacency_array_of_graph(adj, graph), (
        f"{name} [{mode}]: pattern {sorted(adj.nonzero_pattern())} != "
        f"edges {sorted(graph.adjacency_pairs())}")


def _make_sufficiency_test(name: str, mode: str, examples: int):
    pair = get_op_pair(name)

    @settings(max_examples=examples, **COMMON)
    @given(data=graph_with_values(pair))
    def _test(data):
        _run_sufficiency(name, data, mode)

    _test.__name__ = f"test_sufficiency_{name}_{mode}"
    return _test


for _name in SAFE_PAIRS:
    globals()[f"test_sufficiency_{_name}_sparse"] = \
        _make_sufficiency_test(_name, "sparse", 30)
    globals()[f"test_sufficiency_{_name}_dense"] = \
        _make_sufficiency_test(_name, "dense", 12)
del _name


@pytest.mark.parametrize("name", UNSAFE_PAIRS)
def test_necessity_witness_refutes(name):
    """The constructive direction: each violator admits a graph whose
    incidence product is not an adjacency array."""
    cert = certify(get_op_pair(name), seed=1729)
    assert cert.witness is not None
    assert cert.witness.refutes


@pytest.mark.parametrize("name", ["nonneg_max_plus", "completed_max_plus"])
def test_necessity_dense_sparse_divergence(name):
    """Annihilator violators: faithful dense evaluation disagrees with the
    sparse shortcut on the Lemma II.4 witness graph — quantifying why
    sparse kernels require certification."""
    pair = get_op_pair(name)
    cert = certify(pair, seed=1729)
    w = cert.witness
    sparse = adjacency_array(w.eout, w.ein, pair, mode="sparse",
                             kernel="generic")
    dense = adjacency_array(w.eout, w.ein, pair, mode="dense",
                            kernel="generic")
    assert sparse.nonzero_pattern() != dense.nonzero_pattern()
    # The sparse shortcut happens to produce the *correct* adjacency
    # pattern here; it is the faithful (Definition I.3) evaluation that
    # cannot — the theorem's content made executable.
    assert is_adjacency_array_of_graph(sparse, w.graph)
    assert not is_adjacency_array_of_graph(dense, w.graph)

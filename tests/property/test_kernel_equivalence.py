"""Kernel equivalence, property-based.

The optimization contract of the hpc-parallel guides: vectorised kernels
must be *exactly* interchangeable with the reference implementation.  For
every ufunc op-pair and random conformable arrays:

* ``reduceat`` (sparse semantics) ≡ generic sparse;
* ``dense_blocked`` (dense semantics) ≡ generic dense;
* ``scipy`` ≡ generic sparse for ``+.×``;
* and for compliant pairs, sparse ≡ dense — Theorem II.1 again, now as a
  kernel-level statement.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings

from repro.arrays.matmul import multiply_generic
from repro.arrays.sparse_backend import multiply_vectorized
from repro.values.semiring import get_op_pair

from tests.helpers import SAFE_NUMERIC_PAIRS
from tests.property.strategies import conformable_numeric_arrays

COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow])


def _make_reduceat_test(name: str):
    pair = get_op_pair(name)

    @settings(max_examples=40, **COMMON)
    @given(ab=conformable_numeric_arrays(zero=float(pair.zero)))
    def _test(ab):
        a, b = ab
        ref = multiply_generic(a, b, pair, mode="sparse")
        got = multiply_vectorized(a, b, pair, kernel="reduceat")
        assert got.allclose(ref)

    _test.__name__ = f"test_reduceat_{name}"
    return _test


def _make_dense_test(name: str):
    pair = get_op_pair(name)

    @settings(max_examples=25, **COMMON)
    @given(ab=conformable_numeric_arrays(zero=float(pair.zero)))
    def _test(ab):
        a, b = ab
        ref = multiply_generic(a, b, pair, mode="dense")
        got = multiply_vectorized(a, b, pair, kernel="dense_blocked",
                                  mode="dense")
        assert got.allclose(ref)

    _test.__name__ = f"test_dense_blocked_{name}"
    return _test


def _make_cross_mode_test(name: str):
    pair = get_op_pair(name)

    @settings(max_examples=25, **COMMON)
    @given(ab=conformable_numeric_arrays(zero=float(pair.zero)))
    def _test(ab):
        a, b = ab
        sparse = multiply_vectorized(a, b, pair, kernel="reduceat")
        dense = multiply_vectorized(a, b, pair, kernel="dense_blocked",
                                    mode="dense")
        assert sparse.allclose(dense)

    _test.__name__ = f"test_cross_mode_{name}"
    return _test


for _name in SAFE_NUMERIC_PAIRS:
    globals()[f"test_reduceat_{_name}"] = _make_reduceat_test(_name)
    globals()[f"test_dense_blocked_{_name}"] = _make_dense_test(_name)
    globals()[f"test_cross_mode_{_name}"] = _make_cross_mode_test(_name)
del _name


@settings(max_examples=40, **COMMON)
@given(ab=conformable_numeric_arrays())
def test_scipy_matches_generic(ab):
    a, b = ab
    pair = get_op_pair("plus_times")
    ref = multiply_generic(a, b, pair, mode="sparse")
    got = multiply_vectorized(a, b, pair, kernel="scipy")
    assert got.allclose(ref)

"""Property tests for the structural extensions (kron, streaming,
partitioning, reductions).
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arrays.kron import kron, kronecker_graph, pair_key
from repro.arrays.parallel import parallel_multiply, partition_rows, stack_rows
from repro.arrays.matmul import multiply
from repro.arrays.reductions import reduce_rows
from repro.core.construction import adjacency_array
from repro.core.streaming import StreamingAdjacencyBuilder
from repro.graphs.incidence import incidence_arrays
from repro.values.operations import AND, PLUS
from repro.values.semiring import get_op_pair

from tests.property.strategies import (
    conformable_numeric_arrays,
    graph_with_values,
    graphs,
)


@st.composite
def arrays(draw, max_dim: int = 5):
    m = draw(st.integers(1, max_dim))
    n = draw(st.integers(1, max_dim))
    rows = [f"r{i}" for i in range(m)]
    cols = [f"c{i}" for i in range(n)]
    entries = draw(st.dictionaries(
        st.tuples(st.sampled_from(rows), st.sampled_from(cols)),
        st.integers(1, 9), max_size=m * n))
    from repro.arrays.associative import AssociativeArray
    return AssociativeArray({rc: float(v) for rc, v in entries.items()},
                            row_keys=rows, col_keys=cols)


COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow])


class TestKronLaws:
    @settings(max_examples=30, **COMMON)
    @given(a=arrays(max_dim=4), b=arrays(max_dim=4))
    def test_nnz_multiplicative_without_zero_divisors(self, a, b):
        from repro.values.operations import TIMES
        c = kron(a, b, TIMES)
        assert c.nnz == a.nnz * b.nnz

    @settings(max_examples=20, **COMMON)
    @given(g=graphs(max_edges=5), h=graphs(max_edges=5))
    def test_weischel_property_random(self, g, h):
        """Adjacency(G ⊗ H) pattern == kron of adjacency patterns."""
        pair = get_op_pair("or_and")

        def bool_adjacency(graph):
            eout, ein = incidence_arrays(graph, one=True, zero=False)
            adj = adjacency_array(eout, ein, pair, kernel="generic")
            verts = graph.vertices
            return adj.with_keys(row_keys=verts, col_keys=verts)

        left = kron(bool_adjacency(g), bool_adjacency(h), AND, zero=False)
        right = bool_adjacency(kronecker_graph(g, h))
        assert left.nonzero_pattern() == right.nonzero_pattern()


class TestStreamingLaws:
    @settings(max_examples=25, **COMMON)
    @given(data=graph_with_values(get_op_pair("plus_times")),
           order_seed=st.integers(0, 2**16))
    def test_streaming_equals_batch_any_arrival_order(self, data,
                                                      order_seed):
        graph, out_vals, in_vals = data
        pair = get_op_pair("plus_times")
        builder = StreamingAdjacencyBuilder(pair)
        arrival = list(graph.edges())
        random.Random(order_seed).shuffle(arrival)
        for k, s, t in arrival:
            builder.add_edge(k, s, t, out_vals[k], in_vals[k])
        # allclose, not ==: float + is only associative up to an ulp, and
        # arrival order differs from key order by construction here.
        assert builder.adjacency().allclose(builder.batch_adjacency())

    @settings(max_examples=25, **COMMON)
    @given(data=graph_with_values(get_op_pair("max_min")),
           removals=st.integers(0, 3))
    def test_removal_consistency(self, data, removals):
        graph, out_vals, in_vals = data
        pair = get_op_pair("max_min")
        builder = StreamingAdjacencyBuilder(pair)
        for k, s, t in graph.edges():
            builder.add_edge(k, s, t, out_vals[k], in_vals[k])
        keys = list(graph.edge_keys)
        for k in keys[:removals]:
            builder.remove_edge(k)
        assert builder.adjacency() == builder.batch_adjacency()


class TestPartitionLaws:
    @settings(max_examples=40, **COMMON)
    @given(a=arrays(), parts=st.integers(1, 7))
    def test_partition_stack_roundtrip(self, a, parts):
        assert stack_rows(partition_rows(a, parts)) == a

    @settings(max_examples=20, **COMMON)
    @given(ab=conformable_numeric_arrays(max_dim=6),
           parts=st.integers(1, 5))
    def test_parallel_multiply_equals_serial(self, ab, parts):
        a, b = ab
        pair = get_op_pair("plus_times")
        want = multiply(a, b, pair, kernel="generic")
        got = parallel_multiply(a, b, pair, n_workers=parts,
                                executor="serial", kernel="generic")
        assert got == want


class TestReductionLaws:
    @settings(max_examples=40, **COMMON)
    @given(a=arrays())
    def test_row_reduction_equals_ones_vector_product(self, a):
        """``reduce_rows(A, +)`` equals ``A ⊕.⊗ 1`` — reduction as a
        matvec with the all-ones column, the GraphBLAS identity."""
        from repro.arrays.associative import AssociativeArray
        pair = get_op_pair("plus_times")
        ones = AssociativeArray({(c, "§"): 1.0 for c in a.col_keys},
                                row_keys=a.col_keys, col_keys=["§"])
        via_product = multiply(a, ones, pair, kernel="generic")
        direct = reduce_rows(a, PLUS)
        got = {r: via_product.get(r, "§")
               for r in via_product.rows_nonempty()}
        assert got == direct

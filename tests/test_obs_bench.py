"""Tests for the versioned benchmark harness (repro.obs.bench)."""

from __future__ import annotations

import json

import pytest

from repro.obs.bench import (
    DEFAULT_THRESHOLD,
    SCRIPT_BENCHMARKS,
    BenchError,
    compare,
    config_hash,
    describe_with_exemplars,
    discover_benchmarks,
    harvest_exemplars,
    load_run,
    refresh_baseline,
    render_markdown,
    run_benchmarks,
    run_metadata,
)

DUMMY_BENCH = '''\
"""A trivial harness-compatible benchmark."""

def run(quick):
    return {"benchmark": "bench_dummy", "quick": quick,
            "value": 1.0 if quick else 2.0}

def headline(report):
    return {"latency_s": {"value": report["value"],
                          "direction": "lower", "unit": "s"}}

def main(argv=None):
    return 0
'''


def make_run_doc(run_id: str, headline: dict) -> dict:
    """A minimal harness run doc with fabricated headline metrics."""
    return {"run_id": run_id, "manifest": {}, "results": {},
            "headline": headline}


def metric(value: float, direction: str = "lower", unit: str = "s"):
    return {"value": value, "direction": direction, "unit": unit}


@pytest.fixture()
def bench_dir(tmp_path):
    d = tmp_path / "benchmarks"
    d.mkdir()
    (d / "bench_dummy.py").write_text(DUMMY_BENCH, encoding="utf-8")
    (d / "bench_helperless.py").write_text(
        "# no run()/main() hooks here\n", encoding="utf-8")
    return d


class TestMetadata:
    def test_run_metadata_fields(self):
        meta = run_metadata()
        assert {"git_sha", "python", "numpy", "scipy", "platform",
                "machine", "cpu_count"} <= set(meta)
        assert meta["python"].count(".") == 2
        assert meta["cpu_count"] >= 1

    def test_git_sha_in_repo(self):
        sha = run_metadata(".").get("git_sha")
        assert sha is None or (len(sha) == 40
                               and all(c in "0123456789abcdef"
                                       for c in sha))

    def test_config_hash_stable_and_order_independent(self):
        a = config_hash({"benchmarks": ["x"], "quick": True})
        b = config_hash({"quick": True, "benchmarks": ["x"]})
        assert a == b and len(a) == 16
        assert a != config_hash({"benchmarks": ["x"], "quick": False})


class TestDiscoveryAndExecution:
    def test_discover_skips_hookless_scripts(self, bench_dir):
        assert discover_benchmarks(bench_dir) == ["bench_dummy"]

    def test_default_discovery_finds_smoke_set(self):
        names = discover_benchmarks()
        assert set(SCRIPT_BENCHMARKS) <= set(names)

    def test_unknown_benchmark_raises(self, bench_dir):
        with pytest.raises(BenchError, match="unknown benchmark"):
            run_benchmarks(["bench_missing"], bench_dir=bench_dir)

    def test_run_writes_versioned_artifacts(self, bench_dir, tmp_path):
        out = tmp_path / "runs"
        doc = run_benchmarks(["bench_dummy"], quick=True, outdir=out,
                             bench_dir=bench_dir)
        assert doc["results"]["bench_dummy"]["quick"] is True
        assert doc["headline"]["bench_dummy"]["latency_s"]["value"] == 1.0
        assert doc["manifest"]["config"] == {
            "benchmarks": ["bench_dummy"], "quick": True}
        assert doc["manifest"]["config_hash"] == config_hash(
            doc["manifest"]["config"])
        assert doc["bench_seconds"]["bench_dummy"] >= 0.0
        json_path = doc["artifacts"]["json"]
        assert json_path.endswith(f"BENCH_{doc['run_id']}.json")
        on_disk = json.loads((out / f"BENCH_{doc['run_id']}.json")
                             .read_text(encoding="utf-8"))
        assert on_disk["run_id"] == doc["run_id"]
        report = (out / "report.md").read_text(encoding="utf-8")
        assert doc["run_id"] in report
        assert "latency_s" in report

    def test_render_markdown_headline_table(self, bench_dir):
        doc = run_benchmarks(["bench_dummy"], bench_dir=bench_dir)
        md = render_markdown(doc)
        assert "## Headline metrics" in md
        assert "| bench_dummy | latency_s | 1 | s | lower is better |" in md


class TestLoadRun:
    def test_load_file_and_directory(self, tmp_path):
        early = make_run_doc("20250101-000000-aaaaaaa",
                             {"b": {"m": metric(1.0)}})
        late = make_run_doc("20260101-000000-bbbbbbb",
                            {"b": {"m": metric(2.0)}})
        for doc in (early, late):
            (tmp_path / f"BENCH_{doc['run_id']}.json").write_text(
                json.dumps(doc), encoding="utf-8")
        by_file = load_run(tmp_path / f"BENCH_{early['run_id']}.json")
        assert by_file["run_id"] == early["run_id"]
        # A directory picks the lexically latest run.
        assert load_run(tmp_path)["run_id"] == late["run_id"]

    def test_errors(self, tmp_path):
        with pytest.raises(BenchError, match="no BENCH"):
            load_run(tmp_path)
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(BenchError, match="cannot read"):
            load_run(bad)
        notrun = tmp_path / "BENCH_notrun.json"
        notrun.write_text('{"results": {}}', encoding="utf-8")
        with pytest.raises(BenchError, match="headline"):
            load_run(notrun)


class TestCompare:
    def test_detects_lower_is_better_regression(self):
        base = make_run_doc("base", {"serve": {
            "khop_cold_ms": metric(10.0, "lower", "ms")}})
        cand = make_run_doc("cand", {"serve": {
            "khop_cold_ms": metric(15.0, "lower", "ms")}})   # +50%
        result = compare(base, cand, threshold=0.20)
        assert not result.ok
        (delta,) = result.regressions
        assert delta.metric == "khop_cold_ms"
        assert delta.change == pytest.approx(0.5)
        assert "REGRESSION" in result.describe()

    def test_detects_higher_is_better_regression(self):
        base = make_run_doc("base", {"expr": {
            "speedup": metric(4.0, "higher", "x")}})
        cand = make_run_doc("cand", {"expr": {
            "speedup": metric(2.0, "higher", "x")}})   # halved
        result = compare(base, cand)
        assert not result.ok and result.regressions[0].change == -0.5

    def test_within_threshold_is_ok_both_directions(self):
        base = make_run_doc("base", {
            "a": {"lat": metric(10.0, "lower")},
            "b": {"spd": metric(4.0, "higher")}})
        cand = make_run_doc("cand", {
            "a": {"lat": metric(11.5, "lower")},      # +15% < 20%
            "b": {"spd": metric(3.5, "higher")}})     # -12.5% < 20%
        result = compare(base, cand, threshold=DEFAULT_THRESHOLD)
        assert result.ok and len(result.deltas) == 2
        # An *improvement* past the threshold is never a regression.
        faster = make_run_doc("fast", {
            "a": {"lat": metric(1.0, "lower")},
            "b": {"spd": metric(40.0, "higher")}})
        assert compare(base, faster).ok

    def test_one_sided_metrics_reported_never_gate(self):
        base = make_run_doc("base", {"a": {"old": metric(1.0)}})
        cand = make_run_doc("cand", {"a": {"new": metric(99.0)}})
        result = compare(base, cand)
        assert result.ok
        assert sorted(result.missing) == ["a.new", "a.old"]
        assert "skipped" in result.describe()

    def test_threshold_validation_and_to_dict(self):
        base = make_run_doc("base", {"a": {"m": metric(1.0)}})
        with pytest.raises(BenchError, match="threshold"):
            compare(base, base, threshold=-0.1)
        result = compare(base, base)
        doc = json.loads(json.dumps(result.to_dict()))
        assert doc["ok"] is True
        assert doc["baseline"] == "base" and doc["candidate"] == "base"

    def test_end_to_end_fabricated_pair_from_disk(self, tmp_path):
        """The CI gate's exact shape: two run files, one regression."""
        fast = make_run_doc("20250101-000000-fast", {"serve": {
            "khop_cold_ms": metric(5.0, "lower", "ms"),
            "khop_cached_speedup": metric(10.0, "higher", "x")}})
        slow = make_run_doc("20250102-000000-slow", {"serve": {
            "khop_cold_ms": metric(9.0, "lower", "ms"),      # +80%
            "khop_cached_speedup": metric(9.5, "higher", "x")}})
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        a.write_text(json.dumps(fast), encoding="utf-8")
        b.write_text(json.dumps(slow), encoding="utf-8")
        result = compare(load_run(a), load_run(b), threshold=0.2)
        assert [d.metric for d in result.regressions] == ["khop_cold_ms"]
        # And in the non-regressing order it passes.
        assert compare(load_run(b), load_run(a), threshold=0.2).ok


class TestExemplarsAndCalibrationInRuns:
    def test_harvest_exemplars_keys_by_name_and_labels(self):
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.trace import Tracer
        reg = MetricsRegistry()
        hist = reg.histogram("bench_latency_seconds", "test", op="khop")
        tracer = Tracer()
        with tracer.span("op"):
            hist.observe(0.5)
        exemplars = harvest_exemplars(reg)
        (key,) = exemplars
        assert key == "bench_latency_seconds{op=khop}"
        ex = exemplars[key]
        assert ex["value"] == 0.5
        assert ex["trace_id"] and ex["span_id"]

    def test_harvest_skips_untraced_histograms(self):
        from repro.obs.metrics import MetricsRegistry
        reg = MetricsRegistry()
        reg.histogram("quiet_seconds", "test").observe(0.1)   # no trace
        assert harvest_exemplars(reg) == {}

    def test_run_doc_carries_calibration_and_artifact(
            self, bench_dir, tmp_path, monkeypatch):
        from repro.obs.calibration import reset_calibration_store
        monkeypatch.setenv("REPRO_CALIBRATION_PATH",
                           str(tmp_path / "cal.json"))
        reset_calibration_store()
        try:
            out = tmp_path / "runs"
            doc = run_benchmarks(["bench_dummy"], outdir=out,
                                 bench_dir=bench_dir)
            assert doc["calibration"]["schema"] == "repro-calibration/v1"
            assert "active_fingerprint" in doc["calibration"]
            cal_artifact = doc["artifacts"]["calibration"]
            on_disk = json.loads((out / "calibration.json")
                                 .read_text(encoding="utf-8"))
            assert cal_artifact.endswith("calibration.json")
            assert on_disk["schema"] == "repro-calibration/v1"
        finally:
            reset_calibration_store()

    def test_describe_with_exemplars_links_traces(self):
        base = make_run_doc("base", {"serve": {
            "khop_cold_ms": metric(10.0, "lower", "ms")}})
        cand = make_run_doc("cand", {"serve": {
            "khop_cold_ms": metric(15.0, "lower", "ms")}})
        cand["exemplars"] = {"serve_latency_seconds{query=khop}": {
            "trace_id": "tdeadbeef", "span_id": "s01", "value": 0.0153}}
        text = describe_with_exemplars(
            compare(base, cand, threshold=0.2), cand)
        assert "REGRESSION" in text
        assert "exemplar traces (candidate run):" in text
        assert "trace tdeadbeef span s01" in text

    def test_describe_without_exemplars_is_plain(self):
        base = make_run_doc("base", {"a": {"m": metric(1.0)}})
        result = compare(base, base)
        assert describe_with_exemplars(result, base) == result.describe()


class TestBaselineRefresh:
    def test_refresh_records_provenance(self, tmp_path):
        baseline = tmp_path / "BENCH_baseline.json"
        old = make_run_doc("20250101-000000-old",
                           {"a": {"m": metric(1.0)}})
        baseline.write_text(json.dumps(old), encoding="utf-8")
        new = make_run_doc("20250601-000000-new",
                           {"a": {"m": metric(2.0)}})
        new["artifacts"] = {"json": "/somewhere/BENCH_new.json"}
        written = refresh_baseline(new, baseline,
                                   reason="kernel rewrite landed",
                                   cwd=".")
        on_disk = json.loads(baseline.read_text(encoding="utf-8"))
        assert on_disk == written
        prov = on_disk["manifest"]["baseline_refresh"]
        assert prov["reason"] == "kernel rewrite landed"
        assert prov["previous_run_id"] == "20250101-000000-old"
        assert "refreshed_at" in prov
        assert prov["git_sha"] is None or len(prov["git_sha"]) == 40
        # Source-run artifact paths do not leak into the baseline file.
        assert "artifacts" not in on_disk

    def test_refresh_requires_reason(self, tmp_path):
        run = make_run_doc("r", {"a": {"m": metric(1.0)}})
        with pytest.raises(BenchError, match="reason"):
            refresh_baseline(run, tmp_path / "b.json", reason="   ")

    def test_refresh_without_previous_baseline(self, tmp_path):
        run = make_run_doc("r", {"a": {"m": metric(1.0)}})
        doc = refresh_baseline(run, tmp_path / "fresh.json",
                               reason="first lock")
        prov = doc["manifest"]["baseline_refresh"]
        assert prov["previous_run_id"] is None

    def test_refresh_tolerates_corrupt_previous(self, tmp_path):
        baseline = tmp_path / "BENCH_baseline.json"
        baseline.write_text("{not json", encoding="utf-8")
        run = make_run_doc("r", {"a": {"m": metric(1.0)}})
        doc = refresh_baseline(run, baseline, reason="recover")
        assert doc["manifest"]["baseline_refresh"][
            "previous_run_id"] is None
        assert load_run(baseline)["run_id"] == "r"

    def test_refreshed_baseline_still_gates(self, tmp_path):
        """After a refresh, --compare against the new baseline still
        catches a fabricated >20% regression (the CI step's shape)."""
        baseline = tmp_path / "BENCH_baseline.json"
        run = make_run_doc("20250601-000000-new", {"serve": {
            "khop_cold_ms": metric(10.0, "lower", "ms")}})
        refresh_baseline(run, baseline, reason="re-lock for test")
        bad = make_run_doc("cand", {"serve": {
            "khop_cold_ms": metric(15.0, "lower", "ms")}})   # +50%
        result = compare(load_run(baseline), bad, threshold=0.2)
        assert not result.ok

    def test_refresh_emits_event(self, tmp_path):
        from repro.obs.events import get_event_log
        log = get_event_log()
        start = log.retention()["last_seq"] or 0
        run = make_run_doc("r2", {"a": {"m": metric(1.0)}})
        refresh_baseline(run, tmp_path / "b.json", reason="why not")
        refreshes = [e for e in log.events(since=start)
                     if e["kind"] == "baseline_refresh"]
        assert refreshes and refreshes[-1]["reason"] == "why not"

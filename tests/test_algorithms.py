"""Tests for semiring graph algorithms, cross-checked against networkx."""

from __future__ import annotations

import math
import random

import networkx as nx
import pytest

from repro.arrays.associative import AssociativeArray
from repro.core.construction import adjacency_array
from repro.graphs.algorithms import (
    bfs_levels,
    in_degrees,
    out_degrees,
    semiring_vecmat,
    shortest_path_lengths,
    triangle_count,
    weakly_connected_components,
    widest_path_widths,
)
from repro.graphs.digraph import EdgeKeyedDigraph, GraphError
from repro.graphs.generators import erdos_renyi_multigraph
from repro.graphs.incidence import incidence_arrays
from repro.values.semiring import get_op_pair


def _square_adjacency(graph, pair_name="or_and", weights=None):
    """Adjacency array over the full vertex set (square).

    Edge weights (if given) ride on ``Eout``; ``Ein`` carries the op-pair's
    ⊗-identity so the adjacency entry combines *only* the edge weights.
    """
    pair = get_op_pair(pair_name)
    if pair_name == "or_and":
        kwargs = {"one": True, "zero": False}
    else:
        kwargs = {"zero": pair.zero}
        if weights is not None:
            kwargs.update(out_values=weights, in_values=pair.one)
    eout, ein = incidence_arrays(graph, **kwargs)
    adj = adjacency_array(eout, ein, pair, kernel="generic")
    verts = graph.vertices
    return adj.with_keys(row_keys=verts, col_keys=verts)


def _nx_digraph(graph):
    g = nx.DiGraph()
    g.add_nodes_from(graph.vertices)
    g.add_edges_from(graph.edge_pairs())
    return g


class TestBfs:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_levels_match_networkx(self, seed):
        graph = erdos_renyi_multigraph(12, 30, seed=seed)
        adj = _square_adjacency(graph)
        source = tuple(graph.vertices)[0]
        got = bfs_levels(adj, source)
        want = nx.single_source_shortest_path_length(
            _nx_digraph(graph), source)
        assert got == dict(want)

    def test_max_levels_truncates(self):
        graph = EdgeKeyedDigraph.from_pairs(
            [("a", "b"), ("b", "c"), ("c", "d")])
        adj = _square_adjacency(graph)
        got = bfs_levels(adj, "a", max_levels=1)
        assert got == {"a": 0, "b": 1}

    def test_unknown_source(self):
        graph = EdgeKeyedDigraph.from_pairs([("a", "b")])
        adj = _square_adjacency(graph)
        with pytest.raises(GraphError):
            bfs_levels(adj, "zz")

    def test_requires_square(self):
        graph = EdgeKeyedDigraph.from_pairs([("a", "b")])
        pair = get_op_pair("or_and")
        eout, ein = incidence_arrays(graph, one=True, zero=False)
        adj = adjacency_array(eout, ein, pair, kernel="generic")
        with pytest.raises(GraphError, match="square"):
            bfs_levels(adj, "a")


class TestShortestPaths:
    @pytest.mark.parametrize("seed", [4, 5, 6])
    def test_match_networkx_dijkstra(self, seed):
        import random
        graph = erdos_renyi_multigraph(10, 35, seed=seed)
        rng = random.Random(seed)
        weights = {k: float(rng.randint(1, 9)) for k in graph.edge_keys}
        adj = _square_adjacency(graph, "min_plus", weights)
        source = tuple(graph.vertices)[0]
        got = shortest_path_lengths(adj, source)

        g = nx.MultiDiGraph()
        g.add_nodes_from(graph.vertices)
        for k, s, t in graph.edges():
            g.add_edge(s, t, weight=weights[k])
        want = nx.single_source_dijkstra_path_length(g, source)
        assert set(got) == set(want)
        for v in want:
            assert math.isclose(got[v], want[v]), v

    def test_line_graph_distances(self):
        graph = EdgeKeyedDigraph.from_pairs([("a", "b"), ("b", "c")])
        weights = {"e000": 2.0, "e001": 5.0}
        adj = _square_adjacency(graph, "min_plus", weights)
        got = shortest_path_lengths(adj, "a")
        assert got == {"a": 0.0, "b": 2.0, "c": 7.0}


class TestWidestPaths:
    def test_bottleneck_hand_case(self):
        # a → b (width 5) → c (width 2); direct a → c width 1.
        graph = EdgeKeyedDigraph([
            ("e1", "a", "b"), ("e2", "b", "c"), ("e3", "a", "c")])
        weights = {"e1": 5.0, "e2": 2.0, "e3": 1.0}
        adj = _square_adjacency(graph, "max_min", weights)
        got = widest_path_widths(adj, "a")
        assert got["b"] == 5.0
        assert got["c"] == 2.0  # via b beats the direct width-1 edge

    def test_source_width_infinite(self):
        graph = EdgeKeyedDigraph.from_pairs([("a", "b")])
        adj = _square_adjacency(graph, "max_min", {"e000": 3.0})
        assert widest_path_widths(adj, "a")["a"] == math.inf


class TestComponents:
    @pytest.mark.parametrize("seed", [7, 8])
    def test_match_networkx(self, seed):
        graph = erdos_renyi_multigraph(14, 10, seed=seed)
        adj = _square_adjacency(graph)
        got = weakly_connected_components(adj)
        want_sets = list(nx.weakly_connected_components(_nx_digraph(graph)))
        got_sets = {}
        for v, label in got.items():
            got_sets.setdefault(label, set()).add(v)
        assert sorted(map(sorted, got_sets.values())) \
            == sorted(map(sorted, want_sets))

    def test_labels_ordered_by_smallest_vertex(self):
        graph = EdgeKeyedDigraph.from_pairs([("a", "b"), ("x", "y")])
        adj = _square_adjacency(graph)
        comp = weakly_connected_components(adj)
        assert comp["a"] == 0 and comp["x"] == 1


class TestTriangles:
    @pytest.mark.parametrize("seed", [9, 10, 11])
    def test_match_networkx(self, seed):
        graph = erdos_renyi_multigraph(10, 40, seed=seed)
        adj = _square_adjacency(graph)
        got = triangle_count(adj)
        und = nx.Graph()
        und.add_nodes_from(graph.vertices)
        und.add_edges_from((s, t) for s, t in graph.edge_pairs() if s != t)
        want = sum(nx.triangles(und).values()) // 3
        assert got == want

    def test_hand_triangle(self):
        graph = EdgeKeyedDigraph.from_pairs(
            [("a", "b"), ("b", "c"), ("c", "a")])
        adj = _square_adjacency(graph)
        assert triangle_count(adj) == 1


class TestDegreesAndVecmat:
    def test_degrees(self, small_graph):
        adj = _square_adjacency(small_graph)
        outs = out_degrees(adj)
        ins = in_degrees(adj)
        # Pattern degrees (parallels collapsed): a→b, b→c, c→c.
        assert outs == {"a": 1, "b": 1, "c": 1}
        assert ins == {"a": 0, "b": 1, "c": 2}

    def test_vecmat_plus_times(self):
        graph = EdgeKeyedDigraph.from_pairs([("a", "b"), ("a", "c")])
        adj = _square_adjacency(graph, "plus_times",
                                {"e000": 2.0, "e001": 3.0})
        y = semiring_vecmat({"a": 10.0}, adj, get_op_pair("plus_times"))
        assert y == {"b": 20.0, "c": 30.0}

    def test_vecmat_elides_zeros(self):
        graph = EdgeKeyedDigraph.from_pairs([("a", "b")])
        adj = _square_adjacency(graph, "plus_times", {"e000": 2.0})
        y = semiring_vecmat({"c": 1.0}, adj, get_op_pair("plus_times"))
        assert y == {}


class TestDegreesBackends:
    """Degrees agree across storage backends (CSR/CSC fast path)."""

    def test_numeric_matches_dict(self):
        rng = random.Random(11)
        data = {}
        for _ in range(400):
            data[(f"v{rng.randrange(40)}", f"v{rng.randrange(40)}")] = \
                float(rng.randrange(1, 9))
        keys = {r for r, _ in data} | {c for _, c in data}
        arr = AssociativeArray(data, row_keys=keys, col_keys=keys)
        numeric = arr.with_backend("numeric")
        pinned = arr.with_backend("dict")
        assert out_degrees(numeric) == out_degrees(pinned)
        assert in_degrees(numeric) == in_degrees(pinned)
        assert sum(out_degrees(numeric).values()) == arr.nnz

    def test_counts_are_python_ints(self):
        arr = AssociativeArray(
            {("a", "b"): 1.0, ("a", "c"): 2.0},
            row_keys="abc", col_keys="abc").with_backend("numeric")
        outs = out_degrees(arr)
        assert outs == {"a": 2, "b": 0, "c": 0}
        assert all(type(v) is int for v in outs.values())

    def test_empty_rows_and_cols_counted_as_zero(self):
        arr = AssociativeArray(
            {("a", "b"): 1.0}, row_keys="abcd",
            col_keys="abcd").with_backend("numeric")
        assert out_degrees(arr) == {"a": 1, "b": 0, "c": 0, "d": 0}
        assert in_degrees(arr) == {"a": 0, "b": 1, "c": 0, "d": 0}

"""Unit tests for repro.values.properties (the axiom checkers)."""

from __future__ import annotations

import math

import pytest

from repro.values.domains import (
    BooleanDomain,
    BoundedIntegerRange,
    FiniteField2,
    Integers,
    IntegersModN,
    Naturals,
    NonNegativeReals,
    PowerSetDomain,
    TropicalReals,
)
from repro.values.operations import (
    AND,
    BinaryOp,
    MAX,
    MAX_ZERO,
    MIN,
    OR,
    PLUS,
    TIMES,
    UNION,
    make_intersection,
)
from repro.values.properties import (
    check_annihilator,
    check_associativity,
    check_closure,
    check_commutativity,
    check_distributivity,
    check_identity,
    check_no_zero_divisors,
    check_zero_sum_free,
)


class TestIdentity:
    def test_plus_identity_on_naturals(self):
        assert check_identity(PLUS, Naturals())

    def test_max_zero_identity_on_nonneg(self):
        assert check_identity(MAX_ZERO, NonNegativeReals())

    def test_max_zero_identity_fails_on_integers(self):
        # max(0, -3) = 0 ≠ -3: 0 is not an identity for max over ℤ.
        report = check_identity(MAX_ZERO, Integers(), seed=1)
        assert not report
        assert report.witness is not None

    def test_exhaustive_on_finite(self):
        report = check_identity(AND, BooleanDomain())
        assert report and report.exhaustive


class TestStructuralAxioms:
    def test_plus_associative_commutative(self):
        dom = Naturals()
        assert check_associativity(PLUS, dom)
        assert check_commutativity(PLUS, dom)

    def test_distributivity_times_over_plus(self):
        assert check_distributivity(PLUS, TIMES, Naturals())

    def test_distributivity_fails_plus_over_max(self):
        # max does not distribute as ⊕ under ⊗=+ ... actually it does
        # (max(b,c)+a = max(b+a, c+a)); use ⊗=max, ⊕=times instead:
        # a max (b·c) ≠ (a max b)·(a max c) in general.
        report = check_distributivity(TIMES, MAX_ZERO, Naturals(), seed=3)
        assert not report

    def test_nonassociative_detected(self):
        skew = BinaryOp("skew_t", lambda a, b: a + b + a * a * b, 0)
        report = check_associativity(skew, Naturals(), seed=5)
        assert not report
        a, b, c = report.witness
        assert skew(skew(a, b), c) != skew(a, skew(b, c))

    def test_noncommutative_detected(self):
        skew = BinaryOp("skew_t2", lambda a, b: a + b + a * a * b, 0)
        report = check_commutativity(skew, Naturals(), seed=5)
        assert not report

    def test_closure_holds_for_plus(self):
        assert check_closure(PLUS, Naturals())

    def test_closure_fails_for_minus_on_naturals(self):
        minus = BinaryOp("minus_t", lambda a, b: a - b, 0)
        report = check_closure(minus, Naturals(), seed=2)
        assert not report

    def test_closure_reports_exceptions(self):
        bad = BinaryOp("raises_t", lambda a, b: 1 / 0, 0)
        report = check_closure(bad, Naturals(), seed=2)
        assert not report and "raised" in report.detail


class TestZeroSumFree:
    def test_naturals_plus(self):
        assert check_zero_sum_free(PLUS, Naturals())

    def test_integers_plus_fails_with_witness(self):
        report = check_zero_sum_free(PLUS, Integers(), seed=11)
        assert not report
        a, b = report.witness
        assert a + b == 0 and (a, b) != (0, 0)

    def test_gf2_xor_fails_exhaustively(self):
        xor_int = BinaryOp("xor_t", lambda a, b: (a + b) % 2, 0)
        report = check_zero_sum_free(xor_int, FiniteField2())
        assert not report and report.exhaustive
        assert report.witness == (1, 1)

    def test_union_zero_sum_free(self):
        dom = PowerSetDomain({"a", "b"})
        assert check_zero_sum_free(UNION, dom)

    def test_max_tropical(self):
        assert check_zero_sum_free(MAX, TropicalReals())

    def test_broken_identity_caught_first(self):
        # If 0 ⊕ 0 ≠ 0 the check fails immediately.
        weird = BinaryOp("weird_t", lambda a, b: a + b + 1, 0)
        report = check_zero_sum_free(weird, Naturals())
        assert not report and report.witness == (0, 0)

    def test_explicit_zero_override(self):
        # Overriding the zero is honoured: with zero=5 the immediate
        # 5 ⊕ 5 = 10 ≠ 5 sanity check fails.
        report = check_zero_sum_free(PLUS, Naturals(), zero=5, seed=13)
        assert not report and report.witness == (5, 5)


class TestNoZeroDivisors:
    def test_times_on_naturals(self):
        assert check_no_zero_divisors(TIMES, Naturals(), zero=0)

    def test_intersection_has_zero_divisors(self):
        dom = PowerSetDomain({"a", "b", "c"})
        inter = make_intersection(dom.universe)
        report = check_no_zero_divisors(inter, dom, zero=frozenset())
        assert not report and report.exhaustive
        a, b = report.witness
        assert a and b and not (frozenset(a) & frozenset(b))

    def test_mod6_times_has_zero_divisors(self):
        times6 = BinaryOp("times6_t", lambda a, b: (a * b) % 6, 1)
        report = check_no_zero_divisors(times6, IntegersModN(6), zero=0)
        assert not report
        a, b = report.witness
        assert (a * b) % 6 == 0 and a != 0 and b != 0

    def test_min_on_extended(self):
        from repro.values.domains import ExtendedNonNegativeReals
        assert check_no_zero_divisors(MIN, ExtendedNonNegativeReals(), zero=0)


class TestAnnihilator:
    def test_zero_annihilates_times(self):
        assert check_annihilator(TIMES, Naturals(), zero=0)

    def test_minus_inf_annihilates_plus_on_tropical(self):
        assert check_annihilator(PLUS, TropicalReals(), zero=-math.inf)

    def test_zero_does_not_annihilate_plus(self):
        report = check_annihilator(PLUS, Naturals(), zero=0, seed=17)
        assert not report
        (a,) = report.witness
        assert a + 0 != 0

    def test_exhaustive_on_finite(self):
        report = check_annihilator(AND, BooleanDomain(), zero=False)
        assert report and report.exhaustive


class TestReportShape:
    def test_bool_protocol(self):
        r = check_identity(PLUS, Naturals())
        assert bool(r) is True

    def test_describe_mentions_witness_on_failure(self):
        report = check_zero_sum_free(PLUS, Integers(), seed=11)
        text = report.describe()
        assert "FAILS" in text and "witness" in text

    def test_describe_mentions_mode(self):
        r = check_identity(AND, BooleanDomain())
        assert "exhaustively" in r.describe()
        r2 = check_identity(PLUS, Naturals())
        assert "samples" in r2.describe()

    def test_exhaustive_flag_small_range(self):
        r = check_associativity(PLUS, BoundedIntegerRange(0, 5))
        assert r.exhaustive and r.cases == 6 ** 3

"""Tests for element-wise operations."""

from __future__ import annotations

import pytest

from repro.arrays.associative import AssociativeArray
from repro.arrays.elementwise import (
    elementwise_add,
    elementwise_apply,
    elementwise_multiply,
)
from repro.arrays.keys import KeyError_
from repro.values.operations import MAX_ZERO, MIN, PLUS, TIMES


def _arr(data, zero=0):
    return AssociativeArray(data, row_keys=["r1", "r2"],
                            col_keys=["c1", "c2"], zero=zero)


A = _arr({("r1", "c1"): 2, ("r1", "c2"): 3})
B = _arr({("r1", "c1"): 5, ("r2", "c2"): 7})


class TestAdd:
    def test_union_pattern(self):
        c = elementwise_add(A, B, PLUS)
        assert c.get("r1", "c1") == 7     # both stored
        assert c.get("r1", "c2") == 3     # only A
        assert c.get("r2", "c2") == 7     # only B
        assert c.get("r2", "c1") == 0     # neither

    def test_max_add(self):
        c = elementwise_add(A, B, MAX_ZERO)
        assert c.get("r1", "c1") == 5

    def test_misaligned_keysets_rejected(self):
        other = AssociativeArray({("r1", "c1"): 1},
                                 row_keys=["r1"], col_keys=["c1"])
        with pytest.raises(KeyError_, match="identical key sets"):
            elementwise_add(A, other, PLUS)


class TestMultiply:
    def test_intersection_for_annihilating_op(self):
        c = elementwise_multiply(A, B, TIMES)
        assert c.get("r1", "c1") == 10
        assert c.nnz == 1  # all other coordinates have a zero factor

    def test_non_annihilating_op_keeps_union(self):
        # ⊗ = + treated element-wise: entries survive where either side
        # is stored.
        c = elementwise_multiply(A, B, PLUS)
        assert c.nnz == 3

    def test_min_background_violation_rejected(self):
        # op(zero, zero) = min(0, 0) = 0 → fine with default zeros; but a
        # result_zero of 1 is refused because the background is 0 ≠ 1.
        with pytest.raises(KeyError_, match="dense"):
            elementwise_apply(A, B, MIN, zero=1)


class TestApply:
    def test_custom_zero_result(self):
        c = elementwise_apply(A, B, PLUS, zero=0)
        assert c.zero == 0

    def test_result_zero_entries_dropped(self):
        x = _arr({("r1", "c1"): 2})
        y = _arr({("r1", "c1"): -2})
        # Allow negatives by direct construction: + gives exactly 0.
        c = elementwise_apply(x, y, PLUS)
        assert c.nnz == 0

    def test_different_operand_zeros(self):
        x = _arr({("r1", "c1"): 2}, zero=0)
        y = AssociativeArray({("r1", "c1"): 3},
                             row_keys=["r1", "r2"], col_keys=["c1", "c2"],
                             zero=0)
        c = elementwise_apply(x, y, TIMES)
        assert c.get("r1", "c1") == 6

"""Tests for the structured event log (repro.obs.events)."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.events import (
    DEFAULT_CAPACITY,
    EventLog,
    emit_event,
    get_event_log,
)
from repro.obs.trace import Tracer


class TestEmit:
    def test_emit_stamps_seq_and_timestamp(self):
        log = EventLog()
        a = log.emit("epoch_published", epoch=1)
        b = log.emit("epoch_published", epoch=2)
        assert (a.seq, b.seq) == (1, 2)
        assert a.timestamp <= b.timestamp
        doc = a.to_dict()
        assert doc["kind"] == "epoch_published"
        assert doc["epoch"] == 1
        assert "trace_id" not in doc   # emitted outside any trace

    def test_emit_inside_trace_stamps_ids(self):
        log = EventLog()
        tracer = Tracer()
        with tracer.span("publish") as sp:
            event = log.emit("cache_invalidation", reclaimed=3)
        assert event.trace_id == sp.trace_id
        assert event.span_id == sp.span_id
        doc = event.to_dict()
        assert doc["trace_id"] == sp.trace_id
        assert doc["reclaimed"] == 3

    def test_global_log_singleton_and_helper(self):
        log = get_event_log()
        assert get_event_log() is log
        # The global ring may already be at capacity (library code emits
        # kernel-routing events); assert the emit lands as the newest
        # entry rather than counting on headroom.
        event = emit_event("bench_run", run_id="r1")
        newest = log.events(limit=1)[0]
        assert newest["seq"] == event.seq
        assert newest["kind"] == "bench_run"
        assert newest["run_id"] == "r1"


class TestBoundedGrowth:
    def test_ring_is_bounded_and_counts_drops(self):
        log = EventLog(capacity=10)
        for i in range(35):
            log.emit("shard_spill", i=i)
        assert len(log) == 10
        retention = log.retention()
        assert retention["capacity"] == 10
        assert retention["stored"] == 10
        assert retention["dropped"] == 25
        # Seq numbers survive the drops: the window is the newest 10.
        assert retention["first_seq"] == 26
        assert retention["last_seq"] == 35
        rows = log.events()
        assert [e["seq"] for e in rows] == list(range(26, 36))

    def test_default_capacity(self):
        assert EventLog().capacity == DEFAULT_CAPACITY
        with pytest.raises(ValueError, match="capacity"):
            EventLog(capacity=0)

    def test_concurrent_emitters_never_exceed_capacity(self):
        log = EventLog(capacity=64)
        n_threads, per_thread = 8, 300

        def worker(tid: int) -> None:
            for i in range(per_thread):
                log.emit("shard_spill", tid=tid, i=i)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not any(t.is_alive() for t in threads)
        assert len(log) == 64
        retention = log.retention()
        total = n_threads * per_thread
        assert retention["last_seq"] == total
        assert retention["dropped"] == total - 64
        seqs = [e["seq"] for e in log.events()]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)   # no duplicates, no tears


class TestReads:
    def _filled(self):
        log = EventLog()
        log.emit("epoch_published", epoch=1)
        log.emit("shard_spill", bytes=10)
        log.emit("epoch_published", epoch=2)
        log.emit("rewrite_refused", rule="r")
        return log

    def test_since_cursor(self):
        log = self._filled()
        rows = log.events(since=2)
        assert [e["seq"] for e in rows] == [3, 4]
        assert log.events(since=99) == []

    def test_kind_filter_and_limit(self):
        log = self._filled()
        rows = log.events(kind="epoch_published")
        assert [e["epoch"] for e in rows] == [1, 2]
        newest = log.events(limit=2)
        assert [e["seq"] for e in newest] == [3, 4]
        assert log.events(limit=0) == []

    def test_kind_filter_comma_alternatives(self):
        log = self._filled()
        rows = log.events(kind="shard_spill,rewrite_refused")
        assert [e["kind"] for e in rows] == ["shard_spill",
                                            "rewrite_refused"]

    def test_kind_filter_prefix_wildcard(self):
        log = EventLog()
        log.emit("loadgen.step", rate=100)
        log.emit("loadgen.slo_breach", rate=200)
        log.emit("bench_run")
        rows = log.events(kind="loadgen.*")
        assert [e["kind"] for e in rows] == ["loadgen.step",
                                            "loadgen.slo_breach"]
        mixed = log.events(kind="loadgen.slo_*,bench_run")
        assert [e["kind"] for e in mixed] == ["loadgen.slo_breach",
                                              "bench_run"]
        assert log.events(kind="loadgen") == []   # exact ≠ prefix

    def test_to_jsonl_round_trips(self):
        log = self._filled()
        lines = log.to_jsonl(kind="shard_spill").splitlines()
        assert len(lines) == 1
        doc = json.loads(lines[0])
        assert doc["kind"] == "shard_spill" and doc["bytes"] == 10

    def test_clear_keeps_sequencing(self):
        log = self._filled()
        log.clear()
        assert len(log) == 0
        event = log.emit("bench_run")
        assert event.seq == 5   # numbering continues across clear


class TestInstrumentationSites:
    def test_publication_emits_epoch_and_invalidation_events(self):
        from repro.serve.service import AdjacencyService
        from repro.values.semiring import get_op_pair
        log = get_event_log()
        start = log.retention()["last_seq"] or 0
        svc = AdjacencyService(get_op_pair("plus_times"))
        svc.add_edge("e1", "a", "b", 2.0)
        svc.publish()
        svc.query("neighbors", vertex="a")       # populate the cache
        svc.add_edge("e2", "b", "c", 1.0)
        svc.publish()                            # invalidates epoch-1 keys
        rows = log.events(since=start)
        published = [e for e in rows if e["kind"] == "epoch_published"]
        assert [e["epoch"] for e in published] == [1, 2]
        assert published[0]["delta_edges"] == 1
        assert published[0]["trace_id"].startswith("t")
        invalidations = [e for e in rows
                         if e["kind"] == "cache_invalidation"]
        assert invalidations and invalidations[-1]["reclaimed"] >= 1

    def test_shard_spill_events(self, tmp_path, plus_times):
        from repro.shard import (edge_records, execute_shards,
                                 partition_edge_records)
        records = edge_records([("e1", "a", "b"), ("e2", "b", "c"),
                                ("e3", "c", "a"), ("e4", "a", "c")])
        manifest = partition_edge_records(records, 2, tmp_path)
        log = get_event_log()
        start = log.retention()["last_seq"] or 0
        execute_shards(manifest, plus_times, executor="serial")
        spills = [e for e in log.events(since=start)
                  if e["kind"] == "shard_spill"]
        assert any(e.get("stage") == "build" and e.get("shards") == 2
                   and e.get("bytes", 0) > 0 for e in spills)

"""Tests for the markdown report generator."""

from __future__ import annotations

import pytest

from repro.experiments.report import render_criteria_markdown, render_markdown


class TestCriteriaMarkdown:
    def test_table_shape(self):
        text = render_criteria_markdown()
        lines = text.splitlines()
        assert lines[0].startswith("| op-pair |")
        # Header + separator + one row per catalog entry.
        from repro.experiments.expected import CRITERIA_TABLE
        assert len(lines) == 2 + len(CRITERIA_TABLE)

    def test_verdicts_present(self):
        text = render_criteria_markdown()
        assert "| SAFE |" in text and "| UNSAFE |" in text
        assert "zero-sum-free" in text


class TestFullReport:
    def test_all_matched(self):
        text = render_markdown()
        assert "**ALL MATCHED**" in text
        assert "MISMATCH |" not in text.replace("| MATCH |", "")

    def test_sections_per_experiment(self):
        text = render_markdown()
        for section in ("## fig1", "## fig3", "## criteria",
                        "## structured", "## Section IV synopsis",
                        "## Certification catalog"):
            assert section in text

    def test_is_valid_markdown_table_rows(self):
        text = render_markdown()
        for line in text.splitlines():
            if line.startswith("|") and not set(line) <= {"|", "-", " "}:
                assert line.count("|") >= 3

"""Tests for the figure-style text rendering."""

from __future__ import annotations

import math

import pytest

from repro.arrays.associative import AssociativeArray
from repro.arrays.printing import format_array, format_stacked, format_value


class TestFormatValue:
    @pytest.mark.parametrize("value,expected", [
        (1, "1"),
        (1.0, "1"),
        (2.5, "2.5"),
        (math.inf, "inf"),
        (-math.inf, "-inf"),
        (True, "1"),
        (False, "0"),
        ("abc", "abc"),
        (frozenset({"b", "a"}), "{a,b}"),
    ])
    def test_rendering(self, value, expected):
        assert format_value(value) == expected


class TestFormatArray:
    def _arr(self):
        return AssociativeArray(
            {("r1", "c1"): 1, ("r2", "c2"): 2.0},
            row_keys=["r1", "r2"], col_keys=["c1", "c2"])

    def test_blank_for_zeros(self):
        text = format_array(self._arr())
        row1 = [ln for ln in text.splitlines() if ln.startswith("r1")][0]
        # r1 row shows 1 under c1 and nothing under c2.
        assert "1" in row1 and "2" not in row1

    def test_float_integers_print_without_decimal(self):
        text = format_array(self._arr())
        assert "2.0" not in text and "2" in text

    def test_title(self):
        text = format_array(self._arr(), title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_hide_empty_rows(self):
        a = AssociativeArray({("r1", "c1"): 1},
                             row_keys=["r1", "r_empty"], col_keys=["c1"])
        text = format_array(a, hide_empty_rows=True)
        assert "r_empty" not in text

    def test_hide_empty_cols(self):
        a = AssociativeArray({("r1", "c1"): 1},
                             row_keys=["r1"], col_keys=["c1", "c_unused"])
        text = format_array(a, hide_empty_cols=True)
        assert "c_unused" not in text

    def test_long_keys_clipped(self):
        a = AssociativeArray({("short", "x" * 60): 1})
        text = format_array(a, max_col_width=10)
        assert "…" in text
        assert "x" * 60 not in text

    def test_empty_array(self):
        a = AssociativeArray.empty(["r"], ["c"])
        text = format_array(a)
        assert "r" in text and "c" in text

    def test_columns_aligned(self):
        text = format_array(self._arr())
        lines = text.splitlines()
        # Header and body lines after stripping have consistent widths.
        assert len(lines) == 3


class TestFormatStacked:
    def test_blocks_and_labels(self):
        a = AssociativeArray({("r", "c"): 1})
        text = format_stacked([("first +.×", a), ("second max.min", a)],
                              title="Figure X")
        assert "Figure X" in text
        assert "-- first +.× --" in text
        assert "-- second max.min --" in text
        assert text.count("r") >= 2

"""Unit tests for repro.arrays.keys (KeySet and selectors)."""

from __future__ import annotations

import pytest

from repro.arrays.keys import KeyError_, KeySet


class TestConstruction:
    def test_sorts_and_dedupes(self):
        ks = KeySet(["b", "a", "b", "c"])
        assert tuple(ks) == ("a", "b", "c")

    def test_empty(self):
        ks = KeySet()
        assert len(ks) == 0 and list(ks) == []

    def test_numeric_keys(self):
        ks = KeySet([3, 1, 2])
        assert tuple(ks) == (1, 2, 3)

    def test_incomparable_keys_rejected(self):
        with pytest.raises(KeyError_, match="comparable"):
            KeySet(["a", 1])

    def test_coerce(self):
        ks = KeySet(["a"])
        assert KeySet.coerce(ks) is ks
        assert tuple(KeySet.coerce(["b", "a"])) == ("a", "b")
        assert len(KeySet.coerce(None)) == 0


class TestContainerProtocol:
    def test_contains(self):
        ks = KeySet(["a", "b"])
        assert "a" in ks and "z" not in ks

    def test_contains_unhashable_is_false(self):
        assert ["a"] not in KeySet(["a"])

    def test_getitem_int_and_slice(self):
        ks = KeySet(["a", "b", "c"])
        assert ks[0] == "a"
        assert tuple(ks[1:]) == ("b", "c")

    def test_index(self):
        ks = KeySet(["a", "b", "c"])
        assert ks.index("b") == 1
        with pytest.raises(KeyError_):
            ks.index("zz")

    def test_equality_and_hash(self):
        assert KeySet(["a", "b"]) == KeySet(["b", "a"])
        assert hash(KeySet(["a"])) == hash(KeySet(["a"]))
        assert KeySet(["a"]) != KeySet(["b"])

    def test_keys_tuple(self):
        assert KeySet(["b", "a"]).keys() == ("a", "b")


class TestSetAlgebra:
    def test_union(self):
        assert tuple(KeySet(["a"]).union(["b"])) == ("a", "b")

    def test_intersection_keeps_order(self):
        assert tuple(KeySet(["a", "b", "c"]).intersection(["c", "a"])) \
            == ("a", "c")

    def test_difference(self):
        assert tuple(KeySet(["a", "b", "c"]).difference(["b"])) == ("a", "c")


class TestRangeQueries:
    def test_between_inclusive(self):
        ks = KeySet(["apple", "banana", "cherry", "date"])
        assert tuple(ks.between("banana", "cherry")) == ("banana", "cherry")

    def test_between_endpoints_not_members(self):
        ks = KeySet(["bb", "cc", "dd"])
        assert tuple(ks.between("a", "cz")) == ("bb", "cc")

    def test_between_empty(self):
        assert len(KeySet(["a"]).between("x", "z")) == 0

    def test_starting_with(self):
        ks = KeySet(["Genre|Pop", "Genre|Rock", "Writer|X"])
        assert tuple(ks.starting_with("Genre|")) == ("Genre|Pop", "Genre|Rock")

    def test_starting_with_skips_non_strings(self):
        assert len(KeySet([1, 2]).starting_with("a")) == 0


class TestSelect:
    KS = KeySet(["Date|2010", "Genre|Electronic", "Genre|Pop", "Genre|Rock",
                 "Writer|Anne", "Writer|Bob"])

    def test_colon_selects_all(self):
        assert self.KS.select(":") == self.KS

    def test_paper_style_range(self):
        got = self.KS.select("Genre|A : Genre|Z")
        assert tuple(got) == ("Genre|Electronic", "Genre|Pop", "Genre|Rock")

    def test_range_requires_spaces(self):
        # Without ' : ' the text is a single (missing) key.
        with pytest.raises(KeyError_):
            self.KS.select("Genre|A:Genre|Z")

    def test_malformed_range(self):
        with pytest.raises(KeyError_, match="malformed"):
            self.KS.select("a : ")

    def test_prefix_star(self):
        assert tuple(self.KS.select("Writer|*")) \
            == ("Writer|Anne", "Writer|Bob")

    def test_single_existing_key(self):
        assert tuple(self.KS.select("Genre|Pop")) == ("Genre|Pop",)

    def test_single_missing_key_raises(self):
        with pytest.raises(KeyError_, match="not in key set"):
            self.KS.select("Genre|Jazz")

    def test_list_selector_checks_membership(self):
        assert tuple(self.KS.select(["Genre|Pop", "Writer|Bob"])) \
            == ("Genre|Pop", "Writer|Bob")
        with pytest.raises(KeyError_, match="not in key set"):
            self.KS.select(["Genre|Pop", "nope"])

    def test_keyset_selector_intersects(self):
        other = KeySet(["Genre|Pop", "Unknown|X"])
        assert tuple(self.KS.select(other)) == ("Genre|Pop",)

    def test_slice_selector(self):
        got = self.KS.select(slice("Genre|A", "Genre|Z"))
        assert tuple(got) == ("Genre|Electronic", "Genre|Pop", "Genre|Rock")

    def test_slice_open_ends(self):
        assert self.KS.select(slice(None, None)) == self.KS

    def test_slice_with_step_rejected(self):
        with pytest.raises(KeyError_, match="stepped"):
            self.KS.select(slice("a", "z", 2))

    def test_slice_on_empty_keyset(self):
        assert len(KeySet().select(slice(None, None))) == 0

    def test_unsupported_selector(self):
        with pytest.raises(KeyError_, match="unsupported"):
            self.KS.select(3.14)

    def test_position_map(self):
        pm = KeySet(["b", "a"]).position_map()
        assert pm == {"a": 0, "b": 1}

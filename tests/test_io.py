"""Tests for the exploded-view construction and file round-trips."""

from __future__ import annotations

import io
import math

import pytest

from repro.arrays.associative import AssociativeArray
from repro.arrays.io import (
    collapse_exploded,
    explode_table,
    read_csv_table,
    read_tsv_triples,
    write_tsv_triples,
)
from repro.arrays.keys import KeyError_


TABLE = {
    "row1": {"Genre": "Rock", "Writer": ["Anne", "Bob"]},
    "row2": {"Genre": ["Pop", "Rock"], "Label": "Free"},
}


class TestExplode:
    def test_column_keys_concatenate_field_and_value(self):
        e = explode_table(TABLE)
        assert "Genre|Rock" in e.col_keys
        assert "Writer|Anne" in e.col_keys
        assert e.get("row1", "Genre|Rock") == 1

    def test_multivalued_fields_explode(self):
        e = explode_table(TABLE)
        assert e.get("row1", "Writer|Anne") == 1
        assert e.get("row1", "Writer|Bob") == 1
        assert e.get("row2", "Genre|Pop") == 1
        assert e.get("row2", "Genre|Rock") == 1

    def test_nnz(self):
        assert explode_table(TABLE).nnz == 3 + 3

    def test_custom_one_and_zero(self):
        e = explode_table(TABLE, one=True, zero=False)
        assert e.get("row1", "Genre|Rock") is True
        assert e.zero is False

    def test_custom_separator(self):
        e = explode_table(TABLE, separator=":")
        assert "Genre:Rock" in e.col_keys

    def test_field_whitelist(self):
        e = explode_table(TABLE, fields=["Genre"])
        assert all(c.startswith("Genre|") for c in e.col_keys)

    def test_separator_in_field_name_rejected(self):
        with pytest.raises(KeyError_, match="separator"):
            explode_table({"r": {"Ge|nre": "x"}})

    def test_collapse_roundtrip(self):
        e = explode_table(TABLE)
        back = collapse_exploded(e)
        assert back["row1"]["Genre"] == ["Rock"]
        assert sorted(back["row1"]["Writer"]) == ["Anne", "Bob"]
        assert sorted(back["row2"]["Genre"]) == ["Pop", "Rock"]

    def test_collapse_rejects_unexploded_columns(self):
        a = AssociativeArray({("r", "plaincol"): 1})
        with pytest.raises(KeyError_, match="exploded"):
            collapse_exploded(a)


class TestTsvTriples:
    def test_roundtrip(self, tmp_path):
        a = AssociativeArray({("r1", "c1"): 1, ("r2", "c2"): 2.5})
        path = tmp_path / "arr.tsv"
        write_tsv_triples(a, path)
        back = read_tsv_triples(path)
        assert back.get("r1", "c1") == 1
        assert back.get("r2", "c2") == 2.5

    def test_written_in_key_order(self, tmp_path):
        a = AssociativeArray({("r2", "c1"): 1, ("r1", "c1"): 2})
        path = tmp_path / "arr.tsv"
        write_tsv_triples(a, path)
        lines = path.read_text().splitlines()
        assert lines[0].startswith("r1\t")

    def test_value_parsing_precedence(self, tmp_path):
        path = tmp_path / "vals.tsv"
        path.write_text("r\tc1\t3\nr\tc2\t3.5\nr\tc3\thello\n")
        a = read_tsv_triples(path)
        assert a.get("r", "c1") == 3 and isinstance(a.get("r", "c1"), int)
        assert a.get("r", "c2") == 3.5
        assert a.get("r", "c3") == "hello"

    def test_custom_value_parser(self, tmp_path):
        path = tmp_path / "vals.tsv"
        path.write_text("r\tc\t0x10\n")
        a = read_tsv_triples(path, value_parser=lambda s: int(s, 16))
        assert a.get("r", "c") == 16

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("r\tc\n")
        with pytest.raises(KeyError_, match="3 tab-separated"):
            read_tsv_triples(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blanks.tsv"
        path.write_text("r\tc\t1\n\nr\td\t2\n")
        assert read_tsv_triples(path).nnz == 2

    def test_explicit_keysets(self, tmp_path):
        path = tmp_path / "k.tsv"
        path.write_text("r\tc\t1\n")
        a = read_tsv_triples(path, row_keys=["r", "r2"], col_keys=["c"])
        assert a.shape == (2, 1)


class TestCsvTable:
    CSV = "track,Genre,Writer\nt1,Rock,Anne; Bob\nt2,Pop,\n"

    def test_reads_into_table_shape(self):
        table = read_csv_table(io.StringIO(self.CSV))
        assert table["t1"]["Genre"] == "Rock"
        assert table["t1"]["Writer"] == ["Anne", "Bob"]

    def test_empty_cells_omitted(self):
        table = read_csv_table(io.StringIO(self.CSV))
        assert "Writer" not in table["t2"]

    def test_explode_after_csv(self):
        table = read_csv_table(io.StringIO(self.CSV))
        e = explode_table(table)
        assert e.get("t1", "Writer|Bob") == 1

    def test_missing_header(self):
        with pytest.raises(KeyError_, match="header"):
            read_csv_table(io.StringIO(""))

    def test_row_key_column_override(self):
        csv_text = "a,b\n1,2\n"
        table = read_csv_table(io.StringIO(csv_text), row_key_column="b")
        assert table == {"2": {"a": "1"}}

    def test_unknown_row_key_column(self):
        with pytest.raises(KeyError_, match="row key column"):
            read_csv_table(io.StringIO("a,b\n1,2\n"), row_key_column="zzz")

    def test_reads_from_path(self, tmp_path):
        p = tmp_path / "t.csv"
        p.write_text(self.CSV)
        table = read_csv_table(p)
        assert "t1" in table

"""Tests for the certification engine (core/criteria.py + core/certify.py)."""

from __future__ import annotations

import math

import pytest

from repro.core.certify import Witness, certify, witness_for_violation
from repro.core.criteria import check_criteria
from repro.core.construction import is_adjacency_array_of_graph
from repro.graphs.incidence import (
    is_source_incidence_of,
    is_target_incidence_of,
)
from repro.values.semiring import get_op_pair

from tests.helpers import SAFE_PAIRS, UNSAFE_PAIRS


class TestCriteria:
    @pytest.mark.parametrize("name", SAFE_PAIRS)
    def test_safe_pairs_satisfy_criteria(self, name):
        result = check_criteria(get_op_pair(name), seed=101)
        assert result.satisfied, result.describe()
        assert result.well_formed

    @pytest.mark.parametrize("name", UNSAFE_PAIRS)
    def test_unsafe_pairs_violate_criteria(self, name):
        result = check_criteria(get_op_pair(name), seed=101)
        assert not result.satisfied, result.describe()

    @pytest.mark.parametrize("name,criterion", [
        ("int_plus_times", "zero-sum-free"),
        ("gf2_xor_and", "zero-sum-free"),
        ("z6_plus_times", "zero-sum-free"),
        ("union_intersection", "no zero divisors"),
        ("completed_max_plus", "0 annihilates ⊗"),
        ("nonneg_max_plus", "0 annihilates ⊗"),
    ])
    def test_first_violation_matches_algebraic_diagnosis(self, name, criterion):
        result = check_criteria(get_op_pair(name), seed=101)
        violation = result.first_violation()
        assert violation is not None
        assert violation.property_name == criterion

    def test_finite_domain_checks_are_exhaustive(self):
        result = check_criteria(get_op_pair("or_and"))
        assert result.exhaustive

    def test_describe_contains_verdict(self):
        text = check_criteria(get_op_pair("plus_times"), seed=1).describe()
        assert "SATISFIED" in text
        text = check_criteria(get_op_pair("gf2_xor_and")).describe()
        assert "VIOLATED" in text

    def test_reports_tuple_has_five_entries(self):
        assert len(check_criteria(get_op_pair("or_and")).reports()) == 5


class TestCertify:
    @pytest.mark.parametrize("name", SAFE_PAIRS)
    def test_safe_certification(self, name):
        cert = certify(get_op_pair(name), seed=31)
        assert cert.safe
        assert cert.witness is None
        assert "SAFE" in cert.summary()

    @pytest.mark.parametrize("name", UNSAFE_PAIRS)
    def test_unsafe_certification_carries_verified_witness(self, name):
        cert = certify(get_op_pair(name), seed=31)
        assert not cert.safe
        assert cert.witness is not None, name
        assert cert.witness.refutes
        assert "UNSAFE" in cert.summary()
        assert "witness" in cert.summary()

    def test_witness_can_be_skipped(self):
        cert = certify(get_op_pair("gf2_xor_and"), build_witness=False)
        assert not cert.safe and cert.witness is None

    @pytest.mark.parametrize("name,kind", [
        ("int_plus_times", "zero_sum"),
        ("gf2_xor_and", "zero_sum"),
        ("union_intersection", "zero_divisor"),
        ("completed_max_plus", "annihilator"),
        ("nonneg_max_plus", "annihilator"),
    ])
    def test_witness_kind_matches_lemma(self, name, kind):
        cert = certify(get_op_pair(name), seed=31)
        assert cert.witness is not None
        assert cert.witness.kind == kind

    @pytest.mark.parametrize("name", UNSAFE_PAIRS)
    def test_witness_incidence_arrays_are_valid(self, name):
        """The lemma constructions must produce *bona fide* incidence
        arrays of the witness graph (Definition I.4)."""
        cert = certify(get_op_pair(name), seed=31)
        w = cert.witness
        assert w is not None
        assert is_source_incidence_of(w.eout, w.graph)
        assert is_target_incidence_of(w.ein, w.graph)

    def test_zero_sum_witness_structure(self):
        """Lemma II.2: two parallel edges a → b."""
        cert = certify(get_op_pair("gf2_xor_and"))
        w = cert.witness
        assert w.kind == "zero_sum"
        assert w.graph.num_edges == 2
        assert w.graph.adjacency_pairs() == frozenset({("a", "b")})
        # The cancelled entry: the product has NO entry although the
        # graph has an edge a → b.
        assert w.product.nnz == 0

    def test_zero_divisor_witness_structure(self):
        """Lemma II.3: one self-loop whose entry vanishes."""
        cert = certify(get_op_pair("union_intersection"), seed=31)
        w = cert.witness
        assert w.kind == "zero_divisor"
        assert w.graph.self_loops() == ["k"]
        assert w.product.nnz == 0

    def test_annihilator_witness_structure(self):
        """Lemma II.4: two disjoint self-loops produce a spurious
        off-diagonal entry under dense evaluation."""
        cert = certify(get_op_pair("completed_max_plus"), seed=31)
        w = cert.witness
        assert w.kind == "annihilator"
        assert len(w.graph.self_loops()) == 2
        pattern = w.product.nonzero_pattern()
        spurious = pattern - w.graph.adjacency_pairs()
        assert spurious, "expected at least one spurious entry"

    def test_witness_explain_text(self):
        cert = certify(get_op_pair("int_plus_times"), seed=31)
        text = cert.witness.explain()
        assert "zero_sum" in text and "pattern" in text

    def test_witness_for_violation_returns_none_when_satisfied(self):
        pair = get_op_pair("plus_times")
        criteria = check_criteria(pair, seed=1)
        assert witness_for_violation(pair, criteria) is None


class TestTheoremEquivalenceOnWitnesses:
    """The necessity direction, concretely: for every unsafe pair the
    witness product differs from the graph's adjacency pattern, while for
    safe pairs the same constructions always yield adjacency arrays."""

    @pytest.mark.parametrize("name", UNSAFE_PAIRS)
    def test_unsafe_witness_product_is_not_adjacency(self, name):
        cert = certify(get_op_pair(name), seed=31)
        w = cert.witness
        assert not is_adjacency_array_of_graph(w.product, w.graph)

    @pytest.mark.parametrize("name", ["plus_times", "max_min", "or_and"])
    def test_safe_pairs_survive_the_lemma_graphs(self, name):
        """Run the same adversarial graph shapes (parallel edges,
        self-loops) against safe pairs: the products must be adjacency
        arrays."""
        from repro.core.construction import adjacency_array
        from repro.graphs.digraph import EdgeKeyedDigraph
        from repro.graphs.incidence import incidence_arrays

        pair = get_op_pair(name)
        shapes = [
            EdgeKeyedDigraph([("k1", "a", "b"), ("k2", "a", "b")]),
            EdgeKeyedDigraph([("k", "a", "a")]),
            EdgeKeyedDigraph([("k1", "a", "a"), ("k2", "b", "b")]),
        ]
        for g in shapes:
            eout, ein = incidence_arrays(g, zero=pair.zero, one=pair.one)
            for mode in ("sparse", "dense"):
                adj = adjacency_array(eout, ein, pair, mode=mode,
                                      kernel="generic")
                assert is_adjacency_array_of_graph(adj, g), (name, mode)

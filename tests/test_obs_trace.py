"""Tests for span tracing (repro.obs.trace) and its propagation."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.trace import Tracer, current_span, render_trace, span


class TestSpanBasics:
    def test_root_span_records_into_tracer(self):
        tracer = Tracer()
        with tracer.span("request", kind="khop") as root:
            pass
        assert root.duration is not None and root.duration >= 0.0
        assert tracer.get(root.trace_id) is root
        assert tracer.latest() is root
        assert root.attrs == {"kind": "khop"}

    def test_children_nest_automatically(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with span("plan"):
                with span("kernel", kernel="scipy"):
                    pass
            with span("execute"):
                pass
        names = [s.name for s in root.walk()]
        assert names == ["root", "plan", "kernel", "execute"]
        plan = root.children[0]
        assert plan.children[0].name == "kernel"
        assert plan.children[0].trace_id == root.trace_id

    def test_span_is_noop_outside_any_trace(self):
        ctx = span("orphan")
        with ctx as s:
            s.set_attr("ignored", 1)   # must be safe
        # The shared no-op has no tree, and a second call reuses it.
        assert span("another") is ctx

    def test_current_span_always_safe(self):
        current_span().set_attr("outside", True)   # no active trace
        tracer = Tracer()
        with tracer.span("root") as root:
            assert current_span() is root
            with span("inner") as inner:
                assert current_span() is inner
            assert current_span() is root

    def test_exception_marks_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("root"):
                with span("bad"):
                    raise RuntimeError("boom")
        root = tracer.latest()
        assert root is not None
        bad = root.children[0]
        assert bad.error == "RuntimeError: boom"
        assert root.error == "RuntimeError: boom"

    def test_to_dict_is_json_ready(self):
        tracer = Tracer()
        with tracer.span("root", n=3):
            with span("child"):
                pass
        doc = tracer.latest().to_dict()
        text = json.dumps(doc)   # must not raise
        assert "child" in text
        assert doc["attrs"] == {"n": 3}
        assert doc["children"][0]["trace_id"] == doc["trace_id"]
        assert doc["duration_ms"] is not None


class TestTracerRing:
    def test_bounded_ring_evicts_oldest(self):
        tracer = Tracer(max_traces=2)
        ids = []
        for i in range(3):
            with tracer.span(f"r{i}") as root:
                pass
            ids.append(root.trace_id)
        assert tracer.get(ids[0]) is None       # evicted
        assert tracer.get(ids[1]) is not None
        assert tracer.get(ids[2]) is not None

    def test_traces_index_newest_first(self):
        tracer = Tracer()
        for i in range(3):
            with tracer.span(f"r{i}"):
                with span("inner"):
                    pass
        index = tracer.traces()
        assert [t["name"] for t in index] == ["r2", "r1", "r0"]
        assert index[0]["spans"] == 2
        assert index[0]["duration_ms"] is not None

    def test_clear_and_validation(self):
        tracer = Tracer()
        with tracer.span("r"):
            pass
        tracer.clear()
        assert tracer.latest() is None
        with pytest.raises(ValueError):
            Tracer(max_traces=0)

    def test_eviction_under_concurrent_writers(self):
        """Many threads hammering a small ring: the bound holds, the
        index stays consistent, and no writer ever sees an error."""
        tracer = Tracer(max_traces=4)
        errors = []

        def writer(tag: int) -> None:
            try:
                for i in range(50):
                    with tracer.span(f"w{tag}.r{i}"):
                        with span("child"):
                            pass
            except Exception as exc:   # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(t,))
                   for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        index = tracer.traces()
        assert len(index) <= 4
        # Every surviving entry is a complete, fetchable tree.
        for entry in index:
            root = tracer.get(entry["trace_id"])
            assert root is not None
            assert entry["spans"] == 2

    def test_threads_build_isolated_trees(self):
        tracer = Tracer()
        barrier = threading.Barrier(2, timeout=30)

        def request(name: str) -> None:
            with tracer.span(name):
                barrier.wait()          # both roots open concurrently
                with span(f"{name}.child"):
                    pass

        threads = [threading.Thread(target=request, args=(n,))
                   for n in ("req_a", "req_b")]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        roots = {t["name"]: t for t in tracer.traces()}
        assert set(roots) == {"req_a", "req_b"}
        # Each tree holds exactly its own child, never the sibling's.
        for name in roots:
            root = tracer.get(roots[name]["trace_id"])
            assert [c.name for c in root.children] == [f"{name}.child"]


class TestRenderTrace:
    def test_tree_rendering(self):
        tracer = Tracer()
        with tracer.span("service.query", kind="khop"):
            with span("plan"):
                pass
            with span("execute"):
                with span("kernel", kernel="scipy"):
                    pass
        text = render_trace(tracer.latest())
        lines = text.splitlines()
        assert lines[0].startswith("trace t")
        assert "service.query" in lines[1] and "kind=khop" in lines[1]
        assert any("├─ plan" in ln for ln in lines)
        assert any("└─ execute" in ln for ln in lines)
        assert any("kernel=scipy" in ln for ln in lines)
        assert all("ms]" in ln for ln in lines[1:])


    def test_deep_trace_renders_without_recursion(self):
        """A 1000-deep hop chain must render iteratively — a recursive
        renderer would die on Python's default recursion limit."""
        tracer = Tracer()
        with tracer.span("hop0") as root:
            import contextlib
            with contextlib.ExitStack() as stack:
                for i in range(1, 1000):
                    stack.enter_context(span(f"hop{i}"))
        depth = 0
        node = root
        while node.children:
            node = node.children[0]
            depth += 1
        assert depth == 999
        text = render_trace(root)
        lines = text.splitlines()
        assert len(lines) == 1001      # header + 1000 spans
        assert "hop999" in lines[-1]
        assert list(root.walk())[-1].name == "hop999"


class TestExprPropagation:
    """A traced evaluation shows planner and kernel spans in one tree."""

    @pytest.fixture()
    def operands(self):
        from repro.arrays.associative import AssociativeArray
        from repro.values.semiring import get_op_pair
        pair = get_op_pair("plus_times")
        eout = AssociativeArray({("e1", "a"): 1.0, ("e2", "b"): 1.0})
        ein = AssociativeArray({("e1", "b"): 1.0, ("e2", "c"): 1.0})
        return pair, eout, ein

    def test_evaluate_nests_under_request_span(self, operands):
        from repro.expr import evaluate, lazy
        pair, eout, ein = operands
        tracer = Tracer()
        with tracer.span("request"):
            result = evaluate(
                lazy(eout, "Eout").T.matmul(lazy(ein, "Ein"), pair))
        assert result.nnz > 0
        root = tracer.latest()
        names = [s.name for s in root.walk()]
        assert "expr.plan" in names
        assert "expr.execute" in names
        # At least one executed node span, under the execute span.
        execute = next(s for s in root.walk() if s.name == "expr.execute")
        assert any(c.name.startswith("node.") for c in execute.walk())

    def test_kernel_span_carries_kernel_attr(self, operands):
        from repro.expr import evaluate, lazy
        pair, eout, ein = operands
        tracer = Tracer()
        with tracer.span("request"):
            evaluate(lazy(eout, "Eout").T.matmul(lazy(ein, "Ein"), pair))
        root = tracer.latest()
        kernels = [s for s in root.walk() if s.name == "kernel"]
        assert kernels, [s.name for s in root.walk()]
        assert all("kernel" in s.attrs for s in kernels)
        assert all(s.trace_id == root.trace_id for s in kernels)

    def test_untraced_evaluate_records_nothing(self, operands):
        from repro.expr import evaluate, lazy
        pair, eout, ein = operands
        tracer = Tracer()
        evaluate(lazy(eout, "Eout").T.matmul(lazy(ein, "Ein"), pair))
        assert tracer.latest() is None


class TestServiceTracing:
    def test_query_produces_one_trace_tree(self):
        from repro.serve import AdjacencyService
        from repro.values.semiring import get_op_pair
        svc = AdjacencyService(get_op_pair("plus_times"))
        svc.add_edges([("e1", "a", "b", 1.0, 1.0),
                       ("e2", "b", "c", 1.0, 1.0)])
        svc.publish()
        before = len(svc.tracer.traces())
        svc.query("khop", vertex="a", k=2)
        traces = svc.tracer.traces()
        assert len(traces) == before + 1
        root = svc.tracer.get(traces[0]["trace_id"])
        assert root.name == "service.query"
        assert root.attrs.get("kind") == "khop"

"""Tests for Kronecker products of arrays and graphs."""

from __future__ import annotations

import pytest

from repro.arrays.associative import AssociativeArray
from repro.arrays.kron import kron, kron_power, kronecker_graph, pair_key
from repro.core.construction import adjacency_array
from repro.graphs.digraph import EdgeKeyedDigraph
from repro.graphs.generators import cycle_graph, path_graph
from repro.graphs.incidence import incidence_arrays
from repro.values.operations import AND, TIMES, BinaryOp
from repro.values.semiring import get_op_pair


class TestKronArrays:
    A = AssociativeArray({("x", "u"): 2, ("y", "v"): 3},
                         row_keys=["x", "y"], col_keys=["u", "v"])
    B = AssociativeArray({("p", "q"): 5},
                         row_keys=["p"], col_keys=["q", "r"])

    def test_values_and_keys(self):
        c = kron(self.A, self.B, TIMES)
        assert c.get(pair_key("x", "p"), pair_key("u", "q")) == 10
        assert c.get(pair_key("y", "p"), pair_key("v", "q")) == 15
        assert c.shape == (2 * 1, 2 * 2)

    def test_nnz_is_product(self):
        c = kron(self.A, self.B, TIMES)
        assert c.nnz == self.A.nnz * self.B.nnz

    def test_zero_divisor_shrinks_pattern(self):
        """With ⊗ = ∩ over a power set, disjoint blocks vanish —
        criterion (b) seen through kron."""
        from repro.values.operations import make_intersection
        inter = make_intersection(frozenset({"a", "b"}))
        zero = frozenset()
        x = AssociativeArray({("r", "c"): frozenset({"a"})}, zero=zero)
        y = AssociativeArray({("r", "c"): frozenset({"b"})}, zero=zero)
        c = kron(x, y, inter, zero=zero)
        assert c.nnz == 0

    def test_kron_power(self):
        eye = AssociativeArray({("0", "0"): 1, ("1", "1"): 1},
                               row_keys=["0", "1"], col_keys=["0", "1"])
        cube = kron_power(eye, 3, TIMES)
        assert cube.nnz == 8          # identity on 2³ paired keys
        assert cube.shape == (8, 8)

    def test_kron_power_validates_exponent(self):
        with pytest.raises(ValueError):
            kron_power(self.A, 0, TIMES)

    def test_kron_power_one_is_identity(self):
        assert kron_power(self.A, 1, TIMES) == self.A


class TestKroneckerGraphs:
    def test_edge_count(self):
        g = path_graph(3)     # 2 edges
        h = cycle_graph(3)    # 3 edges
        gh = kronecker_graph(g, h)
        assert gh.num_edges == 6

    def test_weischel_property(self):
        """Adjacency(G ⊗ H) == kron(Adjacency(G), Adjacency(H)) — the
        classical Kronecker-product theorem over the Boolean algebra."""
        g = path_graph(3)
        h = EdgeKeyedDigraph([("k1", "a", "b"), ("k2", "b", "a")])
        pair = get_op_pair("or_and")

        def bool_adjacency(graph):
            eout, ein = incidence_arrays(graph, one=True, zero=False)
            adj = adjacency_array(eout, ein, pair, kernel="generic")
            verts = graph.vertices
            return adj.with_keys(row_keys=verts, col_keys=verts)

        ag = bool_adjacency(g)
        ah = bool_adjacency(h)
        left = kron(ag, ah, AND, zero=False)

        gh = kronecker_graph(g, h)
        right = bool_adjacency(gh)
        # Compare on the pattern over the full paired vertex sets.
        assert left.nonzero_pattern() == right.nonzero_pattern()

    def test_weighted_kron_consistency(self):
        """Over +.× the kron of adjacency arrays equals the adjacency of
        the product graph with multiplied edge weights."""
        pair = get_op_pair("plus_times")
        g = EdgeKeyedDigraph([("k1", "a", "b")])
        h = EdgeKeyedDigraph([("m1", "p", "q"), ("m2", "p", "q")])
        g_out, g_in = incidence_arrays(g, out_values={"k1": 3.0})
        h_out, h_in = incidence_arrays(h, out_values={"m1": 5.0,
                                                      "m2": 7.0})
        ag = adjacency_array(g_out, g_in, pair, kernel="generic")
        ah = adjacency_array(h_out, h_in, pair, kernel="generic")
        k = kron(ag, ah, TIMES)
        # A_G(a,b) = 3; A_H(p,q) = 12 → paired entry 36.
        assert k.get(pair_key("a", "p"), pair_key("b", "q")) == 36.0


class TestKronBackends:
    """The numeric-operand fast path adopts columnar values instead of
    round-tripping through Python dicts."""

    def _operands(self, m=3, p=4):
        rows_a = [f"r{i}" for i in range(m)]
        a = AssociativeArray(
            {(rows_a[i], rows_a[(i + 1) % m]): float(i + 2)
             for i in range(m)},
            row_keys=rows_a, col_keys=rows_a, zero=0.0)
        rows_b = [f"s{i}" for i in range(p)]
        b = AssociativeArray(
            {(rows_b[i], rows_b[(i * 2 + 1) % p]): float(i + 1)
             for i in range(p)},
            row_keys=rows_b, col_keys=rows_b, zero=0.0)
        return a, b

    def test_numeric_operands_match_dict_operands(self):
        a, b = self._operands()
        ref = kron(a.with_backend("dict"), b.with_backend("dict"), TIMES)
        got = kron(a.with_backend("numeric"), b.with_backend("numeric"),
                   TIMES)
        assert got == ref
        # The fast path's result is itself numeric-backed.
        assert got.backend == "numeric"

    def test_numeric_operands_infinity_zero(self):
        from repro.values.operations import PLUS
        pair = get_op_pair("min_plus")     # zero is +∞
        a, b = self._operands()
        a = AssociativeArray(a.to_dict(), row_keys=a.row_keys,
                             col_keys=a.col_keys, zero=pair.zero)
        b = AssociativeArray(b.to_dict(), row_keys=b.row_keys,
                             col_keys=b.col_keys, zero=pair.zero)
        ref = kron(a.with_backend("dict"), b.with_backend("dict"), PLUS,
                   zero=pair.zero)
        got = kron(a.with_backend("numeric"), b.with_backend("numeric"),
                   PLUS, zero=pair.zero)
        assert got == ref

    def test_large_dict_operands_promote(self):
        """Above the vectorisation threshold even dict-backed operands
        take the columnar path; below it, exact value types survive."""
        rows = [f"r{i:03d}" for i in range(40)]
        big = AssociativeArray(
            {(rows[i], rows[j]): float((i * 7 + j) % 5 + 1)
             for i in range(40) for j in range(8)},
            row_keys=rows, col_keys=rows, zero=0.0)
        small = AssociativeArray({("x", "y"): 2.0}, row_keys=["x", "y"],
                                 col_keys=["x", "y"], zero=0.0)
        got = kron(big, small, TIMES)
        ref = kron(big.with_backend("dict"), small.with_backend("dict"),
                   TIMES)
        assert got == ref
        assert got.backend == "numeric"

    def test_tiny_dict_operands_stay_generic(self):
        a, b = self._operands()
        assert kron(a, b, TIMES).backend == "dict"

    def test_zero_divisor_drops_match(self):
        """Products equal to the zero are dropped identically on both
        paths (the criterion-(b) effect the docstring mentions)."""
        mod5 = BinaryOp("times_mod5", lambda x, y: (x * y) % 5, 1,
                        ufunc=None)
        a = AssociativeArray({("r0", "r1"): 5.0}, row_keys=["r0", "r1"],
                             col_keys=["r0", "r1"], zero=0.0)
        b = AssociativeArray({("s0", "s1"): 2.0}, row_keys=["s0", "s1"],
                             col_keys=["s0", "s1"], zero=0.0)
        # ufunc-less op takes the generic path; (5 ⊗ 2) mod 5 = 0 is a
        # zero-divisor product and must vanish from the pattern.
        assert kron(a, b, mod5).nnz == 0
        # The vectorised path applies the same drop rule: 5 × 2 = 10
        # survives, but scaling b to produce a true zero vanishes.
        got = kron(a.with_backend("numeric"), b.with_backend("numeric"),
                   TIMES)
        assert got.values_list() == [10.0]
        zero_hit = AssociativeArray({("s0", "s1"): 0.5}, row_keys=["s0", "s1"],
                                    col_keys=["s0", "s1"], zero=5.0)
        dropped = kron(a.with_backend("numeric"), zero_hit, TIMES,
                       zero=2.5)
        assert dropped.nnz == 0    # 5.0 × 0.5 = 2.5 equals the zero

"""Unit tests for repro.values.domains."""

from __future__ import annotations

import math
import random

import pytest

from repro.values.domains import (
    BooleanDomain,
    BoundedIntegerRange,
    CompletedReals,
    DomainError,
    ExtendedNonNegativeReals,
    ExtendedReals,
    FiniteField2,
    Integers,
    IntegersModN,
    MinPlusReals,
    Naturals,
    NonNegativeReals,
    PositiveExtendedReals,
    PowerSetDomain,
    Reals,
    StringDomain,
    TropicalReals,
    get_domain,
    list_domains,
)


RNG = lambda: random.Random(42)


class TestMembership:
    @pytest.mark.parametrize("value,expected", [
        (0, True), (5, True), (2.0, True), (-1, False), (1.5, False),
        (math.inf, False), (True, False),
    ])
    def test_naturals(self, value, expected):
        assert Naturals().contains(value) is expected

    @pytest.mark.parametrize("value,expected", [
        (-3, True), (3, True), (0.5, False), (math.nan, False),
    ])
    def test_integers(self, value, expected):
        assert Integers().contains(value) is expected

    @pytest.mark.parametrize("value,expected", [
        (0.0, True), (3.7, True), (-0.1, False),
        (math.inf, False), (math.nan, False),
    ])
    def test_nonnegative_reals(self, value, expected):
        assert NonNegativeReals().contains(value) is expected

    @pytest.mark.parametrize("value,expected", [
        (-math.inf, True), (0.0, True), (math.inf, False), (math.nan, False),
    ])
    def test_tropical(self, value, expected):
        assert TropicalReals().contains(value) is expected

    @pytest.mark.parametrize("value,expected", [
        (math.inf, True), (-math.inf, False), (1.5, True),
    ])
    def test_min_plus(self, value, expected):
        assert MinPlusReals().contains(value) is expected

    @pytest.mark.parametrize("value,expected", [
        (math.inf, True), (-math.inf, True), (0.0, True), (math.nan, False),
    ])
    def test_completed(self, value, expected):
        assert CompletedReals().contains(value) is expected

    def test_extended_reals_alias(self):
        assert ExtendedReals is CompletedReals

    @pytest.mark.parametrize("value,expected", [
        (0.0, True), (math.inf, True), (-1, False),
    ])
    def test_extended_nonneg(self, value, expected):
        assert ExtendedNonNegativeReals().contains(value) is expected

    @pytest.mark.parametrize("value,expected", [
        (0.0, False), (0.001, True), (math.inf, True),
    ])
    def test_positive_extended(self, value, expected):
        assert PositiveExtendedReals().contains(value) is expected

    def test_booleans(self):
        d = BooleanDomain()
        assert d.contains(True) and d.contains(False)
        assert not d.contains(1)  # ints are not booleans here

    def test_gf2(self):
        d = FiniteField2()
        assert d.contains(0) and d.contains(1)
        assert not d.contains(2) and not d.contains(0.0)

    def test_mod_n(self):
        d = IntegersModN(6)
        assert d.contains(0) and d.contains(5)
        assert not d.contains(6) and not d.contains(-1)

    def test_mod_n_rejects_bad_modulus(self):
        with pytest.raises(DomainError):
            IntegersModN(0)

    def test_powerset(self):
        d = PowerSetDomain({"a", "b"})
        assert d.contains(frozenset())
        assert d.contains({"a"})
        assert not d.contains({"z"})
        assert not d.contains("a")

    def test_bounded_range(self):
        d = BoundedIntegerRange(-2, 2)
        assert d.contains(-2) and d.contains(2)
        assert not d.contains(3)
        with pytest.raises(DomainError):
            BoundedIntegerRange(3, 2)

    def test_strings_bounded(self):
        d = StringDomain(max_len=3)
        assert d.contains("") and d.contains("abc")
        assert not d.contains("abcd")
        assert not d.contains("ABC")  # uppercase not in alphabet
        assert not d.contains("\0")   # nul excluded by default

    def test_strings_with_nul(self):
        d = StringDomain(max_len=3, include_nul=True)
        assert d.contains("\0")

    def test_strings_unbounded(self):
        d = StringDomain(max_len=None)
        assert d.contains("a" * 1000)
        with pytest.raises(DomainError):
            _ = d.top

    def test_strings_top(self):
        assert StringDomain(max_len=4).top == "zzzz"

    def test_strings_bad_length(self):
        with pytest.raises(DomainError):
            StringDomain(max_len=0)


class TestEnumeration:
    def test_booleans_enumerate(self):
        assert list(BooleanDomain().elements()) == [False, True]

    def test_gf2_enumerate(self):
        assert list(FiniteField2().elements()) == [0, 1]

    def test_mod_n_enumerate(self):
        assert list(IntegersModN(4).elements()) == [0, 1, 2, 3]

    def test_powerset_enumerates_all_subsets(self):
        elems = list(PowerSetDomain({"x", "y"}).elements())
        assert len(elems) == 4
        assert frozenset() in elems and frozenset({"x", "y"}) in elems

    def test_infinite_domain_enumeration_raises(self):
        with pytest.raises(DomainError):
            list(Naturals().elements())

    def test_validate_passes_and_raises(self):
        d = Naturals()
        assert d.validate(3) == 3
        with pytest.raises(DomainError):
            d.validate(-1)


class TestSampling:
    @pytest.mark.parametrize("domain", [
        Naturals(), Integers(), NonNegativeReals(), Reals(),
        TropicalReals(), MinPlusReals(), CompletedReals(),
        ExtendedNonNegativeReals(), PositiveExtendedReals(),
        PowerSetDomain({"a", "b", "c"}), StringDomain(),
        BooleanDomain(), FiniteField2(),
    ])
    def test_samples_are_members(self, domain):
        for v in domain.sample(RNG(), 50):
            assert domain.contains(v), f"{v!r} escaped {domain.name}"

    def test_sample_is_deterministic_per_seed(self):
        d = NonNegativeReals()
        assert d.sample(random.Random(7), 10) == d.sample(random.Random(7), 10)

    def test_sample_exclude(self):
        d = Naturals()
        values = d.sample(RNG(), 100, exclude=0)
        assert 0 not in values

    def test_sample_exclude_values(self):
        d = FiniteField2()
        values = d.sample(RNG(), 20, exclude_values=[0])
        assert set(values) == {1}

    def test_sample_impossible_exclusion_raises(self):
        d = BooleanDomain()
        with pytest.raises(DomainError):
            d.sample(RNG(), 5, exclude_values=[False, True])

    def test_pairs_exhaustive_for_finite(self):
        pairs = list(FiniteField2().pairs(RNG(), 3))
        assert len(pairs) == 4  # full Cartesian square regardless of count

    def test_triples_exhaustive_for_finite(self):
        triples = list(BooleanDomain().triples(RNG(), 1))
        assert len(triples) == 8

    def test_pairs_sampled_for_infinite(self):
        pairs = list(Naturals().pairs(RNG(), 25))
        assert len(pairs) == 25


class TestRegistry:
    def test_known_domains_resolve(self):
        for name in list_domains():
            assert get_domain(name).name == name

    def test_unknown_domain(self):
        with pytest.raises(DomainError, match="unknown domain"):
            get_domain("no_such_domain")

    def test_expected_catalog_present(self):
        names = set(list_domains())
        assert {"naturals", "nonnegative_reals", "tropical_reals",
                "completed_reals", "gf2", "booleans"} <= names

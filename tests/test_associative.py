"""Unit tests for repro.arrays.associative (AssociativeArray)."""

from __future__ import annotations

import math

import pytest

from repro.arrays.associative import AssociativeArray
from repro.arrays.keys import KeyError_, KeySet


class TestConstruction:
    def test_keys_derived_from_data(self, tiny_array):
        assert tuple(tiny_array.row_keys) == ("r1", "r2")
        assert tuple(tiny_array.col_keys) == ("c1", "c2", "c3")

    def test_explicit_keys_allow_empty_rows(self):
        a = AssociativeArray({("r1", "c1"): 1},
                             row_keys=["r1", "r2"], col_keys=["c1"])
        assert a.shape == (2, 1) and a.nnz == 1

    def test_zero_values_dropped(self):
        a = AssociativeArray({("r", "c"): 0, ("r", "d"): 5})
        assert a.nnz == 1 and ("r", "c") not in a.nonzero_pattern()

    def test_custom_zero_dropped(self):
        a = AssociativeArray({("r", "c"): math.inf, ("r", "d"): 5},
                             zero=math.inf)
        assert a.nnz == 1

    def test_key_outside_keyset_rejected(self):
        with pytest.raises(KeyError_, match="row key"):
            AssociativeArray({("r", "c"): 1}, row_keys=["x"], col_keys=["c"])
        with pytest.raises(KeyError_, match="column key"):
            AssociativeArray({("r", "c"): 1}, row_keys=["r"], col_keys=["x"])

    def test_empty_constructor(self):
        a = AssociativeArray.empty(["r1"], ["c1", "c2"], zero=-1)
        assert a.shape == (1, 2) and a.nnz == 0 and a.zero == -1

    def test_from_triples(self):
        a = AssociativeArray.from_triples([("r", "c", 1), ("r", "d", 2)])
        assert a.get("r", "d") == 2

    def test_from_triples_duplicate_rejected(self):
        with pytest.raises(KeyError_, match="duplicate"):
            AssociativeArray.from_triples([("r", "c", 1), ("r", "c", 2)])

    def test_from_triples_combine(self):
        a = AssociativeArray.from_triples(
            [("r", "c", 1), ("r", "c", 2), ("r", "c", 4)],
            combine=lambda x, y: x + y)
        assert a.get("r", "c") == 7

    def test_from_dense(self):
        a = AssociativeArray.from_dense(
            [[1, 0], [0, 2]], ["r1", "r2"], ["c1", "c2"])
        assert a.get("r1", "c1") == 1 and a.get("r2", "c2") == 2
        assert a.nnz == 2

    def test_from_dense_shape_mismatch(self):
        with pytest.raises(KeyError_, match="rows"):
            AssociativeArray.from_dense([[1]], ["r1", "r2"], ["c1"])
        with pytest.raises(KeyError_, match="entries"):
            AssociativeArray.from_dense([[1, 2]], ["r1"], ["c1"])


class TestAccess:
    def test_get_returns_zero_for_missing(self, tiny_array):
        assert tiny_array.get("r2", "c1") == 0

    def test_get_unknown_key_raises(self, tiny_array):
        with pytest.raises(KeyError_):
            tiny_array.get("zz", "c1")
        with pytest.raises(KeyError_):
            tiny_array.get("r1", "zz")

    def test_getitem_scalar(self, tiny_array):
        assert tiny_array["r1", "c2"] == 2
        assert tiny_array["r2", "c1"] == 0

    def test_getitem_requires_pair(self, tiny_array):
        with pytest.raises(KeyError_):
            tiny_array["r1"]

    def test_getitem_subarray_by_selectors(self, tiny_array):
        sub = tiny_array[":", ["c1", "c2"]]
        assert isinstance(sub, AssociativeArray)
        assert sub.shape == (2, 2) and sub.nnz == 2

    def test_getitem_mixed_scalar_selector(self, tiny_array):
        sub = tiny_array["r1", ["c1", "c3"]]
        assert sub.shape == (1, 2)
        assert sub.get("r1", "c1") == 1

    def test_select_preserves_zero(self):
        a = AssociativeArray({("r", "c"): 1.0}, zero=math.inf)
        assert a.select(":", ":").zero == math.inf

    def test_row_and_col_views(self, tiny_array):
        assert tiny_array.row("r1") == {"c1": 1, "c2": 2}
        assert tiny_array.col("c3") == {"r2": 3}
        with pytest.raises(KeyError_):
            tiny_array.row("nope")
        with pytest.raises(KeyError_):
            tiny_array.col("nope")

    def test_entries_sorted_by_key_order(self):
        a = AssociativeArray({("r2", "c1"): 1, ("r1", "c2"): 2,
                              ("r1", "c1"): 3})
        assert [rc[:2] for rc in a.entries()] == [
            ("r1", "c1"), ("r1", "c2"), ("r2", "c1")]

    def test_values_list(self, tiny_array):
        assert tiny_array.values_list() == [1, 2, 3]

    def test_rows_cols_nonempty(self):
        a = AssociativeArray({("r1", "c1"): 1},
                             row_keys=["r1", "r2"], col_keys=["c1", "c2"])
        assert tuple(a.rows_nonempty()) == ("r1",)
        assert tuple(a.cols_nonempty()) == ("c1",)


class TestStructuralOps:
    def test_transpose_definition(self, tiny_array):
        t = tiny_array.T
        assert t.get("c2", "r1") == 2
        assert t.row_keys == tiny_array.col_keys
        assert t.col_keys == tiny_array.row_keys

    def test_transpose_involution(self, tiny_array):
        assert tiny_array.T.T == tiny_array

    def test_with_zero_reinterprets(self, tiny_array):
        b = tiny_array.with_zero(math.inf)
        assert b.zero == math.inf
        assert b.nonzero_pattern() == tiny_array.nonzero_pattern()

    def test_with_zero_collision_rejected(self, tiny_array):
        with pytest.raises(KeyError_, match="equals the new zero"):
            tiny_array.with_zero(2)  # value 2 is stored

    def test_map_values(self, tiny_array):
        doubled = tiny_array.map_values(lambda v: v * 2)
        assert doubled.get("r1", "c2") == 4

    def test_map_values_drops_new_zeros(self, tiny_array):
        # Map 1 → 0: that entry must disappear.
        mapped = tiny_array.map_values(lambda v: 0 if v == 1 else v)
        assert mapped.nnz == 2

    def test_restrict_values(self, tiny_array):
        big = tiny_array.restrict_values(lambda v: v >= 2)
        assert big.nnz == 2

    def test_prune_to_pattern(self):
        a = AssociativeArray({("r1", "c1"): 1},
                             row_keys=["r1", "r2"], col_keys=["c1", "c2"])
        p = a.prune_to_pattern()
        assert p.shape == (1, 1)

    def test_with_keys_embeds(self, tiny_array):
        bigger = tiny_array.with_keys(row_keys=["r1", "r2", "r3"])
        assert bigger.shape == (3, 3)
        assert bigger.get("r3", "c1") == 0

    def test_with_keys_rejects_missing(self, tiny_array):
        with pytest.raises(KeyError_):
            tiny_array.with_keys(row_keys=["r1"])  # r2 has entries


class TestComparison:
    def test_strict_equality(self, tiny_array):
        same = AssociativeArray(tiny_array.to_dict(),
                                row_keys=tiny_array.row_keys,
                                col_keys=tiny_array.col_keys)
        assert tiny_array == same

    def test_equality_respects_keysets(self, tiny_array):
        other = tiny_array.with_keys(row_keys=["r1", "r2", "r3"])
        assert tiny_array != other

    def test_equality_respects_zero(self, tiny_array):
        other = tiny_array.with_zero(-1)
        assert tiny_array != other

    def test_same_pattern(self, tiny_array):
        doubled = tiny_array.map_values(lambda v: v * 2)
        assert tiny_array.same_pattern(doubled)
        assert not tiny_array.same_pattern(
            tiny_array.restrict_values(lambda v: v > 1))

    def test_allclose(self, tiny_array):
        nudged = tiny_array.map_values(lambda v: v + 1e-12)
        assert tiny_array.allclose(nudged)
        moved = tiny_array.map_values(lambda v: v + 0.5)
        assert not tiny_array.allclose(moved)

    def test_allclose_infinities(self):
        a = AssociativeArray({("r", "c"): math.inf}, zero=0)
        b = AssociativeArray({("r", "c"): math.inf}, zero=0)
        c = AssociativeArray({("r", "c"): -math.inf}, zero=0)
        assert a.allclose(b)
        assert not a.allclose(c)

    def test_unhashable(self, tiny_array):
        with pytest.raises(TypeError):
            hash(tiny_array)

    def test_eq_notimplemented_for_other_types(self, tiny_array):
        assert tiny_array != "not an array"


class TestConversion:
    def test_to_dense(self, tiny_array):
        assert tiny_array.to_dense() == [[1, 2, 0], [0, 0, 3]]

    def test_to_dict_is_copy(self, tiny_array):
        d = tiny_array.to_dict()
        d[("r1", "c1")] = 99
        assert tiny_array.get("r1", "c1") == 1

    def test_str_renders_table(self, tiny_array):
        text = str(tiny_array)
        assert "c1" in text and "r2" in text

    def test_repr(self, tiny_array):
        assert "shape=(2, 3)" in repr(tiny_array)


class TestTransposeFastPath:
    """The dict-backend transpose rides a cached (or freshly promoted)
    columnar form for large arrays instead of rebuilding a dict."""

    def _large(self, zero=0.0, n=400):
        rows = [f"r{i:04d}" for i in range(n)]
        cols = [f"c{i:04d}" for i in range(n // 2)]
        data = {(rows[i], cols[(i * 3) % (n // 2)]): float(i % 9 + 1)
                for i in range(n)}
        return AssociativeArray(data, row_keys=rows, col_keys=cols,
                                zero=zero)

    def test_large_dict_array_transposes_to_numeric(self):
        a = self._large()
        t = a.transpose()
        assert t.backend == "numeric"
        assert t == AssociativeArray(
            {(c, r): v for (r, c), v in a.to_dict().items()},
            row_keys=a.col_keys, col_keys=a.row_keys, zero=a.zero)

    def test_cached_promotion_is_reused_even_when_small(self):
        a = AssociativeArray({("r1", "c1"): 1.0, ("r2", "c2"): 2.0},
                             row_keys=["r1", "r2"], col_keys=["c1", "c2"],
                             zero=0.0)
        assert a.numeric_backend() is not None   # warm the cache
        t = a.transpose()
        assert t.backend == "numeric"
        assert t.get("c2", "r2") == 2.0

    def test_small_dict_array_stays_dict(self):
        a = AssociativeArray({("r1", "c1"): 1}, row_keys=["r1"],
                             col_keys=["c1"], zero=0)
        t = a.transpose()
        assert t.backend == "dict"
        assert isinstance(t.get("c1", "r1"), int)   # exact type kept

    def test_pinned_array_never_promotes(self):
        a = self._large().with_backend("dict")
        t = a.transpose()
        assert t.backend == "dict"
        assert t.pinned        # the pin is inherited, as documented

    def test_exotic_values_fall_back(self):
        n = 300
        rows = [f"r{i:04d}" for i in range(n)]
        data = {(rows[i], "c"): f"s{i}" for i in range(n)}
        a = AssociativeArray(data, row_keys=rows, col_keys=["c"], zero="")
        t = a.transpose()       # promotion fails; generic path serves
        assert t.backend == "dict"
        assert t.get("c", rows[7]) == "s7"

    def test_fast_transpose_round_trips(self):
        a = self._large(zero=math.inf)   # infinity zero is promotable
        assert a.transpose().transpose() == a

"""Edge cases and failure injection across the stack.

Inputs a production system meets eventually: empty everything, unicode
keys, NaN values, degenerate graphs, single-element domains, deep
parallel-edge stacks.
"""

from __future__ import annotations

import math

import pytest

from repro.arrays.associative import AssociativeArray
from repro.arrays.keys import KeySet
from repro.arrays.matmul import multiply
from repro.core.construction import (
    adjacency_array,
    is_adjacency_array_of_graph,
)
from repro.graphs.digraph import EdgeKeyedDigraph
from repro.graphs.incidence import incidence_arrays
from repro.values.semiring import get_op_pair


class TestEmptyEverything:
    def test_empty_array_roundtrips(self):
        a = AssociativeArray.empty([], [])
        assert a.shape == (0, 0) and a.nnz == 0
        assert a.T == a
        assert a.to_dense() == []
        assert str(a) == ""

    def test_empty_times_empty(self):
        pair = get_op_pair("plus_times")
        a = AssociativeArray.empty([], [])
        c = multiply(a, a, pair)
        assert c.nnz == 0

    def test_single_edge_graph(self):
        g = EdgeKeyedDigraph([("only", "u", "v")])
        eout, ein = incidence_arrays(g)
        adj = adjacency_array(eout, ein, get_op_pair("plus_times"))
        assert adj.to_dict() == {("u", "v"): 1}

    def test_empty_keyset_selects(self):
        ks = KeySet()
        assert len(ks.select(":")) == 0
        assert len(ks.starting_with("x")) == 0


class TestUnicodeAndOddKeys:
    def test_unicode_keys_sort_and_select(self):
        a = AssociativeArray({("ключ", "colonne|déjà"): 1,
                              ("キー", "colonne|été"): 2})
        assert a.nnz == 2
        sub = a.select(":", "colonne|*")
        assert sub.nnz == 2

    def test_keys_with_separator_chars(self):
        # Column keys containing ':' or '*' are fine as literal keys when
        # selected via lists.
        a = AssociativeArray({("r", "weird:key*"): 1})
        assert a.select(":", ["weird:key*"]).nnz == 1

    def test_numeric_vertex_keys(self):
        g = EdgeKeyedDigraph([(0, 10, 20), (1, 10, 30)])
        eout, ein = incidence_arrays(g)
        adj = adjacency_array(eout, ein, get_op_pair("plus_times"))
        assert adj.get(10, 20) == 1


class TestNaNHandling:
    def test_nan_values_are_stored_not_dropped(self):
        a = AssociativeArray({("r", "c"): math.nan})
        assert a.nnz == 1  # NaN != 0 → stored

    def test_nan_zero_array(self):
        nan = math.nan
        a = AssociativeArray({("r", "c"): 1.0, ("r", "d"): nan},
                             zero=nan)
        # The NaN entry equals the NaN zero (NaN-aware) and is dropped.
        assert a.nnz == 1

    def test_allclose_with_nan_values(self):
        a = AssociativeArray({("r", "c"): math.nan})
        b = AssociativeArray({("r", "c"): math.nan})
        assert a.allclose(b)


class TestDeepParallelStacks:
    def test_fifty_parallel_edges(self):
        g = EdgeKeyedDigraph((f"e{i:03d}", "a", "b") for i in range(50))
        eout, ein = incidence_arrays(g)
        pair = get_op_pair("plus_times")
        adj = adjacency_array(eout, ein, pair)
        assert adj["a", "b"] == 50
        assert is_adjacency_array_of_graph(adj, g)

    def test_fifty_self_loops(self):
        g = EdgeKeyedDigraph((f"e{i:03d}", "v", "v") for i in range(50))
        eout, ein = incidence_arrays(g)
        adj = adjacency_array(eout, ein, get_op_pair("max_min"))
        assert adj["v", "v"] == 1
        assert is_adjacency_array_of_graph(adj, g)


class TestMixedValueTypes:
    def test_int_float_mix_in_one_array(self):
        a = AssociativeArray({("r", "c"): 1, ("r", "d"): 2.5})
        pair = get_op_pair("plus_times")
        b = AssociativeArray({("c", "z"): 2, ("d", "z"): 2},
                             row_keys=["c", "d"], col_keys=["z"])
        c = multiply(a, b, pair, kernel="generic")
        assert c.get("r", "z") == 1 * 2 + 2.5 * 2

    def test_bool_values_with_or_and(self):
        pair = get_op_pair("or_and")
        a = AssociativeArray({("r", "k"): True}, zero=False)
        b = AssociativeArray({("k", "c"): True}, zero=False)
        c = multiply(a, b, pair)
        assert c.get("r", "c") is True


class TestLargeSanity:
    def test_thousand_edge_construction_is_adjacency(self):
        from repro.graphs.generators import rmat_multigraph
        g = rmat_multigraph(8, 1000, seed=123)
        eout, ein = incidence_arrays(g)
        pair = get_op_pair("plus_times")
        adj = adjacency_array(eout, ein, pair)
        assert is_adjacency_array_of_graph(adj, g)
        # Total weight equals edge count (unit values).
        from repro.arrays.reductions import total_reduce
        from repro.values.operations import PLUS
        assert total_reduce(adj, PLUS) == g.num_edges

    def test_kernels_agree_at_scale(self):
        from repro.arrays.sparse_backend import multiply_vectorized
        from repro.arrays.matmul import multiply_generic
        from repro.graphs.generators import rmat_multigraph
        g = rmat_multigraph(7, 600, seed=5)
        eout, ein = incidence_arrays(g)
        pair = get_op_pair("plus_times")
        a = eout.map_values(float).transpose()
        b = ein.map_values(float)
        ref = multiply_generic(a, b, pair)
        assert multiply_vectorized(a, b, pair,
                                   kernel="scipy").allclose(ref)
        assert multiply_vectorized(a, b, pair,
                                   kernel="reduceat").allclose(ref)

"""Tests for row-partitioned parallel multiplication."""

from __future__ import annotations

import random

import pytest

from repro.arrays.associative import AssociativeArray
from repro.arrays.keys import KeyError_
from repro.arrays.matmul import MatmulError, multiply
from repro.arrays.parallel import (
    parallel_multiply,
    partition_rows,
    stack_rows,
)
from repro.values.semiring import OpPair, get_op_pair
from repro.values.operations import PLUS, TIMES
from repro.values.domains import NonNegativeReals


def _random_pair(seed, m=20, k=15, n=12, zero=0.0):
    rng = random.Random(seed)
    rows = [f"r{i:02d}" for i in range(m)]
    inner = [f"k{i:02d}" for i in range(k)]
    cols = [f"c{i:02d}" for i in range(n)]
    a = {(r, kk): float(rng.randint(1, 9))
         for r in rows for kk in inner if rng.random() < 0.3}
    b = {(kk, c): float(rng.randint(1, 9))
         for kk in inner for c in cols if rng.random() < 0.3}
    return (AssociativeArray(a, row_keys=rows, col_keys=inner, zero=zero),
            AssociativeArray(b, row_keys=inner, col_keys=cols, zero=zero))


class TestPartition:
    def test_blocks_cover_rows_in_order(self):
        a, _ = _random_pair(1)
        blocks = partition_rows(a, 3)
        covered = [r for blk in blocks for r in blk.row_keys]
        assert covered == list(a.row_keys)

    def test_block_entries_partition_data(self):
        a, _ = _random_pair(1)
        blocks = partition_rows(a, 4)
        merged = {}
        for blk in blocks:
            merged.update(blk.to_dict())
        assert merged == a.to_dict()

    def test_more_parts_than_rows(self):
        a = AssociativeArray({("r1", "c"): 1, ("r2", "c"): 2})
        blocks = partition_rows(a, 10)
        assert len(blocks) == 2

    def test_invalid_parts(self):
        a, _ = _random_pair(1)
        with pytest.raises(ValueError):
            partition_rows(a, 0)

    def test_empty_array(self):
        a = AssociativeArray.empty([], ["c"])
        assert partition_rows(a, 3) == [a]


class TestStack:
    def test_roundtrip(self):
        a, _ = _random_pair(2)
        assert stack_rows(partition_rows(a, 5)) == a

    def test_rejects_column_mismatch(self):
        x = AssociativeArray({("r1", "c"): 1})
        y = AssociativeArray({("r2", "d"): 1})
        with pytest.raises(KeyError_, match="column"):
            stack_rows([x, y])

    def test_rejects_zero_mismatch(self):
        x = AssociativeArray({("r1", "c"): 1}, zero=0)
        y = AssociativeArray({("r2", "c"): 1},
                             row_keys=["r2"], col_keys=["c"], zero=-1)
        with pytest.raises(KeyError_, match="zero"):
            stack_rows([x, y])

    def test_rejects_duplicate_rows(self):
        x = AssociativeArray({("r1", "c"): 1})
        with pytest.raises(KeyError_, match="duplicate"):
            stack_rows([x, x])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            stack_rows([])


class TestParallelMultiply:
    @pytest.mark.parametrize("pair_name", ["plus_times", "min_plus",
                                           "max_min"])
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_equals_serial(self, pair_name, executor):
        pair = get_op_pair(pair_name)
        a, b = _random_pair(3, zero=float(pair.zero))
        want = multiply(a, b, pair, kernel="generic")
        got = parallel_multiply(a, b, pair, n_workers=4,
                                executor=executor, kernel="generic")
        assert got == want

    def test_process_pool(self):
        pair = get_op_pair("plus_times")
        a, b = _random_pair(4)
        want = multiply(a, b, pair, kernel="generic")
        got = parallel_multiply(a, b, pair, n_workers=2,
                                executor="process", kernel="generic")
        assert got == want

    def test_vectorized_kernel_through_threads(self):
        pair = get_op_pair("max_plus")
        a, b = _random_pair(5, zero=float(pair.zero))
        want = multiply(a, b, pair, kernel="generic")
        got = parallel_multiply(a, b, pair, n_workers=3,
                                executor="thread", kernel="reduceat")
        assert got.allclose(want)

    def test_single_worker_shortcut(self):
        pair = get_op_pair("plus_times")
        a, b = _random_pair(6)
        assert parallel_multiply(a, b, pair, n_workers=1) \
            == multiply(a, b, pair)

    def test_unknown_executor(self):
        pair = get_op_pair("plus_times")
        a, b = _random_pair(7)
        with pytest.raises(MatmulError, match="executor"):
            parallel_multiply(a, b, pair, executor="gpu")

    def test_unregistered_pair_rejected(self):
        rogue = OpPair("rogue_t", "r", PLUS, TIMES, NonNegativeReals())
        a, b = _random_pair(8)
        with pytest.raises(MatmulError, match="not registered"):
            parallel_multiply(a, b, rogue)

    def test_invalid_workers(self):
        pair = get_op_pair("plus_times")
        a, b = _random_pair(9)
        with pytest.raises(ValueError):
            parallel_multiply(a, b, pair, n_workers=0)

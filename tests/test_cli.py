"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_commands_parse(self):
        p = build_parser()
        assert p.parse_args(["figures"]).command == "figures"
        assert p.parse_args(["catalog"]).command == "catalog"
        args = p.parse_args(["certify", "plus_times", "--seed", "3"])
        assert args.pair == "plus_times" and args.seed == 3
        args = p.parse_args(["music", "--pair", "max_min", "--weighted"])
        assert args.weighted is True
        assert p.parse_args(["render", "fig3"]).figure == "fig3"


class TestCatalog:
    def test_catalog_lists_pairs(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "plus_times" in out
        assert "UNSAFE" in out and "SAFE" in out


class TestCertify:
    def test_safe_pair_exit_zero(self, capsys):
        assert main(["certify", "plus_times"]) == 0
        assert "SAFE" in capsys.readouterr().out

    def test_unsafe_pair_exit_one_with_witness(self, capsys):
        assert main(["certify", "gf2_xor_and"]) == 1
        out = capsys.readouterr().out
        assert "UNSAFE" in out
        assert "witness graph edges" in out
        assert "Eout" in out

    def test_unknown_pair_exit_two(self, capsys):
        assert main(["certify", "no_such_pair"]) == 2
        assert "unknown op-pair" in capsys.readouterr().err


class TestMusic:
    def test_fig3_values(self, capsys):
        assert main(["music", "--pair", "plus_times"]) == 0
        out = capsys.readouterr().out
        assert "Genre|Electronic" in out
        assert "13" in out  # the Pop row value

    def test_fig5_weighted(self, capsys):
        assert main(["music", "--pair", "plus_times", "--weighted"]) == 0
        out = capsys.readouterr().out
        assert "26" in out  # Pop row ×2

    def test_nonzero_zero_pair(self, capsys):
        assert main(["music", "--pair", "min_plus"]) == 0
        assert "2" in capsys.readouterr().out

    def test_unknown_pair(self, capsys):
        assert main(["music", "--pair", "bogus"]) == 2


class TestRender:
    @pytest.mark.parametrize("figure", ["fig2", "fig4", "structured"])
    def test_render_figures(self, capsys, figure):
        assert main(["render", figure]) == 0
        assert len(capsys.readouterr().out) > 50


class TestFigures:
    def test_full_run_exit_zero(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "ALL MATCHED" in out


class TestServeParser:
    def test_serve_args(self):
        p = build_parser()
        args = p.parse_args(["serve", "--source", "adj.tsv",
                             "--port", "0", "--cache-size", "64"])
        assert args.command == "serve"
        assert args.source == "adj.tsv" and args.port == 0
        assert args.cache_size == 64 and args.unsafe_ok is False

    def test_query_args(self):
        p = build_parser()
        args = p.parse_args(["query", "khop", "alice", "-k", "2",
                             "--query-pair", "min_plus"])
        assert args.command == "query"
        assert args.kind == "khop" and args.vertex == "alice"
        assert args.k == 2 and args.query_pair == "min_plus"

    def test_query_kinds_constrained(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "pagerank"])


class TestServeCommand:
    def test_missing_source_exit_two(self, capsys):
        assert main(["serve", "--source", "/no/such/file.tsv"]) == 2
        assert "no such source" in capsys.readouterr().err

    def test_unsafe_pair_refused_exit_one(self, tmp_path, capsys):
        p = tmp_path / "adj.tsv"
        p.write_text("a\tb\t1\n", encoding="utf-8")
        assert main(["serve", "--source", str(p),
                     "--pair", "int_plus_times"]) == 1
        assert "refused" in capsys.readouterr().err

    def test_unknown_pair_exit_one(self, tmp_path, capsys):
        p = tmp_path / "adj.tsv"
        p.write_text("a\tb\t1\n", encoding="utf-8")
        assert main(["serve", "--source", str(p),
                     "--pair", "bogus"]) == 1
        assert "unknown op-pair" in capsys.readouterr().err


class TestLoadService:
    def test_tsv_source(self, tmp_path):
        from repro.cli import load_service
        p = tmp_path / "adj.tsv"
        p.write_text("a\tb\t2.5\n", encoding="utf-8")
        svc = load_service(str(p), "plus_times")
        assert svc.neighbors("a") == {"b": 2.5}

    def test_manifest_source_uses_recorded_pair(self, tmp_path):
        from repro.cli import load_service
        from repro.shard import ShardedAdjacencyPlan
        from repro.values.semiring import get_op_pair
        wd = tmp_path / "shards"
        plan = ShardedAdjacencyPlan(get_op_pair("max_min"), n_shards=2,
                                    workdir=wd, keep_workdir=True)
        plan.partition([("e1", "a", "b", 5.0, 9.0),
                        ("e2", "a", "b", 2.0, 3.0)])
        # --pair not passed → manifest's max_min wins.
        svc = load_service(str(wd))
        assert svc.op_pair.name == "max_min"
        assert svc.neighbors("a") == {"b": 5.0}
        # An explicit --pair overrides the manifest.
        svc = load_service(str(wd), "plus_times")
        assert svc.op_pair.name == "plus_times"


class TestExplain:
    @staticmethod
    def _incidence_pair(tmp_path):
        from repro.arrays.io import write_tsv_triples
        from repro.graphs.generators import rmat_multigraph
        from repro.graphs.incidence import incidence_arrays
        graph = rmat_multigraph(6, 80, seed=4)
        eout, ein = incidence_arrays(graph)
        po, pi = tmp_path / "eout.tsv", tmp_path / "ein.tsv"
        write_tsv_triples(eout, po)
        write_tsv_triples(ein, pi)
        return str(po), str(pi)

    def test_explain_names_rewrites_and_licenses(self, tmp_path, capsys):
        po, pi = self._incidence_pair(tmp_path)
        assert main(["explain", po, pi]) == 0
        out = capsys.readouterr().out
        assert "fuse_incidence_adjacency" in out
        assert "licensed by:" in out
        assert "zero-sum-free" in out
        assert "incidence_to_adjacency[+.×]" in out

    def test_explain_khop_shares_subtree_and_executes(self, tmp_path,
                                                      capsys):
        po, pi = self._incidence_pair(tmp_path)
        assert main(["explain", po, pi, "--khop", "3", "--execute"]) == 0
        out = capsys.readouterr().out
        assert "(shared node" in out      # CSE across the hop chain
        assert "executed in" in out

    def test_explain_reduce_fusion(self, tmp_path, capsys):
        po, pi = self._incidence_pair(tmp_path)
        assert main(["explain", po, pi, "--reduce", "rows"]) == 0
        assert "reduce_into_matmul" in capsys.readouterr().out

    def test_explain_budget_routes_to_shard(self, tmp_path, capsys):
        po, pi = self._incidence_pair(tmp_path)
        assert main(["explain", po, pi, "--budget", "1"]) == 0
        assert "shard executor" in capsys.readouterr().out

    def test_explain_no_optimize_keeps_shape(self, tmp_path, capsys):
        po, pi = self._incidence_pair(tmp_path)
        assert main(["explain", po, pi, "--no-optimize"]) == 0
        out = capsys.readouterr().out
        assert "applied rewrites: none" in out
        assert "transpose" in out

    def test_explain_unknown_pair_exit_two(self, tmp_path, capsys):
        po, pi = self._incidence_pair(tmp_path)
        assert main(["explain", po, pi, "--pair", "bogus"]) == 2
        assert "unknown op-pair" in capsys.readouterr().err

    def test_explain_missing_file_exit_two(self, tmp_path, capsys):
        assert main(["explain", str(tmp_path / "nope.tsv"),
                     str(tmp_path / "nada.tsv")]) == 2
        assert "cannot load" in capsys.readouterr().err


class TestTraceCLI:
    def _adjacency_tsv(self, tmp_path):
        path = tmp_path / "adj.tsv"
        path.write_text("a\tb\t1.0\nb\tc\t1.0\nc\td\t1.0\na\tc\t1.0\n",
                        encoding="utf-8")
        return str(path)

    def test_trace_prints_span_tree(self, tmp_path, capsys):
        src = self._adjacency_tsv(tmp_path)
        assert main(["trace", "--source", src, "--vertex", "a",
                     "-k", "3"]) == 0
        out = capsys.readouterr().out
        assert "khop(vertex='a', k=3)" in out
        assert "trace t" in out
        assert "service.query" in out
        assert "expr.plan" in out and "expr.execute" in out
        assert "kernel" in out

    def test_trace_default_vertex_and_json(self, tmp_path, capsys):
        import json as _json
        src = self._adjacency_tsv(tmp_path)
        assert main(["trace", "--source", src, "--json"]) == 0
        doc = _json.loads(capsys.readouterr().out)
        assert doc["name"] == "service.query"
        assert doc["attrs"]["kind"] == "khop"
        assert doc["children"]

    def test_trace_missing_source_exit_two(self, tmp_path, capsys):
        assert main(["trace", "--source",
                     str(tmp_path / "nope.tsv")]) == 2
        assert "no such source" in capsys.readouterr().err

    def test_trace_unsafe_pair_refused(self, tmp_path, capsys):
        src = self._adjacency_tsv(tmp_path)
        assert main(["trace", "--source", src,
                     "--pair", "gf2_xor_and"]) == 1
        err = capsys.readouterr().err
        assert "refused" in err and "--unsafe-ok" in err


class TestBenchCLI:
    def _run_doc(self, tmp_path, name, cold_ms):
        import json as _json
        doc = {"run_id": name, "manifest": {}, "results": {},
               "headline": {"serve": {"khop_cold_ms": {
                   "value": cold_ms, "direction": "lower",
                   "unit": "ms"}}}}
        path = tmp_path / f"BENCH_{name}.json"
        path.write_text(_json.dumps(doc), encoding="utf-8")
        return str(path)

    def test_bench_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "bench_shard" in out and "bench_serve" in out

    def test_compare_ok_exit_zero(self, tmp_path, capsys):
        a = self._run_doc(tmp_path, "base", 10.0)
        b = self._run_doc(tmp_path, "cand", 11.0)   # +10% < 20%
        assert main(["bench", "--compare", a, b]) == 0
        out = capsys.readouterr().out
        assert "verdict: OK" in out

    def test_compare_regression_exit_one(self, tmp_path, capsys):
        a = self._run_doc(tmp_path, "base", 10.0)
        b = self._run_doc(tmp_path, "cand", 15.0)   # +50% > 20%
        assert main(["bench", "--compare", a, b]) == 1
        out = capsys.readouterr().out
        assert "verdict: REGRESSION" in out
        assert "khop_cold_ms" in out

    def test_compare_threshold_widens_gate(self, tmp_path, capsys):
        a = self._run_doc(tmp_path, "base", 10.0)
        b = self._run_doc(tmp_path, "cand", 15.0)
        assert main(["bench", "--compare", a, b,
                     "--threshold", "0.6"]) == 0
        assert "threshold 60%" in capsys.readouterr().out

    def test_compare_unreadable_run_exit_two(self, tmp_path, capsys):
        a = self._run_doc(tmp_path, "base", 10.0)
        assert main(["bench", "--compare", a,
                     str(tmp_path / "missing.json")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_threshold_without_compare_exit_two(self, capsys):
        assert main(["bench", "--threshold", "0.2"]) == 2
        assert "--compare" in capsys.readouterr().err

    def test_bench_runs_dummy_dir(self, tmp_path, capsys):
        bench_dir = tmp_path / "benchmarks"
        bench_dir.mkdir()
        (bench_dir / "bench_tiny.py").write_text(
            "def run(quick):\n"
            "    return {'v': 1.0}\n"
            "def headline(report):\n"
            "    return {'v': {'value': report['v'],\n"
            "                  'direction': 'lower', 'unit': 's'}}\n"
            "def main(argv=None):\n"
            "    return 0\n", encoding="utf-8")
        out = tmp_path / "runs"
        assert main(["bench", "bench_tiny", "--quick",
                     "--outdir", str(out),
                     "--bench-dir", str(bench_dir)]) == 0
        printed = capsys.readouterr().out
        assert "Headline metrics" in printed
        assert "wrote" in printed
        assert list(out.glob("BENCH_*.json"))
        assert (out / "report.md").exists()


class TestLoadgenCLI:
    @pytest.fixture()
    def tsv(self, tmp_path):
        p = tmp_path / "adj.tsv"
        p.write_text("a\tb\t2.0\nb\tc\t3.0\nc\ta\t1.0\n",
                     encoding="utf-8")
        return p

    def test_record_writes_workload(self, tsv, tmp_path, capsys):
        out = tmp_path / "wl.jsonl"
        assert main(["loadgen", "record", "--source", str(tsv),
                     "-o", str(out), "--ops", "20",
                     "--mix", "neighbors=1"]) == 0
        printed = capsys.readouterr().out
        assert "20 ops" in printed and "neighbors=20" in printed
        from repro.obs.loadgen import Workload
        wl = Workload.load(out)
        assert len(wl) == 20
        assert wl.kinds() == {"neighbors": 20}

    def test_record_is_deterministic(self, tsv, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        for out in (a, b):
            assert main(["loadgen", "record", "--source", str(tsv),
                         "-o", str(out), "--ops", "15",
                         "--seed", "9"]) == 0
        assert a.read_text() == b.read_text()

    def test_replay_text_and_json(self, tsv, tmp_path, capsys):
        wl = tmp_path / "wl.jsonl"
        assert main(["loadgen", "record", "--source", str(tsv),
                     "-o", str(wl), "--ops", "10",
                     "--mix", "neighbors=1"]) == 0
        capsys.readouterr()
        assert main(["loadgen", "replay", str(wl),
                     "--source", str(tsv), "--rate", "500",
                     "--process", "fixed", "--threads", "2"]) == 0
        out = capsys.readouterr().out
        assert "corrected (open-loop)" in out
        assert "service-time (naive)" in out
        assert main(["loadgen", "replay", str(wl),
                     "--source", str(tsv), "--rate", "500",
                     "--process", "fixed", "--json"]) == 0
        import json as _json
        doc = _json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.loadgen.replay/1"
        assert doc["requests"] == 10

    def test_sweep_synthesizes_and_reports(self, tsv, tmp_path, capsys):
        report = tmp_path / "sweep.json"
        assert main(["loadgen", "sweep", "--source", str(tsv),
                     "--rates", "300,600", "--duration", "0.05",
                     "--ops", "30", "--mix", "neighbors=1",
                     "--warmup", "5", "--out", str(report)]) == 0
        out = capsys.readouterr().out
        assert "max sustainable throughput under SLO" in out
        import json as _json
        doc = _json.loads(report.read_text())
        assert doc["schema"] == "repro.loadgen.sweep/1"
        assert doc["rates"] == [300.0, 600.0]

    def test_replay_missing_workload_exit_two(self, tsv, capsys):
        assert main(["loadgen", "replay", "/nope/wl.jsonl",
                     "--source", str(tsv)]) == 2
        assert "cannot read workload" in capsys.readouterr().err

    def test_record_bad_mix_exit_two(self, tsv, tmp_path, capsys):
        assert main(["loadgen", "record", "--source", str(tsv),
                     "-o", str(tmp_path / "x.jsonl"),
                     "--mix", "frobnicate=1"]) == 2
        assert "unknown query kind" in capsys.readouterr().err

    def test_sweep_url_without_workload_exit_two(self, capsys):
        assert main(["loadgen", "sweep",
                     "--url", "http://127.0.0.1:1"]) == 2
        assert "requires --workload" in capsys.readouterr().err

    def test_source_and_url_mutually_exclusive(self, tsv, tmp_path,
                                               capsys):
        wl = tmp_path / "wl.jsonl"
        assert main(["loadgen", "record", "--source", str(tsv),
                     "-o", str(wl), "--ops", "5"]) == 0
        capsys.readouterr()
        assert main(["loadgen", "replay", str(wl),
                     "--source", str(tsv),
                     "--url", "http://127.0.0.1:1"]) == 1
        assert "mutually exclusive" in capsys.readouterr().err

    def test_unsafe_pair_refused(self, tsv, tmp_path, capsys):
        assert main(["loadgen", "record", "--source", str(tsv),
                     "--pair", "gf2_xor_and",
                     "-o", str(tmp_path / "x.jsonl")]) == 1
        err = capsys.readouterr().err
        assert "refused" in err and "--unsafe-ok" in err


class TestProfileCLI:
    @pytest.fixture(autouse=True)
    def _no_leftover_session(self):
        from repro.obs.profile import ProfileError, stop_profile
        yield
        try:
            stop_profile()
        except ProfileError:
            pass

    @pytest.fixture()
    def tsv(self, tmp_path):
        p = tmp_path / "adj.tsv"
        p.write_text("".join(f"v{i}\tv{(i * 3 + 1) % 60}\t1.0\n"
                             for i in range(60)), encoding="utf-8")
        return p

    def test_profile_args_parse(self):
        parser = build_parser()
        args = parser.parse_args(["profile", "start", "--hz", "50",
                                  "--memory"])
        assert args.profile_command == "start"
        assert args.hz == 50.0 and args.memory is True
        args = parser.parse_args(["profile", "dump", "--source", "x.tsv",
                                  "--seconds", "0.5", "-k", "2"])
        assert args.seconds == 0.5 and args.k == 2
        args = parser.parse_args(["profile", "diff", "a.json", "b.json",
                                  "--top", "5"])
        assert args.baseline == "a.json" and args.top == 5

    def test_dump_local_workload(self, tsv, tmp_path, capsys):
        collapsed = tmp_path / "prof.collapsed"
        flame = tmp_path / "prof.html"
        assert main(["profile", "dump", "--source", str(tsv),
                     "--seconds", "0.5", "-k", "3",
                     "-o", str(collapsed), "--flame", str(flame)]) == 0
        out = capsys.readouterr().out
        assert "khop(k=3)" in out and "uncached" in out
        assert "sampler overhead" in out
        assert "hottest functions" in out
        text = collapsed.read_text()
        assert text.strip(), "collapsed dump is empty"
        # Every line parses back; the dump round-trips into diff input.
        from repro.obs.profile import parse_collapsed
        assert parse_collapsed(text)
        assert "<!doctype html" in flame.read_text().lower()

    def test_dump_local_json(self, tsv, capsys):
        import json as _json
        assert main(["profile", "dump", "--source", str(tsv),
                     "--seconds", "0.4", "--json"]) == 0
        doc = _json.loads(capsys.readouterr().out)
        assert doc["samples"] >= 0
        assert "overhead_ratio" in doc and "top_functions" in doc

    def test_dump_needs_exactly_one_target(self, tsv, capsys):
        assert main(["profile", "dump"]) == 2
        assert "one of --url or --source" in capsys.readouterr().err
        assert main(["profile", "dump", "--source", str(tsv),
                     "--url", "http://127.0.0.1:1"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_dump_missing_source_exit_two(self, tmp_path, capsys):
        assert main(["profile", "dump", "--source",
                     str(tmp_path / "nope.tsv")]) == 2

    def test_diff_collapsed_files(self, tmp_path, capsys):
        base = tmp_path / "base.collapsed"
        cand = tmp_path / "cand.collapsed"
        base.write_text("main;hot 50\nmain;warm 50\n")
        cand.write_text("main;hot 90\nmain;warm 10\n")
        assert main(["profile", "diff", str(base), str(cand)]) == 0
        out = capsys.readouterr().out
        assert "most regressed first" in out
        assert "+40.00" in out and "hot" in out

    def test_diff_bench_run_docs(self, tmp_path, capsys):
        import json as _json
        docs = []
        for name, hot in (("base", 10), ("cand", 80)):
            p = tmp_path / f"BENCH_{name}.json"
            p.write_text(_json.dumps({"profile": {"functions": {
                "hot": {"self": hot, "total": 100},
                "other": {"self": 100 - hot, "total": 100}}}}))
            docs.append(str(p))
        assert main(["profile", "diff", *docs]) == 0
        assert "hot" in capsys.readouterr().out

    def test_diff_unreadable_exit_two(self, tmp_path, capsys):
        ok = tmp_path / "ok.collapsed"
        ok.write_text("main 1\n")
        assert main(["profile", "diff", str(ok),
                     str(tmp_path / "missing.json")]) == 2

    def test_start_unreachable_server_exit_one(self, capsys):
        assert main(["profile", "start",
                     "--url", "http://127.0.0.1:1"]) == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_trace_list_unreachable_exit_one(self, capsys):
        assert main(["trace", "--list",
                     "--url", "http://127.0.0.1:1"]) == 1
        assert "cannot reach" in capsys.readouterr().err

"""Unit tests for repro.arrays.matmul (Definition I.3)."""

from __future__ import annotations

import math

import pytest

from repro.arrays.associative import AssociativeArray
from repro.arrays.matmul import MatmulError, multiply, multiply_generic
from repro.values.semiring import get_op_pair

from tests.helpers import SAFE_NUMERIC_PAIRS


def _arr(data, rows, cols, zero=0):
    return AssociativeArray(data, row_keys=rows, col_keys=cols, zero=zero)


class TestConformability:
    def test_inner_keys_must_match(self):
        a = _arr({("r", "k1"): 1}, ["r"], ["k1"])
        b = _arr({("k2", "c"): 1}, ["k2"], ["c"])
        with pytest.raises(MatmulError, match="inner key sets"):
            multiply(a, b, get_op_pair("plus_times"))

    def test_unknown_mode(self):
        a = _arr({("r", "k"): 1}, ["r"], ["k"])
        b = _arr({("k", "c"): 1}, ["k"], ["c"])
        with pytest.raises(MatmulError, match="unknown mode"):
            multiply(a, b, get_op_pair("plus_times"), mode="lazy")


class TestHandComputed:
    """2×2 by 2×2 products, worked by hand."""

    A = _arr({("x", "k1"): 2, ("x", "k2"): 3, ("y", "k1"): 4},
             ["x", "y"], ["k1", "k2"])
    B = _arr({("k1", "u"): 5, ("k2", "u"): 7, ("k2", "v"): 1},
             ["k1", "k2"], ["u", "v"])

    def test_plus_times(self):
        c = multiply(self.A, self.B, get_op_pair("plus_times"),
                     kernel="generic")
        # c(x,u) = 2·5 + 3·7 = 31 ; c(x,v) = 3·1 = 3 ; c(y,u) = 4·5 = 20
        assert c.get("x", "u") == 31
        assert c.get("x", "v") == 3
        assert c.get("y", "u") == 20
        assert c.get("y", "v") == 0
        assert c.zero == 0

    def test_max_times(self):
        c = multiply(self.A, self.B, get_op_pair("max_times"),
                     kernel="generic")
        assert c.get("x", "u") == max(2 * 5, 3 * 7)

    def test_min_plus(self):
        a = self.A.with_zero(math.inf)
        b = self.B.with_zero(math.inf)
        c = multiply(a, b, get_op_pair("min_plus"), kernel="generic")
        # c(x,u) = min(2+5, 3+7) = 7
        assert c.get("x", "u") == 7
        assert c.zero == math.inf

    def test_max_min(self):
        c = multiply(self.A, self.B, get_op_pair("max_min"),
                     kernel="generic")
        # c(x,u) = max(min(2,5), min(3,7)) = 3
        assert c.get("x", "u") == 3

    def test_result_key_sets(self):
        c = multiply(self.A, self.B, get_op_pair("plus_times"))
        assert c.row_keys == self.A.row_keys
        assert c.col_keys == self.B.col_keys


class TestSparseVsDense:
    @pytest.mark.parametrize("name", SAFE_NUMERIC_PAIRS)
    def test_modes_agree_for_safe_pairs(self, name):
        pair = get_op_pair(name)
        a = _arr({("x", "k1"): 2, ("x", "k2"): 3, ("y", "k3"): 5},
                 ["x", "y"], ["k1", "k2", "k3"], zero=pair.zero)
        b = _arr({("k1", "u"): 5, ("k2", "u"): 7, ("k3", "v"): 2},
                 ["k1", "k2", "k3"], ["u", "v"], zero=pair.zero)
        sparse = multiply(a, b, pair, mode="sparse", kernel="generic")
        dense = multiply(a, b, pair, mode="dense", kernel="generic")
        assert sparse == dense, name

    def test_modes_diverge_for_non_annihilating_pair(self):
        """nonneg_max_plus: unstored zeros contribute under dense
        evaluation — the Theorem II.1 content, observable."""
        pair = get_op_pair("nonneg_max_plus")
        a = _arr({("x", "k1"): 2}, ["x"], ["k1", "k2"])
        b = _arr({("k2", "u"): 3}, ["k1", "k2"], ["u"])
        sparse = multiply(a, b, pair, mode="sparse", kernel="generic")
        dense = multiply(a, b, pair, mode="dense", kernel="generic")
        # Sparse: no shared inner key → no entry.  Dense: terms
        # max(2⊗0, 0⊗3) = max(2, 3) = 3 → spurious entry.
        assert sparse.nnz == 0
        assert dense.get("x", "u") == 3

    def test_empty_inner_keyset(self):
        pair = get_op_pair("plus_times")
        a = AssociativeArray.empty(["x"], [], zero=0)
        b = AssociativeArray.empty([], ["u"], zero=0)
        for mode in ("sparse", "dense"):
            c = multiply(a, b, pair, mode=mode, kernel="generic")
            assert c.nnz == 0 and c.shape == (1, 1)

    def test_empty_operands(self):
        pair = get_op_pair("plus_times")
        a = AssociativeArray.empty(["x"], ["k"], zero=0)
        b = AssociativeArray.empty(["k"], ["u"], zero=0)
        c = multiply(a, b, pair, kernel="generic")
        assert c.nnz == 0


class TestFoldOrder:
    def test_non_associative_add_folds_in_inner_key_order(self):
        """⊕̃ = a + b + a²b is non-associative: the fold must follow the
        inner key set's total order."""
        pair = get_op_pair("skew_plus_times")
        a = _arr({("x", "k1"): 1, ("x", "k2"): 2, ("x", "k3"): 3},
                 ["x"], ["k1", "k2", "k3"])
        b = _arr({("k1", "u"): 1, ("k2", "u"): 1, ("k3", "u"): 1},
                 ["k1", "k2", "k3"], ["u"])
        c = multiply(a, b, pair, kernel="generic")
        add = pair.add
        expected = add(add(1, 2), 3)   # left fold over k1 < k2 < k3
        assert c.get("x", "u") == expected
        wrong_order = add(add(3, 2), 1)
        assert expected != wrong_order  # the test has teeth

    def test_non_commutative_mul_operand_order(self):
        """⊗ = concat: A-value ⊗ B-value, never the reverse."""
        pair = get_op_pair("max_concat")
        zero = pair.zero
        a = _arr({("x", "k"): "left"}, ["x"], ["k"], zero=zero)
        b = _arr({("k", "u"): "right"}, ["k"], ["u"], zero=zero)
        c = multiply(a, b, pair, kernel="generic")
        assert c.get("x", "u") == "leftright"

    def test_dense_mode_fold_covers_whole_inner_keyset(self):
        pair = get_op_pair("skew_plus_times")
        a = _arr({("x", "k2"): 2}, ["x"], ["k1", "k2"])
        b = _arr({("k2", "u"): 1}, ["k1", "k2"], ["u"])
        dense = multiply(a, b, pair, mode="dense", kernel="generic")
        # Terms in order: k1 → 0⊗0 = 0, k2 → 2⊗1 = 2; fold 0 ⊕̃ 2 = 2.
        assert dense.get("x", "u") == 2


class TestKernelSelection:
    def test_generic_forced_for_non_numeric(self):
        pair = get_op_pair("string_max_min")
        zero = pair.zero
        a = _arr({("x", "k"): "abc"}, ["x"], ["k"], zero=zero)
        b = _arr({("k", "u"): "abd"}, ["k"], ["u"], zero=zero)
        c = multiply(a, b, pair)  # auto must fall back to generic
        assert c.get("x", "u") == "abc"

    def test_explicit_bad_kernel_name(self):
        a = _arr({("x", "k"): 1}, ["x"], ["k"])
        b = _arr({("k", "u"): 1}, ["k"], ["u"])
        with pytest.raises(MatmulError, match="unknown kernel"):
            multiply(a, b, get_op_pair("plus_times"), kernel="turbo")

    def test_dot_method_delegates(self, tiny_array):
        pair = get_op_pair("plus_times")
        other = _arr({("c1", "z"): 1}, ["c1", "c2", "c3"], ["z"])
        c = tiny_array.dot(other, pair)
        assert c.get("r1", "z") == 1


class TestAutoKernelRouting:
    """auto routes certified ufunc pairs to sortmerge; scipy keeps +.×."""

    def _large_numeric_pair(self, pair):
        import random
        rng = random.Random(5)
        rows = [f"r{i}" for i in range(40)]
        inner = [f"k{i}" for i in range(40)]
        cols = [f"c{i}" for i in range(40)]
        da = {(rng.choice(rows), rng.choice(inner)): float(rng.randint(1, 9))
              for _ in range(600)}
        db = {(rng.choice(inner), rng.choice(cols)): float(rng.randint(1, 9))
              for _ in range(600)}
        a = AssociativeArray(da, row_keys=rows, col_keys=inner,
                             zero=pair.zero).with_backend("numeric")
        b = AssociativeArray(db, row_keys=inner, col_keys=cols,
                             zero=pair.zero).with_backend("numeric")
        return a, b

    @pytest.mark.parametrize("name", [n for n in SAFE_NUMERIC_PAIRS
                                      if n != "plus_times"])
    def test_ufunc_pairs_route_to_sortmerge(self, name):
        from repro.arrays.matmul import _pick_kernel
        pair = get_op_pair(name)
        a, b = self._large_numeric_pair(pair)
        assert _pick_kernel(a, b, pair, "sparse") == "sortmerge"

    def test_plus_times_keeps_scipy(self):
        from repro.arrays.matmul import _pick_kernel
        pair = get_op_pair("plus_times")
        a, b = self._large_numeric_pair(pair)
        assert _pick_kernel(a, b, pair, "sparse") == "scipy"

    def test_sortmerge_requires_sparse_mode(self):
        pair = get_op_pair("min_plus")
        a = _arr({("x", "k"): 1.0}, ["x"], ["k"], zero=pair.zero)
        b = _arr({("k", "u"): 1.0}, ["k"], ["u"], zero=pair.zero)
        with pytest.raises(MatmulError, match="sparse semantics"):
            multiply(a, b, pair, kernel="sortmerge", mode="dense")


class TestCalibratedTinyPick:
    """The tiny-operand bailout consults measured per-kernel throughput
    from the calibration store when both contenders have rates."""

    @pytest.fixture
    def isolated_store(self, tmp_path, monkeypatch):
        from repro.obs.calibration import (
            get_calibration_store,
            reset_calibration_store,
        )
        monkeypatch.setenv("REPRO_CALIBRATION_PATH",
                           str(tmp_path / "calibration.json"))
        reset_calibration_store()
        yield get_calibration_store()
        reset_calibration_store()

    def _tiny_operands(self, pair):
        a = _arr({("r0", "k0"): 2.0, ("r0", "k1"): 5.0, ("r1", "k1"): 1.0},
                 ["r0", "r1"], ["k0", "k1"], zero=pair.zero)
        b = _arr({("k0", "c0"): 3.0, ("k1", "c0"): 4.0},
                 ["k0", "k1"], ["c0"], zero=pair.zero)
        return a, b

    def test_uncalibrated_falls_back_to_static_threshold(self,
                                                         isolated_store):
        from repro.arrays.matmul import _pick_kernel
        pair = get_op_pair("min_plus")
        a, b = self._tiny_operands(pair)
        assert _pick_kernel(a, b, pair, "sparse") == "generic"

    def test_rates_favour_generic_on_tiny_terms(self, isolated_store):
        from repro.arrays.matmul import _pick_kernel
        pair = get_op_pair("min_plus")
        a, b = self._tiny_operands(pair)
        # Both calibrated; the handful of terms cannot amortise the
        # vectorised kernel's promotion/call surcharge.
        isolated_store.record("generic", terms=1e6, seconds=1.0)
        isolated_store.record("sortmerge", terms=1e8, seconds=1.0)
        assert _pick_kernel(a, b, pair, "sparse") == "generic"

    def test_rates_can_overrule_static_threshold(self, isolated_store):
        from repro.arrays.matmul import calibrated_tiny_pick
        # Realistic rates (generic ~1 µs/term, sortmerge ~10 ns/term):
        # with enough estimated terms the vectorised kernel wins even
        # below the static nnz threshold ...
        isolated_store.record("generic", terms=1e6, seconds=1.0)
        isolated_store.record("sortmerge", terms=1e8, seconds=1.0)
        assert calibrated_tiny_pick("sortmerge", nnz_a=100.0, nnz_b=100.0,
                                    inner=2.0) == "sortmerge"
        # ... but a negligible term count stays generic (the surcharge
        # dominates).
        assert calibrated_tiny_pick("sortmerge", nnz_a=2.0, nnz_b=2.0,
                                    inner=2.0) == "generic"

    def test_calibration_disabled_returns_none(self, monkeypatch):
        from repro.arrays.matmul import calibrated_tiny_pick
        from repro.obs.calibration import reset_calibration_store
        monkeypatch.setenv("REPRO_CALIBRATION", "0")
        reset_calibration_store()
        try:
            assert calibrated_tiny_pick("sortmerge", 100.0, 100.0, 2.0) \
                is None
        finally:
            monkeypatch.delenv("REPRO_CALIBRATION")
            reset_calibration_store()

"""Tests for the extension algebras (log semiring, Viterbi, lex pairs)."""

from __future__ import annotations

import math
import random

import pytest

from repro.core.certify import certify
from repro.core.construction import (
    adjacency_array,
    is_adjacency_array_of_graph,
)
from repro.graphs.digraph import EdgeKeyedDigraph
from repro.graphs.generators import erdos_renyi_multigraph
from repro.graphs.incidence import incidence_arrays
from repro.values.extensions import (
    LEX_MIN,
    LEX_MIN_PLUS,
    LOG_SEMIRING,
    LOGADDEXP,
    PAIR_PLUS,
    LexicographicPairs,
    UnitInterval,
    VITERBI_MAX_TIMES,
)


class TestDomains:
    def test_unit_interval_membership(self):
        d = UnitInterval()
        assert d.contains(0.0) and d.contains(1.0) and d.contains(0.5)
        assert not d.contains(1.1) and not d.contains(-0.1)

    def test_unit_interval_samples(self):
        d = UnitInterval()
        assert all(d.contains(v)
                   for v in d.sample(random.Random(1), 50))

    def test_lex_pairs_membership(self):
        d = LexicographicPairs()
        assert d.contains((1.0, 2.0))
        assert d.contains(d.TOP)
        assert not d.contains((math.inf, 3.0))   # only TOP has ∞
        assert not d.contains((1.0,))
        assert not d.contains("x")

    def test_lex_pairs_samples(self):
        d = LexicographicPairs()
        assert all(d.contains(v)
                   for v in d.sample(random.Random(1), 50))


class TestOperations:
    def test_logaddexp_matches_math(self):
        got = LOGADDEXP(math.log(0.3), math.log(0.2))
        assert math.isclose(got, math.log(0.5))

    def test_logaddexp_identity(self):
        assert LOGADDEXP(-math.inf, 1.5) == 1.5
        assert LOGADDEXP(1.5, -math.inf) == 1.5

    def test_lex_min_prefers_cost_then_hops(self):
        assert LEX_MIN((3.0, 5.0), (3.0, 2.0)) == (3.0, 2.0)
        assert LEX_MIN((2.0, 9.0), (3.0, 0.0)) == (2.0, 9.0)

    def test_pair_plus_componentwise(self):
        assert PAIR_PLUS((1.0, 2.0), (3.0, 4.0)) == (4.0, 6.0)

    def test_pair_plus_top_annihilates(self):
        top = LexicographicPairs.TOP
        assert PAIR_PLUS((1.0, 2.0), top) == top
        assert PAIR_PLUS(top, (1.0, 2.0)) == top


class TestCertification:
    @pytest.mark.parametrize("pair", [
        LOG_SEMIRING, VITERBI_MAX_TIMES, LEX_MIN_PLUS,
    ], ids=lambda p: p.name)
    def test_certified_safe(self, pair):
        cert = certify(pair, seed=21)
        assert cert.safe, cert.summary()


class TestAdjacencyConstruction:
    def test_log_semiring_sums_probabilities(self):
        """Two parallel edges with probabilities 0.3, 0.2 (stored as
        logs) produce log(0.5)."""
        g = EdgeKeyedDigraph([("e1", "a", "b"), ("e2", "a", "b")])
        pair = LOG_SEMIRING
        eout, ein = incidence_arrays(
            g, zero=pair.zero,
            out_values={"e1": math.log(0.3), "e2": math.log(0.2)},
            in_values=pair.one)
        adj = adjacency_array(eout, ein, pair, kernel="generic")
        assert math.isclose(adj["a", "b"], math.log(0.5))
        assert is_adjacency_array_of_graph(adj, g)

    def test_log_semiring_vectorized_kernel_agrees(self):
        from repro.arrays.matmul import multiply_generic
        from repro.arrays.sparse_backend import multiply_vectorized
        pair = LOG_SEMIRING
        graph = erdos_renyi_multigraph(8, 30, seed=9)
        rng = random.Random(10)
        logs = {k: math.log(rng.uniform(0.05, 1.0))
                for k in graph.edge_keys}
        eout, ein = incidence_arrays(graph, zero=pair.zero,
                                     out_values=logs, in_values=pair.one)
        a, b = eout.transpose(), ein
        ref = multiply_generic(a, b, pair)
        got = multiply_vectorized(a, b, pair, kernel="reduceat")
        assert got.allclose(ref)

    def test_viterbi_selects_most_probable_edge(self):
        g = EdgeKeyedDigraph([("e1", "a", "b"), ("e2", "a", "b")])
        pair = VITERBI_MAX_TIMES
        eout, ein = incidence_arrays(
            g, out_values={"e1": 0.3, "e2": 0.8}, in_values=1.0)
        adj = adjacency_array(eout, ein, pair, kernel="generic")
        assert adj["a", "b"] == 0.8

    def test_lex_pairs_tuple_valued_adjacency(self):
        """Cheapest-then-fewest-hops over parallel routes."""
        g = EdgeKeyedDigraph([("e1", "a", "b"), ("e2", "a", "b"),
                              ("e3", "a", "b")])
        pair = LEX_MIN_PLUS
        eout, ein = incidence_arrays(
            g, zero=pair.zero,
            out_values={"e1": (5.0, 1.0), "e2": (3.0, 4.0),
                        "e3": (3.0, 2.0)},
            in_values=pair.one)
        adj = adjacency_array(eout, ein, pair, kernel="generic")
        # Cost 3 beats cost 5; among cost-3 routes, 2 hops beats 4.
        assert adj["a", "b"] == (3.0, 2.0)
        assert is_adjacency_array_of_graph(adj, g)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_lex_pairs_random_graphs_still_adjacency(self, seed):
        pair = LEX_MIN_PLUS
        graph = erdos_renyi_multigraph(7, 25, seed=seed)
        rng = random.Random(seed + 50)
        keys = list(graph.edge_keys)
        ow = dict(zip(keys, pair.domain.sample(rng, len(keys),
                                               exclude=pair.zero)))
        iw = dict(zip(keys, pair.domain.sample(rng, len(keys),
                                               exclude=pair.zero)))
        eout, ein = incidence_arrays(graph, zero=pair.zero,
                                     out_values=ow, in_values=iw)
        adj = adjacency_array(eout, ein, pair, kernel="generic")
        assert is_adjacency_array_of_graph(adj, graph)

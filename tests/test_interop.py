"""Tests for networkx / edge-list interoperability."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.arrays.associative import AssociativeArray
from repro.graphs.digraph import EdgeKeyedDigraph, GraphError
from repro.graphs.generators import erdos_renyi_multigraph
from repro.graphs.interop import (
    adjacency_to_networkx,
    edge_list,
    from_edge_list,
    from_networkx,
    to_networkx,
)


class TestNetworkxRoundTrip:
    def test_to_networkx_preserves_structure(self, small_graph):
        g = to_networkx(small_graph)
        assert isinstance(g, nx.MultiDiGraph)
        assert g.number_of_edges() == small_graph.num_edges
        assert set(g.nodes) == set(small_graph.vertices)
        assert g.has_edge("a", "b", key="e1")

    def test_roundtrip(self, small_graph):
        assert from_networkx(to_networkx(small_graph)) == small_graph

    @pytest.mark.parametrize("seed", [1, 2])
    def test_roundtrip_random(self, seed):
        g = erdos_renyi_multigraph(8, 25, seed=seed)
        assert from_networkx(to_networkx(g)) == g

    def test_from_plain_digraph_generates_keys(self):
        g = nx.DiGraph([("a", "b"), ("b", "c")])
        out = from_networkx(g)
        assert out.num_edges == 2
        assert out.has_edge_between("a", "b")

    def test_from_multigraph_with_default_keys(self):
        g = nx.MultiDiGraph()
        g.add_edge("a", "b")   # key 0
        g.add_edge("a", "b")   # key 1
        out = from_networkx(g)
        assert len(out.edges_between("a", "b")) == 2

    def test_undirected_rejected(self):
        with pytest.raises(GraphError, match="directed"):
            from_networkx(nx.Graph([("a", "b")]))


class TestAdjacencyExport:
    def test_numeric_weights(self):
        adj = AssociativeArray({("a", "b"): 2.5},
                               row_keys=["a", "b"], col_keys=["a", "b"])
        g = adjacency_to_networkx(adj)
        assert g["a"]["b"]["weight"] == 2.5

    def test_non_numeric_values_ride_along(self):
        adj = AssociativeArray({("a", "b"): frozenset({"w"})},
                               row_keys=["a", "b"], col_keys=["a", "b"],
                               zero=frozenset())
        g = adjacency_to_networkx(adj)
        assert g["a"]["b"]["value"] == frozenset({"w"})
        assert g["a"]["b"]["weight"] == 1

    def test_nodes_cover_both_key_sets(self):
        adj = AssociativeArray({("a", "x"): 1},
                               row_keys=["a"], col_keys=["x"])
        g = adjacency_to_networkx(adj)
        assert set(g.nodes) == {"a", "x"}


class TestEdgeLists:
    def test_roundtrip(self, small_graph):
        assert from_edge_list(edge_list(small_graph)) == small_graph

    def test_ordering(self, small_graph):
        keys = [k for k, _s, _t in edge_list(small_graph)]
        assert keys == sorted(keys)

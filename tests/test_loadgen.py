"""Tests for workload capture, open-loop replay, and SLO sweeps
(repro.obs.loadgen)."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.obs.events import EventLog, get_event_log
from repro.obs.loadgen import (
    DEFAULT_MIX,
    SLO,
    WORKLOAD_SCHEMA,
    LoadgenError,
    ServiceTarget,
    Workload,
    WorkloadRecorder,
    arrival_offsets,
    render_replay,
    render_sweep,
    replay,
    sweep,
    synthesize,
)
from repro.obs.loadgen import _parse_mix
from repro.serve import AdjacencyService
from repro.values.semiring import get_op_pair

PAIR = get_op_pair("plus_times")

VERTICES = [f"v{i}" for i in range(20)]


def small_service() -> AdjacencyService:
    svc = AdjacencyService(PAIR)
    svc.add_edges([("e1", "alice", "bob", 2.0, 1.0),
                   ("e2", "bob", "carol", 3.0, 1.0),
                   ("e3", "alice", "carol", 1.5, 1.0)])
    svc.publish()
    return svc


class CountingTarget:
    """A callable target that records every request it serves."""

    name = "counting"

    def __init__(self, delay: float = 0.0, fail_kinds=()):
        self.delay = delay
        self.fail_kinds = set(fail_kinds)
        self.calls = []
        self._lock = threading.Lock()

    def __call__(self, kind, params):
        with self._lock:
            self.calls.append(kind)
        if self.delay:
            time.sleep(self.delay)
        if kind in self.fail_kinds:
            raise RuntimeError(f"injected failure for {kind}")
        return {"kind": kind}


class TestArrivalSchedules:
    def test_fixed_spacing_is_exact(self):
        offs = arrival_offsets(5, 100.0, process="fixed")
        assert offs == [0.0, 0.01, 0.02, 0.03, 0.04]

    def test_poisson_deterministic_under_seed(self):
        a = arrival_offsets(200, 50.0, process="poisson", seed=7)
        b = arrival_offsets(200, 50.0, process="poisson", seed=7)
        c = arrival_offsets(200, 50.0, process="poisson", seed=8)
        assert a == b
        assert a != c

    def test_poisson_offsets_increase_and_track_rate(self):
        offs = arrival_offsets(2000, 100.0, process="poisson", seed=1)
        assert all(b > a for a, b in zip(offs, offs[1:]))
        # Mean inter-arrival should be near 1/rate (law of large numbers).
        assert offs[-1] / len(offs) == pytest.approx(0.01, rel=0.2)

    def test_bad_args_raise(self):
        with pytest.raises(LoadgenError):
            arrival_offsets(10, 0.0)
        with pytest.raises(LoadgenError):
            arrival_offsets(-1, 10.0)
        with pytest.raises(LoadgenError):
            arrival_offsets(10, 10.0, process="uniform")


class TestMixParsing:
    def test_default_mix_normalised(self):
        weights = _parse_mix(None)
        assert set(weights) == set(DEFAULT_MIX)
        assert sum(weights.values()) == pytest.approx(1.0)

    def test_cli_string_form(self):
        weights = _parse_mix("khop=1, neighbors=3")
        assert weights == {"khop": 0.25, "neighbors": 0.75}

    def test_zero_weights_dropped(self):
        weights = _parse_mix({"khop": 0.0, "neighbors": 2.0})
        assert weights == {"neighbors": 1.0}

    def test_unknown_kind_rejected(self):
        with pytest.raises(LoadgenError, match="unknown query kind"):
            _parse_mix("frobnicate=1")

    def test_malformed_entries_rejected(self):
        with pytest.raises(LoadgenError, match="KIND=WEIGHT"):
            _parse_mix("khop")
        with pytest.raises(LoadgenError, match="must be a number"):
            _parse_mix("khop=lots")
        with pytest.raises(LoadgenError, match="positive weight"):
            _parse_mix({"khop": 0.0})


class TestSynthesize:
    def test_deterministic_under_seed(self):
        a = synthesize(VERTICES, n_ops=100, seed=3)
        b = synthesize(VERTICES, n_ops=100, seed=3)
        c = synthesize(VERTICES, n_ops=100, seed=4)
        assert a.ops == b.ops
        assert a.ops != c.ops

    def test_mix_respected(self):
        wl = synthesize(VERTICES, mix={"khop": 1.0}, n_ops=50, max_k=2)
        assert wl.kinds() == {"khop": 50}
        assert all(1 <= op["params"]["k"] <= 2 for op in wl)

    def test_offsets_follow_nominal_rate(self):
        wl = synthesize(VERTICES, n_ops=10, nominal_rate=10.0)
        assert [op["t"] for op in wl][:3] == [0.0, 0.1, 0.2]

    def test_zero_vertices_rejected(self):
        with pytest.raises(LoadgenError, match="zero"):
            synthesize([])


class TestWorkloadRoundTrip:
    def test_jsonl_round_trip(self, tmp_path):
        wl = synthesize(VERTICES, n_ops=25, seed=5)
        path = wl.save(tmp_path / "wl.jsonl")
        loaded = Workload.load(path)
        assert loaded.ops == wl.ops
        assert loaded.meta["source"] == "synthetic"
        header = json.loads(path.read_text().splitlines()[0])
        assert header["schema"] == WORKLOAD_SCHEMA
        assert header["count"] == 25

    def test_wrong_schema_rejected(self, tmp_path):
        p = tmp_path / "old.jsonl"
        p.write_text('{"schema": "repro.workload/0"}\n{"kind": "stats"}\n')
        with pytest.raises(LoadgenError, match="schema"):
            Workload.load(p)

    def test_malformed_json_rejected(self, tmp_path):
        p = tmp_path / "bad.jsonl"
        p.write_text('{"schema": "%s"}\nnot json\n' % WORKLOAD_SCHEMA)
        with pytest.raises(LoadgenError, match="malformed"):
            Workload.load(p)

    def test_op_without_kind_rejected(self, tmp_path):
        p = tmp_path / "nokind.jsonl"
        p.write_text('{"schema": "%s"}\n{"t": 0.0}\n' % WORKLOAD_SCHEMA)
        with pytest.raises(LoadgenError, match="kind"):
            Workload.load(p)

    def test_empty_and_missing_rejected(self, tmp_path):
        p = tmp_path / "empty.jsonl"
        p.write_text("")
        with pytest.raises(LoadgenError, match="empty"):
            Workload.load(p)
        with pytest.raises(LoadgenError, match="cannot read"):
            Workload.load(tmp_path / "nope.jsonl")


class TestCaptureHook:
    def test_start_capture_records_queries_with_epoch(self):
        svc = small_service()
        rec = svc.start_capture()
        assert svc.capturing
        svc.query("neighbors", vertex="alice")
        svc.query("khop", vertex="alice", k=2)
        svc.query("stats")
        got = svc.stop_capture()
        assert got is rec
        assert not svc.capturing
        wl = rec.workload()
        assert [op["kind"] for op in wl] == ["neighbors", "khop", "stats"]
        assert all(op["epoch"] == 1 for op in wl)
        assert wl.ops[0]["params"] == {"vertex": "alice"}
        assert wl.meta["source"] == "capture"

    def test_capture_emits_lifecycle_events(self):
        svc = small_service()
        log = get_event_log()
        before = log.retention()["last_seq"] or 0
        svc.start_capture(sample_rate=0.5)
        svc.stop_capture()
        kinds = [e["kind"] for e in log.events(since=before)]
        assert "loadgen.capture_started" in kinds
        assert "loadgen.capture_stopped" in kinds

    def test_sampling_and_capacity_are_honest(self):
        rec = WorkloadRecorder(sample_rate=0.5, seed=1, capacity=10)
        for i in range(100):
            rec.record("neighbors", {"vertex": f"v{i}"}, 1)
        stats = rec.stats()
        assert stats["seen"] == 100
        assert stats["kept"] == 10            # capacity-bounded
        assert stats["dropped"] > 0           # and the drops are counted

    def test_recorder_validates_args(self):
        with pytest.raises(LoadgenError):
            WorkloadRecorder(sample_rate=0.0)
        with pytest.raises(LoadgenError):
            WorkloadRecorder(capacity=0)


class TestReplay:
    def test_replay_counts_and_percentiles(self):
        wl = synthesize(VERTICES, mix={"neighbors": 1.0}, n_ops=40)
        target = CountingTarget()
        report = replay(wl, target, rate=400.0, process="fixed",
                        threads=2, emit=False)
        assert report["requests"] == 40
        assert report["errors"] == 0
        assert len(target.calls) == 40
        assert report["corrected"]["p99_ms"] is not None
        # Open-loop honesty: corrected can never flatter service time.
        assert report["corrected"]["p99_ms"] >= \
            report["service_time"]["p99_ms"]
        assert report["achieved_qps"] > 0

    def test_coordinated_omission_correction(self):
        """A single 300ms server stall must inflate the *corrected*
        tail for every request scheduled behind it, while the naive
        service-time tail stays tiny — the whole point of measuring
        from intended start."""
        stalled = {"done": False}

        def target(kind, params):
            if not stalled["done"]:
                stalled["done"] = True
                time.sleep(0.3)

        # 300 requests: the one 300ms *service-time* sample is 0.33% of
        # the population (below p99), but the queue it builds inflates
        # ~150 *corrected* samples (far above p99).
        wl = [{"t": 0.0, "kind": "stats", "params": {}}] * 300
        report = replay(wl, target, rate=500.0, process="fixed",
                        threads=1, emit=False)
        corrected_p99 = report["corrected"]["p99_ms"]
        naive_p99 = report["service_time"]["p99_ms"]
        assert corrected_p99 > 100.0            # the pile-up is visible
        assert naive_p99 < corrected_p99 / 5    # naive forgives the stall
        # The stall also shows up in the slowest-requests table.
        assert report["slowest"][0]["corrected_ms"] >= 100.0

    def test_errors_counted_not_raised(self):
        wl = synthesize(VERTICES, mix={"neighbors": 0.5, "stats": 0.5},
                        n_ops=30, seed=2)
        target = CountingTarget(fail_kinds={"stats"})
        report = replay(wl, target, rate=500.0, process="fixed",
                        emit=False)
        assert report["errors"] == wl.kinds()["stats"]
        assert 0 < report["error_rate"] < 1

    def test_warmup_runs_unmeasured(self):
        wl = synthesize(VERTICES, mix={"neighbors": 1.0}, n_ops=20)
        target = CountingTarget()
        report = replay(wl, target, rate=500.0, process="fixed",
                        warmup=5, emit=False)
        assert report["requests"] == 20          # measured count unchanged
        assert len(target.calls) == 25           # but warmup ops did run

    def test_duration_cycles_workload(self):
        wl = synthesize(VERTICES, mix={"neighbors": 1.0}, n_ops=5)
        target = CountingTarget()
        report = replay(wl, target, rate=1000.0, process="fixed",
                        duration=0.02, emit=False)
        assert report["requests"] == 20          # rate × duration, cycled

    def test_recorded_process_reuses_offsets(self):
        wl = synthesize(VERTICES, mix={"neighbors": 1.0}, n_ops=10,
                        nominal_rate=1000.0)
        target = CountingTarget()
        report = replay(wl, target, process="recorded", threads=1,
                        emit=False)
        assert report["requests"] == 10
        assert report["offered_rate"] == pytest.approx(1000.0, rel=0.2)

    def test_replay_emits_event(self):
        log = get_event_log()
        before = log.retention()["last_seq"] or 0
        wl = synthesize(VERTICES, mix={"neighbors": 1.0}, n_ops=5)
        replay(wl, CountingTarget(), rate=500.0, process="fixed")
        events = log.events(since=before, kind="loadgen.replay")
        assert len(events) == 1
        assert events[0]["requests"] == 5

    def test_service_target_collects_exemplars(self):
        svc = small_service()
        wl = synthesize(["alice", "bob"], mix={"neighbors": 1.0},
                        n_ops=10, seed=1)
        report = replay(wl, ServiceTarget(svc), rate=500.0,
                        process="fixed", emit=False)
        assert report["target"] == "service:plus_times"
        assert "neighbors" in report.get("exemplars", {})

    def test_bad_args_raise(self):
        wl = synthesize(VERTICES, n_ops=5)
        with pytest.raises(LoadgenError, match="no operations"):
            replay([], CountingTarget(), emit=False)
        with pytest.raises(LoadgenError, match="threads"):
            replay(wl, CountingTarget(), threads=0, emit=False)
        with pytest.raises(LoadgenError, match="cannot drive"):
            replay(wl, 42, emit=False)

    def test_render_replay_mentions_both_latencies(self):
        wl = synthesize(VERTICES, mix={"neighbors": 1.0}, n_ops=10)
        report = replay(wl, CountingTarget(), rate=500.0,
                        process="fixed", emit=False)
        text = render_replay(report)
        assert "corrected (open-loop)" in text
        assert "service-time (naive)" in text


class TestSLO:
    def test_breaches_on_p99_and_errors(self):
        slo = SLO(p99_ms=10.0, max_error_rate=0.05)
        ok = {"corrected": {"p99_ms": 9.0}, "error_rate": 0.0}
        assert slo.breaches(ok) == []
        slow = {"corrected": {"p99_ms": 50.0}, "error_rate": 0.0}
        assert "p99" in slo.breaches(slow)[0]
        flaky = {"corrected": {"p99_ms": 1.0}, "error_rate": 0.5}
        assert "error rate" in slo.breaches(flaky)[0]


class TestSweep:
    def test_fast_target_never_saturates(self):
        wl = synthesize(VERTICES, mix={"neighbors": 1.0}, n_ops=50)
        doc = sweep(wl, CountingTarget(), rates=[200.0, 400.0],
                    duration=0.05, emit=False)
        assert doc["saturated"] is False
        assert doc["breach"] is None
        assert len(doc["steps"]) == 2
        assert doc["sustainable_qps"] > 0

    def test_slow_target_breaches_and_stops(self):
        wl = synthesize(VERTICES, mix={"neighbors": 1.0}, n_ops=50)
        slow = CountingTarget(delay=0.02)
        doc = sweep(wl, slow, rates=[100.0, 200.0, 400.0],
                    duration=0.1, threads=1,
                    slo=SLO(p99_ms=5.0), emit=False)
        assert doc["saturated"] is True
        assert doc["breach"]["rate"] == 100.0
        assert len(doc["steps"]) == 1    # stops at the first breach
        assert doc["sustainable_qps"] == 0.0

    def test_sweep_emits_step_breach_and_sweep_events(self):
        log = get_event_log()
        before = log.retention()["last_seq"] or 0
        wl = synthesize(VERTICES, mix={"neighbors": 1.0}, n_ops=30)
        sweep(wl, CountingTarget(delay=0.02), rates=[200.0],
              duration=0.05, threads=1, slo=SLO(p99_ms=5.0))
        kinds = [e["kind"] for e in log.events(since=before,
                                               kind="loadgen.*")]
        assert "loadgen.step" in kinds
        assert "loadgen.slo_breach" in kinds
        assert "loadgen.sweep" in kinds

    def test_geometric_rates_and_validation(self):
        wl = synthesize(VERTICES, mix={"neighbors": 1.0}, n_ops=20)
        doc = sweep(wl, CountingTarget(), start_rate=200.0, growth=2.0,
                    max_steps=2, duration=0.04, emit=False)
        assert doc["rates"] == [200.0, 400.0]
        with pytest.raises(LoadgenError):
            sweep(wl, CountingTarget(), rates=[0.0], emit=False)
        with pytest.raises(LoadgenError):
            sweep(wl, CountingTarget(), start_rate=-1.0, emit=False)
        with pytest.raises(LoadgenError, match="own rates"):
            sweep(wl, CountingTarget(), process="recorded", emit=False)

    def test_render_sweep_has_verdict_line(self):
        wl = synthesize(VERTICES, mix={"neighbors": 1.0}, n_ops=20)
        doc = sweep(wl, CountingTarget(), rates=[500.0], duration=0.04,
                    emit=False)
        text = render_sweep(doc)
        assert "max sustainable throughput under SLO" in text
        assert "ok" in text

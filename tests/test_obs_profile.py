"""Tests for the sampling profiler (repro.obs.profile)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs.profile import (
    NoActiveProfile,
    Profile,
    ProfileError,
    ProfileRing,
    ProfileSession,
    START_HINT,
    active_session,
    diff_function_tables,
    function_totals,
    get_profile_ring,
    heap_delta,
    load_profile_functions,
    parse_collapsed,
    render_flamegraph_html,
    render_flamegraph_text,
    render_profile_diff,
    start_profile,
    stop_profile,
)
from repro.obs.trace import Tracer, get_span_observer, render_trace, span


@pytest.fixture(autouse=True)
def _clean_global_session():
    """Leave no process-global session (or observer) behind a test."""
    yield
    try:
        stop_profile()
    except ProfileError:
        pass
    assert active_session() is None
    assert get_span_observer() is None


def _mk_profile(pid: str, stacks=None, **over) -> Profile:
    base = dict(profile_id=pid, hz=97.0, started_at=0.0, duration=1.0,
                samples=sum((stacks or {}).values()),
                stacks=stacks or {}, span_cpu=[], thread_samples={},
                memory=None, overhead_ratio=0.001)
    base.update(over)
    return Profile(**base)


# -- staged workload --------------------------------------------------------

def _hot_spin(seconds: float) -> int:
    """The staged hot function: burns CPU while holding the GIL."""
    x = 0
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        for _ in range(2000):
            x += 1
    return x


def _anchored_workload(seconds: float) -> int:
    """Anchor frame: lets assertions scope to *this* thread's samples
    (pytest workers and other daemons also get sampled)."""
    return _hot_spin(seconds)


class TestSamplerAccuracy:
    def test_staged_hot_function_dominates(self):
        session = start_profile(hz=150)
        try:
            _anchored_workload(1.0)
        finally:
            profile = stop_profile()
        assert profile.samples > 0
        assert profile.hz == 150.0
        anchored = hot = 0
        for stack, count in profile.stacks.items():
            if any(f.endswith("._anchored_workload") for f in stack):
                anchored += count
                if any(f.endswith("._hot_spin") for f in stack):
                    hot += count
        assert anchored >= 20, profile.collapsed()
        # >= 80% of the samples under the anchor land in the hot leaf.
        assert hot / anchored >= 0.8, profile.collapsed()
        assert session.profile_id == profile.profile_id

    def test_overhead_is_self_measured_and_small(self):
        start_profile(hz=50)
        _hot_spin(0.4)
        profile = stop_profile()
        assert 0.0 < profile.overhead_ratio < 0.5
        doc = profile.to_dict()
        assert doc["overhead_ratio"] == round(profile.overhead_ratio, 5)

    def test_stacks_are_root_first(self):
        start_profile(hz=100)
        _anchored_workload(0.5)
        profile = stop_profile()
        stack = next(s for s in profile.stacks
                     if any(f.endswith("._hot_spin") for f in s))
        i_anchor = next(i for i, f in enumerate(stack)
                        if f.endswith("._anchored_workload"))
        i_hot = next(i for i, f in enumerate(stack)
                     if f.endswith("._hot_spin"))
        assert i_anchor < i_hot   # caller above callee

    def test_max_depth_truncates_instead_of_dying(self):
        def recurse(n, seconds):
            if n > 0:
                return recurse(n - 1, seconds)
            return _hot_spin(seconds)

        start_profile(hz=100, max_depth=16)
        recurse(60, 0.4)
        profile = stop_profile()
        deep = [s for s in profile.stacks if "<truncated>" in s]
        assert deep, profile.collapsed()
        assert all(len(s) <= 17 for s in profile.stacks)


class TestSpanAttribution:
    def test_nested_spans_get_self_time(self):
        tracer = Tracer()
        start_profile(hz=150)
        with tracer.span("outer") as outer:
            with span("inner") as inner:
                _hot_spin(0.6)
            _hot_spin(0.25)          # outer's own (self) time
        profile = stop_profile()
        assert inner.attrs.get("cpu_samples", 0) >= 10
        assert outer.attrs.get("cpu_samples", 0) >= 3
        # Self-time semantics: the inner burn is not billed to outer.
        assert inner.attrs["cpu_samples"] > outer.attrs["cpu_samples"]
        assert inner.attrs["cpu_ms"] == pytest.approx(
            inner.attrs["cpu_samples"] * 1000.0 / 150, abs=0.01)
        names = {row["name"] for row in profile.span_cpu}
        assert {"outer", "inner"} <= names
        text = render_trace(tracer.latest())
        assert "cpu_ms=" in text and "cpu_samples=" in text

    def test_spans_on_worker_threads_are_attributed(self):
        tracer = Tracer()
        start_profile(hz=150)

        def work():
            with tracer.span("worker.root"):
                _hot_spin(0.5)

        t = threading.Thread(target=work)
        t.start()
        t.join(timeout=30)
        profile = stop_profile()
        rows = [r for r in profile.span_cpu if r["name"] == "worker.root"]
        assert rows and rows[0]["cpu_samples"] > 0
        root = tracer.latest()
        assert root.attrs.get("cpu_samples", 0) > 0

    def test_untraced_work_stamps_nothing(self):
        tracer = Tracer()
        with tracer.span("quiet"):
            pass                      # no session running
        assert "cpu_samples" not in tracer.latest().attrs


class TestSessionLifecycle:
    def test_one_session_at_a_time(self):
        session = start_profile(hz=10)
        with pytest.raises(ProfileError) as exc:
            start_profile(hz=10)
        assert session.profile_id in str(exc.value)
        stop_profile()

    def test_stop_without_start_names_the_verb(self):
        with pytest.raises(NoActiveProfile) as exc:
            stop_profile()
        assert str(exc.value) == START_HINT
        assert "repro profile start" in str(exc.value)

    def test_validation(self):
        with pytest.raises(ProfileError):
            ProfileSession(hz=0.5)
        with pytest.raises(ProfileError):
            ProfileSession(hz=2000)
        with pytest.raises(ProfileError):
            ProfileSession(max_depth=0)
        with pytest.raises(ProfileError):
            ProfileRing(max_profiles=0)

    def test_live_dump_keeps_running(self):
        session = start_profile(hz=100)
        _hot_spin(0.3)
        doc = session.dump(top=5)
        assert doc["running"] is True
        assert doc["samples"] > 0
        assert doc["top_functions"]
        assert "overhead_ratio" in doc
        profile = stop_profile()
        assert profile.samples >= doc["samples"]

    def test_finished_profile_lands_in_ring(self):
        ring = get_profile_ring()
        start_profile(hz=10)
        profile = stop_profile()
        assert ring.get(profile.profile_id) is profile
        assert ring.profiles()[0]["profile_id"] == profile.profile_id


class TestProfileRing:
    def test_eviction_and_retention(self):
        ring = ProfileRing(max_profiles=2)
        for i in range(3):
            ring.add(_mk_profile(f"px{i}"))
        assert len(ring) == 2
        assert ring.get("px0") is None
        assert ring.get("px2") is not None
        assert [p["profile_id"] for p in ring.profiles()] == ["px2", "px1"]
        assert ring.latest().profile_id == "px2"
        assert ring.retention() == {"max_profiles": 2, "stored": 2,
                                    "dropped": 1}
        ring.clear()
        assert ring.latest() is None and len(ring) == 0


class TestCollapsedStacks:
    STACKS = {("main", "a", "b"): 7, ("main", "a"): 2, ("main", "c"): 1}

    def test_collapsed_round_trips(self):
        profile = _mk_profile("p1", dict(self.STACKS))
        text = profile.collapsed()
        assert text.splitlines()[0] == "main;a;b 7"   # heaviest first
        assert text.endswith("\n")
        assert parse_collapsed(text) == self.STACKS

    def test_parse_tolerates_comments_and_blanks(self):
        parsed = parse_collapsed("# comment\n\nmain;a 3\nmain;a 2\n")
        assert parsed == {("main", "a"): 5}

    def test_parse_rejects_malformed_lines(self):
        with pytest.raises(ProfileError):
            parse_collapsed("main;a notanumber")
        with pytest.raises(ProfileError):
            parse_collapsed("loneframe")

    def test_function_totals_self_vs_total(self):
        table = function_totals(self.STACKS)
        assert table["b"] == {"self": 7, "total": 7}
        assert table["a"] == {"self": 2, "total": 9}
        assert table["main"] == {"self": 0, "total": 10}

    def test_recursion_counts_once_per_sample(self):
        table = function_totals({("f", "f", "f"): 4})
        assert table["f"] == {"self": 4, "total": 4}

    def test_top_functions_ranked_by_self(self):
        profile = _mk_profile("p2", dict(self.STACKS))
        top = profile.top_functions(2)
        assert [r["function"] for r in top] == ["b", "a"]
        assert top[0]["self_pct"] == 70.0
        assert top[0]["total_pct"] == 70.0


class TestProfileDiff:
    BASE = {"hot": {"self": 50, "total": 100},
            "warm": {"self": 30, "total": 30},
            "cool": {"self": 20, "total": 20}}
    CAND = {"hot": {"self": 80, "total": 100},
            "warm": {"self": 10, "total": 10},
            "cool": {"self": 10, "total": 10}}

    def test_diff_uses_shares_not_counts(self):
        # Candidate counted twice as long: raw counts double but the
        # shares are identical, so nothing moves.
        doubled = {k: {"self": v["self"] * 2, "total": v["total"] * 2}
                   for k, v in self.BASE.items()}
        assert diff_function_tables(self.BASE, doubled) == []

    def test_diff_most_regressed_first(self):
        rows = diff_function_tables(self.BASE, self.CAND)
        assert rows[0]["function"] == "hot"
        assert rows[0]["delta_pct"] == 30.0
        assert rows[0]["baseline_self_pct"] == 50.0
        assert rows[0]["candidate_self_pct"] == 80.0
        assert [r["function"] for r in rows[1:]] == ["cool", "warm"]

    def test_noise_floor_and_top(self):
        rows = diff_function_tables(self.BASE, self.CAND, top=1)
        assert len(rows) == 1
        near = {"hot": {"self": 5001, "total": 5001},
                "warm": {"self": 4999, "total": 4999}}
        base = {"hot": {"self": 5000, "total": 5000},
                "warm": {"self": 5000, "total": 5000}}
        assert diff_function_tables(base, near) == []

    def test_render_profile_diff(self):
        text = render_profile_diff(diff_function_tables(self.BASE,
                                                        self.CAND))
        assert "most regressed first" in text
        assert "+30.00" in text and "hot" in text
        assert render_profile_diff([]) == \
            "profile diff: no function moved materially"

    def test_load_profile_functions_formats(self, tmp_path):
        import json
        table = {"f": {"self": 3, "total": 5}}
        bench = tmp_path / "BENCH_x.json"
        bench.write_text(json.dumps({"profile": {"functions": table}}))
        assert load_profile_functions(bench)["f"]["self"] == 3
        raw = tmp_path / "dump.json"
        raw.write_text(json.dumps({"functions": table}))
        assert load_profile_functions(raw) == table
        collapsed = tmp_path / "prof.collapsed"
        collapsed.write_text("main;f 3\nmain 1\n")
        loaded = load_profile_functions(collapsed)
        assert loaded["f"] == {"self": 3, "total": 3}


class TestFlamegraphs:
    def test_deep_stack_renders_without_recursion(self):
        deep = tuple(f"mod.f{i}" for i in range(1200))
        stacks = {deep: 5, deep[:600]: 3, ("mod.f0", "mod.other"): 2}
        html = render_flamegraph_html(stacks, title="deep test")
        assert "deep test" in html
        assert "mod.f1199" in html
        assert html.count('class="fr"') > 1200
        text = render_flamegraph_text(stacks, max_depth=50)
        assert text.startswith("flamegraph: 10 samples")
        assert "mod.f0" in text

    def test_html_is_self_contained_and_escaped(self):
        stacks = {("m.<lambda>", "m.run"): 4}
        html = render_flamegraph_html(stacks, meta={"hz": 97})
        assert "&lt;lambda&gt;" in html and "m.<lambda>" not in html
        assert "hz=97" in html
        assert "http" not in html.split("</style>")[1]   # no external assets

    def test_pruning_drops_subpixel_frames(self):
        stacks = {("m.big",): 10_000, ("m.tiny",): 1}
        html = render_flamegraph_html(stacks, min_frac=0.001)
        assert "m.big" in html and "m.tiny" not in html

    def test_empty_profile_renders(self):
        assert "0 samples" in render_flamegraph_html({})
        assert render_flamegraph_text({}) == "(no samples)"

    def test_deterministic_output(self):
        stacks = {("m.a", "m.b"): 3, ("m.a", "m.c"): 2}
        assert render_flamegraph_html(stacks) == \
            render_flamegraph_html(stacks)


class TestMemoryAccounting:
    def test_heap_delta_noop_without_session(self):
        with heap_delta("quiet"):
            data = [b"x" * 1024 for _ in range(10)]
        assert len(data) == 10   # nothing raised, nothing recorded

    def test_heap_delta_records_growth(self):
        start_profile(hz=5, memory=True)
        keep = []
        with heap_delta("staged_growth"):
            keep.append(bytearray(512 * 1024))
        profile = stop_profile()
        assert profile.memory is not None
        assert profile.memory["enabled"] is True
        assert profile.memory["peak_bytes"] > 0
        deltas = profile.memory["deltas"]
        growth = next(d for d in deltas if d["label"] == "staged_growth")
        assert growth["grew_bytes"] >= 512 * 1024
        assert growth["top"], growth
        assert "grew_bytes" in growth["top"][0]

    def test_memory_off_by_default(self):
        start_profile(hz=5)
        with heap_delta("ignored"):
            pass
        profile = stop_profile()
        assert profile.memory is None

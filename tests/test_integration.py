"""End-to-end integration tests across the whole stack.

CSV → exploded incidence array → selection → certified correlation →
adjacency array → graph analytics — the full pipeline of the paper's
introduction, plus streaming-vs-batch and kernel-vs-kernel crossovers on
the same data.
"""

from __future__ import annotations

import io
import math

import pytest

import repro
from repro.arrays.io import explode_table, read_csv_table
from repro.arrays.reductions import reduce_rows
from repro.core.pipeline import GraphConstructionPipeline
from repro.core.streaming import StreamingAdjacencyBuilder
from repro.graphs.algorithms import bfs_levels, shortest_path_lengths
from repro.values.operations import PLUS
from repro.values.semiring import get_op_pair


CSV_TEXT = """\
flight,From,To,Airline,Minutes
f1,BOS,JFK,Delta,74
f2,BOS,JFK,JetBlue,78
f3,JFK,SFO,JetBlue,383
f4,SFO,BOS,United,330
f5,BOS,SFO,JetBlue,400
"""


class TestCsvToGraphPipeline:
    def test_full_pipeline(self):
        table = read_csv_table(io.StringIO(CSV_TEXT))
        pipe = GraphConstructionPipeline(table)

        # Airport-to-airport flight counts via +.× correlation of the
        # From/To incidence columns.
        counts = pipe.correlate("From|*", "To|*", "plus_times",
                                require_safe=True)
        assert counts["From|BOS", "To|JFK"] == 2
        assert counts["From|JFK", "To|SFO"] == 1

        # Airline-to-destination reachability over ∨.∧ ... via or_and on
        # patterns: use max_min as the numeric stand-in.
        reach = pipe.correlate("Airline|*", "To|*", "max_min")
        assert reach["Airline|JetBlue", "To|SFO"] == 1
        assert reach["Airline|Delta", "To|SFO"] == 0

    def test_explicit_edge_graph_and_analytics(self):
        """The same flights as an edge-keyed graph with minute weights."""
        g = repro.EdgeKeyedDigraph([
            ("f1", "BOS", "JFK"), ("f2", "BOS", "JFK"),
            ("f3", "JFK", "SFO"), ("f4", "SFO", "BOS"),
            ("f5", "BOS", "SFO"),
        ])
        minutes = {"f1": 74.0, "f2": 78.0, "f3": 383.0, "f4": 330.0,
                   "f5": 400.0}
        pair = get_op_pair("min_plus")
        eout, ein = repro.incidence_arrays(
            g, zero=pair.zero, out_values=minutes, in_values=pair.one)
        adj = repro.adjacency_array(eout, ein, pair)
        assert repro.is_adjacency_array_of_graph(adj, g)
        # min.+ collapsed the parallel BOS→JFK flights to the faster one.
        assert adj["BOS", "JFK"] == 74.0

        square = adj.with_keys(row_keys=g.vertices, col_keys=g.vertices)
        dist = shortest_path_lengths(square, "BOS")
        assert dist["SFO"] == min(74.0 + 383.0, 400.0)
        levels = bfs_levels(square, "BOS")
        assert levels == {"BOS": 0, "JFK": 1, "SFO": 1}


class TestStreamingMatchesPipeline:
    def test_streaming_flights(self):
        pair = get_op_pair("plus_times")
        b = StreamingAdjacencyBuilder(pair)
        b.add_edges([
            ("f1", "BOS", "JFK"), ("f2", "BOS", "JFK"),
            ("f3", "JFK", "SFO"), ("f4", "SFO", "BOS"),
            ("f5", "BOS", "SFO"),
        ])
        adj = b.adjacency()
        assert adj["BOS", "JFK"] == 2
        assert adj == b.batch_adjacency()


class TestKernelCrossoverOnSameData:
    def test_kernels_agree_on_exploded_data(self):
        table = read_csv_table(io.StringIO(CSV_TEXT))
        e = explode_table(table)
        e1 = e.select(":", "From|*").map_values(float)
        e2 = e.select(":", "To|*").map_values(float)
        pair = get_op_pair("plus_times")
        generic = repro.multiply(e1.T, e2, pair, kernel="generic")
        from repro.arrays.sparse_backend import multiply_vectorized
        reduceat = multiply_vectorized(e1.T, e2, pair, kernel="reduceat")
        scipy_k = multiply_vectorized(e1.T, e2, pair, kernel="scipy")
        assert generic.allclose(reduceat)
        assert generic.allclose(scipy_k)


class TestReductionsOnMusic:
    def test_genre_track_counts(self):
        """reduce over E1ᵀ rows = tracks per genre (Figure 2 margins)."""
        from repro.datasets.music import music_e1
        sums = reduce_rows(music_e1().T, PLUS)
        assert sums == {"Genre|Electronic": 10, "Genre|Pop": 14,
                        "Genre|Rock": 6}

    def test_music_cross_check_totals(self):
        """Row sums of the Fig 3 +.× product equal genre incidence
        weights — the identity that pinned the dataset reconstruction."""
        from repro.datasets.music import music_e1, music_e2
        from repro.core.construction import correlate
        pair = get_op_pair("plus_times")
        adj = correlate(music_e1(), music_e2(), pair)
        sums = reduce_rows(adj, PLUS)
        assert sums == {"Genre|Electronic": 18, "Genre|Pop": 29,
                        "Genre|Rock": 13}

"""Shared constants and small utilities for the test suite."""

from __future__ import annotations

# Exotic and extension pairs register on import.
import repro.values.exotic  # noqa: F401
import repro.values.extensions  # noqa: F401

#: Safe catalog pairs usable with small positive-integer values (1..9) —
#: handy for cross-kernel and theorem tests on shared operands.
SAFE_NUMERIC_PAIRS = (
    "plus_times",
    "max_times",
    "min_times",
    "max_plus",
    "min_plus",
    "max_min",
    "min_max",
)

#: All pairs the paper (plus our extensions) expects to satisfy the criteria.
SAFE_PAIRS = SAFE_NUMERIC_PAIRS + (
    "nat_plus_times",
    "or_and",
    "string_max_min",
    "gcd_lcm",
    "max_concat",
    "skew_plus_times",
    "plus_twisted_times",
    "skew_twisted",
    "log_semiring",
    "viterbi_max_times",
    "lex_min_plus",
)

#: All pairs expected to violate at least one criterion.
UNSAFE_PAIRS = (
    "union_intersection",
    "completed_max_plus",
    "nonneg_max_plus",
    "int_plus_times",
    "gf2_xor_and",
    "z6_plus_times",
)

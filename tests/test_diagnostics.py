"""Tests for provenance diagnostics and incidence linting."""

from __future__ import annotations

import math

import pytest

from repro.arrays.associative import AssociativeArray
from repro.core.diagnostics import explain_entry, validate_incidence_pair
from repro.graphs.digraph import EdgeKeyedDigraph
from repro.graphs.incidence import incidence_arrays
from repro.values.semiring import get_op_pair


@pytest.fixture
def weighted_pair():
    g = EdgeKeyedDigraph([("e1", "a", "b"), ("e2", "a", "b"),
                          ("e3", "b", "c")])
    eout, ein = incidence_arrays(
        g, out_values={"e1": 2.0, "e2": 3.0, "e3": 4.0},
        in_values={"e1": 5.0, "e2": 7.0, "e3": 1.0})
    return eout, ein


class TestExplainEntry:
    def test_terms_in_fold_order(self, weighted_pair):
        eout, ein = weighted_pair
        pair = get_op_pair("plus_times")
        exp = explain_entry(eout, ein, pair, "a", "b")
        assert exp.contributing_edges == ("e1", "e2")
        assert [t.product for t in exp.terms] == [10.0, 21.0]
        assert [t.running for t in exp.terms] == [10.0, 31.0]
        assert exp.sparse_value == 31.0

    def test_modes_agree_for_certified_pair(self, weighted_pair):
        eout, ein = weighted_pair
        exp = explain_entry(eout, ein, get_op_pair("plus_times"), "a", "b")
        assert exp.modes_agree
        assert exp.dense_value == 31.0

    def test_empty_cell(self, weighted_pair):
        eout, ein = weighted_pair
        exp = explain_entry(eout, ein, get_op_pair("plus_times"), "b", "b")
        assert exp.terms == ()
        assert exp.sparse_value == 0

    def test_modes_disagree_for_violator(self):
        """The Lemma II.4 two-self-loop configuration, diagnosed."""
        pair = get_op_pair("nonneg_max_plus")
        k = ["k1", "k2"]
        eout = AssociativeArray({("k1", "a"): 3.0, ("k2", "b"): 3.0},
                                row_keys=k, col_keys=["a", "b"])
        ein = AssociativeArray({("k1", "a"): 3.0, ("k2", "b"): 3.0},
                               row_keys=k, col_keys=["a", "b"])
        exp = explain_entry(eout, ein, pair, "a", "b")
        assert exp.terms == ()            # sparse sees nothing
        assert not exp.modes_agree        # dense sees max(3+0, 0+3) = 3
        assert exp.dense_value == 3.0
        assert "MODES DISAGREE" in exp.describe()

    def test_describe_text(self, weighted_pair):
        eout, ein = weighted_pair
        text = explain_entry(eout, ein, get_op_pair("plus_times"),
                             "a", "b").describe()
        assert "edge 'e1'" in text and "running" in text

    def test_key_validation(self, weighted_pair):
        eout, ein = weighted_pair
        pair = get_op_pair("plus_times")
        with pytest.raises(ValueError, match="out-vertex"):
            explain_entry(eout, ein, pair, "zz", "b")
        with pytest.raises(ValueError, match="in-vertex"):
            explain_entry(eout, ein, pair, "a", "zz")

    def test_edge_set_validation(self, weighted_pair):
        eout, ein = weighted_pair
        padded = ein.with_keys(row_keys=list(ein.row_keys) + ["extra"])
        with pytest.raises(ValueError, match="edge key set"):
            explain_entry(eout, padded, get_op_pair("plus_times"),
                          "a", "b")


class TestValidateIncidencePair:
    def test_clean_pair(self, weighted_pair):
        eout, ein = weighted_pair
        assert validate_incidence_pair(eout, ein) == []

    def test_edge_key_mismatch(self, weighted_pair):
        eout, ein = weighted_pair
        padded = ein.with_keys(row_keys=list(ein.row_keys) + ["extra"])
        issues = validate_incidence_pair(eout, padded)
        assert any(i.kind == "edge-keys" for i in issues)

    def test_phantom_edge(self):
        k = ["k1", "k2"]
        eout = AssociativeArray({("k1", "a"): 1}, row_keys=k,
                                col_keys=["a"])
        ein = AssociativeArray({("k1", "b"): 1}, row_keys=k,
                               col_keys=["b"])
        issues = validate_incidence_pair(eout, ein)
        assert any(i.kind == "phantom" and "k2" in i.detail
                   for i in issues)

    def test_dangling_edge(self):
        k = ["k1"]
        eout = AssociativeArray({("k1", "a"): 1}, row_keys=k,
                                col_keys=["a"])
        ein = AssociativeArray({}, row_keys=k, col_keys=["b"])
        issues = validate_incidence_pair(eout, ein)
        assert any(i.kind == "dangling" for i in issues)

    def test_hyperedge_flagged(self):
        k = ["k1"]
        eout = AssociativeArray({("k1", "a"): 1, ("k1", "b"): 1},
                                row_keys=k, col_keys=["a", "b"])
        ein = AssociativeArray({("k1", "c"): 1}, row_keys=k,
                               col_keys=["c"])
        issues = validate_incidence_pair(eout, ein)
        assert any(i.kind == "hyperedge" for i in issues)

    def test_music_arrays_flag_hyperedges_only(self):
        """The Figure 2 arrays are hyperedge-like (multi-genre tracks)
        plus one writerless track: lint reports exactly those."""
        from repro.datasets.music import music_e1, music_e2
        issues = validate_incidence_pair(music_e1(), music_e2())
        kinds = {i.kind for i in issues}
        assert kinds <= {"hyperedge", "dangling"}
        assert any("093012ktnA8" in i.detail and i.kind == "dangling"
                   for i in issues)

    def test_zero_mismatch_with_op_pair(self, weighted_pair):
        eout, ein = weighted_pair
        pair = get_op_pair("min_plus")   # zero = +inf, arrays have 0
        issues = validate_incidence_pair(eout, ein, op_pair=pair)
        assert sum(1 for i in issues if i.kind == "zero") == 2

"""Tests for incidence array construction and validation."""

from __future__ import annotations

import math

import pytest

from repro.arrays.associative import AssociativeArray
from repro.graphs.digraph import EdgeKeyedDigraph, GraphError
from repro.graphs.incidence import (
    graph_from_incidence,
    incidence_arrays,
    is_source_incidence_of,
    is_target_incidence_of,
)


class TestConstruction:
    def test_default_unit_values(self, small_graph):
        eout, ein = incidence_arrays(small_graph)
        assert eout.get("e1", "a") == 1
        assert ein.get("e1", "b") == 1

    def test_key_sets_follow_definition(self, small_graph):
        eout, ein = incidence_arrays(small_graph)
        assert eout.row_keys == small_graph.edge_keys
        assert ein.row_keys == small_graph.edge_keys
        assert eout.col_keys == small_graph.out_vertices
        assert ein.col_keys == small_graph.in_vertices

    def test_one_entry_per_edge_row(self, small_graph):
        eout, ein = incidence_arrays(small_graph)
        assert eout.nnz == small_graph.num_edges
        assert ein.nnz == small_graph.num_edges

    def test_mapping_values(self, small_graph):
        eout, _ = incidence_arrays(
            small_graph, out_values={"e1": 5, "e2": 7})
        assert eout.get("e1", "a") == 5
        assert eout.get("e3", "b") == 1  # default one

    def test_callable_values(self, small_graph):
        eout, _ = incidence_arrays(
            small_graph, out_values=lambda k, v: f"{k}:{v}", zero="")
        assert eout.get("e1", "a") == "e1:a"

    def test_constant_values(self, small_graph):
        _, ein = incidence_arrays(small_graph, in_values=9)
        assert all(v == 9 for v in ein.to_dict().values())

    def test_custom_zero(self, small_graph):
        eout, _ = incidence_arrays(small_graph, zero=math.inf)
        assert eout.zero == math.inf

    def test_zero_valued_entry_rejected(self, small_graph):
        with pytest.raises(GraphError, match="equals the zero"):
            incidence_arrays(small_graph, out_values={"e1": 0})
        with pytest.raises(GraphError, match="equals the zero"):
            incidence_arrays(small_graph, in_values={"e3": 0})


class TestValidation:
    def test_valid_arrays_pass(self, small_graph):
        eout, ein = incidence_arrays(small_graph)
        assert is_source_incidence_of(eout, small_graph)
        assert is_target_incidence_of(ein, small_graph)

    def test_swapped_arrays_fail(self, small_graph):
        eout, ein = incidence_arrays(small_graph)
        # ein has the wrong column key set / pattern for a source array.
        assert not is_source_incidence_of(ein, small_graph)

    def test_missing_entry_fails(self, small_graph):
        eout, _ = incidence_arrays(small_graph)
        broken = AssociativeArray(
            {k: v for k, v in eout.to_dict().items() if k != ("e1", "a")},
            row_keys=eout.row_keys, col_keys=eout.col_keys)
        assert not is_source_incidence_of(broken, small_graph)

    def test_extra_entry_fails(self, small_graph):
        eout, _ = incidence_arrays(small_graph)
        data = eout.to_dict()
        data[("e3", "a")] = 1  # e3 does not leave a
        extra = AssociativeArray(data, row_keys=eout.row_keys,
                                 col_keys=eout.col_keys)
        assert not is_source_incidence_of(extra, small_graph)

    def test_wrong_row_keys_fail(self, small_graph):
        eout, _ = incidence_arrays(small_graph)
        padded = eout.with_keys(row_keys=list(eout.row_keys) + ["extra"])
        assert not is_source_incidence_of(padded, small_graph)


class TestRoundTrip:
    def test_graph_incidence_graph(self, small_graph):
        eout, ein = incidence_arrays(small_graph)
        assert graph_from_incidence(eout, ein) == small_graph

    def test_weights_do_not_affect_structure(self, small_graph):
        eout, ein = incidence_arrays(
            small_graph,
            out_values={k: i + 2 for i, k in
                        enumerate(small_graph.edge_keys)},
            in_values=3)
        assert graph_from_incidence(eout, ein) == small_graph

    def test_mismatched_edge_sets_rejected(self, small_graph):
        eout, ein = incidence_arrays(small_graph)
        padded = ein.with_keys(row_keys=list(ein.row_keys) + ["extra"])
        with pytest.raises(GraphError, match="share the edge key set"):
            graph_from_incidence(eout, padded)

    def test_hyperedge_rejected(self):
        # An edge with two sources is not an ordinary directed edge.
        eout = AssociativeArray({("k", "a"): 1, ("k", "b"): 1},
                                row_keys=["k"], col_keys=["a", "b"])
        ein = AssociativeArray({("k", "c"): 1},
                               row_keys=["k"], col_keys=["c"])
        with pytest.raises(GraphError, match="source"):
            graph_from_incidence(eout, ein)

    def test_dangling_edge_rejected(self):
        # Edge stored only in Eout.
        eout = AssociativeArray({("k", "a"): 1},
                                row_keys=["k"], col_keys=["a"])
        ein = AssociativeArray({}, row_keys=["k"], col_keys=["c"])
        with pytest.raises(GraphError, match="target"):
            graph_from_incidence(eout, ein)

    def test_fully_empty_rows_ignored(self):
        eout = AssociativeArray({("k1", "a"): 1},
                                row_keys=["k1", "k2"], col_keys=["a"])
        ein = AssociativeArray({("k1", "b"): 1},
                               row_keys=["k1", "k2"], col_keys=["b"])
        g = graph_from_incidence(eout, ein)
        assert g.num_edges == 1

"""Tests for repro.core.construction (the paper's central operation)."""

from __future__ import annotations

import pytest

from repro.arrays.associative import AssociativeArray
from repro.arrays.matmul import MatmulError
from repro.core.construction import (
    adjacency_array,
    correlate,
    expected_adjacency_pattern,
    is_adjacency_array_of,
    is_adjacency_array_of_graph,
    reverse_adjacency_array,
)
from repro.graphs.digraph import EdgeKeyedDigraph
from repro.graphs.incidence import incidence_arrays
from repro.values.semiring import get_op_pair


@pytest.fixture
def pair():
    return get_op_pair("plus_times")


class TestAdjacencyArray:
    def test_counts_parallel_edges(self, small_graph, pair):
        eout, ein = incidence_arrays(small_graph)
        adj = adjacency_array(eout, ein, pair)
        assert adj.get("a", "b") == 2   # e1 and e2
        assert adj.get("b", "c") == 1
        assert adj.get("c", "c") == 1

    def test_key_sets(self, small_graph, pair):
        eout, ein = incidence_arrays(small_graph)
        adj = adjacency_array(eout, ein, pair)
        assert adj.row_keys == small_graph.out_vertices
        assert adj.col_keys == small_graph.in_vertices

    def test_requires_shared_edge_set(self, pair):
        eout = AssociativeArray({("k1", "a"): 1},
                                row_keys=["k1"], col_keys=["a"])
        ein = AssociativeArray({("k2", "b"): 1},
                               row_keys=["k2"], col_keys=["b"])
        with pytest.raises(MatmulError, match="share the edge key set"):
            adjacency_array(eout, ein, pair)

    def test_is_adjacency_of_graph(self, small_graph, pair):
        eout, ein = incidence_arrays(small_graph)
        adj = adjacency_array(eout, ein, pair)
        assert is_adjacency_array_of_graph(adj, small_graph)

    def test_weighted_incidence_still_adjacency(self, small_graph, pair):
        eout, ein = incidence_arrays(
            small_graph,
            out_values={k: i + 2 for i, k in
                        enumerate(small_graph.edge_keys)},
            in_values={k: i + 5 for i, k in
                       enumerate(small_graph.edge_keys)})
        adj = adjacency_array(eout, ein, pair)
        assert is_adjacency_array_of_graph(adj, small_graph)


class TestReverse:
    def test_reverse_is_transpose_pattern(self, small_graph, pair):
        eout, ein = incidence_arrays(small_graph)
        fwd = adjacency_array(eout, ein, pair)
        rev = reverse_adjacency_array(eout, ein, pair)
        assert rev.nonzero_pattern() == frozenset(
            (b, a) for (a, b) in fwd.nonzero_pattern())

    def test_reverse_is_adjacency_of_reverse_graph(self, small_graph, pair):
        eout, ein = incidence_arrays(small_graph)
        rev = reverse_adjacency_array(eout, ein, pair)
        assert is_adjacency_array_of_graph(rev, small_graph.reverse())


class TestExpectedPattern:
    def test_pattern_from_incidence(self, small_graph):
        eout, ein = incidence_arrays(small_graph)
        assert expected_adjacency_pattern(eout, ein) \
            == small_graph.adjacency_pairs()

    def test_hyperedge_pattern(self):
        # A track-edge touching two genre-vertices and two writer-vertices
        # contributes the full 2×2 rectangle (the music-array case).
        eout = AssociativeArray({("k", "g1"): 1, ("k", "g2"): 1},
                                row_keys=["k"], col_keys=["g1", "g2"])
        ein = AssociativeArray({("k", "w1"): 1, ("k", "w2"): 1},
                               row_keys=["k"], col_keys=["w1", "w2"])
        assert expected_adjacency_pattern(eout, ein) == frozenset({
            ("g1", "w1"), ("g1", "w2"), ("g2", "w1"), ("g2", "w2")})

    def test_is_adjacency_array_of_incidence_pair(self, small_graph, pair):
        eout, ein = incidence_arrays(small_graph)
        adj = adjacency_array(eout, ein, pair)
        assert is_adjacency_array_of(adj, eout, ein)

    def test_check_keys_flag(self, small_graph, pair):
        eout, ein = incidence_arrays(small_graph)
        adj = adjacency_array(eout, ein, pair)
        padded = adj.with_keys(
            row_keys=list(adj.row_keys) + ["stranger"])
        assert not is_adjacency_array_of(padded, eout, ein)
        assert is_adjacency_array_of(padded, eout, ein, check_keys=False)

    def test_wrong_pattern_detected(self, small_graph, pair):
        eout, ein = incidence_arrays(small_graph)
        adj = adjacency_array(eout, ein, pair)
        broken = AssociativeArray(
            {k: v for k, v in adj.to_dict().items()
             if k != ("a", "b")},
            row_keys=adj.row_keys, col_keys=adj.col_keys)
        assert not is_adjacency_array_of_graph(broken, small_graph)


class TestCorrelate:
    def test_correlate_is_eT_e(self, pair):
        e1 = AssociativeArray({("k1", "g"): 2, ("k2", "g"): 3},
                              row_keys=["k1", "k2"], col_keys=["g"])
        e2 = AssociativeArray({("k1", "w"): 5, ("k2", "w"): 7},
                              row_keys=["k1", "k2"], col_keys=["w"])
        c = correlate(e1, e2, pair)
        assert c.get("g", "w") == 2 * 5 + 3 * 7
        assert tuple(c.row_keys) == ("g",)
        assert tuple(c.col_keys) == ("w",)

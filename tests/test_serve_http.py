"""Tests for the HTTP JSON front end (repro.serve.http) and its CLI."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from urllib.parse import urlencode

import pytest

from repro.serve import AdjacencyService, build_server
from repro.values.semiring import get_op_pair

PAIR = get_op_pair("plus_times")


@pytest.fixture()
def server():
    """A live threaded server over a small service; yields (url, service)."""
    svc = AdjacencyService(PAIR)
    svc.add_edges([("e1", "alice", "bob", 2.0, 1.0),
                   ("e2", "bob", "carol", 3.0, 1.0),
                   ("e3", "alice", "carol", 1.5, 1.0)])
    svc.publish()
    httpd = build_server(svc, "127.0.0.1", 0)
    thread = threading.Thread(
        target=lambda: httpd.serve_forever(poll_interval=0.05),
        daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    try:
        yield f"http://{host}:{port}", svc
    finally:
        httpd.shutdown()
        httpd.server_close()
        thread.join(timeout=10)


def get(url: str, path: str, **params):
    """GET → (status, parsed JSON body), errors included."""
    if params:
        path += "?" + urlencode(params)
    try:
        with urllib.request.urlopen(url + path, timeout=30) as resp:
            return resp.status, json.loads(resp.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8"))


def get_text(url: str, path: str):
    """GET → (status, content-type, raw text body) for non-JSON routes."""
    try:
        with urllib.request.urlopen(url + path, timeout=30) as resp:
            return (resp.status, resp.headers.get("Content-Type", ""),
                    resp.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        return (exc.code, exc.headers.get("Content-Type", ""),
                exc.read().decode("utf-8"))


def post(url: str, path: str, doc=None, raw: bytes = None):
    body = raw if raw is not None else json.dumps(doc or {}).encode()
    req = urllib.request.Request(url + path, data=body, method="POST")
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8"))


class TestEndpoints:
    def test_health(self, server):
        url, _svc = server
        status, doc = get(url, "/health")
        assert status == 200
        assert doc == {"status": "ok", "epoch": 1}

    def test_neighbors(self, server):
        url, _svc = server
        status, doc = get(url, "/query/neighbors", vertex="alice")
        assert status == 200
        assert doc["epoch"] == 1 and doc["kind"] == "neighbors"
        assert doc["result"] == {"bob": 2.0, "carol": 1.5}

    def test_neighbors_in(self, server):
        url, _svc = server
        _s, doc = get(url, "/query/neighbors", vertex="carol",
                      direction="in")
        assert doc["result"] == {"alice": 1.5, "bob": 3.0}

    def test_degrees(self, server):
        url, _svc = server
        _s, doc = get(url, "/query/degrees")
        assert doc["result"] == {"alice": 2, "bob": 1, "carol": 0}
        _s, doc = get(url, "/query/degrees", vertex="bob",
                      direction="in")
        assert doc["result"] == 1

    def test_khop_with_pair(self, server):
        url, _svc = server
        _s, doc = get(url, "/query/khop", vertex="alice", k=2)
        assert doc["result"] == {"carol": 6.0}
        _s, doc = get(url, "/query/khop", vertex="alice", k=2,
                      pair="min_plus")
        assert doc["result"] == {"carol": 5.0}

    def test_path_lengths_dashed_route(self, server):
        url, _svc = server
        status, doc = get(url, "/query/path-lengths", vertex="alice")
        assert status == 200
        assert doc["result"] == {"alice": 0.0, "bob": 2.0, "carol": 1.5}

    def test_top_k(self, server):
        url, _svc = server
        _s, doc = get(url, "/query/top-k", k=1)
        assert doc["result"] == [["bob", "carol", 3.0]]

    def test_stats(self, server):
        url, _svc = server
        get(url, "/query/neighbors", vertex="alice")
        get(url, "/query/neighbors", vertex="alice")
        status, doc = get(url, "/stats")
        assert status == 200
        result = doc["result"]
        assert result["epoch"] == 1 and result["nnz"] == 3
        assert result["cache"]["hits"] >= 1

    def test_cached_flag_roundtrip(self, server):
        url, _svc = server
        _s, cold = get(url, "/query/khop", vertex="bob", k=1)
        _s, warm = get(url, "/query/khop", vertex="bob", k=1)
        assert cold["cached"] is False and warm["cached"] is True


class TestErrors:
    def test_unknown_path_404(self, server):
        url, _svc = server
        status, doc = get(url, "/nope")
        assert status == 404
        assert "unknown path" in doc["error"] and doc["status"] == 404

    def test_unknown_kind_404(self, server):
        url, _svc = server
        status, doc = get(url, "/query/pagerank")
        assert status == 404
        assert "unknown query kind" in doc["error"]

    def test_unknown_vertex_404(self, server):
        url, _svc = server
        status, doc = get(url, "/query/neighbors", vertex="nobody")
        assert status == 404
        assert "unknown vertex" in doc["error"]

    def test_missing_vertex_400(self, server):
        url, _svc = server
        status, doc = get(url, "/query/neighbors")
        assert status == 400
        assert "required" in doc["error"]

    def test_bad_direction_400(self, server):
        url, _svc = server
        status, doc = get(url, "/query/neighbors", vertex="alice",
                          direction="up")
        assert status == 400
        assert "direction" in doc["error"]

    def test_bad_k_400(self, server):
        url, _svc = server
        status, doc = get(url, "/query/khop", vertex="alice", k="two")
        assert status == 400
        assert "integer" in doc["error"]

    def test_unknown_param_400(self, server):
        url, _svc = server
        status, doc = get(url, "/query/neighbors", vertex="alice",
                          flavor="mild")
        assert status == 400
        assert "unknown query parameter" in doc["error"]

    def test_malformed_json_body_400(self, server):
        url, _svc = server
        status, doc = post(url, "/edges", raw=b"{nope")
        assert status == 400
        assert "malformed JSON" in doc["error"]

    def test_non_object_body_400(self, server):
        url, _svc = server
        status, doc = post(url, "/edges", raw=b"[1, 2]")
        assert status == 400
        assert "object" in doc["error"]

    def test_edges_requires_list_400(self, server):
        url, _svc = server
        status, doc = post(url, "/edges", {"edges": "e1"})
        assert status == 400
        assert '"edges"' in doc["error"]

    def test_edge_arity_400(self, server):
        url, _svc = server
        status, doc = post(url, "/edges", {"edges": [["e9", "a"]]})
        assert status == 400
        assert "each edge" in doc["error"]

    def test_duplicate_edge_key_400(self, server):
        url, _svc = server
        status, doc = post(url, "/edges",
                           {"edges": [["d1", "a", "b"], ["d1", "a", "c"]]})
        assert status == 400
        assert "duplicate" in doc["error"]

    def test_post_unknown_path_404(self, server):
        url, _svc = server
        status, doc = post(url, "/query/neighbors", {})
        assert status == 404


class TestIngest:
    def test_edges_then_publish(self, server):
        url, svc = server
        status, doc = post(url, "/edges",
                           {"edges": [["d1", "carol", "dave", 4.0, 1.0]]})
        assert status == 200
        assert doc == {"buffered": 1, "pending": 1, "epoch": 1}
        # Not visible yet: readers still see epoch 1.
        status, doc = get(url, "/query/neighbors", vertex="carol")
        assert doc["epoch"] == 1 and doc["result"] == {}
        status, doc = post(url, "/publish")
        assert status == 200 and doc == {"epoch": 2}
        status, doc = get(url, "/query/neighbors", vertex="carol")
        assert doc["epoch"] == 2 and doc["result"] == {"dave": 4.0}

    def test_inline_publish(self, server):
        url, _svc = server
        status, doc = post(url, "/edges",
                           {"edges": [["d1", "x", "y"]], "publish": True})
        assert status == 200
        assert doc["epoch"] == 2 and doc["pending"] == 0
        _s, doc = get(url, "/query/neighbors", vertex="x")
        assert doc["result"] == {"y": 1.0}

    def test_empty_publish_is_noop(self, server):
        url, _svc = server
        status, doc = post(url, "/publish")
        assert status == 200 and doc == {"epoch": 1}


class TestJsonSafety:
    def test_nonfinite_values_stringified(self):
        """min.+ arrays carry ±∞; the JSON body must stay strict."""
        from repro.arrays.associative import AssociativeArray
        pair = get_op_pair("min_plus")
        arr = AssociativeArray({("a", "b"): 2.0}, zero=pair.zero)
        svc = AdjacencyService(pair, initial=arr)
        httpd = build_server(svc, "127.0.0.1", 0)
        thread = threading.Thread(
            target=lambda: httpd.serve_forever(poll_interval=0.05),
            daemon=True)
        thread.start()
        host, port = httpd.server_address[:2]
        try:
            status, doc = get(f"http://{host}:{port}",
                              "/query/khop", vertex="a", k=0)
            assert status == 200
            # khop seed is the pair's one (0.0 for min.+): finite here,
            # but the serializer must accept the widest case too.
            from repro.serve.http import jsonable
            assert jsonable(float("inf")) == "inf"
            assert jsonable(float("-inf")) == "-inf"
            assert jsonable({"x": float("nan")}) == {"x": "nan"}
            assert jsonable([1.5, (2, float("inf"))]) == [1.5, [2, "inf"]]
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(timeout=10)

    def test_numeric_vertex_keys_coerced_and_stringified(self):
        from repro.arrays.associative import AssociativeArray
        arr = AssociativeArray({(1, 2): 5.0, (2, 3): 1.0})
        svc = AdjacencyService(PAIR, initial=arr)
        httpd = build_server(svc, "127.0.0.1", 0)
        thread = threading.Thread(
            target=lambda: httpd.serve_forever(poll_interval=0.05),
            daemon=True)
        thread.start()
        host, port = httpd.server_address[:2]
        try:
            status, doc = get(f"http://{host}:{port}",
                              "/query/neighbors", vertex="1")
            assert status == 200
            assert doc["result"] == {"2": 5.0}
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(timeout=10)


class TestConcurrentHTTP:
    def test_readers_during_publication(self, server):
        """HTTP readers across epoch publications: consistent envelopes."""
        url, svc = server
        errors = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                try:
                    _s, doc = get(url, "/query/degrees", vertex="hub")
                    if doc.get("status") == 404:
                        continue  # hub not published yet
                    if doc["result"] != doc["epoch"] - 1:
                        errors.append(doc)
                        return
                except Exception as exc:  # pragma: no cover - failure
                    errors.append(repr(exc))
                    return
                time.sleep(0.001)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            # Epoch e (≥2) has hub→spoke_2..e: degree e-1.
            for e in range(2, 10):
                post(url, "/edges",
                     {"edges": [[f"h{e}", "hub", f"spoke_{e}"]],
                      "publish": True})
                time.sleep(0.002)
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=30)
        assert not any(t.is_alive() for t in threads)
        assert not errors, errors[:3]
        assert svc.epoch == 9
        assert svc.degrees(vertex="hub") == 8


class TestObservabilityEndpoints:
    def test_healthz(self, server):
        url, svc = server
        status, doc = get(url, "/healthz")
        assert status == 200
        assert doc["status"] == "ok" and doc["epoch"] == 1
        assert doc["pending_edges"] == 0
        assert doc["uptime_seconds"] >= 0.0
        assert doc["snapshot_age_seconds"] >= 0.0
        post(url, "/edges", {"edges": [["e9", "dave", "alice"]]})
        _s, doc = get(url, "/healthz")
        assert doc["pending_edges"] == 1 and doc["epoch"] == 1

    def test_metrics_prometheus_text(self, server):
        url, _svc = server
        get(url, "/query/neighbors", vertex="alice")   # generate traffic
        status, ctype, text = get_text(url, "/metrics")
        assert status == 200
        assert ctype.startswith("text/plain")
        # Per-service instruments and HTTP middleware counters.
        assert "# TYPE serve_queries_total counter" in text
        assert "serve_epoch 1" in text
        assert 'http_requests_total{method="GET",route="query"}' in text
        assert "http_request_seconds_bucket" in text
        # The process-global registry renders in the same exposition.
        assert "serve_cache_hits_total" in text

    def test_metrics_counts_advance_with_traffic(self, server):
        url, _svc = server
        for _ in range(3):
            get(url, "/query/degrees")
        _s, _c, text = get_text(url, "/metrics")
        line = next(ln for ln in text.splitlines()
                    if ln.startswith("serve_queries_total"))
        assert float(line.split()[-1]) >= 3

    def test_trace_index_and_tree(self, server):
        url, svc = server
        get(url, "/query/khop", vertex="alice", k=2)
        status, doc = get(url, "/trace")
        assert status == 200
        assert doc["traces"], doc
        newest = doc["traces"][0]
        assert newest["name"] == "service.query"
        status, tree = get(url, f"/trace/{newest['trace_id']}")
        assert status == 200
        assert tree["trace_id"] == newest["trace_id"]
        names = set()
        stack = [tree]
        while stack:
            node = stack.pop()
            names.add(node["name"])
            stack.extend(node["children"])
        assert "service.query" in names and "compute" in names

    def test_trace_unknown_id_404_is_structured(self, server):
        url, _svc = server
        status, doc = get(url, "/trace/t_does_not_exist")
        assert status == 404
        assert "no such trace" in doc["error"]
        assert "ring evicted" in doc["error"]
        assert doc["trace_id"] == "t_does_not_exist"
        retention = doc["retention"]
        assert retention["max_traces"] >= retention["stored"] >= 0

    def test_metrics_bucket_lines_carry_exemplars(self, server):
        url, _svc = server
        get(url, "/query/khop", vertex="alice", k=2)   # traced + timed
        _s, _c, text = get_text(url, "/metrics")
        exemplar_lines = [
            ln for ln in text.splitlines()
            if ln.startswith("serve_request_seconds_bucket")
            and " # {" in ln]
        assert exemplar_lines, "no exemplar on any latency bucket"
        suffix = exemplar_lines[0].split(" # ", 1)[1]
        assert suffix.startswith('{trace_id="t')
        assert 'span_id="s' in suffix
        # The exemplar's trace id resolves on /trace/<id>.
        trace_id = suffix.split('trace_id="', 1)[1].split('"', 1)[0]
        status, tree = get(url, f"/trace/{trace_id}")
        assert status == 200 and tree["trace_id"] == trace_id

    def test_stats_last_publication_links_trace(self, server):
        url, svc = server
        _s, doc = get(url, "/stats")
        pub = doc["result"]["last_publication"]
        assert pub["epoch"] == 1
        assert pub["delta_edges"] == 3
        assert pub["duration_seconds"] >= 0.0
        assert set(pub["stages"]) == {"fold_delta", "merge", "swap"}
        status, tree = get(url, f"/trace/{pub['trace_id']}")
        assert status == 200
        assert tree["name"] == "service.publish"

    def test_events_endpoint(self, server):
        url, _svc = server
        status, doc = get(url, "/events")
        assert status == 200
        kinds = {e["kind"] for e in doc["events"]}
        assert "epoch_published" in kinds
        retention = doc["retention"]
        assert retention["capacity"] >= retention["stored"] >= 1
        # kind filter + since cursor + limit
        _s, pub = get(url, "/events", kind="epoch_published")
        assert all(e["kind"] == "epoch_published" for e in pub["events"])
        last = pub["events"][-1]["seq"]
        _s, after = get(url, "/events", since=last)
        assert all(e["seq"] > last for e in after["events"])
        _s, one = get(url, "/events", limit=1)
        assert len(one["events"]) <= 1

    def test_events_bad_params_400(self, server):
        url, _svc = server
        status, doc = get(url, "/events", since="soon")
        assert status == 400 and "integer" in doc["error"]
        status, doc = get(url, "/events", limit="all")
        assert status == 400 and "integer" in doc["error"]
        status, doc = get(url, "/events", flavor="mild")
        assert status == 400 and "unknown" in doc["error"]


class TestProfileEndpoints:
    @pytest.fixture(autouse=True)
    def _no_leftover_session(self):
        """Profiler state is process-global: never leak it across tests."""
        from repro.obs.profile import ProfileError, stop_profile
        yield
        try:
            stop_profile()
        except ProfileError:
            pass

    def test_idle_profile_is_409_naming_the_start_verb(self, server):
        url, _svc = server
        status, doc = get(url, "/profile")
        assert status == 409                       # client-state, not 500
        assert doc["status"] == 409
        assert "repro profile start" in doc["error"]
        assert "POST /profile/start" in doc["error"]
        assert "profiles" in doc and "retention" in doc
        status, doc = get_text(url, "/profile/flame")[0], None
        assert status in (200, 409)   # 200 iff an earlier test left a ring entry

    def test_start_query_dump_stop_flow(self, server):
        url, _svc = server
        status, doc = post(url, "/profile/start", {})
        assert status == 200 and doc["profile_id"].startswith("p")
        profile_id = doc["profile_id"]
        # Double-start is a conflict, and names the live session.
        status, dup = post(url, "/profile/start", {})
        assert status == 409 and profile_id in dup["error"]
        deadline = time.time() + 5
        while time.time() < deadline:
            get(url, "/query/khop", vertex="alice", k=2)
            status, dump = get(url, "/profile", top=5)
            if dump.get("samples", 0) > 0:
                break
        assert status == 200
        assert dump["running"] is True
        assert dump["profile_id"] == profile_id
        assert dump["samples"] > 0 and dump["top_functions"]
        assert "overhead_ratio" in dump
        # A traced query's finished spans carry sampled CPU.
        status, final = post(url, "/profile/stop")
        assert status == 200
        assert final["profile_id"] == profile_id
        assert final["samples"] >= dump["samples"]
        # After stop the session is gone but the flame survives in the ring.
        status, _doc = get(url, "/profile")
        assert status == 409
        fstatus, ctype, html = get_text(url,
                                        f"/profile/flame?id={profile_id}")
        assert fstatus == 200 and ctype.startswith("text/html")
        assert "<!doctype html" in html.lower()
        status, doc = post(url, "/profile/stop")
        assert status == 409 and "repro profile start" in doc["error"]

    def test_profile_start_bad_hz_400(self, server):
        url, _svc = server
        status, doc = post(url, "/profile/start", {"hz": "fast"})
        assert status == 400
        status, doc = post(url, "/profile/start", {"hz": 100000})
        assert status == 409 or status == 400

    def test_traced_span_reports_cpu_over_http(self, server):
        url, svc = server
        # The 3-edge fixture graph answers in microseconds — no sampler
        # tick ever lands inside a span.  Give the kernels real work.
        n = 1500
        svc.add_edges([(f"x{i}", f"v{i}", f"v{(i * 7 + 1) % n}", 1.0, 1.0)
                       for i in range(n)])
        svc.publish()
        status, _doc = post(url, "/profile/start", {"hz": 200})
        assert status == 200
        def spans_with_cpu(node):
            found = []
            work = [node]
            while work:
                cur = work.pop()
                if "cpu_ms" in cur.get("attrs", {}):
                    found.append(cur)
                work.extend(cur.get("children", []))
            return found

        deadline = time.time() + 15
        cpu_spans = []
        i = 0
        while time.time() < deadline and not cpu_spans:
            for _ in range(10):
                i += 1   # vary the vertex so the query cache never hits
                get(url, "/query/khop", vertex=f"v{i % n}", k=6)
            _s, index = get(url, "/trace")
            for entry in index["traces"]:
                _s2, tree = get(url, f"/trace/{entry['trace_id']}")
                cpu_spans = spans_with_cpu(tree)
                if cpu_spans:
                    break
        post(url, "/profile/stop")
        assert cpu_spans, "no traced span picked up sampled CPU"
        attrs = cpu_spans[0]["attrs"]
        assert attrs["cpu_samples"] >= 1 and attrs["cpu_ms"] > 0

    def test_process_gauges_in_metrics(self, server):
        url, _svc = server
        _s, _c, text = get_text(url, "/metrics")
        assert "process_resident_memory_bytes" in text
        rss = next(float(ln.rsplit(" ", 1)[1])
                   for ln in text.splitlines()
                   if ln.startswith("process_resident_memory_bytes "))
        assert rss > 1 << 20          # a live interpreter exceeds 1 MiB
        assert "process_open_fds" in text
        assert "process_threads" in text
        assert 'python_gc_collections_total{generation="0"}' in text
        assert 'python_gc_collections_total{generation="2"}' in text
        assert 'python_gc_collected_total{generation="0"}' in text


class TestQueryCLI:
    def test_query_cli_roundtrip(self, server, capsys):
        from repro.cli import main
        url, _svc = server
        assert main(["query", "neighbors", "alice", "--url", url]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["result"] == {"bob": 2.0, "carol": 1.5}

    def test_query_cli_khop_pair(self, server, capsys):
        from repro.cli import main
        url, _svc = server
        assert main(["query", "khop", "alice", "-k", "2",
                     "--query-pair", "min_plus", "--url", url]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["result"] == {"carol": 5.0}

    def test_query_cli_stats(self, server, capsys):
        from repro.cli import main
        url, _svc = server
        assert main(["query", "stats", "--url", url]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["result"]["op_pair"] == "plus_times"

    def test_query_cli_error_body(self, server, capsys):
        from repro.cli import main
        url, _svc = server
        assert main(["query", "neighbors", "nobody", "--url", url]) == 1
        assert "unknown vertex" in capsys.readouterr().err

    def test_query_cli_unreachable(self, capsys):
        from repro.cli import main
        assert main(["query", "stats",
                     "--url", "http://127.0.0.1:1"]) == 1
        assert "cannot reach" in capsys.readouterr().err


class TestTraceAndEventsCLI:
    def test_trace_fetch_by_id(self, server, capsys):
        from repro.cli import main
        url, _svc = server
        get(url, "/query/khop", vertex="alice", k=1)
        _s, index = get(url, "/trace")
        trace_id = index["traces"][0]["trace_id"]
        assert main(["trace", "--id", trace_id, "--url", url]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["trace_id"] == trace_id

    def test_trace_list_newest_first(self, server, capsys):
        from repro.cli import main
        url, _svc = server
        get(url, "/query/khop", vertex="alice", k=1)
        get(url, "/query/neighbors", vertex="bob")
        assert main(["trace", "--list", "--url", url]) == 0
        out = capsys.readouterr().out
        assert "newest first" in out
        assert "trace_id" in out and "spans" in out
        lines = [ln for ln in out.splitlines() if ln.strip().startswith("t")]
        assert len(lines) >= 2
        # --json yields the raw index, same order as GET /trace.
        assert main(["trace", "--list", "--url", url, "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        _s, index = get(url, "/trace")
        assert [r["trace_id"] for r in rows] == \
            [r["trace_id"] for r in index["traces"]]

    def test_trace_fetch_missing_id_reports_retention(self, server,
                                                      capsys):
        from repro.cli import main
        url, _svc = server
        assert main(["trace", "--id", "t_gone", "--url", url]) == 1
        err = capsys.readouterr().err
        assert "ring evicted" in err
        assert "ring retention:" in err

    def test_trace_requires_source_or_id(self, capsys):
        from repro.cli import main
        assert main(["trace"]) == 2
        assert "--source" in capsys.readouterr().err

    def test_events_cli_lists_jsonl(self, server, capsys):
        from repro.cli import main
        url, _svc = server
        assert main(["events", "--url", url,
                     "--kind", "epoch_published"]) == 0
        out, err = capsys.readouterr()
        lines = [json.loads(ln) for ln in out.splitlines()]
        assert lines and all(
            e["kind"] == "epoch_published" for e in lines)
        assert "retention:" in err

    def test_events_cli_since_filters(self, server, capsys):
        from repro.cli import main
        url, _svc = server
        assert main(["events", "--url", url]) == 0
        out = capsys.readouterr().out
        last = json.loads(out.splitlines()[-1])["seq"]
        assert main(["events", "--url", url,
                     "--since", str(last)]) == 0
        assert capsys.readouterr().out == ""


class TestRequestLogRouting:
    """Satellite: per-request stderr logging rides the event ring."""

    def _serve(self, **server_kw):
        svc = AdjacencyService(PAIR)
        svc.add_edges([("e1", "alice", "bob", 2.0, 1.0)])
        svc.publish()
        httpd = build_server(svc, "127.0.0.1", 0, **server_kw)
        thread = threading.Thread(
            target=lambda: httpd.serve_forever(poll_interval=0.05),
            daemon=True)
        thread.start()
        host, port = httpd.server_address[:2]
        return httpd, thread, f"http://{host}:{port}"

    def test_log_events_routes_access_log_to_ring(self):
        from repro.obs.events import get_event_log
        log = get_event_log()
        before = log.retention()["last_seq"] or 0
        httpd, thread, url = self._serve(log_events=True)
        try:
            get(url, "/query/neighbors", vertex="alice")
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(timeout=10)
        events = log.events(since=before, kind="http.log")
        assert events, "no http.log events on the ring"
        assert any("/query/neighbors" in e["message"] for e in events)
        assert all(e["client"] for e in events)

    def test_default_stays_silent_on_ring_and_stderr(self, capsys):
        from repro.obs.events import get_event_log
        log = get_event_log()
        before = log.retention()["last_seq"] or 0
        httpd, thread, url = self._serve()
        try:
            get(url, "/query/neighbors", vertex="alice")
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(timeout=10)
        assert log.events(since=before, kind="http.log") == []
        assert "GET /query" not in capsys.readouterr().err

"""Tests for the edge-keyed multigraph."""

from __future__ import annotations

import pytest

from repro.graphs.digraph import EdgeKeyedDigraph, GraphError


class TestConstruction:
    def test_edges_and_counts(self, small_graph):
        assert small_graph.num_edges == 4
        assert small_graph.num_vertices == 3
        assert len(small_graph) == 4

    def test_duplicate_edge_key_rejected(self):
        g = EdgeKeyedDigraph([("e1", "a", "b")])
        with pytest.raises(GraphError, match="duplicate"):
            g.add_edge("e1", "b", "c")

    def test_from_pairs_generates_ordered_keys(self):
        g = EdgeKeyedDigraph.from_pairs([("a", "b"), ("b", "c")])
        assert tuple(g.edge_keys) == ("e000", "e001")
        assert g.endpoints("e000") == ("a", "b")

    def test_from_pairs_prefix(self):
        g = EdgeKeyedDigraph.from_pairs([("a", "b")], prefix="x")
        assert tuple(g.edge_keys) == ("x000",)


class TestKeySets:
    def test_kout_kin_vertices(self, small_graph):
        assert tuple(small_graph.out_vertices) == ("a", "b", "c")
        assert tuple(small_graph.in_vertices) == ("b", "c")
        assert tuple(small_graph.vertices) == ("a", "b", "c")

    def test_source_only_vertex(self):
        g = EdgeKeyedDigraph([("e", "src", "dst")])
        assert tuple(g.out_vertices) == ("src",)
        assert tuple(g.in_vertices) == ("dst",)

    def test_edge_keys_sorted(self):
        g = EdgeKeyedDigraph([("z", "a", "b"), ("a", "a", "b")])
        assert tuple(g.edge_keys) == ("a", "z")


class TestQueries:
    def test_endpoints(self, small_graph):
        assert small_graph.endpoints("e3") == ("b", "c")
        with pytest.raises(GraphError, match="unknown edge"):
            small_graph.endpoints("nope")

    def test_edges_iteration_ordered(self, small_graph):
        keys = [k for k, _s, _t in small_graph.edges()]
        assert keys == ["e1", "e2", "e3", "e4"]

    def test_edges_between_parallel(self, small_graph):
        assert small_graph.edges_between("a", "b") == ["e1", "e2"]
        assert small_graph.edges_between("b", "a") == []

    def test_has_edge_between(self, small_graph):
        assert small_graph.has_edge_between("a", "b")
        assert not small_graph.has_edge_between("c", "a")

    def test_adjacency_pairs_collapses_parallels(self, small_graph):
        assert small_graph.adjacency_pairs() == frozenset(
            {("a", "b"), ("b", "c"), ("c", "c")})

    def test_degrees(self, small_graph):
        assert small_graph.out_degree("a") == 2
        assert small_graph.in_degree("b") == 2
        assert small_graph.in_degree("a") == 0

    def test_self_loops(self, small_graph):
        assert small_graph.self_loops() == ["e4"]

    def test_has_parallel_edges(self, small_graph):
        assert small_graph.has_parallel_edges()
        simple = EdgeKeyedDigraph([("e", "a", "b")])
        assert not simple.has_parallel_edges()

    def test_edge_pairs_multiplicity(self, small_graph):
        assert list(small_graph.edge_pairs()).count(("a", "b")) == 2


class TestTransforms:
    def test_reverse_flips_arrows(self, small_graph):
        rev = small_graph.reverse()
        assert rev.endpoints("e1") == ("b", "a")
        assert rev.adjacency_pairs() == frozenset(
            {("b", "a"), ("c", "b"), ("c", "c")})

    def test_reverse_involution(self, small_graph):
        assert small_graph.reverse().reverse() == small_graph

    def test_reverse_preserves_edge_keys(self, small_graph):
        assert small_graph.reverse().edge_keys == small_graph.edge_keys

    def test_subgraph_by_edges(self, small_graph):
        sub = small_graph.subgraph_by_edges(["e1", "e4"])
        assert sub.num_edges == 2
        assert sub.endpoints("e4") == ("c", "c")

    def test_equality(self, small_graph):
        clone = EdgeKeyedDigraph(small_graph.edges())
        assert clone == small_graph
        clone.add_edge("extra", "a", "c")
        assert clone != small_graph

    def test_unhashable(self, small_graph):
        with pytest.raises(TypeError):
            hash(small_graph)

"""Tests for the exotic (non-associative/non-commutative) operations.

These pin down the paper's claim that Theorem II.1 does not require
associativity, commutativity, or distributivity.
"""

from __future__ import annotations

import pytest

from repro.core.certify import certify
from repro.values.domains import NonNegativeReals
from repro.values.exotic import (
    PLUS_TWISTED_TIMES,
    SKEW_PLUS,
    SKEW_PLUS_TIMES,
    SKEW_TWISTED,
    TWISTED_TIMES,
)
from repro.values.properties import (
    check_annihilator,
    check_associativity,
    check_commutativity,
    check_distributivity,
    check_identity,
    check_no_zero_divisors,
    check_zero_sum_free,
)


DOM = NonNegativeReals()


class TestSkewPlus:
    def test_identity_two_sided(self):
        assert check_identity(SKEW_PLUS, DOM)

    def test_not_associative(self):
        assert not check_associativity(SKEW_PLUS, DOM, seed=1)

    def test_not_commutative(self):
        assert not check_commutativity(SKEW_PLUS, DOM, seed=1)

    def test_zero_sum_free(self):
        assert check_zero_sum_free(SKEW_PLUS, DOM)

    def test_hand_values(self):
        # 1 ⊕̃ 2 = 1 + 2 + 1·2 = 5;  2 ⊕̃ 1 = 2 + 1 + 4·1 = 7.
        assert SKEW_PLUS(1, 2) == 5
        assert SKEW_PLUS(2, 1) == 7


class TestTwistedTimes:
    def test_identity_two_sided(self):
        assert check_identity(TWISTED_TIMES, DOM)

    def test_not_associative(self):
        assert not check_associativity(TWISTED_TIMES, DOM, seed=2)

    def test_not_commutative(self):
        assert not check_commutativity(TWISTED_TIMES, DOM, seed=2)

    def test_no_zero_divisors(self):
        assert check_no_zero_divisors(TWISTED_TIMES, DOM, zero=0)

    def test_annihilator(self):
        assert check_annihilator(TWISTED_TIMES, DOM, zero=0)

    def test_zero_shortcuts(self):
        assert TWISTED_TIMES(0, 5) == 0.0
        assert TWISTED_TIMES(5, 0) == 0.0


class TestExoticPairs:
    @pytest.mark.parametrize("pair", [
        SKEW_PLUS_TIMES, PLUS_TWISTED_TIMES, SKEW_TWISTED,
    ], ids=lambda p: p.name)
    def test_certified_safe(self, pair):
        cert = certify(pair, seed=9)
        assert cert.safe, cert.summary()

    def test_distributivity_fails_for_skew(self):
        # The criteria hold, yet ⊗ does not distribute over ⊕̃ —
        # exactly the paper's "semiring-like structures" point.
        assert not check_distributivity(
            SKEW_PLUS_TIMES.add, SKEW_PLUS_TIMES.mul, DOM, seed=3)

"""Unit tests for the lazy expression engine (``repro.expr``)."""

from __future__ import annotations

import pytest

from repro.arrays.associative import AssociativeArray
from repro.arrays.elementwise import elementwise_add, elementwise_multiply
from repro.arrays.kron import kron
from repro.arrays.matmul import multiply
from repro.arrays.reductions import reduce_cols, reduce_rows
from repro.core.construction import adjacency_array
from repro.expr import (
    ExprError,
    REDUCE_KEY,
    evaluate,
    explain,
    khop_frontier,
    lazy,
    plan,
    vecmat,
)
from repro.expr.ast import IncidenceToAdjacency, Leaf, MatMul, Transpose
from repro.graphs.algorithms import semiring_vecmat
from repro.graphs.generators import rmat_multigraph
from repro.graphs.incidence import incidence_arrays
from repro.values.semiring import get_op_pair

import repro.values.exotic  # noqa: F401 — registers pairs
import repro.values.extensions  # noqa: F401

PAIR = get_op_pair("plus_times")


def _music_like(seed: int = 11, scale: int = 7, edges: int = 200):
    graph = rmat_multigraph(scale, edges, seed=seed)
    weights = {k: float(1 + (i % 7)) for i, k in enumerate(graph.edge_keys)}
    return incidence_arrays(graph, zero=PAIR.zero, out_values=weights,
                            in_values=weights)


def _small(data, rows, cols, zero=0.0):
    return AssociativeArray(data, row_keys=rows, col_keys=cols, zero=zero)


class TestConstruction:
    def test_lazy_wraps_and_reports_structure(self):
        eout, ein = _music_like()
        node = lazy(eout, "Eout")
        assert node.shape == (len(eout.row_keys), len(eout.col_keys))
        assert node.zero == eout.zero
        assert node.row_keys == eout.row_keys

    def test_nonconformable_matmul_raises_at_build_time(self):
        a = _small({("r", "c"): 1.0}, ["r"], ["c"])
        b = _small({("x", "y"): 1.0}, ["x"], ["y"])
        with pytest.raises(ExprError, match="shared K3"):
            lazy(a).matmul(lazy(b), PAIR)

    def test_misaligned_elementwise_raises(self):
        a = _small({("r", "c"): 1.0}, ["r"], ["c"])
        b = _small({("r", "d"): 1.0}, ["r"], ["d"])
        with pytest.raises(ExprError, match="identical key sets"):
            lazy(a).add(lazy(b), PAIR.add)

    def test_dense_background_elementwise_refused(self):
        a = _small({("r", "c"): 1.0}, ["r"], ["c"], zero=2.0)
        b = _small({("r", "c"): 1.0}, ["r"], ["c"], zero=2.0)
        with pytest.raises(ExprError, match="dense"):
            lazy(a).add(lazy(b), PAIR.add)

    def test_bad_mode_and_axis(self):
        a = _small({("r", "c"): 1.0}, ["r"], ["c"])
        with pytest.raises(ExprError, match="mode"):
            lazy(a).matmul(lazy(a.transpose()), PAIR, mode="bogus")
        from repro.expr.ast import Reduce
        with pytest.raises(ExprError, match="axis"):
            Reduce(lazy(a).node, PAIR.add, "diagonal")

    def test_lazy_accepts_plain_arrays_as_operands(self):
        eout, ein = _music_like()
        expr = lazy(eout).T.matmul(ein, PAIR)   # bare array auto-wrapped
        assert expr.evaluate() == adjacency_array(eout, ein, PAIR)


class TestEquivalence:
    """Optimized evaluation ≡ the eager library calls, operator by
    operator."""

    def test_incidence_to_adjacency(self):
        eout, ein = _music_like()
        expr = lazy(eout, "Eout").T.matmul(lazy(ein, "Ein"), PAIR)
        assert evaluate(expr) == adjacency_array(eout, ein, PAIR)

    def test_unoptimized_matches_too(self):
        eout, ein = _music_like()
        expr = lazy(eout).T.matmul(lazy(ein), PAIR)
        assert evaluate(expr, optimize=False) == \
            adjacency_array(eout, ein, PAIR)

    def test_elementwise_and_transpose(self):
        eout, ein = _music_like()
        a = adjacency_array(eout, ein, PAIR)
        expr = lazy(a).add(lazy(a).T.T, PAIR.add)
        assert evaluate(expr) == elementwise_add(a, a, PAIR.add)
        expr = lazy(a).multiply_elementwise(lazy(a), PAIR.mul)
        assert evaluate(expr) == elementwise_multiply(a, a, PAIR.mul)

    def test_reductions(self):
        eout, ein = _music_like()
        a = adjacency_array(eout, ein, PAIR)
        rows = evaluate(lazy(a).reduce_rows(PAIR.add))
        assert rows.col_keys == frozenset_keys([REDUCE_KEY])
        assert {r: v for r, _c, v in rows.entries()} == \
            reduce_rows(a, PAIR.add)
        cols = evaluate(lazy(a).reduce_cols(PAIR.add))
        assert {c: v for _r, c, v in cols.entries()} == \
            reduce_cols(a, PAIR.add)

    def test_select_and_with_keys(self):
        eout, ein = _music_like()
        half = list(eout.col_keys)[: len(eout.col_keys) // 2]
        expr = lazy(eout).select(":", half)
        assert evaluate(expr) == eout.select(":", half)
        wide = list(eout.col_keys) + ["zz_extra"]
        expr = lazy(eout).with_keys(col_keys=wide)
        assert evaluate(expr) == eout.with_keys(col_keys=wide)

    def test_kron(self):
        a = _small({("a", "b"): 2.0, ("b", "a"): 3.0}, ["a", "b"],
                   ["a", "b"])
        b = _small({("x", "y"): 4.0}, ["x", "y"], ["x", "y"])
        expr = lazy(a).kron(lazy(b), PAIR.mul)
        assert evaluate(expr) == kron(a, b, PAIR.mul)

    def test_khop_chain_matches_vecmat_loop(self):
        eout, ein = _music_like(scale=6, edges=120)
        a = adjacency_array(eout, ein, PAIR)
        vertices = a.row_keys.union(a.col_keys)
        a = a.with_keys(vertices, vertices)
        source = next(iter(a.rows_nonempty()))
        frontier = {source: PAIR.one}
        for _ in range(3):
            frontier = semiring_vecmat(frontier, a, PAIR)
        assert khop_frontier(a, source, 3, PAIR) == frontier

    def test_khop_zero_hops_and_degenerate_pair(self):
        a = _small({("a", "b"): 1.0}, ["a", "b"], ["a", "b"])
        assert khop_frontier(a, "a", 0, PAIR) == {"a": PAIR.one}
        # nonneg_max_plus has one == zero: falls back to the loop.
        degenerate = get_op_pair("nonneg_max_plus")
        assert khop_frontier(a, "a", 1, degenerate) == \
            semiring_vecmat({"a": degenerate.one}, a, degenerate)

    def test_vecmat_matches_reference(self):
        eout, ein = _music_like(scale=6, edges=150)
        a = adjacency_array(eout, ein, PAIR)
        vertices = a.row_keys.union(a.col_keys)
        a = a.with_keys(vertices, vertices)
        vec = {v: float(i + 1) for i, v in enumerate(list(vertices)[:5])}
        assert vecmat(vec, a, PAIR) == semiring_vecmat(vec, a, PAIR)


def frozenset_keys(keys):
    from repro.arrays.keys import KeySet
    return KeySet(keys)


class TestRewrites:
    def test_fusion_applied_and_named(self):
        eout, ein = _music_like()
        p = plan(lazy(eout).T.matmul(lazy(ein), PAIR))
        assert isinstance(p.root, IncidenceToAdjacency)
        names = [rw.rule for rw in p.applied]
        assert "fuse_incidence_adjacency" in names
        fused = next(rw for rw in p.applied
                     if rw.rule == "fuse_incidence_adjacency")
        assert any("zero-sum-free" in line for line in fused.properties)

    def test_fusion_refused_for_uncertified_pair(self):
        gf2 = get_op_pair("gf2_xor_and")
        eout = _small({("k1", "a"): 1, ("k2", "a"): 1}, ["k1", "k2"],
                      ["a"], zero=0)
        ein = _small({("k1", "b"): 1, ("k2", "b"): 1}, ["k1", "k2"],
                     ["b"], zero=0)
        expr = lazy(eout).T.matmul(lazy(ein), gf2)
        p = plan(expr)
        assert isinstance(p.root, MatMul)          # kept as written
        assert any(rf.rule == "fuse_incidence_adjacency"
                   for rf in p.refused)
        # The refused plan still evaluates, identically to eager.
        assert p.execute() == evaluate(expr, optimize=False)

    def test_double_transpose_eliminated(self):
        eout, _ = _music_like()
        p = plan(lazy(eout).T.T)
        assert isinstance(p.root, Leaf)
        assert any(rw.rule == "double_transpose" for rw in p.applied)

    def test_transpose_pushdown_gives_reverse_adjacency_fusion(self):
        eout, ein = _music_like()
        expr = lazy(eout).T.matmul(lazy(ein), PAIR).T
        p = plan(expr)
        # (EᵀF)ᵀ → FᵀE: still one fused kernel, roles swapped.
        assert isinstance(p.root, IncidenceToAdjacency)
        assert evaluate(expr) == \
            adjacency_array(eout, ein, PAIR).transpose()

    def test_transpose_pushdown_refused_noncommutative(self):
        mc = get_op_pair("max_concat")
        graph = rmat_multigraph(5, 40, seed=9)
        vals = {k: "ab"[i % 2] for i, k in enumerate(graph.edge_keys)}
        eout, ein = incidence_arrays(graph, zero=mc.zero,
                                     out_values=vals, in_values=vals)
        expr = lazy(eout).T.matmul(lazy(ein), mc).T
        p = plan(expr)
        assert any(rf.rule == "transpose_pushdown" for rf in p.refused)
        assert "FAILS" in next(
            rf.reason for rf in p.refused
            if rf.rule == "transpose_pushdown")
        assert evaluate(expr) == evaluate(expr, optimize=False)

    def test_reduce_into_matmul_fusion(self):
        eout, ein = _music_like()
        for axis in ("reduce_rows", "reduce_cols"):
            expr = getattr(lazy(eout).T.matmul(lazy(ein), PAIR),
                           axis)(PAIR.add)
            p = plan(expr)
            assert any(rw.rule == "reduce_into_matmul"
                       for rw in p.applied)
            assert p.execute() == evaluate(expr, optimize=False)

    def test_cse_shares_khop_leaves(self):
        eout, ein = _music_like(scale=6, edges=100)
        a = adjacency_array(eout, ein, PAIR)
        vertices = a.row_keys.union(a.col_keys)
        a = a.with_keys(vertices, vertices)
        al = lazy(a, "A")
        expr = al.matmul(al, PAIR).add(al.matmul(al, PAIR), PAIR.add)
        p = plan(expr)
        assert any(rw.rule == "common_subexpression_elimination"
                   for rw in p.applied)
        # Both ⊕-operands are literally the same node after CSE.
        assert p.root.children[0] is p.root.children[1]
        assert p.execute() == elementwise_add(
            multiply(a, a, PAIR), multiply(a, a, PAIR), PAIR.add)

    def test_dead_branch_matmul_with_empty_operand(self):
        eout, ein = _music_like()
        empty = AssociativeArray.empty(eout.col_keys, eout.row_keys,
                                       zero=PAIR.zero)
        expr = lazy(empty).matmul(lazy(ein), PAIR)
        p = plan(expr)
        assert isinstance(p.root, Leaf)
        assert any(rw.rule == "prune_dead_branches" for rw in p.applied)
        result = p.execute()
        assert result.nnz == 0
        assert result == evaluate(expr, optimize=False)

    def test_elementwise_with_empty_operand_not_pruned(self):
        """x ⊕ empty must evaluate, not collapse to x: the identity
        axiom only holds on the op's domain, and stored values are free
        to fall outside it (the xor-mod-2 counterexample)."""
        from repro.values.semiring import get_op_pair
        gf2 = get_op_pair("gf2_xor_and")
        x = _small({("r", "c"): 4.0}, ["r"], ["c"], zero=0.0)
        empty = AssociativeArray.empty(x.row_keys, x.col_keys, zero=0.0)
        expr = lazy(x).add(lazy(empty), gf2.add)
        p = plan(expr)
        assert not isinstance(p.root, Leaf)    # no prune
        # (4 xor 0) mod 2 = 0: the entry vanishes under eager folding,
        # exactly what a pruned plan would have gotten wrong.
        assert p.execute().nnz == 0
        assert p.execute() == evaluate(expr, optimize=False)


class TestCostAndExecution:
    def test_estimates_cover_every_node(self):
        eout, ein = _music_like()
        p = plan(lazy(eout).T.matmul(lazy(ein), PAIR))
        from repro.expr.ast import topological_order
        for node in topological_order(p.root):
            est = p.estimates[id(node)]
            assert est.nnz >= 0
            assert est.backend in ("numeric", "dict")
        leaf_est = p.estimates[id(p.root.children[0])]
        assert leaf_est.exact
        assert leaf_est.nnz == eout.nnz

    def test_explain_transcript_shape(self):
        eout, ein = _music_like()
        text = explain(lazy(eout, "Eout").T.matmul(lazy(ein, "Ein"),
                                                   PAIR))
        assert "applied rewrites:" in text
        assert "fuse_incidence_adjacency" in text
        assert "licensed by:" in text
        assert "zero-sum-free" in text
        assert "incidence_to_adjacency[+.×]" in text
        assert "leaf 'Eout'" in text
        assert "kernel=scipy" in text

    def test_memory_budget_routes_through_shard_executor(self):
        eout, ein = _music_like(scale=8, edges=400)
        expr = lazy(eout).T.matmul(lazy(ein), PAIR)
        p = plan(expr, memory_budget=1)      # everything is over budget
        assert p.shard_nodes
        assert "shard executor" in p.explain()
        assert p.execute() == adjacency_array(eout, ein, PAIR)

    def test_memory_budget_respected_when_large_enough(self):
        eout, ein = _music_like()
        p = plan(lazy(eout).T.matmul(lazy(ein), PAIR),
                 memory_budget=1 << 30)
        assert not p.shard_nodes

    def test_pinned_operands_stay_generic(self):
        eout, ein = _music_like()
        expr = lazy(eout.with_backend("dict")).T.matmul(
            lazy(ein.with_backend("dict")), PAIR)
        result = evaluate(expr)
        assert result == adjacency_array(eout, ein, PAIR)

    def test_fused_generic_path_for_exotic_values(self):
        pair = get_op_pair("string_max_min")
        eout = _small({("k1", "a"): "x", ("k2", "a"): "y"},
                      ["k1", "k2"], ["a"], zero="")
        ein = _small({("k1", "b"): "z", ("k2", "b"): "w"},
                     ["k1", "k2"], ["b"], zero="")
        expr = lazy(eout).T.matmul(lazy(ein), pair)
        assert evaluate(expr) == adjacency_array(eout, ein, pair)

    def test_plan_reused_via_evaluate(self):
        eout, ein = _music_like()
        p = plan(lazy(eout).T.matmul(lazy(ein), PAIR))
        assert evaluate(p) == adjacency_array(eout, ein, PAIR)


class TestOptimizerMemoSoundness:
    """Regression: the optimizer's memo must key on live node objects.

    An id()-keyed memo over temporary nodes that get garbage-collected
    let CPython address reuse splice a stale, unrelated subtree into
    the rewritten DAG — random trees mixing transposes, products and
    fused-product shapes evaluated differently optimized vs eager on
    ~12% of seeds.  This deterministic stress loop reproduces that
    node-churn pattern.
    """

    def test_optimized_equals_eager_under_node_churn(self):
        import random
        pair = PAIR
        for seed in range(120):
            rng = random.Random(seed)
            n = rng.randint(2, 5)
            keys = [f"v{i}" for i in range(n)]

            def fresh():
                data = {}
                for _ in range(rng.randint(0, n * n)):
                    data[(rng.choice(keys), rng.choice(keys))] = \
                        float(rng.randint(1, 9))
                return AssociativeArray(data, row_keys=keys,
                                        col_keys=keys, zero=0.0)

            expr = lazy(fresh(), "seed")
            for i in range(rng.randint(1, 5)):
                step = rng.choice(["T", "mm", "fused", "add", "ewT"])
                if step == "T":
                    expr = expr.T
                elif step == "mm":
                    expr = expr.matmul(lazy(fresh(), f"m{i}"), pair)
                elif step == "fused":
                    expr = expr.T.matmul(lazy(fresh(), f"f{i}"), pair)
                elif step == "add":
                    expr = expr.add(lazy(fresh(), f"a{i}"), pair.add)
                else:
                    # (Aᵀ ⊕ Bᵀ)ᵀ — churns temporary Transpose wrappers
                    # through transpose_over_elementwise.
                    expr = expr.T.add(lazy(fresh(), f"e{i}").T,
                                      pair.add).T
            optimized = evaluate(expr, optimize=True)
            eager = evaluate(expr, optimize=False)
            assert optimized == eager, f"seed {seed} diverged"


class TestDeepChains:
    """Regression: planning, explaining and executing a hop chain far
    past the default service bound must not approach the recursion
    limit (the walks are topological-order driven, not recursive)."""

    def test_500_hop_chain_plans_explains_and_runs(self):
        a = _small({("a", "b"): 1.0, ("b", "a"): 1.0}, ["a", "b"],
                   ["a", "b"])
        frontier = khop_frontier(a, "a", 500, PAIR)
        assert frontier == {"a": 1.0}     # even-length cycle walk
        al = lazy(a, "A")
        expr = lazy(_small({("·", "a"): 1.0}, ["·"], ["a", "b"]), "x")
        for _ in range(500):
            expr = expr.matmul(al, PAIR)
        text = explain(expr)
        assert "(shared node" in text      # the chain shares one A leaf

    def test_emptied_frontier_hops_are_cheap(self):
        # b is a dead end: the frontier empties after one hop, and the
        # remaining 254 products must short-circuit (runtime emptiness,
        # invisible to static dead-branch pruning).
        a = _small({("a", "b"): 2.0}, ["a", "b"], ["a", "b"])
        import time
        t0 = time.perf_counter()
        assert khop_frontier(a, "b", 255, PAIR) == {}
        assert time.perf_counter() - t0 < 2.0


class TestKernelRouting:
    """Routing decisions are auditable: explain() carries a kernel
    routing section with calibrated per-kernel rates, the executor
    emits an event per product, and the runtime validation demotes a
    vectorised pick the actual operands disprove."""

    def _minplus_product(self, scale=7, edges=400):
        pair = get_op_pair("min_plus")
        g = rmat_multigraph(2 ** scale, edges, seed=17)
        eout, ein = incidence_arrays(g, out_values={k: 1.0 for k in
                                                    g.edge_keys},
                                     in_values={k: 1.0 for k in
                                                g.edge_keys},
                                     zero=pair.zero)
        return lazy(eout, "Eout").T.matmul(lazy(ein, "Ein"), pair), \
            eout, ein, pair

    def test_explain_reports_sortmerge_routing(self):
        expr, _eout, _ein, _pair = self._minplus_product()
        text = explain(expr)
        assert "kernel=sortmerge" in text
        assert "kernel routing (product nodes):" in text
        assert "[min_plus] kernel=sortmerge" in text

    def test_explain_reports_calibrated_rate_after_execution(self):
        expr, _eout, _ein, _pair = self._minplus_product()
        evaluate(expr)                     # records a sortmerge sample
        text = explain(expr)
        routing = [ln for ln in text.splitlines()
                   if "[min_plus] kernel=sortmerge" in ln]
        assert routing and "ns/term" in routing[0]
        assert "measured" in routing[0] or "calibrated" in routing[0]

    def test_executor_emits_kernel_event(self):
        from repro.obs.events import get_event_log
        expr, _eout, _ein, _pair = self._minplus_product()
        evaluate(expr)
        events = get_event_log().events(kind="expr.kernel", limit=1)
        assert events
        ev = events[0]
        assert ev["kernel"] == "sortmerge"
        assert ev["op_pair"] == "min_plus"
        assert ev["terms"] > 0
        assert ev["node"] == "incidence_to_adjacency"

    def test_sortmerge_result_matches_generic_construction(self):
        expr, eout, ein, pair = self._minplus_product()
        got = evaluate(expr)
        want = adjacency_array(eout, ein, pair, kernel="generic")
        assert got.allclose(want)

    def test_runtime_validation_demotes_disproved_pick(self):
        # Ints beyond 2**53 defeat the float64 promotion at run time;
        # the cost model's optimistic sortmerge pick must demote to
        # generic instead of failing.
        pair = get_op_pair("min_plus")
        big = 2 ** 60
        eout = AssociativeArray(
            {(f"e{i}", f"v{i % 20}"): big + i for i in range(300)},
            row_keys=[f"e{i}" for i in range(300)],
            col_keys=[f"v{i}" for i in range(20)], zero=pair.zero)
        ein = AssociativeArray(
            {(f"e{i}", f"v{(i + 1) % 20}"): big + i for i in range(300)},
            row_keys=[f"e{i}" for i in range(300)],
            col_keys=[f"v{i}" for i in range(20)], zero=pair.zero)
        expr = lazy(eout).T.matmul(lazy(ein), pair)
        p = plan(expr)
        product = [n for n in
                   __import__("repro.expr.ast", fromlist=["x"])
                   .topological_order(p.root)
                   if n.kind in ("matmul", "incidence_to_adjacency")]
        assert p.estimates[id(product[0])].kernel == "sortmerge"
        got = p.execute()                      # demoted, not crashed
        want = adjacency_array(eout, ein, pair, kernel="generic")
        assert got == want

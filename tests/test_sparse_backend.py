"""Tests for the vectorised kernels (repro.arrays.sparse_backend)."""

from __future__ import annotations

import math
import random

import pytest

from repro.arrays.associative import AssociativeArray
from repro.arrays.matmul import MatmulError, multiply, multiply_generic
from repro.arrays.sparse_backend import (
    KERNELS,
    from_scipy,
    multiply_vectorized,
    to_scipy,
    vectorizable,
)
from repro.values.semiring import get_op_pair

from tests.helpers import SAFE_NUMERIC_PAIRS


def _random_pair_of_arrays(seed, m=9, k=11, n=8, density=0.35, zero=0.0):
    """Two conformable random arrays with values in 1..9."""
    rng = random.Random(seed)
    rows = [f"r{i:02d}" for i in range(m)]
    inner = [f"k{i:02d}" for i in range(k)]
    cols = [f"c{i:02d}" for i in range(n)]
    a = {(r, kk): float(rng.randint(1, 9))
         for r in rows for kk in inner if rng.random() < density}
    b = {(kk, c): float(rng.randint(1, 9))
         for kk in inner for c in cols if rng.random() < density}
    return (AssociativeArray(a, row_keys=rows, col_keys=inner, zero=zero),
            AssociativeArray(b, row_keys=inner, col_keys=cols, zero=zero))


class TestVectorizable:
    def test_numeric_ufunc_pair(self):
        a, b = _random_pair_of_arrays(1)
        assert vectorizable(a, b, get_op_pair("plus_times"))
        assert vectorizable(a, b, get_op_pair("max_min"))

    def test_non_ufunc_pair_rejected(self):
        a, b = _random_pair_of_arrays(1)
        assert not vectorizable(a, b, get_op_pair("skew_plus_times"))

    def test_non_numeric_values_rejected(self):
        zero = get_op_pair("string_max_min").zero
        a = AssociativeArray({("r", "k"): "s"}, zero=zero)
        b = AssociativeArray({("k", "c"): "t"}, zero=zero)
        assert not vectorizable(a, b, get_op_pair("string_max_min"))
        assert not vectorizable(a, b, get_op_pair("plus_times"))

    def test_multiply_vectorized_refuses_unvectorizable(self):
        zero = get_op_pair("max_concat").zero
        a = AssociativeArray({("r", "k"): "s"}, zero=zero)
        b = AssociativeArray({("k", "c"): "t"}, zero=zero)
        with pytest.raises(MatmulError, match="not vectorisable"):
            multiply_vectorized(a, b, get_op_pair("max_concat"),
                                kernel="reduceat")


class TestKernelModePairing:
    def test_dense_blocked_requires_dense_mode(self):
        a, b = _random_pair_of_arrays(2)
        with pytest.raises(MatmulError, match="dense semantics"):
            multiply_vectorized(a, b, get_op_pair("plus_times"),
                                kernel="dense_blocked", mode="sparse")

    def test_reduceat_requires_sparse_mode(self):
        a, b = _random_pair_of_arrays(2)
        with pytest.raises(MatmulError, match="sparse semantics"):
            multiply_vectorized(a, b, get_op_pair("plus_times"),
                                kernel="reduceat", mode="dense")

    def test_scipy_kernel_only_for_plus_times(self):
        a, b = _random_pair_of_arrays(2)
        with pytest.raises(MatmulError, match="scipy kernel"):
            multiply_vectorized(a, b, get_op_pair("max_min"),
                                kernel="scipy")

    def test_unknown_kernel(self):
        a, b = _random_pair_of_arrays(2)
        with pytest.raises(MatmulError, match="unknown kernel"):
            multiply_vectorized(a, b, get_op_pair("plus_times"),
                                kernel="nope")


class TestKernelAgreement:
    """Every vectorised kernel must agree with the generic reference."""

    @pytest.mark.parametrize("seed", [3, 4, 5])
    @pytest.mark.parametrize("name", SAFE_NUMERIC_PAIRS)
    def test_reduceat_matches_generic(self, name, seed):
        pair = get_op_pair(name)
        a, b = _random_pair_of_arrays(seed, zero=pair.zero)
        ref = multiply_generic(a, b, pair, mode="sparse")
        got = multiply_vectorized(a, b, pair, kernel="reduceat")
        assert got.allclose(ref), name

    @pytest.mark.parametrize("seed", [3, 4, 5])
    @pytest.mark.parametrize("name", SAFE_NUMERIC_PAIRS)
    def test_dense_blocked_matches_generic_dense(self, name, seed):
        pair = get_op_pair(name)
        a, b = _random_pair_of_arrays(seed, zero=pair.zero)
        ref = multiply_generic(a, b, pair, mode="dense")
        got = multiply_vectorized(a, b, pair, kernel="dense_blocked",
                                  mode="dense")
        assert got.allclose(ref), name

    @pytest.mark.parametrize("seed", [3, 4, 5, 6])
    def test_scipy_matches_generic(self, seed):
        pair = get_op_pair("plus_times")
        a, b = _random_pair_of_arrays(seed)
        ref = multiply_generic(a, b, pair, mode="sparse")
        got = multiply_vectorized(a, b, pair, kernel="scipy")
        assert got.allclose(ref)

    def test_auto_kernel_on_large_input_matches_generic(self):
        pair = get_op_pair("max_plus")
        a, b = _random_pair_of_arrays(9, m=30, k=40, n=25, density=0.4,
                                      zero=pair.zero)
        ref = multiply_generic(a, b, pair, mode="sparse")
        got = multiply(a, b, pair)  # auto → sortmerge at this size
        assert got.allclose(ref)

    def test_empty_operands(self):
        pair = get_op_pair("min_plus")
        a = AssociativeArray.empty(["r"], ["k"], zero=pair.zero)
        b = AssociativeArray.empty(["k"], ["c"], zero=pair.zero)
        got = multiply_vectorized(a, b, pair, kernel="reduceat")
        assert got.nnz == 0

    def test_no_shared_inner_entries(self):
        pair = get_op_pair("plus_times")
        a = AssociativeArray({("r", "k1"): 1.0},
                             row_keys=["r"], col_keys=["k1", "k2"])
        b = AssociativeArray({("k2", "c"): 1.0},
                             row_keys=["k1", "k2"], col_keys=["c"])
        got = multiply_vectorized(a, b, pair, kernel="reduceat")
        assert got.nnz == 0

    def test_dense_blocked_with_inf_zero(self):
        """min.+ fills with +∞; annihilation must be native."""
        pair = get_op_pair("min_plus")
        a = AssociativeArray({("r", "k1"): 2.0},
                             row_keys=["r"], col_keys=["k1", "k2"],
                             zero=math.inf)
        b = AssociativeArray({("k1", "c"): 3.0, ("k2", "c"): 1.0},
                             row_keys=["k1", "k2"], col_keys=["c"],
                             zero=math.inf)
        got = multiply_vectorized(a, b, pair, kernel="dense_blocked",
                                  mode="dense")
        # min(2+3, ∞+1) = 5.
        assert got.get("r", "c") == 5.0

    def test_block_boundary_exactness(self):
        """More rows than the dense block size: block seams are invisible."""
        pair = get_op_pair("max_times")
        a, b = _random_pair_of_arrays(11, m=150, k=20, n=10, density=0.3)
        ref = multiply_generic(a, b, pair, mode="sparse")
        got = multiply_vectorized(a, b, pair, kernel="dense_blocked",
                                  mode="dense")
        assert got.allclose(ref)


class TestScipyInterop:
    def test_roundtrip(self):
        a, _ = _random_pair_of_arrays(13)
        m = to_scipy(a)
        back = from_scipy(m, a.row_keys, a.col_keys)
        assert back.allclose(a)

    def test_to_scipy_requires_zero_zero(self):
        a = AssociativeArray({("r", "c"): 1.0}, zero=math.inf)
        with pytest.raises(ValueError, match="zero == 0"):
            to_scipy(a)

    def test_from_scipy_shape_mismatch(self):
        a, _ = _random_pair_of_arrays(13)
        m = to_scipy(a)
        with pytest.raises(ValueError, match="shape"):
            from_scipy(m, ["just_one_row"], a.col_keys)

    def test_kernels_constant(self):
        assert set(KERNELS) == {"scipy", "sortmerge", "reduceat",
                                "dense_blocked"}

"""Tests for the metrics registry (repro.obs.metrics)."""

from __future__ import annotations

import math
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    render_prometheus,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter()
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter().inc(-1.0)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(10.0)
        g.inc(5.0)
        g.dec(2.0)
        assert g.value == 13.0

    def test_callback_gauge_reads_lazily(self):
        state = {"n": 1.0}
        g = Gauge(fn=lambda: state["n"])
        assert g.value == 1.0
        state["n"] = 7.0
        assert g.value == 7.0

    def test_broken_callback_yields_nan_not_raise(self):
        def boom():
            raise RuntimeError("broken")
        g = Gauge(fn=boom)
        assert math.isnan(g.value)


class TestHistogram:
    def test_count_sum_mean(self):
        h = Histogram(buckets=(1.0, 10.0))
        for v in (0.5, 2.0, 20.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(22.5)
        assert h.mean == pytest.approx(7.5)

    def test_percentile_bounds(self):
        h = Histogram(buckets=(0.001, 0.01, 0.1, 1.0))
        for _ in range(100):
            h.observe(0.005)   # all land in the (0.001, 0.01] bucket
        p50 = h.percentile(0.50)
        assert 0.001 <= p50 <= 0.01   # within the winning bucket
        assert h.percentile(0.0) <= h.percentile(1.0)

    def test_percentile_empty_is_none_and_range_check(self):
        h = Histogram()
        # An empty histogram has no quantile — a fabricated 0.0 would
        # read as a real (and impossibly good) latency.
        assert h.percentile(0.5) is None
        with pytest.raises(ValueError, match="quantile"):
            h.percentile(1.5)

    def test_percentile_single_observation_is_exact(self):
        h = Histogram(buckets=(0.1, 1.0))
        h.observe(0.42)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.percentile(q) == pytest.approx(0.42)

    def test_snapshot_percentiles_null_when_empty(self):
        snap = Histogram().snapshot()
        assert snap["count"] == 0
        assert snap["p50"] is None and snap["p99"] is None

    def test_time_context_manager_observes(self):
        h = Histogram()
        with h.time():
            pass
        assert h.count == 1
        assert h.sum >= 0.0

    def test_snapshot_keys(self):
        h = Histogram(buckets=(1.0,))
        h.observe(0.5)
        snap = h.snapshot()
        assert set(snap) == {"count", "sum", "mean", "min", "max",
                             "p50", "p90", "p99", "p999"}
        assert snap["count"] == 1 and snap["min"] == 0.5

    def test_untraced_observations_attach_no_exemplar(self):
        h = Histogram(buckets=(1.0,))
        h.observe(0.5)
        assert h.exemplar() is None
        assert h.exemplars() == [None, None]
        assert "exemplar" not in h.snapshot()

    def test_traced_observation_attaches_exemplar(self):
        from repro.obs.trace import Tracer
        tracer = Tracer()
        h = Histogram(buckets=(0.1, 1.0))
        with tracer.span("op") as sp:
            h.observe(0.5)
        ex = h.exemplar()
        assert ex is not None
        assert ex["trace_id"] == sp.trace_id
        assert ex["span_id"] == sp.span_id
        assert ex["value"] == 0.5
        # Index-aligned with cumulative_buckets: 0.5 lands in (0.1, 1].
        per_bucket = h.exemplars()
        assert per_bucket[0] is None and per_bucket[2] is None
        assert per_bucket[1]["trace_id"] == sp.trace_id
        assert h.snapshot()["exemplar"]["trace_id"] == sp.trace_id

    def test_exemplar_prefers_slowest_bucket(self):
        from repro.obs.trace import Tracer
        tracer = Tracer()
        h = Histogram(buckets=(0.1, 1.0))
        with tracer.span("fast"):
            h.observe(0.05)
        with tracer.span("slow") as slow:
            h.observe(5.0)     # overflow bucket
        assert h.exemplar()["trace_id"] == slow.trace_id

    def test_exemplar_threshold_filters(self):
        from repro.obs.trace import Tracer
        tracer = Tracer()
        h = Histogram(buckets=(0.1, 1.0), exemplar_threshold=0.2)
        with tracer.span("fast"):
            h.observe(0.05)    # below threshold — no exemplar
        assert h.exemplar() is None
        with tracer.span("slow"):
            h.observe(0.5)
        assert h.exemplar() is not None

    def test_cumulative_buckets_end_at_inf(self):
        h = Histogram(buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(5.0)   # overflow
        rows = h.cumulative_buckets()
        assert rows[-1][0] == math.inf
        assert rows[-1][1] == 2           # +Inf is cumulative over all
        assert rows[0] == (1.0, 1)

    def test_needs_at_least_one_bucket(self):
        with pytest.raises(ValueError, match="at least one bucket"):
            Histogram(buckets=())


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("requests_total", "help")
        b = reg.counter("requests_total")
        assert a is b

    def test_label_sets_are_distinct_children(self):
        reg = MetricsRegistry()
        a = reg.counter("requests_total", kind="khop")
        b = reg.counter("requests_total", kind="stats")
        assert a is not b
        a.inc()
        assert b.value == 0.0
        # Label order must not matter.
        c = reg.counter("multi", a="1", b="2")
        d = reg.counter("multi", b="2", a="1")
        assert c is d

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("thing_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("thing_total")

    def test_bad_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="metric names"):
            reg.counter("bad-name")
        with pytest.raises(ValueError):
            reg.counter("")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("reqs_total", "Requests", route="query").inc(3)
        reg.histogram("lat_seconds", "Latency").observe(0.01)
        snap = reg.snapshot()
        assert snap["reqs_total"]["type"] == "counter"
        assert snap["reqs_total"]["values"]["route=query"] == 3.0
        hist = snap["lat_seconds"]["values"][""]
        assert hist["count"] == 1

    def test_reset_drops_families(self):
        reg = MetricsRegistry()
        reg.counter("gone_total").inc()
        reg.reset()
        assert reg.families() == []
        assert reg.counter("gone_total").value == 0.0

    def test_global_registry_is_a_singleton(self):
        assert get_registry() is get_registry()
        assert isinstance(get_registry(), MetricsRegistry)


class TestPrometheusRendering:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("reqs_total", "Total requests", route="query").inc(5)
        reg.gauge("epoch", "Current epoch").set(3)
        text = reg.render_prometheus()
        assert "# HELP reqs_total Total requests" in text
        assert "# TYPE reqs_total counter" in text
        assert 'reqs_total{route="query"} 5' in text
        assert "# TYPE epoch gauge" in text
        assert "epoch 3" in text
        assert text.endswith("\n")

    def test_histogram_exposition(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", "Latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        text = reg.render_prometheus()
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_count 2" in text
        assert "lat_seconds_sum 0.55" in text

    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.counter("odd_total", "Odd labels",
                    path='a\\b"c\nd').inc()
        text = reg.render_prometheus()
        assert 'odd_total{path="a\\\\b\\"c\\nd"} 1' in text
        assert "\n" not in text.split("odd_total{", 1)[1].split("} ")[0]

    def test_bucket_lines_carry_openmetrics_exemplars(self):
        from repro.obs.trace import Tracer
        reg = MetricsRegistry()
        tracer = Tracer()
        h = reg.histogram("lat_seconds", "Latency", buckets=(0.1, 1.0))
        with tracer.span("req") as sp:
            h.observe(0.5)
        text = reg.render_prometheus()
        line = next(ln for ln in text.splitlines()
                    if ln.startswith('lat_seconds_bucket{le="1"}'))
        assert f'# {{trace_id="{sp.trace_id}",span_id="{sp.span_id}"}} ' \
            in line
        assert " 0.5 " in line
        # Buckets without exemplars render the plain form.
        plain = next(ln for ln in text.splitlines()
                     if ln.startswith('lat_seconds_bucket{le="0.1"}'))
        assert "#" not in plain

    def test_multi_registry_merge_keeps_one_header(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("shared_total", "From a", src="a").inc()
        b.counter("shared_total", "From b", src="b").inc(2)
        text = render_prometheus(a, b)
        assert text.count("# TYPE shared_total counter") == 1
        assert 'shared_total{src="a"} 1' in text
        assert 'shared_total{src="b"} 2' in text


class TestConcurrency:
    def test_concurrent_writers_lose_nothing(self):
        """N threads × M increments/observations land exactly."""
        reg = MetricsRegistry()
        counter = reg.counter("hits_total")
        hist = reg.histogram("lat_seconds",
                             buckets=DEFAULT_LATENCY_BUCKETS)
        n_threads, per_thread = 8, 500

        def worker(tid: int) -> None:
            # Also hammer get-or-create from every thread.
            c = reg.counter("hits_total")
            for i in range(per_thread):
                c.inc()
                hist.observe(0.001 * ((tid + i) % 10 + 1))

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not any(t.is_alive() for t in threads)
        assert counter.value == n_threads * per_thread
        assert hist.count == n_threads * per_thread
        # Cumulative bucket rows stay monotone and consistent.
        rows = hist.cumulative_buckets()
        assert rows[-1][1] == hist.count
        assert all(rows[i][1] <= rows[i + 1][1]
                   for i in range(len(rows) - 1))

    def test_concurrent_exemplar_attachment(self):
        """Threads racing traced observations never corrupt the
        exemplar table: every recorded exemplar is one that a thread
        actually observed, in the right bucket."""
        from repro.obs.trace import Tracer
        tracer = Tracer(max_traces=256)
        hist = Histogram(buckets=(0.1, 1.0, 10.0))
        n_threads, per_thread = 8, 200
        recorded: dict = {}
        lock = threading.Lock()

        def worker(tid: int) -> None:
            for i in range(per_thread):
                value = (0.05, 0.5, 5.0, 50.0)[(tid + i) % 4]
                with tracer.span("op", tid=tid) as sp:
                    hist.observe(value)
                with lock:
                    recorded[(sp.trace_id, sp.span_id)] = value

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not any(t.is_alive() for t in threads)
        assert hist.count == n_threads * per_thread
        exemplars = hist.exemplars()
        bounds = (0.1, 1.0, 10.0, math.inf)
        assert len(exemplars) == len(bounds)
        seen = 0
        for i, ex in enumerate(exemplars):
            if ex is None:
                continue
            seen += 1
            # The exemplar is a real observation some thread made...
            assert recorded[(ex["trace_id"], ex["span_id"])] \
                == ex["value"]
            # ...and it sits in the bucket its value belongs to.
            lower = bounds[i - 1] if i else 0.0
            assert lower < ex["value"] <= bounds[i]
        assert seen == 4   # every bucket saw traffic

    def test_concurrent_family_creation(self):
        reg = MetricsRegistry()
        errors = []

        def creator(i: int) -> None:
            try:
                reg.counter("made_total", lab=str(i % 4)).inc()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=creator, args=(i,))
                   for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        total = sum(reg.counter("made_total", lab=str(k)).value
                    for k in range(4))
        assert total == 16

"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest

from repro.arrays.associative import AssociativeArray
from repro.graphs.digraph import EdgeKeyedDigraph
from repro.values.semiring import get_op_pair

# Exotic pairs register on import (also re-exported via tests.helpers).
import repro.values.exotic  # noqa: F401


@pytest.fixture(autouse=True, scope="session")
def _isolated_calibration(tmp_path_factory):
    """Point the persistent kernel-calibration store at a session-local
    temp file so tests never read or write ``~/.repro``."""
    from repro.obs.calibration import reset_calibration_store
    path = tmp_path_factory.mktemp("calibration") / "calibration.json"
    old = os.environ.get("REPRO_CALIBRATION_PATH")
    os.environ["REPRO_CALIBRATION_PATH"] = str(path)
    reset_calibration_store()
    yield
    if old is None:
        os.environ.pop("REPRO_CALIBRATION_PATH", None)
    else:
        os.environ["REPRO_CALIBRATION_PATH"] = old
    reset_calibration_store()


@pytest.fixture
def plus_times():
    return get_op_pair("plus_times")


@pytest.fixture
def min_plus():
    return get_op_pair("min_plus")


@pytest.fixture
def small_graph():
    """Two parallel edges a→b, an edge b→c, and a self-loop at c."""
    return EdgeKeyedDigraph([
        ("e1", "a", "b"),
        ("e2", "a", "b"),
        ("e3", "b", "c"),
        ("e4", "c", "c"),
    ])


@pytest.fixture
def tiny_array():
    """2×3 array: [[1, 2, 0], [0, 0, 3]] over rows r1,r2 / cols c1..c3."""
    return AssociativeArray(
        {("r1", "c1"): 1, ("r1", "c2"): 2, ("r2", "c3"): 3},
        row_keys=["r1", "r2"],
        col_keys=["c1", "c2", "c3"],
    )

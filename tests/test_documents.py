"""Tests for the Section III document×word structured exemption."""

from __future__ import annotations

import pytest

from repro.core.certify import certify
from repro.core.construction import correlate
from repro.datasets.documents import (
    example_word_sets,
    expected_shared_adjacency,
    random_word_sets,
    shared_word_incidence,
)
from repro.values.semiring import get_op_pair


PAIR = get_op_pair("union_intersection")


class TestSharedWordIncidence:
    def test_symmetric(self):
        e = shared_word_incidence(example_word_sets())
        for (i, j) in e.nonzero_pattern():
            assert e.get(i, j) == e.get(j, i)

    def test_diagonal_is_word_set(self):
        words = example_word_sets()
        e = shared_word_incidence(words)
        for doc, ws in words.items():
            assert e.get(doc, doc) == frozenset(ws)

    def test_zero_is_empty_set(self):
        assert shared_word_incidence(example_word_sets()).zero == frozenset()

    def test_structural_property_from_paper(self):
        """'a word in E(i,j) and E(m,n) has to be in E(i,n) and E(m,j)'."""
        e = shared_word_incidence(example_word_sets())
        docs = list(e.row_keys)
        for i in docs:
            for j in docs:
                for m in docs:
                    for n in docs:
                        common = frozenset(e.get(i, j)) \
                            & frozenset(e.get(m, n))
                        for w in common:
                            assert w in e.get(i, n)
                            assert w in e.get(m, j)


class TestStructuredProduct:
    def test_product_entries_are_shared_words(self):
        words = example_word_sets()
        e = shared_word_incidence(words)
        prod = correlate(e, e, PAIR)
        exp = expected_shared_adjacency(words)
        assert prod.same_pattern(exp)
        for (i, j) in exp.nonzero_pattern():
            assert frozenset(prod.get(i, j)) == frozenset(exp.get(i, j))

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_random_collections_also_safe(self, seed):
        vocab = [f"w{i}" for i in range(8)]
        words = random_word_sets(7, vocab, seed=seed)
        e = shared_word_incidence(words)
        prod = correlate(e, e, PAIR)
        exp = expected_shared_adjacency(words)
        assert prod.same_pattern(exp)

    def test_pair_itself_remains_uncertified(self):
        assert not certify(PAIR, seed=5).safe

    def test_unstructured_counterexample(self):
        """Without the structure the exemption fails: a middle document
        sharing *different* words with i and j produces a zero-divisor
        multiplication and the edge vanishes."""
        from repro.arrays.associative import AssociativeArray
        zero = frozenset()
        # E(m, i) = {x}, E(m, j) = {y} and no diagonal entries.
        eout = AssociativeArray(
            {("m", "i"): frozenset({"x"}), ("m", "j"): frozenset({"y"})},
            row_keys=["m"], col_keys=["i", "j"], zero=zero)
        prod = correlate(eout, eout, PAIR)
        # Expected adjacency pattern has (i, j) — both incidence entries
        # are nonzero in row m — but the ∪.∩ product drops it.
        from repro.core.construction import expected_adjacency_pattern
        assert ("i", "j") in expected_adjacency_pattern(eout, eout)
        assert prod.get("i", "j") == zero


class TestRandomWordSets:
    def test_deterministic(self):
        vocab = ["a", "b", "c"]
        assert random_word_sets(5, vocab, seed=9) \
            == random_word_sets(5, vocab, seed=9)

    def test_nonempty_guarantee(self):
        words = random_word_sets(20, ["a", "b"], seed=3, p_word=0.01)
        assert all(ws for ws in words.values())

    def test_allow_empty(self):
        words = random_word_sets(20, ["a", "b"], seed=3, p_word=0.01,
                                 ensure_nonempty=False)
        assert any(not ws for ws in words.values())

"""Tests for the experiment harness and the synopsis validator."""

from __future__ import annotations

import pytest

from repro.experiments.figures import Figure1Experiment
from repro.experiments.harness import main, render_report, run_all
from repro.experiments.synopsis import SYNOPSIS, validate_synopsis


class TestHarness:
    def test_run_all_matches(self):
        report = run_all()
        assert report.all_matched, render_report(report)

    def test_summary_rows(self):
        report = run_all(experiments=[Figure1Experiment()])
        rows = dict(report.summary_rows())
        assert rows["fig1"] is True
        assert "synopsis" in rows

    def test_render_report_mentions_each_experiment(self):
        report = run_all(experiments=[Figure1Experiment()])
        text = render_report(report)
        assert "fig1" in text
        assert "ALL MATCHED" in text

    def test_main_exit_code(self, capsys):
        assert main() == 0
        out = capsys.readouterr().out
        assert "ALL MATCHED" in out


class TestSynopsis:
    def test_every_figure_pair_covered(self):
        assert [line.pair_name for line in SYNOPSIS] == [
            "plus_times", "max_times", "min_times", "max_plus",
            "min_plus", "max_min", "min_max"]

    def test_prose_present(self):
        assert all(len(line.prose) > 20 for line in SYNOPSIS)

    def test_all_validated(self):
        rows = validate_synopsis()
        for name, ok, detail in rows:
            assert ok, f"{name}: {detail}"

    def test_reference_functions(self):
        by_name = {l.pair_name: l for l in SYNOPSIS}
        assert by_name["plus_times"].reference([1, 2, 3]) == 6
        assert by_name["max_min"].term(4, 7) == 4
        assert by_name["min_max"].term(4, 7) == 7

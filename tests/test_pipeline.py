"""Tests for the end-to-end graph-construction pipeline."""

from __future__ import annotations

import pytest

from repro.core.pipeline import GraphConstructionPipeline
from repro.datasets.music import music_table
from repro.values.semiring import get_op_pair


@pytest.fixture(scope="module")
def pipe():
    return GraphConstructionPipeline(music_table())


class TestIncidence:
    def test_incidence_is_figure1(self, pipe):
        assert pipe.incidence.shape == (22, 31)
        assert pipe.incidence.nnz == 186

    def test_select_prefix(self, pipe):
        e1 = pipe.select("Genre|*")
        assert e1.shape == (22, 3)

    def test_select_range(self, pipe):
        e2 = pipe.select("Writer|A : Writer|Z")
        assert e2.shape == (22, 5)

    def test_field_values(self, pipe):
        assert pipe.field_values("Genre") == ["Electronic", "Pop", "Rock"]
        assert len(pipe.field_values("Writer")) == 5


class TestCorrelate:
    def test_quickstart_value(self, pipe):
        adj = pipe.correlate("Genre|*", "Writer|*", "plus_times")
        assert adj["Genre|Electronic", "Writer|Chad Anderson"] == 7

    def test_accepts_op_pair_object(self, pipe):
        adj = pipe.correlate("Genre|*", "Writer|*",
                             get_op_pair("plus_times"))
        assert adj["Genre|Pop", "Writer|Chad Anderson"] == 13

    def test_nonzero_zero_pairs_reinterpreted(self, pipe):
        adj = pipe.correlate("Genre|*", "Writer|*", "min_plus")
        assert adj["Genre|Rock", "Writer|Chad Anderson"] == 2
        import math
        assert adj.zero == math.inf

    def test_require_safe_accepts_compliant(self, pipe):
        adj = pipe.correlate("Genre|*", "Writer|*", "max_min",
                             require_safe=True)
        assert adj["Genre|Rock", "Writer|Chloe Chaidez"] == 1

    def test_require_safe_rejects_violator(self, pipe):
        with pytest.raises(ValueError, match="Theorem II.1"):
            pipe.correlate("Genre|*", "Writer|*", "nonneg_max_plus",
                           require_safe=True)

    def test_certification_memoized(self, pipe):
        c1 = pipe.certification("plus_times")
        c2 = pipe.certification("plus_times")
        assert c1 is c2


class TestCustomTables:
    def test_small_pipeline(self):
        table = {
            "r1": {"Color": "red", "Size": ["S", "M"]},
            "r2": {"Color": "blue", "Size": "M"},
        }
        pipe = GraphConstructionPipeline(table)
        adj = pipe.correlate("Color|*", "Size|*", "plus_times")
        assert adj["Color|red", "Size|M"] == 1
        assert adj["Color|blue", "Size|M"] == 1
        assert adj["Color|blue", "Size|S"] == 0

    def test_custom_separator(self):
        pipe = GraphConstructionPipeline({"r": {"A": "x"}}, separator=":")
        assert "A:x" in pipe.incidence.col_keys

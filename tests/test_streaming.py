"""Tests for streaming (incremental) adjacency construction."""

from __future__ import annotations

import random

import pytest

from repro.core.construction import is_adjacency_array_of_graph
from repro.core.streaming import StreamingAdjacencyBuilder
from repro.graphs.digraph import GraphError
from repro.graphs.generators import erdos_renyi_multigraph
from repro.values.semiring import get_op_pair


class TestBasics:
    def test_accumulates_parallel_edges(self):
        b = StreamingAdjacencyBuilder(get_op_pair("plus_times"))
        b.add_edge("e1", "a", "b", 120)
        b.add_edge("e2", "a", "b", 30)
        assert b.adjacency()["a", "b"] == 150
        assert b.num_edges == 2

    def test_default_values_are_one(self):
        b = StreamingAdjacencyBuilder(get_op_pair("plus_times"))
        b.add_edge("e1", "a", "b")
        assert b.adjacency()["a", "b"] == 1

    def test_duplicate_key_rejected(self):
        b = StreamingAdjacencyBuilder(get_op_pair("plus_times"))
        b.add_edge("e1", "a", "b")
        with pytest.raises(GraphError, match="duplicate"):
            b.add_edge("e1", "a", "c")

    def test_zero_value_rejected(self):
        b = StreamingAdjacencyBuilder(get_op_pair("plus_times"))
        with pytest.raises(GraphError, match="nonzero"):
            b.add_edge("e1", "a", "b", 0)

    def test_add_edges_bulk(self):
        b = StreamingAdjacencyBuilder(get_op_pair("plus_times"))
        b.add_edges([("e1", "a", "b"), ("e2", "b", "c", 4, 2)])
        assert b.adjacency()["b", "c"] == 8
        with pytest.raises(GraphError, match="tuple"):
            b.add_edges([("e3", "a")])

    def test_unsafe_pair_rejected_by_default(self):
        with pytest.raises(ValueError, match="Theorem II.1"):
            StreamingAdjacencyBuilder(get_op_pair("int_plus_times"))

    def test_unsafe_override(self):
        b = StreamingAdjacencyBuilder(get_op_pair("int_plus_times"),
                                      unsafe_ok=True)
        b.add_edge("e1", "a", "b", 5)
        b.add_edge("e2", "a", "b", -5)
        # The cancellation the theorem warns about: edge exists, entry gone.
        assert not is_adjacency_array_of_graph(b.adjacency(), b.graph(),
                                               check_keys=False) \
            or b.adjacency().nnz == 0

    def test_order_sensitivity_flag(self):
        assert not StreamingAdjacencyBuilder(
            get_op_pair("plus_times")).order_sensitive
        assert StreamingAdjacencyBuilder(
            get_op_pair("skew_plus_times")).order_sensitive


class TestEquivalenceWithBatch:
    @pytest.mark.parametrize("pair_name", [
        "plus_times", "max_times", "min_plus", "max_min", "or_and"])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_streaming_equals_batch(self, pair_name, seed):
        pair = get_op_pair(pair_name)
        graph = erdos_renyi_multigraph(8, 30, seed=seed)
        rng = random.Random(seed + 7)
        keys = list(graph.edge_keys)
        out_vals = dict(zip(keys, pair.domain.sample(
            rng, len(keys), exclude=pair.zero)))
        in_vals = dict(zip(keys, pair.domain.sample(
            rng, len(keys), exclude=pair.zero)))

        b = StreamingAdjacencyBuilder(pair)
        arrival = list(graph.edges())
        rng.shuffle(arrival)  # stream in arbitrary arrival order
        for k, s, t in arrival:
            b.add_edge(k, s, t, out_vals[k], in_vals[k])

        streamed = b.adjacency()
        batch = b.batch_adjacency()
        # allclose: float ⊕ is associative/commutative only up to an ulp.
        assert streamed.allclose(batch)
        assert is_adjacency_array_of_graph(streamed, graph)

    def test_order_sensitive_pair_may_diverge(self):
        """For the non-associative ⊕̃, arrival order ≠ key order can
        change values (never the pattern)."""
        pair = get_op_pair("skew_plus_times")
        b = StreamingAdjacencyBuilder(pair)
        # Reverse arrival order relative to key order.
        b.add_edge("k2", "a", "b", 2, 1)
        b.add_edge("k1", "a", "b", 1, 1)
        streamed = b.adjacency()
        batch = b.batch_adjacency()
        assert streamed.same_pattern(batch)
        # ⊕̃ folded as (2 ⊕̃ 1) vs (1 ⊕̃ 2):
        assert streamed["a", "b"] == pair.add(2, 1)
        assert batch["a", "b"] == pair.add(1, 2)
        assert streamed["a", "b"] != batch["a", "b"]


class TestRemoval:
    def test_remove_edge_rebuilds_cell(self):
        b = StreamingAdjacencyBuilder(get_op_pair("plus_times"))
        b.add_edge("e1", "a", "b", 10)
        b.add_edge("e2", "a", "b", 7)
        b.remove_edge("e1")
        assert b.adjacency()["a", "b"] == 7
        assert b.num_edges == 1

    def test_remove_last_parallel_clears_entry(self):
        b = StreamingAdjacencyBuilder(get_op_pair("plus_times"))
        b.add_edge("e1", "a", "b")
        b.remove_edge("e1")
        assert b.adjacency().nnz == 0

    def test_remove_unknown(self):
        b = StreamingAdjacencyBuilder(get_op_pair("plus_times"))
        with pytest.raises(GraphError, match="unknown edge"):
            b.remove_edge("nope")

    def test_remove_then_matches_batch(self):
        pair = get_op_pair("max_min")
        b = StreamingAdjacencyBuilder(pair)
        b.add_edge("e1", "a", "b", 5, 9)
        b.add_edge("e2", "a", "b", 2, 3)
        b.add_edge("e3", "b", "c", 4, 4)
        b.remove_edge("e1")
        assert b.adjacency() == b.batch_adjacency()


class TestOutputs:
    def test_graph_roundtrip(self, small_graph):
        b = StreamingAdjacencyBuilder(get_op_pair("plus_times"))
        for k, s, t in small_graph.edges():
            b.add_edge(k, s, t)
        assert b.graph() == small_graph

    def test_incidence_arrays_are_valid(self, small_graph):
        from repro.graphs.incidence import (
            is_source_incidence_of,
            is_target_incidence_of,
        )
        b = StreamingAdjacencyBuilder(get_op_pair("plus_times"))
        for k, s, t in small_graph.edges():
            b.add_edge(k, s, t)
        eout, ein = b.incidence_arrays()
        assert is_source_incidence_of(eout, small_graph)
        assert is_target_incidence_of(ein, small_graph)


class TestAdjacencyBackend:
    """adjacency() adopts the numeric backend when the values qualify."""

    def test_large_numeric_accumulator_is_numeric_backed(self):
        b = StreamingAdjacencyBuilder(get_op_pair("plus_times"))
        for i in range(300):
            b.add_edge(f"e{i}", f"s{i}", f"t{i}", float(i + 1))
        adj = b.adjacency()
        assert adj.backend == "numeric"
        assert adj["s7", "t7"] == 8.0

    def test_small_accumulator_stays_dict_with_exact_types(self):
        b = StreamingAdjacencyBuilder(get_op_pair("plus_times"))
        b.add_edge("e1", "a", "b", 120)
        b.add_edge("e2", "a", "b", 30)
        adj = b.adjacency()
        assert adj.backend == "dict"
        assert adj["a", "b"] == 150 and isinstance(adj["a", "b"], int)

    def test_backend_numeric_forces_columnar(self):
        b = StreamingAdjacencyBuilder(get_op_pair("plus_times"))
        b.add_edge("e1", "a", "b", 2.0)
        assert b.adjacency(backend="numeric").backend == "numeric"

    def test_backend_dict_pins(self):
        b = StreamingAdjacencyBuilder(get_op_pair("plus_times"))
        for i in range(300):
            b.add_edge(f"e{i}", f"s{i}", f"t{i}")
        adj = b.adjacency(backend="dict")
        assert adj.backend == "dict" and adj.pinned

    def test_non_numeric_values_stay_dict(self):
        pair = get_op_pair("max_concat")
        b = StreamingAdjacencyBuilder(pair)
        for i in range(300):
            b.add_edge(f"e{i:03d}", f"s{i}", f"t{i}", "x", "y")
        adj = b.adjacency()
        assert adj.backend == "dict"
        assert adj["s7", "t7"] == "xy"

    def test_numeric_and_dict_results_agree(self):
        pair = get_op_pair("plus_times")
        b = StreamingAdjacencyBuilder(pair)
        for i in range(280):
            b.add_edge(f"e{i}", f"s{i % 17}", f"t{(i * 5) % 13}",
                       float(1 + i % 4))
        assert b.adjacency().allclose(b.adjacency(backend="dict"))

"""Tests for the out-of-core sharded construction engine (repro.shard)."""

from __future__ import annotations

import json
import pickle
from pathlib import Path

import pytest

from repro.arrays.associative import AssociativeArray
from repro.arrays.io import read_tsv_triples, write_tsv_triples
from repro.cli import build_parser, main
from repro.core.construction import adjacency_array
from repro.graphs.digraph import EdgeKeyedDigraph, GraphError
from repro.graphs.generators import erdos_renyi_multigraph
from repro.graphs.incidence import incidence_arrays
from repro.shard import (
    EdgeRecord,
    ShardAssigner,
    ShardedAdjacencyPlan,
    ShardError,
    ShardManifest,
    check_merge_safety,
    edge_records,
    execute_shards,
    load_shard,
    merge_adjacency,
    merge_spilled,
    oplus_union,
    partition_edge_records,
    partition_tsv_pair,
    sharded_adjacency,
)
from repro.values.semiring import get_op_pair


def _weighted_operands(pair_name="plus_times", n_vertices=12, n_edges=60,
                       seed=5):
    """A graph plus integer-valued incidence arrays (exact under any
    ⊕-fold order, so equality checks can be bit-identical)."""
    pair = get_op_pair(pair_name)
    graph = erdos_renyi_multigraph(n_vertices, n_edges, seed=seed)
    weights = {k: float(1 + (i % 7))
               for i, k in enumerate(graph.edge_keys)}
    eout, ein = incidence_arrays(graph, zero=pair.zero,
                                 out_values=weights, in_values=weights)
    return pair, graph, eout, ein


# ---------------------------------------------------------------------------
# Manifest
# ---------------------------------------------------------------------------

class TestManifest:
    def _build(self, tmp_path, **kwargs):
        records = edge_records([("e1", "a", "b"), ("e2", "b", "c")])
        return partition_edge_records(records, 2, tmp_path, **kwargs)

    def test_round_trip(self, tmp_path):
        manifest = self._build(tmp_path, op_pair_name="plus_times")
        loaded = ShardManifest.load(tmp_path / "manifest.json")
        assert loaded == manifest
        assert loaded.root == tmp_path
        assert loaded.op_pair == "plus_times"
        assert loaded.n_shards == 2
        assert loaded.n_edges == 2

    def test_load_from_directory(self, tmp_path):
        manifest = self._build(tmp_path)
        assert ShardManifest.load(tmp_path) == manifest

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ShardError, match="no manifest"):
            ShardManifest.load(tmp_path / "manifest.json")

    def test_malformed_manifest(self, tmp_path):
        (tmp_path / "manifest.json").write_text("not json{")
        with pytest.raises(ShardError, match="malformed"):
            ShardManifest.load(tmp_path)

    def test_malformed_shard_record(self, tmp_path):
        self._build(tmp_path)
        doc = json.loads((tmp_path / "manifest.json").read_text())
        del doc["shards"][0]["n_out_entries"]
        (tmp_path / "manifest.json").write_text(json.dumps(doc))
        with pytest.raises(ShardError, match="bad shard record"):
            ShardManifest.load(tmp_path)

    def test_version_mismatch(self, tmp_path):
        self._build(tmp_path)
        doc = json.loads((tmp_path / "manifest.json").read_text())
        doc["format_version"] = 999
        (tmp_path / "manifest.json").write_text(json.dumps(doc))
        with pytest.raises(ShardError, match="format_version"):
            ShardManifest.load(tmp_path)

    def test_relative_paths_relocate(self, tmp_path):
        manifest = self._build(tmp_path)
        moved = tmp_path.parent / "moved-shards"
        tmp_path.rename(moved)
        loaded = ShardManifest.load(moved)
        for info in loaded.shards:
            eout_path, ein_path = loaded.shard_paths(info)
            assert eout_path.exists() and ein_path.exists()


# ---------------------------------------------------------------------------
# Assignment and partitioning
# ---------------------------------------------------------------------------

class TestAssigner:
    def test_round_robin_is_balanced_and_sticky(self):
        a = ShardAssigner(3, "round_robin")
        sids = [a.assign(f"e{i}") for i in range(9)]
        assert sids == [0, 1, 2] * 3
        assert a.assign("e0") == 0  # repeated key keeps its shard
        assert len(a) == 9

    def test_hash_is_stable_across_instances(self):
        a, b = ShardAssigner(5, "hash"), ShardAssigner(5, "hash")
        keys = [f"edge-{i}" for i in range(50)]
        assert [a.assign(k) for k in keys] == [b.assign(k) for k in keys]

    def test_invalid_parameters(self):
        with pytest.raises(ShardError, match="n_shards"):
            ShardAssigner(0)
        with pytest.raises(ShardError, match="strategy"):
            ShardAssigner(2, "modulo")


class TestPartition:
    def test_files_and_counts(self, tmp_path):
        pair, graph, eout, ein = _weighted_operands()
        manifest = partition_edge_records(
            edge_records((eout, ein)), 4, tmp_path)
        assert manifest.n_edges == graph.num_edges
        assert sum(s.n_edges for s in manifest.shards) == graph.num_edges
        assert sum(s.n_out_entries for s in manifest.shards) == eout.nnz
        assert sum(s.n_in_entries for s in manifest.shards) == ein.nnz
        for info in manifest.shards:
            eout_path, ein_path = manifest.shard_paths(info)
            assert eout_path.exists() and ein_path.exists()

    def test_duplicate_edge_key_rejected(self, tmp_path):
        records = [EdgeRecord("e1", (("a", 1),), (("b", 1),))] * 2
        with pytest.raises(ShardError, match="duplicate edge key"):
            partition_edge_records(iter(records), 2, tmp_path)

    def test_tsv_format_rejects_unrepresentable_values(self, tmp_path):
        records = [EdgeRecord("e1", (("a", "has\ttab"),), (("b", 1),))]
        with pytest.raises(ShardError, match="TSV round-trip"):
            partition_edge_records(iter(records), 1, tmp_path)

    @pytest.mark.parametrize("record", [
        EdgeRecord(1, (("a", 1),), (("b", 1),)),        # int edge key
        EdgeRecord("e1", ((10, 1),), (("b", 1),)),      # int vertex
        EdgeRecord("e1", (("a", True),), (("b", 1),)),  # bool value
        EdgeRecord("e1", (("a", "3"),), (("b", 1),)),   # "3" parses as int
        EdgeRecord("k\rx", (("a", 1),), (("b", 1),)),   # CR splits on read
    ])
    def test_tsv_format_rejects_lossy_round_trips(self, tmp_path, record):
        """Text shards would silently retype these (int key → str key,
        True → "True", "3" → 3), diverging from batch construction."""
        with pytest.raises(ShardError, match="TSV round-trip"):
            partition_edge_records(iter([record]), 1, tmp_path)

    def test_pickle_format_round_trips_exotic_values(self, tmp_path):
        records = [EdgeRecord(("k", 1), ((frozenset({"a"}), True),),
                              (("b", True),))]
        manifest = partition_edge_records(
            iter(records), 1, tmp_path, shard_format="pickle")
        pair = get_op_pair("or_and")
        eout, ein = load_shard(manifest, manifest.shards[0], zero=pair.zero)
        assert eout.get(("k", 1), frozenset({"a"})) is True

    def test_tsv_pair_streaming(self, tmp_path):
        pair, graph, eout, ein = _weighted_operands()
        write_tsv_triples(eout, tmp_path / "eout.tsv")
        write_tsv_triples(ein, tmp_path / "ein.tsv")
        manifest = partition_tsv_pair(
            tmp_path / "eout.tsv", tmp_path / "ein.tsv", 3,
            tmp_path / "shards", strategy="hash", zero=pair.zero)
        assert manifest.n_edges == graph.num_edges
        assert sum(s.n_out_entries for s in manifest.shards) == eout.nnz

    def test_failed_partition_discards_partial_files(self, tmp_path):
        """A partition that dies midway removes the partial shard files
        it wrote — a user-owned outdir must not accumulate debris."""
        records = [EdgeRecord("e1", (("a", 1),), (("b", 1),)),
                   EdgeRecord("e1", (("a", 1),), (("b", 1),))]
        outdir = tmp_path / "out"
        with pytest.raises(ShardError, match="duplicate"):
            partition_edge_records(iter(records), 3, outdir)
        assert list(outdir.iterdir()) == []

    def test_tsv_pair_rejects_one_sided_edge_keys(self, tmp_path):
        """Batch construction on mismatched files raises (derived row
        key sets differ); the sharded path must refuse too, not silently
        drop the one-sided edge's contribution."""
        (tmp_path / "eout.tsv").write_text("e1\ta\t1\ne3\td\t5\n")
        (tmp_path / "ein.tsv").write_text("e1\tb\t1\n")
        with pytest.raises(ShardError, match="only one incidence file"):
            partition_tsv_pair(tmp_path / "eout.tsv", tmp_path / "ein.tsv",
                               2, tmp_path / "shards", zero=0)

    def test_tsv_pair_accepts_nan_values(self, tmp_path):
        """TSV-sourced entries skip the round-trip check (identity by
        construction), so NaN — which batch construction accepts but
        fails an equality check against itself — shards fine."""
        (tmp_path / "eout.tsv").write_text("e1\ta\tnan\n")
        (tmp_path / "ein.tsv").write_text("e1\tb\t1\n")
        manifest = partition_tsv_pair(
            tmp_path / "eout.tsv", tmp_path / "ein.tsv", 1,
            tmp_path / "shards", zero=0)
        pair = get_op_pair("plus_times")
        eout, _ein = load_shard(manifest, manifest.shards[0],
                                zero=pair.zero)
        import math
        assert math.isnan(eout["e1", "a"])

    def test_tsv_pair_rejects_zero_values(self, tmp_path):
        (tmp_path / "eout.tsv").write_text("e1\ta\t0\n")
        (tmp_path / "ein.tsv").write_text("e1\tb\t1\n")
        with pytest.raises(ShardError, match="equals the zero"):
            partition_tsv_pair(tmp_path / "eout.tsv", tmp_path / "ein.tsv",
                               2, tmp_path / "shards", zero=0)


class TestSources:
    def test_tuple_stream_validates_shape(self):
        with pytest.raises(GraphError, match="tuple"):
            list(edge_records([("e1", "a")]))

    def test_tuple_stream_rejects_zero_weight(self):
        with pytest.raises(GraphError, match="nonzero"):
            list(edge_records([("e1", "a", "b", 0, 1)]))

    def test_graph_source_with_weight_specs(self):
        graph = EdgeKeyedDigraph([("e1", "a", "b"), ("e2", "b", "c")])
        recs = list(edge_records(graph, out_values={"e1": 5.0, "e2": 7.0}))
        assert recs[0] == EdgeRecord("e1", (("a", 5.0),), (("b", 1),))

    def test_array_pair_accepts_list_form(self):
        eout = AssociativeArray({("e1", "a"): 1})
        ein = AssociativeArray({("e1", "b"): 1})
        assert list(edge_records([eout, ein])) \
            == list(edge_records((eout, ein)))

    def test_array_pair_groups_hyperedges(self):
        eout = AssociativeArray({("e1", "a"): 1, ("e1", "b"): 1},
                                row_keys=["e1"], col_keys=["a", "b"])
        ein = AssociativeArray({("e1", "c"): 1}, row_keys=["e1"],
                               col_keys=["c"])
        (rec,) = edge_records((eout, ein))
        assert rec.out_entries == (("a", 1), ("b", 1))

    def test_array_pair_requires_shared_rows(self):
        eout = AssociativeArray({("e1", "a"): 1})
        ein = AssociativeArray({("e2", "b"): 1})
        with pytest.raises(ShardError, match="share the edge key set"):
            list(edge_records((eout, ein)))

    def test_unsupported_source(self):
        with pytest.raises(ShardError, match="unsupported edge source"):
            edge_records(42)


# ---------------------------------------------------------------------------
# Executor
# ---------------------------------------------------------------------------

class TestExecutor:
    def test_load_shard_is_row_restriction(self, tmp_path):
        pair, graph, eout, ein = _weighted_operands()
        manifest = partition_edge_records(
            edge_records((eout, ein)), 3, tmp_path)
        seen_rows = set()
        for info in manifest.shards:
            s_eout, s_ein = load_shard(manifest, info, zero=pair.zero)
            assert s_eout.row_keys == s_ein.row_keys
            seen_rows.update(s_eout.row_keys)
            for (k, a), v in s_eout.to_dict().items():
                assert eout[k, a] == v
        assert seen_rows == set(eout.row_keys)

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_products_merge_to_batch(self, tmp_path, executor):
        pair, graph, eout, ein = _weighted_operands()
        manifest = partition_edge_records(
            edge_records((eout, ein)), 4, tmp_path)
        products = execute_shards(manifest, pair, executor=executor,
                                  n_workers=2)
        assert [p.index for p in products] == [0, 1, 2, 3]
        arrays = [pickle.loads(p.path.read_bytes()) for p in products]
        merged = merge_adjacency(arrays, pair)
        want = adjacency_array(eout, ein, pair)
        assert merged.with_keys(want.row_keys, want.col_keys) == want

    def test_unknown_executor(self, tmp_path):
        pair, _g, eout, ein = _weighted_operands()
        manifest = partition_edge_records(
            edge_records((eout, ein)), 2, tmp_path)
        with pytest.raises(ShardError, match="executor"):
            execute_shards(manifest, pair, executor="gpu")

    def test_unregistered_pair_rejected_for_process_pool(self, tmp_path):
        from repro.values.domains import NonNegativeReals
        from repro.values.operations import PLUS, TIMES
        from repro.values.semiring import OpPair
        rogue = OpPair("rogue_shard", "r", PLUS, TIMES, NonNegativeReals())
        pair, _g, eout, ein = _weighted_operands()
        manifest = partition_edge_records(
            edge_records((eout, ein)), 2, tmp_path)
        with pytest.raises(ShardError, match="not registered"):
            execute_shards(manifest, rogue, executor="process")

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_unregistered_pair_allowed_in_process(self, tmp_path,
                                                  executor):
        """Serial/thread execution never crosses a process boundary, so
        (like batch and streaming construction) it accepts pairs that
        are not in the registry."""
        from repro.values.domains import NonNegativeReals
        from repro.values.operations import PLUS, TIMES
        from repro.values.semiring import OpPair
        rogue = OpPair("rogue_shard2", "r", PLUS, TIMES,
                       NonNegativeReals())
        pair, _g, eout, ein = _weighted_operands()
        manifest = partition_edge_records(
            edge_records((eout, ein)), 2, tmp_path)
        products = execute_shards(manifest, rogue, executor=executor,
                                  n_workers=2)
        merged = merge_adjacency(
            [pickle.loads(p.path.read_bytes()) for p in products], rogue)
        want = adjacency_array(eout, ein, pair)  # same ops as rogue
        assert merged.with_keys(want.row_keys, want.col_keys) == want


# ---------------------------------------------------------------------------
# Merge
# ---------------------------------------------------------------------------

class TestMerge:
    def test_oplus_union_overlapping_keys(self):
        pair = get_op_pair("plus_times")
        a = AssociativeArray({("u", "v"): 2.0}, zero=0)
        b = AssociativeArray({("u", "v"): 3.0, ("u", "w"): 1.0}, zero=0)
        merged = oplus_union(a, b, pair)
        assert merged["u", "v"] == 5.0
        assert merged["u", "w"] == 1.0

    def test_merge_odd_count(self):
        pair = get_op_pair("plus_times")
        parts = [AssociativeArray({("u", "v"): 1.0}, zero=0)
                 for _ in range(5)]
        assert merge_adjacency(parts, pair)["u", "v"] == 5.0

    def test_merge_empty_rejected(self):
        with pytest.raises(ShardError, match="no shard results"):
            merge_adjacency([], get_op_pair("plus_times"))

    def test_merge_spilled_cleans_up(self, tmp_path):
        pair = get_op_pair("plus_times")
        paths = []
        for i in range(5):
            p = tmp_path / f"part_{i}.pkl"
            p.write_bytes(pickle.dumps(
                AssociativeArray({("u", "v"): 1.0}, zero=0)))
            paths.append(p)
        merged = merge_spilled(paths, pair, workdir=tmp_path)
        assert merged["u", "v"] == 5.0
        assert list(tmp_path.iterdir()) == []  # inputs and spills removed

    def test_gate_refuses_uncertified(self):
        with pytest.raises(ShardError, match="Theorem II.1"):
            check_merge_safety(get_op_pair("int_plus_times"))

    def test_gate_refuses_order_sensitive(self):
        # skew_plus_times passes the criteria but its ⊕ is flagged
        # non-associative/non-commutative — the merge tree reorders folds.
        with pytest.raises(ShardError, match="associative"):
            check_merge_safety(get_op_pair("skew_plus_times"))

    def test_gate_unsafe_ok_overrides(self):
        # unsafe_ok short-circuits: no certification is computed (or
        # required) when the caller has opted out of the guarantee.
        assert check_merge_safety(get_op_pair("int_plus_times"),
                                  unsafe_ok=True) is None

    def test_gate_reuses_precomputed_certification(self):
        from repro.core.certify import certify
        pair = get_op_pair("plus_times")
        cert = certify(pair, seed=0xD4, build_witness=False)
        assert check_merge_safety(pair, certification=cert) is cert


# ---------------------------------------------------------------------------
# Plan front-end
# ---------------------------------------------------------------------------

class TestPlan:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_bit_identical_to_batch(self, executor, n_shards):
        pair, graph, eout, ein = _weighted_operands()
        want = adjacency_array(eout, ein, pair)
        plan = ShardedAdjacencyPlan(pair, n_shards=n_shards,
                                    executor=executor, n_workers=2)
        result = plan.run((eout, ein))
        assert result.adjacency == want  # bit-identical, keysets included

    def test_acceptance_four_process_shards(self):
        """The acceptance criterion verbatim: --shards 4 --executor
        process equals batch construction bit-for-bit."""
        pair, graph, eout, ein = _weighted_operands(n_edges=90, seed=9)
        want = adjacency_array(eout, ein, pair)
        got = sharded_adjacency((eout, ein), pair, n_shards=4,
                                executor="process", n_workers=2)
        assert got == want

    @pytest.mark.parametrize("pair_name", ["min_plus", "max_min",
                                           "gcd_lcm"])
    def test_other_algebras(self, pair_name):
        pair, graph, eout, ein = _weighted_operands(pair_name)
        want = adjacency_array(eout, ein, pair)
        assert sharded_adjacency((eout, ein), pair, n_shards=3) == want

    def test_graph_source_with_weights(self):
        pair = get_op_pair("plus_times")
        graph = erdos_renyi_multigraph(8, 30, seed=2)
        weights = {k: 2.0 for k in graph.edge_keys}
        eout, ein = incidence_arrays(graph, zero=pair.zero,
                                     out_values=weights, in_values=weights)
        want = adjacency_array(eout, ein, pair)
        got = ShardedAdjacencyPlan(pair, n_shards=3).run(
            graph, out_values=weights, in_values=weights).adjacency
        assert got == want

    def test_tsv_source(self, tmp_path):
        pair, graph, eout, ein = _weighted_operands()
        write_tsv_triples(eout, tmp_path / "eout.tsv")
        write_tsv_triples(ein, tmp_path / "ein.tsv")
        want = adjacency_array(eout, ein, pair)
        got = sharded_adjacency(
            (tmp_path / "eout.tsv", tmp_path / "ein.tsv"), pair,
            n_shards=4, strategy="hash")
        assert got == want

    def test_empty_source(self):
        adj = sharded_adjacency([], get_op_pair("plus_times"), n_shards=3)
        assert adj.nnz == 0 and adj.shape == (0, 0)

    def test_integer_keys_survive(self):
        """auto format resolves to pickle for in-memory sources, so
        non-string keys keep their types (a TSV shard would retype
        them to strings and diverge from batch)."""
        pair = get_op_pair("plus_times")
        adj = sharded_adjacency([(1, 10, 20), (2, 10, 20)], pair,
                                n_shards=2)
        assert adj[10, 20] == 2
        assert list(adj.row_keys) == [10]

    def test_plan_reuse_across_sources(self, tmp_path):
        """partition() resets per-source state, so one plan can run an
        array-pair source and then a TSV source without the first
        source's key sets leaking into the second result."""
        pair, _g, eout, ein = _weighted_operands()
        want = adjacency_array(eout, ein, pair)
        plan = ShardedAdjacencyPlan(pair, n_shards=2)
        assert plan.run((eout, ein)).adjacency == want
        write_tsv_triples(eout, tmp_path / "eo.tsv")
        write_tsv_triples(ein, tmp_path / "ei.tsv")
        again = plan.run((tmp_path / "eo.tsv", tmp_path / "ei.tsv"))
        assert again.adjacency == want

    def test_temp_workdir_removed(self):
        pair, _g, eout, ein = _weighted_operands()
        plan = ShardedAdjacencyPlan(pair, n_shards=2)
        plan.partition((eout, ein))
        workdir = plan.workdir
        assert workdir.exists()
        result = plan.execute()
        assert not workdir.exists()
        # The returned manifest is detached from the deleted directory:
        # stats remain readable, paths raise cleanly instead of dangling.
        assert result.manifest.root is None
        assert result.manifest.n_shards == 2
        with pytest.raises(ShardError, match="root"):
            result.manifest.shard_paths(result.manifest.shards[0])

    def test_kept_workdir_manifest_stays_attached(self, tmp_path):
        pair, _g, eout, ein = _weighted_operands()
        plan = ShardedAdjacencyPlan(pair, n_shards=2, workdir=tmp_path,
                                    keep_workdir=True)
        result = plan.run((eout, ein))
        eout_path, _ = result.manifest.shard_paths(
            result.manifest.shards[0])
        assert eout_path.exists()

    def test_explicit_workdir_kept(self, tmp_path):
        pair, _g, eout, ein = _weighted_operands()
        plan = ShardedAdjacencyPlan(pair, n_shards=2, workdir=tmp_path,
                                    keep_workdir=True)
        plan.run((eout, ein))
        assert (tmp_path / "manifest.json").exists()
        assert ShardManifest.load(tmp_path).n_shards == 2

    def test_failed_execute_cleans_spills_from_explicit_workdir(
            self, tmp_path):
        """A merge/execute failure must not leave adj_*/merge_* spill
        files in a user-owned workdir."""
        # String values make plus_times ⊗ raise inside the executor.
        (tmp_path / "eout.tsv").write_text("e1\ta\tabc\ne2\ta\txyz\n")
        (tmp_path / "ein.tsv").write_text("e1\tb\tdef\ne2\tb\tghi\n")
        (tmp_path / "mine.txt").write_text("keep")
        plan = ShardedAdjacencyPlan(get_op_pair("plus_times"), n_shards=2,
                                    executor="serial", workdir=tmp_path)
        with pytest.raises(TypeError):
            plan.run((tmp_path / "eout.tsv", tmp_path / "ein.tsv"))
        leftovers = sorted(p.name for p in tmp_path.iterdir())
        assert leftovers == ["ein.tsv", "eout.tsv", "mine.txt"]

    def test_writer_init_failure_discards_created_files(self, tmp_path,
                                                        monkeypatch):
        """_ShardSetWriter dying midway through opening (e.g. fd
        exhaustion) removes the shard files it already created."""
        import repro.shard.partition as partition_mod
        real_writer = partition_mod._EntryWriter
        created = []

        class FlakyWriter(real_writer):
            def __init__(self, path, fmt, validate=True):
                if len(created) >= 5:
                    raise OSError(24, "Too many open files")
                super().__init__(path, fmt, validate)
                created.append(path)

        monkeypatch.setattr(partition_mod, "_EntryWriter", FlakyWriter)
        outdir = tmp_path / "out"
        with pytest.raises(OSError):
            partition_edge_records(
                edge_records([("e1", "a", "b")]), 8, outdir)
        assert list(outdir.iterdir()) == []

    def test_explicit_workdir_cleaned_without_keep(self, tmp_path):
        """keep_workdir=False cleans the plan's own files out of an
        explicit workdir (it would otherwise leak a dataset-sized copy
        per run) but leaves unrelated files alone."""
        (tmp_path / "unrelated.txt").write_text("mine")
        pair, _g, eout, ein = _weighted_operands()
        result = ShardedAdjacencyPlan(pair, n_shards=2,
                                      workdir=tmp_path).run((eout, ein))
        assert [p.name for p in tmp_path.iterdir()] == ["unrelated.txt"]
        assert result.manifest.root is None  # detached, nothing dangles

    def test_refuses_uncertified_pair(self):
        with pytest.raises(ShardError, match="Theorem II.1"):
            ShardedAdjacencyPlan(get_op_pair("union_intersection"))

    def test_unsafe_ok_runs_and_is_flagged(self):
        pair = get_op_pair("int_plus_times")
        plan = ShardedAdjacencyPlan(pair, n_shards=2, unsafe_ok=True)
        assert not plan.certification.safe
        # ℤ's zero sums cancel: two edges a→b with weights ±2 vanish.
        result = plan.run([("e1", "a", "b", 2, 1), ("e2", "a", "b", -2, 1)])
        assert result.adjacency.nnz == 0

    def test_order_sensitive_property(self):
        plan = ShardedAdjacencyPlan(get_op_pair("skew_plus_times"),
                                    unsafe_ok=True)
        assert plan.order_sensitive
        assert not ShardedAdjacencyPlan(
            get_op_pair("plus_times")).order_sensitive

    def test_invalid_parameters(self):
        pair = get_op_pair("plus_times")
        with pytest.raises(ShardError, match="n_shards"):
            ShardedAdjacencyPlan(pair, n_shards=0)
        with pytest.raises(ShardError, match="n_workers"):
            ShardedAdjacencyPlan(pair, n_workers=0)
        with pytest.raises(ShardError, match="mode"):
            ShardedAdjacencyPlan(pair, mode="lazy")
        with pytest.raises(ShardError, match="executor"):
            ShardedAdjacencyPlan(pair, executor="gpu")
        with pytest.raises(ShardError, match="strategy"):
            ShardedAdjacencyPlan(pair, strategy="modulo")
        with pytest.raises(ShardError, match="format"):
            ShardedAdjacencyPlan(pair, shard_format="parquet")

    def test_execute_before_partition(self):
        with pytest.raises(ShardError, match="partition"):
            ShardedAdjacencyPlan(get_op_pair("plus_times")).execute()

    def test_failed_repartition_invalidates_manifest(self, tmp_path):
        """A partition that raises midway must not leave the previous
        manifest paired with partially rewritten shard files — execute()
        would silently build a wrong adjacency from the mix."""
        pair, _g, eout, ein = _weighted_operands()
        plan = ShardedAdjacencyPlan(pair, n_shards=2, workdir=tmp_path,
                                    keep_workdir=True)
        plan.partition((eout, ein))
        assert plan.manifest is not None
        with pytest.raises(GraphError):
            plan.partition([("e1", "a", "b", 0, 1)])  # zero weight
        assert plan.manifest is None
        with pytest.raises(ShardError, match="partition"):
            plan.execute()
        # The on-disk manifest is gone too: loading the kept workdir
        # cannot resurrect run-A metadata over run-B's partial files.
        with pytest.raises(ShardError, match="no manifest"):
            ShardManifest.load(tmp_path)

    def test_no_temp_dir_leak_on_failure(self):
        """Failures during partition/execute must remove the auto-created
        temp workdir, not leak one per failed call."""
        import tempfile
        tmp = Path(tempfile.gettempdir())
        before = {p.name for p in tmp.glob("repro-shard-*")}
        with pytest.raises(ShardError):
            sharded_adjacency(
                [EdgeRecord("e1", (("a", 1),), (("b", 1),))] * 2,
                get_op_pair("plus_times"))  # duplicate edge key
        after = {p.name for p in tmp.glob("repro-shard-*")}
        assert after == before

    def test_keep_workdir_retains_spill_files(self, tmp_path):
        """keep_workdir preserves the per-shard adjacency spills (the
        documented inspect-the-spill-files workflow) in the plan-owned
        spill/ subdirectory."""
        pair, _g, eout, ein = _weighted_operands()
        plan = ShardedAdjacencyPlan(pair, n_shards=3, workdir=tmp_path,
                                    keep_workdir=True)
        plan.run((eout, ein))
        assert sorted(p.name
                      for p in (tmp_path / "spill").glob("adj_*.pkl")) == \
            ["adj_00000.pkl", "adj_00001.pkl", "adj_00002.pkl"]

    def test_cleanup_never_touches_user_files_matching_spill_names(
            self, tmp_path):
        """Spills live in the plan-owned spill/ subdir, so even a user
        file named like a spill in the workdir root survives cleanup."""
        (tmp_path / "adj_00000.pkl").write_text("users own backup")
        (tmp_path / "merge_001_00000.pkl").write_text("users own notes")
        pair, _g, eout, ein = _weighted_operands()
        ShardedAdjacencyPlan(pair, n_shards=2,
                             workdir=tmp_path).run((eout, ein))
        assert sorted(p.name for p in tmp_path.iterdir()) == \
            ["adj_00000.pkl", "merge_001_00000.pkl"]
        assert (tmp_path / "adj_00000.pkl").read_text() \
            == "users own backup"

    def test_refuses_to_overwrite_foreign_shard_set(self, tmp_path):
        """A kept shard set from another run is protected: a new plan
        pointed at the same workdir refuses unless overwrite=True."""
        pair, _g, eout, ein = _weighted_operands()
        ShardedAdjacencyPlan(pair, n_shards=3, workdir=tmp_path,
                             keep_workdir=True).run((eout, ein))
        want = adjacency_array(eout, ein, pair)
        fresh = ShardedAdjacencyPlan(pair, n_shards=2, workdir=tmp_path,
                                     keep_workdir=True)
        with pytest.raises(ShardError, match="overwrite=True"):
            fresh.partition((eout, ein))
        # The kept set is intact and still loadable after the refusal.
        assert ShardManifest.load(tmp_path).n_shards == 3
        replacing = ShardedAdjacencyPlan(pair, n_shards=2,
                                         workdir=tmp_path,
                                         keep_workdir=True, overwrite=True)
        assert replacing.run((eout, ein)).adjacency == want
        assert ShardManifest.load(tmp_path).n_shards == 2
        # Replacement is whole-set: no orphaned higher-numbered shard
        # files from the old 3-shard run remain next to the new set.
        assert sorted(p.name for p in tmp_path.glob("shard_*")) == [
            "shard_00000.ein.pkl", "shard_00000.eout.pkl",
            "shard_00001.ein.pkl", "shard_00001.eout.pkl"]

    def test_failed_partition_spares_user_spill_dir(self, tmp_path):
        """A pre-existing user directory named spill/ survives a failed
        partition — cleanup removes spill/ only when this plan made it."""
        (tmp_path / "spill").mkdir()
        (tmp_path / "spill" / "precious.txt").write_text("keep")
        plan = ShardedAdjacencyPlan(get_op_pair("plus_times"), n_shards=2,
                                    workdir=tmp_path)
        with pytest.raises(GraphError):
            plan.partition([("e1", "a", "b", 0, 1)])  # zero weight
        assert (tmp_path / "spill" / "precious.txt").read_text() == "keep"

    def test_refused_plan_leaves_kept_set_untouched(self, tmp_path):
        """A plan refused by the overwrite guard must not clean up the
        kept shard set it was refused access to."""
        pair, _g, eout, ein = _weighted_operands()
        ShardedAdjacencyPlan(pair, n_shards=3, workdir=tmp_path,
                             keep_workdir=True).run((eout, ein))
        kept = sorted(p.name for p in tmp_path.rglob("*") if p.is_file())
        intruder = ShardedAdjacencyPlan(pair, n_shards=2,
                                        workdir=tmp_path)
        with pytest.raises(ShardError, match="already contains"):
            intruder.partition((eout, ein))
        intruder.close()
        assert sorted(p.name for p in tmp_path.rglob("*")
                      if p.is_file()) == kept

    def test_abandoned_plan_context_manager_cleans_temp_dir(self):
        """The staged flow must not leak the mkdtemp'd workdir when the
        plan is abandoned after partition()."""
        pair, _g, eout, ein = _weighted_operands()
        with ShardedAdjacencyPlan(pair, n_shards=2) as plan:
            plan.partition((eout, ein))
            staged = plan.workdir
            assert staged.exists()
        assert not staged.exists()

    def test_close_is_idempotent_and_safe_before_partition(self):
        plan = ShardedAdjacencyPlan(get_op_pair("plus_times"))
        plan.close()
        plan.close()

    def test_result_reports_stats(self):
        pair, graph, eout, ein = _weighted_operands()
        result = ShardedAdjacencyPlan(pair, n_shards=3).run((eout, ein))
        assert len(result.shard_nnz) == 3
        assert set(result.timings) == {"partition", "execute", "merge",
                                       "total"}
        assert result.nnz == result.adjacency.nnz


# ---------------------------------------------------------------------------
# CLI: repro build and --version
# ---------------------------------------------------------------------------

class TestBuildCLI:
    def _write_pair(self, tmp_path, pair_name="plus_times", seed=5):
        pair, graph, eout, ein = _weighted_operands(pair_name, seed=seed)
        write_tsv_triples(eout, tmp_path / "eout.tsv")
        write_tsv_triples(ein, tmp_path / "ein.tsv")
        return pair, eout, ein

    def test_parser_flags(self):
        args = build_parser().parse_args(
            ["build", "a.tsv", "b.tsv", "-o", "c.tsv", "--shards", "8",
             "--workers", "3", "--executor", "process"])
        assert args.command == "build"
        assert (args.shards, args.workers, args.executor) == (8, 3,
                                                              "process")

    def test_version_flag(self, capsys):
        from repro import __version__
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_end_to_end_bit_identical(self, tmp_path, capsys):
        pair, eout, ein = self._write_pair(tmp_path)
        out = tmp_path / "adj.tsv"
        code = main(["build", str(tmp_path / "eout.tsv"),
                     str(tmp_path / "ein.tsv"), "-o", str(out),
                     "--shards", "4", "--executor", "process",
                     "--workers", "2"])
        assert code == 0
        want = adjacency_array(eout, ein, pair)
        got = read_tsv_triples(out, zero=pair.zero,
                               row_keys=want.row_keys,
                               col_keys=want.col_keys)
        assert got == want
        report = capsys.readouterr().out
        assert "4 shards" in report and "process" in report

    def test_workdir_keeps_manifest(self, tmp_path):
        self._write_pair(tmp_path)
        work = tmp_path / "work"
        code = main(["build", str(tmp_path / "eout.tsv"),
                     str(tmp_path / "ein.tsv"), "-o",
                     str(tmp_path / "adj.tsv"), "--workdir", str(work),
                     "--quiet"])
        assert code == 0
        assert ShardManifest.load(work).n_shards == 4
        # Re-pointing --workdir at the same directory is intent: the
        # CLI replaces the previous run's shard set without a refusal.
        code = main(["build", str(tmp_path / "eout.tsv"),
                     str(tmp_path / "ein.tsv"), "-o",
                     str(tmp_path / "adj.tsv"), "--workdir", str(work),
                     "--shards", "2", "--quiet"])
        assert code == 0
        assert ShardManifest.load(work).n_shards == 2

    def test_refuses_uncertified_without_unsafe_ok(self, tmp_path, capsys):
        self._write_pair(tmp_path)
        code = main(["build", str(tmp_path / "eout.tsv"),
                     str(tmp_path / "ein.tsv"), "-o",
                     str(tmp_path / "adj.tsv"), "--pair", "int_plus_times"])
        assert code == 1
        err = capsys.readouterr().err
        assert "refused" in err
        assert "--unsafe-ok" in err         # CLI spelling, not unsafe_ok=
        assert "unsafe_ok=True" not in err

    def test_unsafe_ok_overrides(self, tmp_path):
        self._write_pair(tmp_path)
        code = main(["build", str(tmp_path / "eout.tsv"),
                     str(tmp_path / "ein.tsv"), "-o",
                     str(tmp_path / "adj.tsv"), "--pair", "int_plus_times",
                     "--unsafe-ok", "--quiet"])
        assert code == 0

    @pytest.mark.parametrize("pair_name", ["int_plus_times",
                                           "skew_plus_times"])
    def test_unsafe_ok_report_flags_waived_guarantees(self, tmp_path,
                                                      capsys, pair_name):
        """Both failure modes — uncertified criteria AND certified-safe
        but order-sensitive ⊕ — must be marked UNSAFE in the summary."""
        self._write_pair(tmp_path)
        code = main(["build", str(tmp_path / "eout.tsv"),
                     str(tmp_path / "ein.tsv"), "-o",
                     str(tmp_path / "adj.tsv"), "--pair", pair_name,
                     "--unsafe-ok"])
        assert code == 0
        assert "UNSAFE — guarantees waived" in capsys.readouterr().out

    def test_malformed_value_type_exit_one(self, tmp_path, capsys):
        """A text value where the algebra expects a number fails with
        the clean diagnostic, not a worker traceback."""
        (tmp_path / "eout.tsv").write_text("e1\ta\tb\n")
        (tmp_path / "ein.tsv").write_text("e1\tc\t1\n")
        code = main(["build", str(tmp_path / "eout.tsv"),
                     str(tmp_path / "ein.tsv"), "-o",
                     str(tmp_path / "adj.tsv"), "--executor", "serial"])
        assert code == 1
        assert "build failed" in capsys.readouterr().err

    def test_unknown_pair_exit_two(self, tmp_path, capsys):
        code = main(["build", "a.tsv", "b.tsv", "-o", "c.tsv",
                     "--pair", "bogus"])
        assert code == 2
        assert "unknown op-pair" in capsys.readouterr().err

    def test_missing_input_exit_one(self, tmp_path, capsys):
        code = main(["build", str(tmp_path / "none.tsv"),
                     str(tmp_path / "none2.tsv"), "-o",
                     str(tmp_path / "adj.tsv")])
        assert code == 1
        assert "build failed" in capsys.readouterr().err

    def test_unwritable_output_exit_one(self, tmp_path, capsys):
        self._write_pair(tmp_path)
        code = main(["build", str(tmp_path / "eout.tsv"),
                     str(tmp_path / "ein.tsv"), "-o",
                     str(tmp_path / "no-such-dir" / "adj.tsv"),
                     "--quiet"])
        assert code == 1
        assert "build failed" in capsys.readouterr().err

    def test_dense_blocked_kernel_with_dense_mode(self, tmp_path):
        """--kernel dense_blocked is usable via --mode dense and agrees
        with the default sparse run."""
        pair, eout, ein = self._write_pair(tmp_path)
        out = tmp_path / "adj_dense.tsv"
        code = main(["build", str(tmp_path / "eout.tsv"),
                     str(tmp_path / "ein.tsv"), "-o", str(out),
                     "--kernel", "dense_blocked", "--mode", "dense",
                     "--quiet"])
        assert code == 0
        want = adjacency_array(eout, ein, pair)
        got = read_tsv_triples(out, zero=pair.zero,
                               row_keys=want.row_keys,
                               col_keys=want.col_keys)
        assert got.allclose(want)

    def test_bad_kernel_rejected_by_parser(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["build", "a.tsv", "b.tsv",
                                       "-o", "c.tsv", "--kernel", "gpu"])
        assert exc.value.code == 2

"""Corollary III.1 bench: reverse-graph adjacency on random multigraphs."""

from __future__ import annotations

import pytest

from repro.core.construction import (
    is_adjacency_array_of_graph,
    reverse_adjacency_array,
)
from repro.graphs.generators import erdos_renyi_multigraph, random_incidence_values
from repro.graphs.incidence import incidence_arrays
from repro.values.semiring import get_op_pair


@pytest.mark.parametrize("n_vertices,n_edges", [(16, 60), (64, 400)])
def test_reverse_adjacency(benchmark, n_vertices, n_edges):
    pair = get_op_pair("plus_times")
    graph = erdos_renyi_multigraph(n_vertices, n_edges, seed=42)
    ow, iw = random_incidence_values(graph, pair, seed=43)
    eout, ein = incidence_arrays(graph, out_values=ow, in_values=iw)
    rev = benchmark(lambda: reverse_adjacency_array(eout, ein, pair))
    assert is_adjacency_array_of_graph(rev, graph.reverse())


def test_reverse_equals_transpose_pattern(benchmark):
    """For commutative ⊗ the reverse product is the transpose — timed both
    ways as a consistency ablation."""
    pair = get_op_pair("plus_times")
    graph = erdos_renyi_multigraph(32, 150, seed=7)
    eout, ein = incidence_arrays(graph)

    def both():
        from repro.core.construction import adjacency_array
        fwd = adjacency_array(eout, ein, pair)
        rev = reverse_adjacency_array(eout, ein, pair)
        return fwd, rev

    fwd, rev = benchmark(both)
    assert rev == fwd.transpose()

"""Downstream-algorithm benches: the point of building adjacency arrays.

Times BFS, ``min.+`` shortest paths, components, and triangle counting on
adjacency arrays constructed from R-MAT incidence data.
"""

from __future__ import annotations

import pytest

from repro.core.construction import adjacency_array
from repro.graphs.algorithms import (
    bfs_levels,
    shortest_path_lengths,
    triangle_count,
    weakly_connected_components,
)
from repro.graphs.generators import rmat_multigraph
from repro.graphs.incidence import incidence_arrays
from repro.values.semiring import get_op_pair


def _square_adjacency(scale, n_edges, pair_name, weights=None, seed=17):
    pair = get_op_pair(pair_name)
    graph = rmat_multigraph(scale, n_edges, seed=seed)
    kwargs = {"zero": pair.zero}
    if weights is not None:
        kwargs.update(out_values=weights(graph), in_values=pair.one)
    eout, ein = incidence_arrays(graph, **kwargs)
    adj = adjacency_array(eout, ein, pair, kernel="generic")
    verts = graph.vertices
    return adj.with_keys(row_keys=verts, col_keys=verts)


@pytest.mark.parametrize("scale,n_edges", [(6, 300), (8, 1500)])
def test_bfs(benchmark, scale, n_edges):
    adj = _square_adjacency(scale, n_edges, "max_min")
    source = tuple(adj.row_keys)[0]
    levels = benchmark(lambda: bfs_levels(adj, source))
    assert levels[source] == 0


@pytest.mark.parametrize("scale,n_edges", [(6, 300), (8, 1500)])
def test_sssp_min_plus(benchmark, scale, n_edges):
    import random

    def weights(graph):
        rng = random.Random(3)
        return {k: float(rng.randint(1, 9)) for k in graph.edge_keys}

    adj = _square_adjacency(scale, n_edges, "min_plus", weights)
    source = tuple(adj.row_keys)[0]
    dist = benchmark(lambda: shortest_path_lengths(adj, source))
    assert dist[source] == 0.0


@pytest.mark.parametrize("scale,n_edges", [(6, 300), (8, 1500)])
def test_components(benchmark, scale, n_edges):
    adj = _square_adjacency(scale, n_edges, "max_min")
    comp = benchmark(lambda: weakly_connected_components(adj))
    assert len(comp) == len(adj.row_keys)


@pytest.mark.parametrize("scale,n_edges", [(6, 300), (7, 800)])
def test_triangles(benchmark, scale, n_edges):
    adj = _square_adjacency(scale, n_edges, "max_min")
    count = benchmark(lambda: triangle_count(adj))
    assert count >= 0

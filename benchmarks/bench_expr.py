"""Lazy expression engine benchmark — JSON smoke bench.

Two comparisons, both on R-MAT workloads:

``incidence_to_adjacency``
    The paper's hot path ``A = Eoutᵀ ⊕.⊗ Ein`` on freshly loaded
    (dict-backed) incidence arrays:

    * ``eager_transpose_matmul`` — the pre-expr evaluation shape:
      materialize ``Eoutᵀ`` as a new dict-backed associative array
      (dict rebuild + constructor re-validation of every entry — what
      ``transpose()`` did before the engine landed), then multiply.
    * ``fused_plan`` — ``evaluate(lazy(Eout).T.matmul(lazy(Ein)))``:
      the optimizer fuses to one incidence-to-adjacency kernel that
      adopts ``Eout``'s cached CSC as the transpose's CSR, so no
      transposed array is ever materialized.

    Operands are rebuilt cold for every repeat (the serving-cold-start
    shape: arrays fresh off TSV ingest), and both paths are asserted
    equal.  The acceptance bar is fused ≥ 2× eager at 100k edges.

``khop``
    A 4-hop frontier query: the service's old looped Python
    ``semiring_vecmat`` (re-indexing the adjacency dict every hop)
    against the engine's fused hop chain (one expression, one shared
    compiled adjacency leaf).

The JSON also embeds the ``explain()`` transcript of the fused plan —
each applied rewrite with the verified properties that licensed it —
so the optimizer's behaviour is archived per commit alongside the
timings:

    PYTHONPATH=src python benchmarks/bench_expr.py [--quick] [--out F]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.arrays.associative import AssociativeArray
from repro.arrays.matmul import multiply
from repro.expr import evaluate, khop_frontier, lazy, plan
from repro.graphs.algorithms import semiring_vecmat
from repro.graphs.generators import rmat_multigraph
from repro.graphs.incidence import incidence_arrays
from repro.values.semiring import get_op_pair

PAIR_NAME = "plus_times"
KHOP = 4


def _operands(scale: int, n_edges: int, seed: int = 77):
    pair = get_op_pair(PAIR_NAME)
    graph = rmat_multigraph(scale, n_edges, seed=seed)
    weights = {k: float(1 + (i % 9)) for i, k in enumerate(graph.edge_keys)}
    eout, ein = incidence_arrays(graph, zero=pair.zero,
                                 out_values=weights, in_values=weights)
    return pair, eout, ein


def _fresh_dict(array: AssociativeArray) -> AssociativeArray:
    """A dict-backed copy with no caches — a cold operand, as if just
    parsed from TSV."""
    return AssociativeArray(dict(array.to_dict()), row_keys=array.row_keys,
                            col_keys=array.col_keys, zero=array.zero)


def _eager_transpose_matmul(eout, ein, pair):
    # The pre-expr shape verbatim: build the transposed array as a dict
    # (pre-fast-path transpose()), let multiply re-promote it and Ein.
    et = AssociativeArray(
        {(c, r): v for (r, c), v in eout.to_dict().items()},
        row_keys=eout.col_keys, col_keys=eout.row_keys, zero=eout.zero)
    return multiply(et, ein, pair)


def _fused_plan(eout, ein, pair):
    return evaluate(lazy(eout, "Eout").T.matmul(lazy(ein, "Ein"), pair))


def _timed_cold(fn, eout, ein, pair, repeat: int):
    best, result = None, None
    for _ in range(repeat):
        e1, e2 = _fresh_dict(eout), _fresh_dict(ein)
        t0 = time.perf_counter()
        result = fn(e1, e2, pair)
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _khop_looped(adjacency, source, k, pair):
    frontier = {source: pair.one}
    for _ in range(k):
        if not frontier:
            break
        frontier = semiring_vecmat(frontier, adjacency, pair)
    return frontier


def _timed(fn, repeat: int):
    best, result = None, None
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def run(quick: bool) -> dict:
    workloads = [(11, 10_000)]
    if not quick:
        workloads.append((14, 100_000))
    repeat = 2 if quick else 3
    rows = []
    khop_rows = []
    explain_text = None
    for scale, n_edges in workloads:
        pair, eout, ein = _operands(scale, n_edges)

        eager_s, eager = _timed_cold(_eager_transpose_matmul, eout, ein,
                                     pair, repeat)
        fused_s, fused = _timed_cold(_fused_plan, eout, ein, pair, repeat)
        assert fused == eager, (scale, n_edges)
        rows.append({
            "scale": scale,
            "n_edges": n_edges,
            "adjacency_nnz": fused.nnz,
            "seconds": {
                "eager_transpose_matmul": round(eager_s, 4),
                "fused_plan": round(fused_s, 4),
            },
            "speedup_fused_vs_eager": round(eager_s / fused_s, 3),
        })

        # k-hop: fused chain vs looped Python vecmat on the same
        # (square, warm) adjacency snapshot.
        vertices = fused.row_keys.union(fused.col_keys)
        square = fused.with_keys(vertices, vertices)
        source = next(iter(square.rows_nonempty()))
        loop_s, loop_front = _timed(
            lambda: _khop_looped(square, source, KHOP, pair), repeat)
        chain_s, chain_front = _timed(
            lambda: khop_frontier(square, source, KHOP, pair), repeat)
        assert chain_front == loop_front, (scale, n_edges)
        khop_rows.append({
            "scale": scale,
            "n_edges": n_edges,
            "k": KHOP,
            "frontier_size": len(chain_front),
            "seconds": {
                "looped_vecmat": round(loop_s, 4),
                "fused_chain": round(chain_s, 4),
            },
            "speedup_fused_vs_looped": round(loop_s / chain_s, 3),
        })

        if explain_text is None:
            the_plan = plan(lazy(eout, "Eout").T.matmul(lazy(ein, "Ein"),
                                                        pair))
            explain_text = the_plan.explain()
            rewrites = [{"rule": rw.rule, "site": rw.site,
                         "properties": list(rw.properties)}
                        for rw in the_plan.applied]
            assert any(rw["rule"] == "fuse_incidence_adjacency"
                       for rw in rewrites)

    return {
        "benchmark": "bench_expr",
        "op_pair": PAIR_NAME,
        "expression": "A = Eoutᵀ ⊕.⊗ Ein (fused); x·A⁴ (k-hop chain)",
        "incidence_to_adjacency": rows,
        "khop": khop_rows,
        "applied_rewrites": rewrites,
        "explain": explain_text.splitlines(),
        "correct": True,   # both comparisons asserted equivalent
    }


def headline(report: dict) -> dict:
    """Gateable metrics for the ``repro bench`` harness."""
    return {
        "fused_khop_seconds": {
            "value": min(r["seconds"]["fused_chain"]
                         for r in report["khop"]),
            "direction": "lower", "unit": "s"},
        "speedup_fused_vs_eager": {
            "value": max(r["speedup_fused_vs_eager"]
                         for r in report["incidence_to_adjacency"]),
            "direction": "higher", "unit": "x"},
        "speedup_khop_fused_vs_looped": {
            "value": max(r["speedup_fused_vs_looped"]
                         for r in report["khop"]),
            "direction": "higher", "unit": "x"},
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small workload only (CI smoke)")
    parser.add_argument("--out", default="BENCH_expr.json",
                        help="write the JSON here (default: "
                             "BENCH_expr.json; '-' to skip)")
    args = parser.parse_args(argv)
    report = run(args.quick)
    text = json.dumps(report, indent=2, ensure_ascii=False)
    print(text)
    if args.out != "-":
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Figure 1 bench: table → exploded sparse associative array.

Regenerates the 22 × 31 music array ``E`` (186 unit entries) and times the
exploded-view construction, the paper's step from a database table to an
incidence array.
"""

from __future__ import annotations

from repro.arrays.io import explode_table
from repro.arrays.printing import format_array
from repro.datasets.music import music_table
from repro.experiments.expected import (
    FIG1_COL_KEYS,
    FIG1_NNZ,
    FIG1_ROW_KEYS,
)

from benchmarks.conftest import emit


def test_fig1_explode_music_table(benchmark):
    table = music_table()
    e = benchmark(lambda: explode_table(table))
    assert tuple(e.row_keys) == FIG1_ROW_KEYS
    assert tuple(e.col_keys) == FIG1_COL_KEYS
    assert e.nnz == FIG1_NNZ
    emit("Figure 1: E (music table, exploded view)",
         format_array(e, max_col_width=14))


def test_fig1_explode_scales_with_rows(benchmark):
    """Same construction on a 50× replicated table (throughput check)."""
    base = music_table()
    big = {f"{row}#{i:02d}": rec
           for i in range(50) for row, rec in base.items()}
    e = benchmark(lambda: explode_table(big))
    assert e.nnz == 50 * FIG1_NNZ
    assert len(e.col_keys) == len(FIG1_COL_KEYS)

"""Closure benches: all-pairs path problems over semiring closures.

Times the repeated-squaring closure for ``min.+`` (APSP), ``max.min``
(widest paths) and ``∨.∧``-equivalent reachability, cross-checking APSP
against networkx Dijkstra — the design-choice ablation for the closure
iteration strategy DESIGN.md calls out.
"""

from __future__ import annotations

import math
import random

import networkx as nx
import pytest

from repro.core.construction import adjacency_array
from repro.graphs.generators import erdos_renyi_multigraph
from repro.graphs.incidence import incidence_arrays
from repro.graphs.paths import (
    all_pairs_shortest_paths,
    all_pairs_widest_paths,
    transitive_closure_pattern,
)
from repro.values.semiring import get_op_pair


def _square(n_vertices, n_edges, pair_name, seed=31):
    pair = get_op_pair(pair_name)
    graph = erdos_renyi_multigraph(n_vertices, n_edges, seed=seed)
    rng = random.Random(seed)
    weights = {k: float(rng.randint(1, 9)) for k in graph.edge_keys}
    eout, ein = incidence_arrays(graph, zero=pair.zero,
                                 out_values=weights, in_values=pair.one)
    adj = adjacency_array(eout, ein, pair, kernel="generic")
    verts = graph.vertices
    return graph, weights, adj.with_keys(row_keys=verts, col_keys=verts)


@pytest.mark.parametrize("n,m", [(12, 50), (24, 150)])
def test_apsp_min_plus_closure(benchmark, n, m):
    graph, weights, adj = _square(n, m, "min_plus")
    dist = benchmark(lambda: all_pairs_shortest_paths(adj))

    g = nx.MultiDiGraph()
    g.add_nodes_from(graph.vertices)
    for k, s, t in graph.edges():
        g.add_edge(s, t, weight=weights[k])
    want = dict(nx.all_pairs_dijkstra_path_length(g))
    for u in graph.vertices:
        for v in graph.vertices:
            expected = want.get(u, {}).get(v, math.inf)
            got = dist.get(u, v)
            assert (math.isinf(got) and math.isinf(expected)) \
                or got == pytest.approx(expected)


@pytest.mark.parametrize("n,m", [(12, 50), (24, 150)])
def test_widest_max_min_closure(benchmark, n, m):
    _graph, _weights, adj = _square(n, m, "max_min")
    width = benchmark(lambda: all_pairs_widest_paths(adj))
    for (u, v) in adj.nonzero_pattern():
        assert width.get(u, v) >= adj.get(u, v)


@pytest.mark.parametrize("n,m", [(12, 50), (24, 150)])
def test_reachability_closure(benchmark, n, m):
    graph, _weights, adj = _square(n, m, "max_min")
    got = benchmark(lambda: transitive_closure_pattern(adj))
    g = nx.DiGraph()
    g.add_nodes_from(graph.vertices)
    g.add_edges_from(graph.edge_pairs())
    closure_g = nx.transitive_closure(g, reflexive=True)
    want = frozenset(closure_g.edges()) \
        | frozenset((v, v) for v in g.nodes)
    assert got == want

"""Section IV bench: validating the synopsis semantics per op-pair."""

from __future__ import annotations

import pytest

from repro.experiments.synopsis import SYNOPSIS, validate_synopsis

from benchmarks.conftest import emit


def test_validate_full_synopsis(benchmark):
    rows = benchmark(lambda: validate_synopsis(seeds=(11,)))
    assert all(ok for (_n, ok, _d) in rows)
    width = max(len(line.pair_name) for line in SYNOPSIS)
    lines = [f"{line.pair_name.ljust(width)}  {line.prose}"
             for line in SYNOPSIS]
    emit("Section IV synopsis (validated on random weighted multigraphs)",
         "\n".join(lines))


@pytest.mark.parametrize("line", SYNOPSIS, ids=[l.pair_name for l in SYNOPSIS])
def test_reference_semantics_cost(benchmark, line):
    """Times the independent per-pair reference computation (the honest
    baseline every adjacency entry is compared against)."""
    terms = [float(x) for x in range(1, 40)]
    benchmark(lambda: line.reference([line.term(a, b)
                                      for a, b in zip(terms, terms[::-1])]))

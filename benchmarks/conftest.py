"""Shared helpers for the benchmark suite.

Every benchmark doubles as a regeneration harness: it times the operation
*and* asserts (or prints) the same rows the paper reports, so
``pytest benchmarks/ --benchmark-only`` both measures and re-verifies.

Run with ``-s`` to see the regenerated figure tables inline.  Each
emitted artifact carries the session's run metadata (git sha,
python/numpy/scipy versions — :func:`repro.obs.bench.run_metadata`), so
a pasted banner is attributable to a commit and numeric stack.
"""

from __future__ import annotations

from typing import Optional

import pytest  # noqa: F401 - conftest module; fixtures may hang off it

_METADATA_LINE: Optional[str] = None


def _metadata_line() -> str:
    """One attribution line, computed once per pytest session."""
    global _METADATA_LINE
    if _METADATA_LINE is None:
        from repro.obs.bench import run_metadata
        meta = run_metadata()
        sha = meta.get("git_sha") or "unknown"
        _METADATA_LINE = (
            f"-- commit {sha[:12]} · python {meta.get('python')} "
            f"· numpy {meta.get('numpy')} · scipy {meta.get('scipy')} --")
    return _METADATA_LINE


def emit(title: str, text: str) -> None:
    """Print a regenerated artifact under a banner (visible with -s)."""
    banner = f"== {title} =="
    print()
    print(banner)
    print(_metadata_line())
    print(text)

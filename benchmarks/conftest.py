"""Shared helpers for the benchmark suite.

Every benchmark doubles as a regeneration harness: it times the operation
*and* asserts (or prints) the same rows the paper reports, so
``pytest benchmarks/ --benchmark-only`` both measures and re-verifies.

Run with ``-s`` to see the regenerated figure tables inline.
"""

from __future__ import annotations

import pytest


def emit(title: str, text: str) -> None:
    """Print a regenerated artifact under a banner (visible with -s)."""
    banner = f"== {title} =="
    print()
    print(banner)
    print(text)

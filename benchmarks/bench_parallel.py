"""Parallel-decomposition bench: row-partitioned multiply ablation.

Times serial vs thread-pooled row-block multiplication at two sizes and
for both the generic and reduceat kernels — the 1-D decomposition
ablation.  Correctness against the unpartitioned product is asserted in
every case.
"""

from __future__ import annotations

import pytest

from repro.arrays.matmul import multiply
from repro.arrays.parallel import parallel_multiply
from repro.graphs.generators import rmat_multigraph, random_incidence_values
from repro.graphs.incidence import incidence_arrays
from repro.values.semiring import get_op_pair


def _operands(scale, n_edges, pair_name, seed=77):
    pair = get_op_pair(pair_name)
    graph = rmat_multigraph(scale, n_edges, seed=seed)
    ow, iw = random_incidence_values(graph, pair, seed=seed + 1)
    eout, ein = incidence_arrays(graph, zero=pair.zero,
                                 out_values=ow, in_values=iw)
    return eout.transpose(), ein, pair


@pytest.mark.parametrize("executor", ["serial", "thread"])
@pytest.mark.parametrize("scale,n_edges", [(7, 800), (9, 4000)])
def test_parallel_generic(benchmark, executor, scale, n_edges):
    a, b, pair = _operands(scale, n_edges, "plus_times")
    want = multiply(a, b, pair, kernel="generic")
    got = benchmark(lambda: parallel_multiply(
        a, b, pair, n_workers=4, executor=executor, kernel="generic"))
    assert got == want


@pytest.mark.parametrize("executor", ["serial", "thread"])
@pytest.mark.parametrize("scale,n_edges", [(9, 4000)])
def test_parallel_reduceat(benchmark, executor, scale, n_edges):
    a, b, pair = _operands(scale, n_edges, "min_plus")
    want = multiply(a, b, pair, kernel="generic")
    got = benchmark(lambda: parallel_multiply(
        a, b, pair, n_workers=4, executor=executor, kernel="reduceat"))
    assert got.allclose(want)

"""Figure 5 bench: the seven products with Figure 4's weighted E1.

Asserts every value table — including the ×2/×3 scaling of the ``+.×``
Pop/Rock rows and the +1/+2 shifts under ``max.+``/``min.+`` that the
paper walks through — and emits the stacked figure.
"""

from __future__ import annotations

import pytest

from repro.arrays.printing import format_stacked
from repro.core.construction import correlate
from repro.datasets.music import music_e1_weighted, music_e2
from repro.experiments.expected import FIG5_TABLES, FIG35_STACKS
from repro.values.semiring import PAPER_FIGURE_PAIRS, get_op_pair

from benchmarks.conftest import emit

_E1W = music_e1_weighted()
_E2 = music_e2()


def _product(pair_name):
    pair = get_op_pair(pair_name)
    a = _E1W if pair.is_zero(0) else _E1W.with_zero(pair.zero)
    b = _E2 if pair.is_zero(0) else _E2.with_zero(pair.zero)
    return correlate(a, b, pair)


@pytest.mark.parametrize("pair_name", PAPER_FIGURE_PAIRS)
def test_fig5_product(benchmark, pair_name):
    adj = benchmark(lambda: _product(pair_name))
    got = {rc: float(v) for rc, v in adj.to_dict().items()}
    assert got == FIG5_TABLES[pair_name]


def test_fig5_emit_stacked_figure(benchmark):
    results = benchmark(lambda: {n: _product(n)
                                 for n in PAPER_FIGURE_PAIRS})
    blocks = []
    for stack in FIG35_STACKS:
        label = " = ".join(get_op_pair(n).display for n in stack)
        blocks.append((f"E1ᵀ {label} E2", results[stack[0]]))
    emit("Figure 5 (weighted E1)",
         format_stacked(blocks, max_col_width=22))

"""Figure 2 bench: D4M range selection of incidence sub-arrays.

Times ``E(:, 'Genre|A : Genre|Z')`` and ``E(:, 'Writer|A : Writer|Z')``
and regenerates both sub-array tables.
"""

from __future__ import annotations

from repro.arrays.printing import format_array
from repro.datasets.music import music_incidence
from repro.experiments.expected import FIG2_E1_PATTERN, FIG2_E2_PATTERN

from benchmarks.conftest import emit


def _pattern(array):
    return {t: tuple(sorted(c for (tt, c) in array.nonzero_pattern()
                            if tt == t))
            for t in array.row_keys}


def test_fig2_select_e1(benchmark):
    e = music_incidence()
    e1 = benchmark(lambda: e.select(":", "Genre|A : Genre|Z"))
    want = {t: tuple(sorted(cs)) for t, cs in FIG2_E1_PATTERN.items()}
    assert _pattern(e1) == want
    emit("Figure 2: E1 = E(:, 'Genre|A : Genre|Z')",
         format_array(e1, max_col_width=18))


def test_fig2_select_e2(benchmark):
    e = music_incidence()
    e2 = benchmark(lambda: e.select(":", "Writer|A : Writer|Z"))
    want = {t: tuple(sorted(cs)) for t, cs in FIG2_E2_PATTERN.items()}
    assert _pattern(e2) == want
    emit("Figure 2: E2 = E(:, 'Writer|A : Writer|Z')",
         format_array(e2, hide_empty_rows=True, max_col_width=22))


def test_fig2_prefix_selection_equivalent(benchmark):
    """Prefix selection ('Genre|*') is the same sub-array; timed for the
    selector-parsing ablation."""
    e = music_incidence()
    e1 = benchmark(lambda: e.select(":", "Genre|*"))
    assert e1 == e.select(":", "Genre|A : Genre|Z")

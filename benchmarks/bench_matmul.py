"""Chained-correlation matmul benchmark for the storage backends — JSON.

Times the hot path ``A = Eoutᵀ ⊕.⊗ Ein`` followed by the chained
correlation ``C = A ⊕.⊗ Aᵀ`` on an R-MAT workload, across three
execution strategies:

``generic``
    The pure-Python reference kernel (small workload only).

``per_call_conversion``
    The pre-refactor shape: every multiply receives fresh dict-backed
    operands (so each call pays the dict→CSR conversion) and each
    result is materialised back into dict storage — the
    build-a-scipy-matrix-and-throw-it-away pattern.

``persistent_backend``
    The pluggable-backend path: operands compiled to the numeric
    backend once, kernels reuse the cached CSR, and results stay
    columnar end to end — chained correlations never leave NumPy.

Emits one JSON document (written to ``BENCH_matmul.json`` by default)
with per-workload timings and the persistent-vs-conversion speedup,
asserting that all strategies agree:

    PYTHONPATH=src python benchmarks/bench_matmul.py [--quick] [--out F]

Like ``bench_shard.py`` this is a plain script (not pytest-benchmark)
so CI can archive its JSON output per commit for the perf trajectory.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.arrays.associative import AssociativeArray
from repro.arrays.matmul import multiply
from repro.graphs.generators import rmat_multigraph
from repro.graphs.incidence import incidence_arrays
from repro.values.semiring import get_op_pair

PAIR_NAME = "plus_times"


def _operands(scale: int, n_edges: int, seed: int = 77):
    pair = get_op_pair(PAIR_NAME)
    graph = rmat_multigraph(scale, n_edges, seed=seed)
    weights = {k: float(1 + (i % 9)) for i, k in enumerate(graph.edge_keys)}
    eout, ein = incidence_arrays(graph, zero=pair.zero,
                                 out_values=weights, in_values=weights)
    return pair, eout, ein


def _fresh_dict(array: AssociativeArray) -> AssociativeArray:
    """A dict-backed copy with no caches — a 'cold' operand (unpinned,
    so the vectorised kernels run but must reconvert from the dict)."""
    return AssociativeArray(dict(array.to_dict()), row_keys=array.row_keys,
                            col_keys=array.col_keys, zero=array.zero)


def _chain_generic(eout, ein, pair):
    a = multiply(eout.transpose(), ein, pair, kernel="generic")
    return multiply(a, a.transpose(), pair, kernel="generic")


def _chain_per_call_conversion(eout, ein, pair):
    # Cold dict operands before every call: each multiply pays dict→CSR
    # for both operands and each result is forced back into a Python
    # dict — the build-and-throw-away pattern this PR removes.
    a = multiply(_fresh_dict(eout).transpose(), _fresh_dict(ein), pair)
    c = multiply(_fresh_dict(a), _fresh_dict(a.transpose()), pair)
    return _fresh_dict(c)


def _chain_persistent(eout, ein, pair):
    a = multiply(eout.transpose(), ein, pair)
    return multiply(a, a.transpose(), pair)


def _timed(fn, repeat: int):
    best, result = None, None
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def run(quick: bool) -> dict:
    workloads = [(11, 10_000, True)]
    if not quick:
        workloads.append((14, 100_000, False))
    repeat = 1 if quick else 3
    rows = []
    for scale, n_edges, with_generic in workloads:
        pair, eout, ein = _operands(scale, n_edges)
        eout_n = eout.with_backend("numeric")
        ein_n = ein.with_backend("numeric")

        conv_s, conv = _timed(
            lambda: _chain_per_call_conversion(eout, ein, pair), repeat)
        pers_s, pers = _timed(
            lambda: _chain_persistent(eout_n, ein_n, pair), repeat)
        assert pers.allclose(conv), (scale, n_edges)

        row = {
            "scale": scale,
            "n_edges": n_edges,
            "chain_nnz": pers.nnz,
            "seconds": {
                "per_call_conversion": round(conv_s, 4),
                "persistent_backend": round(pers_s, 4),
            },
            "speedup_persistent_vs_conversion": round(conv_s / pers_s, 3),
        }
        if with_generic:
            gen_s, gen = _timed(
                lambda: _chain_generic(eout, ein, pair), repeat=1)
            assert pers.allclose(gen), (scale, n_edges)
            row["seconds"]["generic"] = round(gen_s, 4)
            row["speedup_persistent_vs_generic"] = round(gen_s / pers_s, 3)
        rows.append(row)
    return {
        "benchmark": "bench_matmul",
        "op_pair": PAIR_NAME,
        "chain": "A = Eoutᵀ ⊕.⊗ Ein; C = A ⊕.⊗ Aᵀ",
        "workloads": rows,
        "correct": True,   # every strategy asserted equivalent
    }


def headline(report: dict) -> dict:
    """Gateable metrics for the ``repro bench`` harness."""
    rows = report["workloads"]
    return {
        "matmul_chain_seconds": {
            "value": min(r["seconds"]["persistent_backend"]
                         for r in rows),
            "direction": "lower", "unit": "s"},
        "speedup_persistent_vs_conversion": {
            "value": max(r["speedup_persistent_vs_conversion"]
                         for r in rows),
            "direction": "higher", "unit": "x"},
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small workload only (CI smoke)")
    parser.add_argument("--out", default="BENCH_matmul.json",
                        help="write the JSON here (default: "
                             "BENCH_matmul.json; '-' to skip)")
    args = parser.parse_args(argv)
    report = run(args.quick)
    text = json.dumps(report, indent=2, ensure_ascii=False)
    print(text)
    if args.out != "-":
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())

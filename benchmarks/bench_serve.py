"""Smoke benchmark for the adjacency query service — emits JSON.

Builds an :class:`~repro.serve.AdjacencyService` over an R-MAT
workload and measures the read/write path the subsystem exists for:

* cold vs cached k-hop query latency (the LRU must beat recomputation);
* neighbor-query throughput (CSR-backed snapshot reads);
* streaming-delta publication latency (delta build + ⊕-merge + swap).

    PYTHONPATH=src python benchmarks/bench_serve.py [--quick] [--out F]

Like ``bench_shard.py`` / ``bench_matmul.py``, a plain script printing
one JSON document so CI can archive the perf trajectory per commit.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.graphs.generators import rmat_multigraph
from repro.serve import AdjacencyService
from repro.values.semiring import get_op_pair


def _build_service(scale: int, n_edges: int, pair_name: str,
                   seed: int = 77) -> AdjacencyService:
    pair = get_op_pair(pair_name)
    graph = rmat_multigraph(scale, n_edges, seed=seed)
    service = AdjacencyService(pair)
    service.add_edges(
        (k, s, t, float(1 + (i % 9)), 1.0)
        for i, (k, s, t) in enumerate(graph.edges()))
    service.publish()
    return service


def _mean_latency(fn, items) -> float:
    t0 = time.perf_counter()
    for item in items:
        fn(item)
    return (time.perf_counter() - t0) / max(len(items), 1)


def run(quick: bool) -> dict:
    scale, n_edges = (8, 2000) if quick else (10, 12000)
    khop_sources, khop_k = (40, 3) if quick else (120, 3)
    pair_name = "plus_times"

    t0 = time.perf_counter()
    service = _build_service(scale, n_edges, pair_name)
    load_seconds = time.perf_counter() - t0
    snap = service.snapshot()
    vertices = list(snap.vertices)
    sources = vertices[:khop_sources]

    # Cold vs cached k-hop (the same (epoch, query) keys both rounds).
    def khop(v):
        return service.query("khop", vertex=v, k=khop_k)
    cold_khop = _mean_latency(khop, sources)
    cached_khop = _mean_latency(khop, sources)

    # Neighbor reads: first pass fills the cache, second pass hits it.
    def neighbors(v):
        return service.query("neighbors", vertex=v)
    cold_neighbors = _mean_latency(neighbors, vertices)
    cached_neighbors = _mean_latency(neighbors, vertices)

    # Publication latency: buffered delta → ⊕-merge → snapshot swap.
    rounds = 5 if quick else 10
    batch = 50 if quick else 200
    publish_seconds = []
    for r in range(rounds):
        service.add_edges(
            (f"delta_{r}_{i}", vertices[(r * 31 + i) % len(vertices)],
             vertices[(r * 17 + i * 7) % len(vertices)], 1.0, 1.0)
            for i in range(batch))
        t0 = time.perf_counter()
        service.publish()
        publish_seconds.append(time.perf_counter() - t0)

    stats = service.stats()
    assert stats["epoch"] == 1 + rounds
    assert stats["cache"]["hits"] > 0
    # The acceptance bar: a cache hit must beat recomputation.
    assert cached_khop < cold_khop, (cached_khop, cold_khop)

    return {
        "benchmark": "bench_serve",
        "workload": {"generator": "rmat", "scale": scale,
                     "n_edges": n_edges, "op_pair": pair_name,
                     "vertices": len(vertices), "nnz": snap.nnz},
        "load_seconds": round(load_seconds, 4),
        "khop": {
            "k": khop_k,
            "sources": len(sources),
            "cold_ms": round(cold_khop * 1e3, 4),
            "cached_ms": round(cached_khop * 1e3, 4),
            "speedup": round(cold_khop / cached_khop, 2),
        },
        "neighbors": {
            "cold_qps": round(1.0 / cold_neighbors),
            "cached_qps": round(1.0 / cached_neighbors),
        },
        "publication": {
            "rounds": rounds,
            "edges_per_round": batch,
            "mean_seconds": round(sum(publish_seconds) / rounds, 4),
            "max_seconds": round(max(publish_seconds), 4),
        },
        "cache": stats["cache"],
        "correct": True,  # cached beat cold; epochs advanced as expected
    }


def headline(report: dict) -> dict:
    """Gateable metrics for the ``repro bench`` harness."""
    return {
        "khop_cold_ms": {
            "value": report["khop"]["cold_ms"],
            "direction": "lower", "unit": "ms"},
        "khop_cached_speedup": {
            "value": report["khop"]["speedup"],
            "direction": "higher", "unit": "x"},
        "publication_mean_seconds": {
            "value": report["publication"]["mean_seconds"],
            "direction": "lower", "unit": "s"},
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small workload (CI smoke)")
    parser.add_argument("--out", default=None,
                        help="also write the JSON to this file")
    args = parser.parse_args(argv)
    report = run(args.quick)
    text = json.dumps(report, indent=2)
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())

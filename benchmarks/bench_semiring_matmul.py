"""Semiring matmul kernel benchmark: the non-``+.×`` catalog — JSON.

The ``sortmerge`` kernel exists to close the speed gap between genuine
``+.×`` (which rides scipy) and *every other* certified ufunc op-pair
(``min.+``, ``max.min``, …), which previously fell back to the
pure-Python generic fold.  This script measures that gap on two axes:

**matmul** — ``C = A ⊕.⊗ B`` on random square operands sized so the
product evaluates ~1M semiring terms, for ``min.+`` and ``max.min``:
``sortmerge`` vs ``generic`` (vs ``reduceat`` as a cross-check, and a
``plus_times`` row with ``scipy`` for context).  The headline is the
min.+ sortmerge-over-generic speedup, expected ≥10× at this scale.

**4-hop** — ``x ⊕.⊗ A⁴`` over a ≥1M-edge adjacency via the fused
``khop_frontier`` plan, ``min.+``/sortmerge against ``+.×``/scipy on
the same edge structure.  The headline is the min.+/scipy time ratio —
how close the generic-algebra catalog now sits to the scipy fast path.

Emits one JSON document (``BENCH_semiring_matmul.json`` by default):

    PYTHONPATH=src python benchmarks/bench_semiring_matmul.py \
        [--quick] [--out F]

Like the sibling ``bench_*.py`` scripts this is plain JSON-out (not
pytest-benchmark) so the ``repro bench`` harness can gate and archive
it per commit.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.arrays.associative import AssociativeArray
from repro.arrays.matmul import multiply
from repro.expr import khop_frontier
from repro.values.semiring import get_op_pair


def _random_square(n: int, nnz: int, zero: float, seed: int
                   ) -> AssociativeArray:
    """A numeric-backed n×n array with ~nnz deduped random entries.

    Coordinates are deduped through ``np.unique`` on flattened codes
    (which also leaves them lex-sorted, so the backend adopts them with
    no re-sort); values are uniform in 1..9 — never equal to any
    catalog zero (0, ±∞).
    """
    rng = np.random.default_rng(seed)
    codes = np.unique(rng.integers(0, n * n, size=int(nnz * 1.05)))
    rows, cols = codes // n, codes % n
    vals = rng.integers(1, 10, size=codes.size).astype(np.float64)
    keys = range(n)
    return AssociativeArray._from_numeric(
        rows, cols, vals, row_keys=keys, col_keys=keys, zero=zero,
        presorted=True, filtered=True)


def _product_terms(a: AssociativeArray, b: AssociativeArray) -> int:
    """Exact number of semiring terms ``A ⊕.⊗ B`` evaluates."""
    na, nb = a.numeric_backend(), b.numeric_backend()
    n = len(a.col_keys)
    per_inner_a = np.bincount(na.cols, minlength=n)
    per_inner_b = np.bincount(nb.rows, minlength=n)
    return int(per_inner_a @ per_inner_b)


def _timed(fn, repeat: int):
    best, result = None, None
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _matmul_row(pair_name: str, n: int, nnz: int, repeat: int,
                *, with_reduceat: bool, with_scipy: bool) -> dict:
    pair = get_op_pair(pair_name)
    a = _random_square(n, nnz, float(pair.zero), seed=101)
    b = _random_square(n, nnz, float(pair.zero), seed=202)
    terms = _product_terms(a, b)

    sm_s, sm = _timed(lambda: multiply(a, b, pair, kernel="sortmerge"),
                      repeat)
    gen_s, gen = _timed(lambda: multiply(a, b, pair, kernel="generic"),
                        repeat=1)
    assert sm.allclose(gen), pair_name
    row = {
        "op_pair": pair_name,
        "n": n,
        "nnz_per_operand": a.nnz,
        "product_terms": terms,
        "product_nnz": sm.nnz,
        "seconds": {
            "sortmerge": round(sm_s, 4),
            "generic": round(gen_s, 4),
        },
        "speedup_sortmerge_vs_generic": round(gen_s / sm_s, 3),
    }
    if with_reduceat:
        ra_s, ra = _timed(lambda: multiply(a, b, pair, kernel="reduceat"),
                          repeat)
        assert sm.allclose(ra), pair_name
        row["seconds"]["reduceat"] = round(ra_s, 4)
    if with_scipy:
        sc_s, sc = _timed(lambda: multiply(a, b, pair, kernel="scipy"),
                          repeat)
        assert sm.allclose(sc), pair_name
        row["seconds"]["scipy"] = round(sc_s, 4)
        row["ratio_sortmerge_vs_scipy"] = round(sm_s / sc_s, 3)
    return row


def _khop_row(n: int, nnz: int, k: int, repeat: int) -> dict:
    """min.+ k-hop (sortmerge) vs +.× k-hop (scipy), same edge set."""
    mp, pt = get_op_pair("min_plus"), get_op_pair("plus_times")
    adj_mp = _random_square(n, nnz, float(mp.zero), seed=303)
    nb = adj_mp.numeric_backend()
    adj_pt = AssociativeArray._from_numeric(
        nb.rows, nb.cols, nb.vals, row_keys=range(n), col_keys=range(n),
        zero=0.0, presorted=True, filtered=True)
    source = int(nb.rows[0])

    mp_s, mp_front = _timed(
        lambda: khop_frontier(adj_mp, source, k, mp), repeat)
    pt_s, pt_front = _timed(
        lambda: khop_frontier(adj_pt, source, k, pt), repeat)
    assert mp_front and pt_front
    # Same structure → identical reachable sets after k hops.
    assert set(mp_front) == set(pt_front)
    return {
        "n_vertices": n,
        "n_edges": adj_mp.nnz,
        "k": k,
        "frontier_size": len(mp_front),
        "seconds": {
            "minplus_sortmerge": round(mp_s, 4),
            "plustimes_scipy": round(pt_s, 4),
        },
        "ratio_minplus_vs_scipy": round(mp_s / pt_s, 3),
    }


def run(quick: bool) -> dict:
    repeat = 1 if quick else 3
    # ~1M semiring terms in both modes — the gap this kernel closes is
    # the headline and must be measured at scale even in CI smoke.
    n, nnz = 4000, 65_536
    matmuls = [_matmul_row("min_plus", n, nnz, repeat,
                           with_reduceat=not quick, with_scipy=False)]
    if not quick:
        matmuls.append(_matmul_row("max_min", n, nnz, repeat,
                                   with_reduceat=True, with_scipy=False))
        matmuls.append(_matmul_row("plus_times", n, nnz, repeat,
                                   with_reduceat=False, with_scipy=True))
    khop = _khop_row(1 << 17, 1_000_000, 4, repeat)
    return {
        "benchmark": "bench_semiring_matmul",
        "matmul": matmuls,
        "khop": khop,
        "correct": True,   # every kernel asserted equivalent above
    }


def headline(report: dict) -> dict:
    """Gateable metrics for the ``repro bench`` harness."""
    minplus = next(r for r in report["matmul"]
                   if r["op_pair"] == "min_plus")
    khop = report["khop"]
    return {
        "minplus_matmul_speedup_sortmerge_vs_generic": {
            "value": minplus["speedup_sortmerge_vs_generic"],
            "direction": "higher", "unit": "x"},
        "minplus_matmul_sortmerge_seconds": {
            "value": minplus["seconds"]["sortmerge"],
            "direction": "lower", "unit": "s"},
        "minplus_4hop_vs_scipy_ratio": {
            "value": khop["ratio_minplus_vs_scipy"],
            "direction": "lower", "unit": "x"},
        "minplus_4hop_seconds": {
            "value": khop["seconds"]["minplus_sortmerge"],
            "direction": "lower", "unit": "s"},
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="min.+ rows only, single repeat (CI smoke)")
    parser.add_argument("--out", default="BENCH_semiring_matmul.json",
                        help="write the JSON here (default: "
                             "BENCH_semiring_matmul.json; '-' to skip)")
    args = parser.parse_args(argv)
    report = run(args.quick)
    text = json.dumps(report, indent=2, ensure_ascii=False)
    print(text)
    if args.out != "-":
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())

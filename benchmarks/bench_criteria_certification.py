"""Criteria bench: Theorem II.1 certification of the op-pair catalog.

Times certification (criteria checks + witness construction) per op-pair
and regenerates the Section III example/non-example table.
"""

from __future__ import annotations

import pytest

from repro.core.certify import certify
from repro.experiments.expected import CRITERIA_TABLE
from repro.values.semiring import get_op_pair

from benchmarks.conftest import emit

SEED = 20170225


@pytest.mark.parametrize("pair_name", sorted(CRITERIA_TABLE))
def test_certify_pair(benchmark, pair_name):
    pair = get_op_pair(pair_name)
    cert = benchmark(lambda: certify(pair, seed=SEED))
    want_safe, want_criterion = CRITERIA_TABLE[pair_name]
    assert cert.safe == want_safe
    if not want_safe:
        assert cert.criteria.first_violation().property_name \
            == want_criterion
        assert cert.witness is not None and cert.witness.refutes


def test_emit_criteria_table(benchmark):
    certs = benchmark(
        lambda: {n: certify(get_op_pair(n), seed=SEED)
                 for n in sorted(CRITERIA_TABLE)})
    width = max(len(get_op_pair(n).display) for n in certs)
    lines = [f"{'op-pair'.ljust(width)}  verdict  violated criterion / witness"]
    for name, cert in certs.items():
        pair = get_op_pair(name)
        if cert.safe:
            lines.append(f"{pair.display.ljust(width)}  SAFE")
        else:
            viol = cert.criteria.first_violation().property_name
            wit = (f"{cert.witness.kind}{cert.witness.values!r}"
                   if cert.witness else "-")
            lines.append(
                f"{pair.display.ljust(width)}  UNSAFE   {viol} — {wit}")
    emit("Theorem II.1 certification of the catalog", "\n".join(lines))

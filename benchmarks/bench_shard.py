"""Smoke benchmark for the sharded construction engine — emits JSON.

Times batch ``adjacency_array`` against the sharded engine across shard
counts and executors on an R-MAT workload, asserting correctness in
every configuration, and prints one JSON document for the perf
trajectory (one row per configuration, plus the batch baseline):

    PYTHONPATH=src python benchmarks/bench_shard.py [--quick] [--out F]

Unlike the pytest-benchmark suite (``pytest benchmarks/
--benchmark-only``), this is a plain script so CI can archive its JSON
output per commit.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core.construction import adjacency_array
from repro.graphs.generators import rmat_multigraph
from repro.graphs.incidence import incidence_arrays
from repro.shard import ShardedAdjacencyPlan
from repro.values.semiring import get_op_pair


def _operands(scale: int, n_edges: int, pair_name: str, seed: int = 77):
    pair = get_op_pair(pair_name)
    graph = rmat_multigraph(scale, n_edges, seed=seed)
    weights = {k: float(1 + (i % 9))
               for i, k in enumerate(graph.edge_keys)}
    eout, ein = incidence_arrays(graph, zero=pair.zero,
                                 out_values=weights, in_values=weights)
    return pair, eout, ein


def run(quick: bool) -> dict:
    scale, n_edges = (8, 2000) if quick else (10, 12000)
    pair_name = "plus_times"
    pair, eout, ein = _operands(scale, n_edges, pair_name)

    t0 = time.perf_counter()
    batch = adjacency_array(eout, ein, pair)
    batch_seconds = time.perf_counter() - t0

    configs = [("serial", 1), ("serial", 4),
               ("thread", 4), ("process", 4)]
    if not quick:
        configs += [("thread", 8), ("process", 8)]
    rows = []
    for executor, n_shards in configs:
        plan = ShardedAdjacencyPlan(pair, n_shards=n_shards,
                                    executor=executor, n_workers=4)
        t0 = time.perf_counter()
        result = plan.run((eout, ein))
        elapsed = time.perf_counter() - t0
        assert result.adjacency == batch, (executor, n_shards)
        rows.append({
            "executor": executor,
            "n_shards": n_shards,
            "seconds": round(elapsed, 4),
            "speedup_vs_batch": round(batch_seconds / elapsed, 3),
            "timings": {k: round(v, 4)
                        for k, v in result.timings.items()},
        })
    return {
        "benchmark": "bench_shard",
        "workload": {"generator": "rmat", "scale": scale,
                     "n_edges": n_edges, "op_pair": pair_name,
                     "nnz": batch.nnz},
        "batch_seconds": round(batch_seconds, 4),
        "sharded": rows,
        "correct": True,  # every configuration asserted against batch
    }


def headline(report: dict) -> dict:
    """Gateable metrics for the ``repro bench`` harness."""
    return {
        "batch_seconds": {
            "value": report["batch_seconds"],
            "direction": "lower", "unit": "s"},
        "best_sharded_speedup": {
            "value": max(r["speedup_vs_batch"]
                         for r in report["sharded"]),
            "direction": "higher", "unit": "x"},
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small workload (CI smoke)")
    parser.add_argument("--out", default=None,
                        help="also write the JSON to this file")
    args = parser.parse_args(argv)
    report = run(args.quick)
    text = json.dumps(report, indent=2)
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Section III bench: the structured ``∪.∩`` document×word exemption."""

from __future__ import annotations

import pytest

from repro.arrays.printing import format_array
from repro.core.construction import correlate
from repro.datasets.documents import (
    example_word_sets,
    expected_shared_adjacency,
    random_word_sets,
    shared_word_incidence,
)
from repro.values.semiring import get_op_pair

from benchmarks.conftest import emit

PAIR = get_op_pair("union_intersection")


def test_structured_product_curated(benchmark):
    words = example_word_sets()
    e = shared_word_incidence(words)
    prod = benchmark(lambda: correlate(e, e, PAIR))
    exp = expected_shared_adjacency(words)
    assert prod.same_pattern(exp)
    emit("EᵀE over ∪.∩ (entries = shared word sets)",
         format_array(prod, max_col_width=24))


@pytest.mark.parametrize("n_docs", [10, 25])
def test_structured_product_random(benchmark, n_docs):
    vocab = [f"w{i:02d}" for i in range(20)]
    words = random_word_sets(n_docs, vocab, seed=5, p_word=0.25)
    e = shared_word_incidence(words)
    prod = benchmark(lambda: correlate(e, e, PAIR))
    assert prod.same_pattern(expected_shared_adjacency(words))

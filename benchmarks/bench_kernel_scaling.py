"""Kernel ablation and scaling study (extension; the paper is
correctness-only, DESIGN.md exp id ``scaling``).

Measures the generic fold kernel against the vectorised reduceat /
scipy / dense-blocked kernels across graph size and op-pair, on R-MAT
multigraphs (skewed degrees — the representative GraphBLAS workload).
The headline shape: vectorised kernels win beyond a few hundred nonzeros,
with scipy fastest for ``+.×`` and ``reduceat`` the general-semiring
workhorse; the dense kernel's cube cost crosses over at high density.
"""

from __future__ import annotations

import pytest

from repro.arrays.matmul import multiply_generic
from repro.arrays.sparse_backend import multiply_vectorized
from repro.core.construction import adjacency_array
from repro.graphs.generators import rmat_multigraph, random_incidence_values
from repro.graphs.incidence import incidence_arrays
from repro.values.semiring import get_op_pair


def _operands(scale, n_edges, pair_name, seed=99):
    pair = get_op_pair(pair_name)
    graph = rmat_multigraph(scale, n_edges, seed=seed)
    ow, iw = random_incidence_values(graph, pair, seed=seed + 1)
    eout, ein = incidence_arrays(graph, zero=pair.zero,
                                 out_values=ow, in_values=iw)
    return eout.transpose(), ein, pair


SIZES = [(5, 150), (7, 800), (9, 4000)]


@pytest.mark.parametrize("scale,n_edges", SIZES)
@pytest.mark.parametrize("pair_name", ["plus_times", "min_plus"])
def test_generic_kernel(benchmark, scale, n_edges, pair_name):
    a, b, pair = _operands(scale, n_edges, pair_name)
    result = benchmark(lambda: multiply_generic(a, b, pair))
    assert result.nnz > 0


@pytest.mark.parametrize("scale,n_edges", SIZES)
@pytest.mark.parametrize("pair_name", ["plus_times", "min_plus"])
def test_reduceat_kernel(benchmark, scale, n_edges, pair_name):
    a, b, pair = _operands(scale, n_edges, pair_name)
    ref = multiply_generic(a, b, pair)
    result = benchmark(
        lambda: multiply_vectorized(a, b, pair, kernel="reduceat"))
    assert result.allclose(ref)


@pytest.mark.parametrize("scale,n_edges", SIZES)
def test_scipy_kernel_plus_times(benchmark, scale, n_edges):
    a, b, pair = _operands(scale, n_edges, "plus_times")
    ref = multiply_generic(a, b, pair)
    result = benchmark(
        lambda: multiply_vectorized(a, b, pair, kernel="scipy"))
    assert result.allclose(ref)


@pytest.mark.parametrize("scale,n_edges", SIZES[:2])
@pytest.mark.parametrize("pair_name", ["plus_times", "min_plus"])
def test_dense_blocked_kernel(benchmark, scale, n_edges, pair_name):
    a, b, pair = _operands(scale, n_edges, pair_name)
    ref = multiply_generic(a, b, pair, mode="dense")
    result = benchmark(
        lambda: multiply_vectorized(a, b, pair, kernel="dense_blocked",
                                    mode="dense"))
    assert result.allclose(ref)


@pytest.mark.parametrize("scale,n_edges", SIZES)
def test_end_to_end_adjacency_auto_kernel(benchmark, scale, n_edges):
    """The full paper pipeline at scale with automatic kernel choice."""
    pair = get_op_pair("plus_times")
    graph = rmat_multigraph(scale, n_edges, seed=5)
    eout, ein = incidence_arrays(graph)
    from repro.core.construction import is_adjacency_array_of_graph
    adj = benchmark(lambda: adjacency_array(eout, ein, pair))
    assert is_adjacency_array_of_graph(adj, graph)

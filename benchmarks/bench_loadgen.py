"""Smoke benchmark for the open-loop load generator — emits JSON.

Where ``bench_serve.py`` measures closed-loop single-query latency,
this scenario measures the service the way production traffic will:
an open-loop arrival schedule stepped until a declared SLO breaks.

* synthesize a deterministic query-mix workload over an R-MAT service
  (``repro.obs.loadgen.synthesize``);
* sweep Poisson arrival rates against the in-process service with
  coordinated-omission-corrected latency
  (``repro.obs.loadgen.sweep``);
* headline ``sustainable_qps`` — the max throughput that met the SLO —
  and the corrected p99 at the base rate, both gated by
  ``repro bench --compare`` against ``BENCH_baseline.json``.

    PYTHONPATH=src python benchmarks/bench_loadgen.py [--quick] [--out F]

Quick mode keeps the whole sweep under ~2 s of generated load so it
rides in the CI smoke set.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.graphs.generators import rmat_multigraph
from repro.obs.loadgen import SLO, ServiceTarget, sweep, synthesize
from repro.serve import AdjacencyService
from repro.values.semiring import get_op_pair

#: The declared SLO the sweep gates against.  Generous on purpose: the
#: smoke sweep should normally *not* saturate, so ``sustainable_qps``
#: tracks achieved throughput at the top offered rate and stays
#: comparable across CI machines.
SLO_P99_MS = 100.0


def _build_service(scale: int, n_edges: int, seed: int = 77
                   ) -> AdjacencyService:
    pair = get_op_pair("plus_times")
    graph = rmat_multigraph(scale, n_edges, seed=seed)
    service = AdjacencyService(pair)
    service.add_edges(
        (k, s, t, float(1 + (i % 9)), 1.0)
        for i, (k, s, t) in enumerate(graph.edges()))
    service.publish()
    return service


def run(quick: bool) -> dict:
    scale, n_edges = (8, 2000) if quick else (10, 12000)
    rates = (100.0, 200.0, 400.0) if quick \
        else (200.0, 400.0, 800.0, 1600.0)
    duration = 0.5 if quick else 1.5

    t0 = time.perf_counter()
    service = _build_service(scale, n_edges)
    load_seconds = time.perf_counter() - t0
    vertices = list(service.snapshot().vertices)

    workload = synthesize(vertices, n_ops=400 if quick else 2000,
                          seed=13, max_k=3)
    target = ServiceTarget(service)
    doc = sweep(workload, target, rates=rates, duration=duration,
                slo=SLO(p99_ms=SLO_P99_MS), process="poisson",
                threads=2, seed=7, warmup=50)

    base = doc["steps"][0]["replay"]
    top = doc["steps"][-1]["replay"]
    assert base["requests"] > 0 and base["errors"] == 0, base
    # Open-loop honesty: the corrected percentile can never undercut
    # the naive service-time percentile.
    assert (base["corrected"]["p99_ms"] or 0.0) >= \
        (base["service_time"]["p99_ms"] or 0.0), base

    return {
        "benchmark": "bench_loadgen",
        "workload": {"generator": "rmat", "scale": scale,
                     "n_edges": n_edges, "vertices": len(vertices),
                     "ops": len(workload), "mix": workload.kinds()},
        "load_seconds": round(load_seconds, 4),
        "slo": doc["slo"],
        "sweep": {
            "rates": doc["rates"],
            "saturated": doc["saturated"],
            "sustainable_qps": doc["sustainable_qps"],
            "per_rate": [{
                "rate": step["rate"],
                "ok": step["ok"],
                "achieved_qps": step["replay"]["achieved_qps"],
                "corrected_p99_ms": step["replay"]["corrected"]["p99_ms"],
                "corrected_p999_ms":
                    step["replay"]["corrected"]["p999_ms"],
                "service_p99_ms":
                    step["replay"]["service_time"]["p99_ms"],
                "errors": step["replay"]["errors"],
            } for step in doc["steps"]],
        },
        "base_rate": {
            "rate": doc["rates"][0],
            "corrected_p99_ms": base["corrected"]["p99_ms"],
            "corrected_p999_ms": base["corrected"]["p999_ms"],
            "max_start_lag_ms": base["max_start_lag_ms"],
        },
        "top_rate": {
            "rate": doc["rates"][-1],
            "achieved_qps": top["achieved_qps"],
            "corrected_p99_ms": top["corrected"]["p99_ms"],
        },
        "correct": True,
    }


def headline(report: dict) -> dict:
    """Gateable metrics for the ``repro bench`` harness."""
    return {
        "sustainable_qps": {
            "value": report["sweep"]["sustainable_qps"],
            "direction": "higher", "unit": "qps"},
        "corrected_p99_ms": {
            "value": report["top_rate"]["corrected_p99_ms"],
            "direction": "lower", "unit": "ms"},
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small workload, short sweep (CI smoke)")
    parser.add_argument("--out", default=None,
                        help="also write the JSON to this file")
    args = parser.parse_args(argv)
    report = run(args.quick)
    text = json.dumps(report, indent=2)
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())

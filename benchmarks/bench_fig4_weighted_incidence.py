"""Figure 4 bench: the genre re-weighting of E1 (values 1/2/3).

Times the value-substitution map and regenerates the weighted array.
"""

from __future__ import annotations

from repro.arrays.printing import format_array
from repro.datasets.music import (
    FIGURE4_GENRE_WEIGHTS,
    music_e1,
    music_e1_weighted,
)
from repro.experiments.expected import FIG4_E1_VALUES

from benchmarks.conftest import emit


def test_fig4_weighting(benchmark):
    e1w = benchmark(music_e1_weighted)
    got = {rc: int(v) for rc, v in e1w.to_dict().items()}
    assert got == FIG4_E1_VALUES
    emit("Figure 4: weighted E1 (Electronic 1, Pop 2, Rock 3)",
         format_array(e1w, max_col_width=18))


def test_fig4_weighting_via_map_values(benchmark):
    """Equivalent formulation through the generic map_values API."""
    e1 = music_e1()

    def weight():
        def per_entry(col):
            return FIGURE4_GENRE_WEIGHTS[col]
        data = {(r, c): per_entry(c) for (r, c) in e1.nonzero_pattern()}
        from repro.arrays.associative import AssociativeArray
        return AssociativeArray(data, row_keys=e1.row_keys,
                                col_keys=e1.col_keys, zero=0)

    e1w = benchmark(weight)
    assert {rc: int(v) for rc, v in e1w.to_dict().items()} == FIG4_E1_VALUES

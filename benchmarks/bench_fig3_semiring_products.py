"""Figure 3 bench: ``E1ᵀ ⊕.⊗ E2`` under all seven op-pairs (unit values).

One timed benchmark per op-pair; each asserts the exact value table the
paper prints and, once per run, emits the stacked figure.
"""

from __future__ import annotations

import pytest

from repro.arrays.printing import format_stacked
from repro.core.construction import correlate
from repro.datasets.music import music_e1, music_e2
from repro.experiments.expected import FIG3_TABLES, FIG35_STACKS
from repro.values.semiring import PAPER_FIGURE_PAIRS, get_op_pair

from benchmarks.conftest import emit

_E1 = music_e1()
_E2 = music_e2()


def _product(pair_name):
    pair = get_op_pair(pair_name)
    a = _E1 if pair.is_zero(0) else _E1.with_zero(pair.zero)
    b = _E2 if pair.is_zero(0) else _E2.with_zero(pair.zero)
    return correlate(a, b, pair)


@pytest.mark.parametrize("pair_name", PAPER_FIGURE_PAIRS)
def test_fig3_product(benchmark, pair_name):
    adj = benchmark(lambda: _product(pair_name))
    got = {rc: float(v) for rc, v in adj.to_dict().items()}
    assert got == FIG3_TABLES[pair_name]


def test_fig3_emit_stacked_figure(benchmark):
    """Times the full 7-pair sweep and prints the stacked figure."""
    results = benchmark(lambda: {n: _product(n)
                                 for n in PAPER_FIGURE_PAIRS})
    blocks = []
    for stack in FIG35_STACKS:
        label = " = ".join(get_op_pair(n).display for n in stack)
        blocks.append((f"E1ᵀ {label} E2", results[stack[0]]))
    emit("Figure 3 (unit-valued E1)",
         format_stacked(blocks, max_col_width=22))

"""Construct per-shard adjacency arrays from an on-disk shard set.

Each shard is independent work: load its incidence pair, compute
``Aₛ = (Eout|Kₛ)ᵀ ⊕.⊗ (Ein|Kₛ)`` with the ordinary
:func:`repro.arrays.matmul.multiply` kernels, and spill the result to
disk as a pickle.  Workers mirror :mod:`repro.arrays.parallel`:

* ``executor="serial"`` — in-process loop (the plumbing without
  concurrency);
* ``executor="thread"`` — a thread pool (NumPy kernels release the GIL);
* ``executor="process"`` — a process pool; op-pairs travel *by registry
  name* via :mod:`repro.values.shipping`, exactly as the row-partitioned
  fan-out ships them.

Results are always spilled (never returned through the pool) so peak
memory stays one shard's working set per worker — the point of the
subsystem.  The merge tree (:mod:`repro.shard.merge`) consumes the spill
files pairwise.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, List, Optional, Set, Tuple, Union

from repro.arrays.associative import AssociativeArray
from repro.arrays.backend import BACKEND_KINDS
from repro.arrays.io import iter_tsv_triples
from repro.arrays.keys import KeySet
from repro.arrays.matmul import multiply
from repro.obs.events import emit_event
from repro.obs.metrics import get_registry
from repro.obs.trace import span
from repro.shard.manifest import ShardError, ShardInfo, ShardManifest
from repro.values.semiring import OpPair, SemiringError
from repro.values.shipping import registered_name, resolve_registered_pair

PairOrName = Union[OpPair, str]

__all__ = ["ShardProduct", "EXECUTORS", "load_shard", "execute_shards"]

EXECUTORS = ("serial", "thread", "process")


@dataclass(frozen=True)
class ShardProduct:
    """One shard's spilled adjacency result.

    ``seconds`` (worker build wall time) and ``bytes`` (spill file
    size) default to zero so pre-observability constructions keep
    working.
    """

    index: int
    path: Path
    nnz: int
    seconds: float = 0.0
    bytes: int = 0


def _iter_entries(path: Path, fmt: str):
    if fmt == "tsv":
        yield from iter_tsv_triples(path)
    else:
        with path.open("rb") as fh:
            while True:
                try:
                    yield pickle.load(fh)
                except EOFError:
                    return


def load_shard(
    manifest: ShardManifest,
    info: ShardInfo,
    *,
    zero: Any = 0,
    backend: str = "auto",
) -> Tuple[AssociativeArray, AssociativeArray]:
    """Load one shard's ``(Eout|Kₛ, Ein|Kₛ)`` incidence pair.

    Row keys are the union of edge keys observed on either side (both
    arrays share them, as Definition I.4 requires); column keys are the
    observed vertices of each side; ``zero`` should be the op-pair's.
    ``backend`` picks the arrays' storage backend
    (:mod:`repro.arrays.backend`).
    """
    eout_path, ein_path = manifest.shard_paths(info)
    out_triples = list(_iter_entries(eout_path, manifest.format))
    in_triples = list(_iter_entries(ein_path, manifest.format))
    keys: Set[Any] = {k for k, _v, _w in out_triples}
    keys.update(k for k, _v, _w in in_triples)
    row_keys = KeySet(keys)
    eout = AssociativeArray.from_triples(
        out_triples, row_keys=row_keys,
        col_keys={v for _k, v, _w in out_triples}, zero=zero,
        backend=backend)
    ein = AssociativeArray.from_triples(
        in_triples, row_keys=row_keys,
        col_keys={v for _k, v, _w in in_triples}, zero=zero,
        backend=backend)
    return eout, ein


def _shard_task(
    manifest: ShardManifest,
    info: ShardInfo,
    pair: PairOrName,
    mode: str,
    kernel: str,
    backend: str,
    out_path: str,
) -> Tuple[int, str, int, float, int]:
    """Worker body (module-level so process pools can pickle it).

    ``pair`` is a registry *name* when crossing a process boundary
    (op-pairs may not pickle) and the in-memory object otherwise.
    Returns ``(index, path, nnz, build_seconds, spilled_bytes)`` — the
    timing travels back as plain data because process workers cannot
    share the coordinator's metrics registry.
    """
    started = time.perf_counter()
    if isinstance(pair, str):
        pair = resolve_registered_pair(pair)
    eout, ein = load_shard(manifest, info, zero=pair.zero, backend=backend)
    adj = multiply(eout.transpose(), ein, pair, mode=mode, kernel=kernel)
    if backend != "auto":
        # Spilled shard results carry the requested storage backend, so
        # the ⊕-merge tree sees (and keeps) the chosen representation.
        adj = adj.with_backend(backend)
    with open(out_path, "wb") as fh:
        pickle.dump(adj, fh, protocol=pickle.HIGHEST_PROTOCOL)
    return (info.index, out_path, adj.nnz,
            time.perf_counter() - started, os.path.getsize(out_path))


def execute_shards(
    manifest: ShardManifest,
    op_pair: OpPair,
    *,
    executor: str = "thread",
    n_workers: int = 4,
    mode: str = "sparse",
    kernel: str = "auto",
    backend: str = "auto",
    workdir: Optional[Union[str, Path]] = None,
) -> List[ShardProduct]:
    """Build every shard's adjacency array, spilled to ``workdir``.

    ``workdir`` defaults to the manifest's own directory.  Returns the
    spill records in shard-index order.  Only ``executor="process"``
    requires a *registered* op-pair (it ships the pair by name);
    serial/thread execution stays in-process and accepts any pair.
    ``backend`` pins the per-shard array storage (``"dict"`` forces the
    generic paths end to end; ``"numeric"`` compiles the columnar form
    at ingest).
    """
    if executor not in EXECUTORS:
        raise ShardError(f"unknown executor {executor!r}; use {EXECUTORS}")
    if n_workers < 1:
        raise ShardError("n_workers must be >= 1")
    if backend not in BACKEND_KINDS:
        raise ShardError(
            f"unknown backend {backend!r}; use one of {BACKEND_KINDS}")
    shipped: PairOrName = op_pair
    if executor == "process":
        try:
            shipped = registered_name(op_pair)
        except SemiringError as exc:
            raise ShardError(str(exc)) from None
    root = Path(workdir) if workdir is not None else manifest.root
    if root is None:
        raise ShardError("no workdir and the manifest has no root directory")
    root.mkdir(parents=True, exist_ok=True)
    tasks = [(info, str(root / f"adj_{info.index:05d}.pkl"))
             for info in manifest.shards]
    registry = get_registry()
    queue_depth = registry.gauge(
        "shard_executor_queue_depth",
        "Shard build tasks submitted but not yet finished")
    with span("shard.execute", shards=len(tasks), executor=executor):
        if executor == "serial" or n_workers == 1 or len(tasks) <= 1:
            raw = []
            for info, out in tasks:
                queue_depth.inc()
                try:
                    raw.append(_shard_task(manifest, info, op_pair, mode,
                                           kernel, backend, out))
                finally:
                    queue_depth.dec()
        else:
            pool_cls = ThreadPoolExecutor if executor == "thread" \
                else ProcessPoolExecutor
            with pool_cls(max_workers=min(n_workers, len(tasks))) as pool:
                futures = []
                for info, out in tasks:
                    queue_depth.inc()
                    fut = pool.submit(
                        _shard_task, manifest, info,
                        shipped if executor == "process" else op_pair,
                        mode, kernel, backend, out)
                    fut.add_done_callback(lambda _f: queue_depth.dec())
                    futures.append(fut)
                raw = [f.result() for f in futures]
    build_seconds = registry.histogram(
        "shard_build_seconds", "Per-shard adjacency build wall time")
    spilled = registry.counter(
        "shard_spill_bytes_total", "Bytes spilled by shard builds")
    for _i, _p, _nnz, seconds, nbytes in raw:
        build_seconds.observe(seconds)
        spilled.inc(nbytes)
    emit_event("shard_spill", stage="build", shards=len(raw),
               bytes=sum(nbytes for *_rest, nbytes in raw),
               executor=executor)
    return [ShardProduct(index=i, path=Path(p), nnz=nnz, seconds=secs,
                         bytes=nbytes)
            for i, p, nnz, secs, nbytes in sorted(raw)]

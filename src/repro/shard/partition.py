"""Partition an edge stream into on-disk incidence shards.

Splitting happens along the **edge dimension** — the contraction axis of
``A = Eoutᵀ ⊕.⊗ Ein`` — so every incidence entry of one edge key lands
in the same shard and per-shard products can be ⊕-merged exactly (for
associative/commutative ``⊕``; :mod:`repro.shard.merge` enforces this).

Both strategies are single-pass and memory-bounded by the number of
*distinct edge keys* (one dict entry each), never by the number of
incidence entries:

``"round_robin"``
    Keys are assigned ``0, 1, 2, …`` in first-seen order — balanced
    shard sizes, deterministic given the input order.
``"hash"``
    Keys are assigned by a salted-hash-free CRC32 of their string form —
    stable across runs *and* input orders, so re-partitioning the same
    edge set always produces the same assignment.

Entry files are written incrementally (append per entry), so a shard
set can be built from a stream far larger than RAM.
"""

from __future__ import annotations

import pickle
import zlib
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.arrays.io import _parse_scalar, iter_tsv_triples
from repro.shard.manifest import (
    FORMATS,
    ShardError,
    ShardInfo,
    ShardManifest,
)
from repro.shard.source import EdgeRecord

__all__ = [
    "ShardAssigner",
    "partition_edge_records",
    "partition_tsv_pair",
]

STRATEGIES = ("round_robin", "hash")


class ShardAssigner:
    """Stable edge-key → shard-index assignment (one dict entry per key)."""

    def __init__(self, n_shards: int, strategy: str = "round_robin") -> None:
        if n_shards < 1:
            raise ShardError("n_shards must be >= 1")
        if strategy not in STRATEGIES:
            raise ShardError(
                f"unknown partition strategy {strategy!r}; "
                f"use one of {STRATEGIES}")
        self.n_shards = n_shards
        self.strategy = strategy
        self._assigned: Dict[Any, int] = {}
        self._next = 0

    def __len__(self) -> int:
        """Distinct edge keys assigned so far."""
        return len(self._assigned)

    def seen(self, key: Any) -> bool:
        """Whether ``key`` has already been assigned."""
        return key in self._assigned

    def assign(self, key: Any) -> int:
        """The shard index for ``key`` (allocating on first sight)."""
        sid = self._assigned.get(key)
        if sid is None:
            if self.strategy == "round_robin":
                sid = self._next % self.n_shards
                self._next += 1
            else:  # hash — salted-hash-free, stable across interpreters
                sid = zlib.crc32(str(key).encode("utf-8")) % self.n_shards
            self._assigned[key] = sid
        return sid


class _EntryWriter:
    """Append ``(key, vertex, value)`` entries to one shard-side file.

    ``validate=False`` skips the TSV round-trip check — correct only
    when every entry was itself parsed from TSV text (the streaming
    file-pair ingest), where re-serializing is the identity by
    construction; re-validating there would double the parse work on
    the subsystem's hottest path and spuriously refuse NaN (which
    round-trips fine but fails an equality check against itself).
    """

    def __init__(self, path: Path, fmt: str, validate: bool = True) -> None:
        self.path = path
        self.fmt = fmt
        self.validate = validate
        self.count = 0
        mode = "w" if fmt == "tsv" else "wb"
        kwargs = {"encoding": "utf-8", "newline": ""} if fmt == "tsv" else {}
        self._fh = path.open(mode, **kwargs)

    def write(self, key: Any, vertex: Any, value: Any) -> None:
        if self.fmt == "tsv":
            if self.validate:
                # TSV is text: string keys come back as strings, and
                # only values whose text form parses back to the same
                # object are representable.  Anything else (int keys,
                # booleans, "3" as a *string*) would silently diverge
                # from batch construction, so refuse loudly.
                parsed = _parse_scalar(str(value))
                if (not isinstance(key, str)
                        or not isinstance(vertex, str)
                        or type(parsed) is not type(value)
                        or parsed != value):
                    raise ShardError(
                        f"entry ({key!r}, {vertex!r}, {value!r}) does "
                        "not survive the TSV round-trip; use "
                        "shard_format='pickle'")
            line = f"{key}\t{vertex}\t{value}"
            if line.count("\t") != 2 or "\n" in line or "\r" in line:
                raise ShardError(
                    f"entry ({key!r}, {vertex!r}, {value!r}) does not "
                    "survive the TSV round-trip; use shard_format='pickle'")
            self._fh.write(line + "\n")
        else:
            pickle.dump((key, vertex, value), self._fh,
                        protocol=pickle.HIGHEST_PROTOCOL)
        self.count += 1

    def close(self) -> None:
        self._fh.close()


def _ext(fmt: str) -> str:
    return "tsv" if fmt == "tsv" else "pkl"


class _ShardSetWriter:
    """All open entry files of a shard set, plus per-shard edge counts."""

    def __init__(self, outdir: Path, n_shards: int, fmt: str,
                 validate: bool = True) -> None:
        if fmt not in FORMATS:
            raise ShardError(f"unknown shard format {fmt!r}; use {FORMATS}")
        outdir.mkdir(parents=True, exist_ok=True)
        self.outdir = outdir
        self.fmt = fmt
        self.eout: List[_EntryWriter] = []
        self.ein: List[_EntryWriter] = []
        self.edge_counts = [0] * n_shards
        try:
            for i in range(n_shards):
                stem = f"shard_{i:05d}"
                self.eout.append(_EntryWriter(
                    outdir / f"{stem}.eout.{_ext(fmt)}", fmt, validate))
                self.ein.append(_EntryWriter(
                    outdir / f"{stem}.ein.{_ext(fmt)}", fmt, validate))
        except Exception:
            # Opening can die midway (e.g. fd exhaustion at large
            # n_shards); discard what was already created so the outdir
            # is not littered with empty shard files and open handles.
            self.discard()
            raise

    def close(self) -> None:
        for w in self.eout + self.ein:
            w.close()

    def discard(self) -> None:
        """Close and delete every file this writer created — the
        failure path, so a partition that dies midway leaves no partial
        shard files behind (in a user-owned directory in particular)."""
        self.close()
        for w in self.eout + self.ein:
            w.path.unlink(missing_ok=True)

    def infos(self) -> Tuple[ShardInfo, ...]:
        return tuple(
            ShardInfo(
                index=i,
                eout_path=self.eout[i].path.name,
                ein_path=self.ein[i].path.name,
                n_edges=self.edge_counts[i],
                n_out_entries=self.eout[i].count,
                n_in_entries=self.ein[i].count,
            )
            for i in range(len(self.eout)))


def partition_edge_records(
    records: Iterable[EdgeRecord],
    n_shards: int,
    outdir: Union[str, Path],
    *,
    shard_format: str = "tsv",
    strategy: str = "round_robin",
    op_pair_name: Optional[str] = None,
    allow_rekeyed: bool = False,
) -> ShardManifest:
    """Write a stream of edge records into ``n_shards`` on-disk shards.

    Each record's entries (both sides) go to the shard its key is
    assigned to.  Re-seen keys raise unless ``allow_rekeyed`` (a stream
    of well-formed records presents each edge once; repeated keys almost
    always indicate a bug upstream).  Returns the saved manifest.
    """
    assigner = ShardAssigner(n_shards, strategy)
    writers = _ShardSetWriter(Path(outdir), n_shards, shard_format)
    try:
        for rec in records:
            if assigner.seen(rec.key):
                if not allow_rekeyed:
                    raise ShardError(f"duplicate edge key {rec.key!r}")
                sid = assigner.assign(rec.key)
            else:
                sid = assigner.assign(rec.key)
                writers.edge_counts[sid] += 1
            for vertex, value in rec.out_entries:
                writers.eout[sid].write(rec.key, vertex, value)
            for vertex, value in rec.in_entries:
                writers.ein[sid].write(rec.key, vertex, value)
    except Exception:
        writers.discard()
        raise
    return _finalize(assigner, writers, op_pair_name)


def partition_tsv_pair(
    eout_path: Union[str, Path],
    ein_path: Union[str, Path],
    n_shards: int,
    outdir: Union[str, Path],
    *,
    shard_format: str = "tsv",
    strategy: str = "round_robin",
    zero: Any = 0,
    op_pair_name: Optional[str] = None,
) -> ShardManifest:
    """Shard a TSV incidence pair, streaming line-by-line.

    Neither file is ever materialized: each ``edge<TAB>vertex<TAB>value``
    line is routed straight to its shard file.  An edge key may repeat
    (hyperedge rows have several entries); the only per-key state is the
    key → shard map plus a two-bit which-sides-saw-it mask.  Values
    equal to ``zero`` are rejected — a zero incidence entry would erase
    the edge (Definition I.4).
    """
    assigner = ShardAssigner(n_shards, strategy)
    # Entries below are re-serializations of just-parsed TSV text, an
    # identity by construction — skip the per-entry round-trip check.
    writers = _ShardSetWriter(Path(outdir), n_shards, shard_format,
                              validate=False)
    side_seen: Dict[Any, int] = {}

    def _route(path: Union[str, Path], side: List[_EntryWriter],
               bit: int) -> None:
        for key, vertex, value in iter_tsv_triples(path):
            if value == zero:
                raise ShardError(
                    f"{path}: incidence value for edge {key!r} equals the "
                    f"zero {zero!r}")
            first_sight = not assigner.seen(key)
            sid = assigner.assign(key)
            if first_sight:
                writers.edge_counts[sid] += 1
            side_seen[key] = side_seen.get(key, 0) | bit
            side[sid].write(key, vertex, value)

    try:
        _route(eout_path, writers.eout, 1)
        _route(ein_path, writers.ein, 2)
        # Definition I.4 gives every edge entries on both sides, and
        # batch construction on the same files would raise (the derived
        # row key sets differ).  A one-sided key therefore signals
        # mismatched input files — refuse rather than silently dropping
        # its contribution.
        one_sided = [k for k, mask in side_seen.items() if mask != 3]
        if one_sided:
            sample = ", ".join(repr(k) for k in sorted(one_sided)[:5])
            raise ShardError(
                f"{len(one_sided)} edge key(s) appear in only one "
                f"incidence file (e.g. {sample}); Eout and Ein must "
                "cover the same edge set K")
    except Exception:
        writers.discard()
        raise
    return _finalize(assigner, writers, op_pair_name)


def _finalize(assigner: ShardAssigner, writers: _ShardSetWriter,
              op_pair_name: Optional[str]) -> ShardManifest:
    """Close a completed shard set and save its manifest (the shared
    tail of both partition entry points)."""
    writers.close()
    manifest = ShardManifest(
        format=writers.fmt,
        strategy=assigner.strategy,
        n_edges=len(assigner),
        shards=writers.infos(),
        op_pair=op_pair_name,
        root=writers.outdir,
    )
    manifest.save()
    return manifest

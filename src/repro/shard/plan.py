"""``ShardedAdjacencyPlan``: the plan → execute → result front-end.

One object owns the whole out-of-core construction:

>>> from repro.shard import ShardedAdjacencyPlan
>>> from repro.values.semiring import get_op_pair
>>> plan = ShardedAdjacencyPlan(get_op_pair("plus_times"), n_shards=4)
>>> plan.partition([("e1", "alice", "bob"), ("e2", "alice", "bob")])
... # doctest: +ELLIPSIS
ShardManifest(...)
>>> plan.execute().adjacency["alice", "bob"]
2

The op-pair is certification-gated at construction time (mirroring
:class:`~repro.core.streaming.StreamingAdjacencyBuilder`): pairs that
fail the Theorem II.1 criteria, or whose ``⊕`` is not associative and
commutative, are refused unless ``unsafe_ok=True``.

Sources accepted by :meth:`partition` / :meth:`run`:

* an iterable of ``(key, src, dst[, w_out, w_in])`` tuples;
* an :class:`~repro.graphs.digraph.EdgeKeyedDigraph` (plus optional
  ``out_values``/``in_values`` weight specs);
* an in-memory ``(Eout, Ein)`` incidence-array pair;
* a ``(eout_path, ein_path)`` pair of TSV-triple files — streamed
  line-by-line, never materialized (the out-of-core ingest path).

Plans are context managers: for the staged flow (``partition()`` now,
``execute()`` later), ``with ShardedAdjacencyPlan(...) as plan: ...``
guarantees the staged shard set is cleaned up even when the plan is
abandoned before :meth:`~ShardedAdjacencyPlan.execute`.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.arrays.associative import AssociativeArray
from repro.arrays.backend import BACKEND_KINDS
from repro.arrays.keys import KeySet
from repro.core.certify import Certification, certify
from repro.graphs.incidence import ValueSpec
from repro.obs.metrics import get_registry
from repro.obs.trace import span
from repro.shard.executor import EXECUTORS, execute_shards
from repro.shard.manifest import MANIFEST_NAME, ShardError, ShardManifest
from repro.shard.merge import check_merge_safety, merge_spilled
from repro.shard.partition import (
    STRATEGIES,
    partition_edge_records,
    partition_tsv_pair,
)
from repro.shard.source import _is_array_pair, edge_records
from repro.values.semiring import OpPair

__all__ = ["ShardedResult", "ShardedAdjacencyPlan", "sharded_adjacency"]

#: Plan-owned subdirectory of the workdir for spill files (per-shard
#: adjacency pickles and merge intermediates).
_SPILL_DIR = "spill"


@dataclass(frozen=True)
class ShardedResult:
    """Outcome of one executed plan."""

    adjacency: AssociativeArray
    manifest: ShardManifest
    shard_nnz: Tuple[int, ...]
    timings: Dict[str, float]

    @property
    def nnz(self) -> int:
        """Stored entries of the merged adjacency array."""
        return self.adjacency.nnz


def _is_path_pair(source: Any) -> bool:
    return (isinstance(source, (tuple, list)) and len(source) == 2
            and all(isinstance(x, (str, Path)) for x in source))


class ShardedAdjacencyPlan:
    """Out-of-core ``A = EoutᵀEin`` through on-disk edge shards.

    Parameters
    ----------
    op_pair:
        The ``⊕.⊗`` algebra.  Certified on construction; violators (and
        order-sensitive ``⊕``) are rejected unless ``unsafe_ok``.
    n_shards:
        Number of edge shards to partition into.
    executor, n_workers:
        Per-shard construction backend — ``"serial"``, ``"thread"`` or
        ``"process"`` — and its worker count.  Process pools require the
        op-pair to be registered (shipped by name).
    mode, kernel:
        Forwarded to :func:`repro.arrays.matmul.multiply` per shard.
    backend:
        Array storage backend per shard (``"auto"``, ``"dict"``,
        ``"numeric"`` — see :mod:`repro.arrays.backend`).  ``"dict"``
        pins every shard to the generic paths; ``"numeric"`` compiles
        the columnar form at ingest and keeps it through the merge.
    shard_format:
        ``"tsv"``, ``"pickle"``, or ``"auto"`` (TSV for TSV-file
        sources, whose keys/values are text by construction; pickle for
        in-memory sources, whose key and value types only pickle
        preserves).
    strategy:
        Edge-key assignment, ``"round_robin"`` (default) or ``"hash"``.
    workdir:
        Directory for shards and spill files.  Default: a fresh
        temporary directory.  Unless ``keep_workdir``, the plan cleans
        up after :meth:`execute`: a temporary directory is removed
        outright; an explicit directory has the plan's own files (shard
        entries, spills, ``manifest.json``) removed and is otherwise
        left untouched.
    overwrite:
        Allow partitioning into an explicit ``workdir`` that already
        holds another run's shard set (its ``manifest.json`` and shard
        files are replaced).  Off by default so a kept shard set cannot
        be destroyed by accident; re-partitioning with the *same* plan
        instance never needs it.
    unsafe_ok:
        Accept non-compliant pairs; the result is then *not* guaranteed
        to equal batch construction.
    """

    def __init__(
        self,
        op_pair: OpPair,
        *,
        n_shards: int = 4,
        executor: str = "thread",
        n_workers: int = 4,
        mode: str = "sparse",
        kernel: str = "auto",
        backend: str = "auto",
        shard_format: str = "auto",
        strategy: str = "round_robin",
        workdir: Optional[Union[str, Path]] = None,
        keep_workdir: bool = False,
        overwrite: bool = False,
        unsafe_ok: bool = False,
        certification_seed: int = 0xD4,
    ) -> None:
        if n_shards < 1:
            raise ShardError("n_shards must be >= 1")
        if n_workers < 1:
            raise ShardError("n_workers must be >= 1")
        if mode not in ("sparse", "dense"):
            raise ShardError(
                f"unknown mode {mode!r}; use 'sparse' or 'dense'")
        if executor not in EXECUTORS:
            raise ShardError(
                f"unknown executor {executor!r}; use {EXECUTORS}")
        if strategy not in STRATEGIES:
            raise ShardError(
                f"unknown partition strategy {strategy!r}; use {STRATEGIES}")
        if shard_format not in ("auto", "tsv", "pickle"):
            raise ShardError(
                f"unknown shard format {shard_format!r}; use 'auto', "
                "'tsv' or 'pickle'")
        if backend not in BACKEND_KINDS:
            raise ShardError(
                f"unknown backend {backend!r}; use one of {BACKEND_KINDS}")
        self._pair = op_pair
        self._certification = certify(op_pair, seed=certification_seed,
                                      build_witness=False)
        check_merge_safety(op_pair, unsafe_ok=unsafe_ok,
                           certification=self._certification)
        self.n_shards = n_shards
        self.executor = executor
        self.n_workers = n_workers
        self.mode = mode
        self.kernel = kernel
        self.backend = backend
        # "auto" is resolved per source in partition(): TSV files carry
        # string keys and pre-round-tripped values so TSV shards are
        # faithful; any in-memory source may hold arbitrary key/value
        # types, which only pickle preserves.
        self.shard_format = shard_format
        self.strategy = strategy
        self.keep_workdir = keep_workdir
        self.overwrite = overwrite
        self._workdir = Path(workdir) if workdir is not None else None
        # A temp workdir is always plan-owned; an explicit one holds
        # foreign content until this plan first partitions into it.
        self._owns_workdir_content = workdir is None
        self._spill_created = False
        self._tempdir: Optional[Path] = None
        self._manifest: Optional[ShardManifest] = None
        self._final_keys: Optional[Tuple[KeySet, KeySet]] = None
        self._partition_seconds = 0.0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def op_pair(self) -> OpPair:
        """The algebra this plan constructs over."""
        return self._pair

    @property
    def certification(self) -> Certification:
        """The Theorem II.1 certification computed at construction."""
        return self._certification

    @property
    def order_sensitive(self) -> bool:
        """Whether ``⊕`` is flagged non-associative/non-commutative (the
        equivalence-to-batch guarantee is waived if so)."""
        return not (self._pair.add.associative
                    and self._pair.add.commutative)

    @property
    def manifest(self) -> Optional[ShardManifest]:
        """The shard manifest, once :meth:`partition` has run."""
        return self._manifest

    @property
    def workdir(self) -> Path:
        """The plan's working directory (created on demand)."""
        if self._workdir is None:
            self._tempdir = Path(tempfile.mkdtemp(prefix="repro-shard-"))
            self._workdir = self._tempdir
        return self._workdir

    # ------------------------------------------------------------------
    # plan → execute
    # ------------------------------------------------------------------
    def partition(
        self,
        source: Any,
        *,
        out_values: ValueSpec = None,
        in_values: ValueSpec = None,
    ) -> ShardManifest:
        """Split ``source`` into on-disk shards under :attr:`workdir`."""
        start = time.perf_counter()
        # Per-source state resets first: a partition that fails midway
        # must not leave a stale manifest pairing with partially
        # rewritten shard files (execute() would silently build a wrong
        # adjacency from the mix).
        self._final_keys = None
        self._manifest = None
        with span("shard.partition", n_shards=self.n_shards), \
                self._stage_timer("partition"):
            return self._partition(source, out_values=out_values,
                                   in_values=in_values, start=start)

    def _stage_timer(self, stage: str):
        """Timer feeding the ``shard_stage_seconds{stage=...}`` histogram."""
        return get_registry().histogram(
            "shard_stage_seconds",
            "Wall time per sharded-construction stage",
            stage=stage).time()

    def _partition(
        self,
        source: Any,
        *,
        out_values: ValueSpec,
        in_values: ValueSpec,
        start: float,
    ) -> ShardManifest:
        try:
            shard_dir = self.workdir
            existing = shard_dir / MANIFEST_NAME
            if existing.exists():
                if (not self.overwrite
                        and not self._owns_workdir_content):
                    # Another run's kept shard set lives here; silently
                    # truncating its files would destroy it.
                    raise ShardError(
                        f"{shard_dir} already contains a shard set "
                        "(manifest.json); pass overwrite=True to "
                        "replace it")
                # Replacing a set means replacing it whole: remove the
                # old manifest's listed shard files too, or a smaller
                # repartition would orphan the higher-numbered ones
                # next to the new manifest.
                try:
                    old = ShardManifest.load(existing)
                    for info in old.shards:
                        old_eout, old_ein = old.shard_paths(info)
                        old_eout.unlink(missing_ok=True)
                        old_ein.unlink(missing_ok=True)
                except ShardError:
                    pass  # unreadable old manifest; just replace it
                # Dropping the manifest itself also ensures a partition
                # that fails midway cannot leave a stale manifest for
                # ShardManifest.load() to resurrect over partial files.
                existing.unlink(missing_ok=True)
            self._owns_workdir_content = True
            if _is_path_pair(source):
                fmt = ("tsv" if self.shard_format == "auto"
                       else self.shard_format)
                manifest = partition_tsv_pair(
                    source[0], source[1], self.n_shards, shard_dir,
                    shard_format=fmt, strategy=self.strategy,
                    zero=self._pair.zero, op_pair_name=self._pair.name)
            else:
                if _is_array_pair(source):
                    # Remember explicit key sets so the merged result
                    # matches batch construction even in the presence of
                    # empty rows/columns.
                    self._final_keys = (source[0].col_keys,
                                        source[1].col_keys)
                fmt = ("pickle" if self.shard_format == "auto"
                       else self.shard_format)
                records = edge_records(
                    source, zero=self._pair.zero, one=self._pair.one,
                    out_values=out_values, in_values=in_values)
                manifest = partition_edge_records(
                    records, self.n_shards, shard_dir,
                    shard_format=fmt, strategy=self.strategy,
                    op_pair_name=self._pair.name)
        except Exception:
            self._cleanup()
            raise
        self._manifest = manifest
        self._partition_seconds = time.perf_counter() - start
        return manifest

    def execute(self) -> ShardedResult:
        """Run per-shard construction and the ⊕-merge tree."""
        if self._manifest is None:
            raise ShardError("nothing to execute; call partition() first")
        try:
            t0 = time.perf_counter()
            # Spills live in a plan-created subdirectory so cleanup can
            # remove them wholesale without ever touching user files.
            spill_dir = self.workdir / _SPILL_DIR
            if not spill_dir.exists():
                self._spill_created = True  # cleanup may remove it
            with self._stage_timer("execute"):
                products = execute_shards(
                    self._manifest, self._pair, executor=self.executor,
                    n_workers=self.n_workers, mode=self.mode,
                    kernel=self.kernel, backend=self.backend,
                    workdir=spill_dir)
            t1 = time.perf_counter()
            with span("shard.merge", shards=len(products)), \
                    self._stage_timer("merge"):
                adjacency = merge_spilled(
                    [p.path for p in products], self._pair,
                    workdir=spill_dir, unsafe_ok=True,  # gated in __init__
                    cleanup=not self.keep_workdir)
            t2 = time.perf_counter()
        except Exception:
            self._cleanup()
            raise
        if self._final_keys is not None:
            adjacency = adjacency.with_keys(*self._final_keys)
        manifest = self._manifest
        if not self.keep_workdir:
            # The shard files are about to be removed (with the temp dir,
            # or individually from an explicit workdir); detach the
            # returned manifest so its paths cannot dangle
            # (counts/strategy stay useful, shard_paths() raises cleanly).
            manifest = replace(manifest, root=None)
        result = ShardedResult(
            adjacency=adjacency,
            manifest=manifest,
            shard_nnz=tuple(p.nnz for p in products),
            timings={
                "partition": self._partition_seconds,
                "execute": t1 - t0,
                "merge": t2 - t1,
                "total": self._partition_seconds + (t2 - t0),
            },
        )
        self._cleanup()
        return result

    def run(
        self,
        source: Any,
        *,
        out_values: ValueSpec = None,
        in_values: ValueSpec = None,
    ) -> ShardedResult:
        """:meth:`partition` then :meth:`execute` in one call."""
        self.partition(source, out_values=out_values, in_values=in_values)
        return self.execute()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Remove the plan's on-disk state without executing.

        For the staged flow (``partition()`` now, maybe ``execute()``
        later): call this — or use the plan as a context manager — when
        abandoning a partitioned plan, so the staged shard set (a full
        on-disk copy of the edge data) is not leaked.  A no-op for
        ``keep_workdir`` plans and plans with nothing staged.
        """
        self._cleanup()

    def __enter__(self) -> "ShardedAdjacencyPlan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._cleanup()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        # Safety net for abandoned plans: never let a mkdtemp'd workdir
        # outlive the object.  Only the temp dir is touched (explicit
        # workdirs may still be wanted by the user after a crash).
        try:
            if self._tempdir is not None and not self.keep_workdir:
                shutil.rmtree(self._tempdir, ignore_errors=True)
        except Exception:
            pass

    def _cleanup(self) -> None:
        if self.keep_workdir:
            return
        if self._tempdir is not None:
            shutil.rmtree(self._tempdir, ignore_errors=True)
            self._tempdir = None
            self._workdir = None
            self._manifest = None  # its files are gone
        elif self._workdir is not None and self._owns_workdir_content:
            # Explicit workdir this plan has written into: remove
            # exactly what it wrote — the manifest-listed shard entry
            # files, the manifest, and the spill subdirectory if this
            # plan created it — leaving the user's directory (including
            # a pre-existing spill/ of theirs, or a foreign kept shard
            # set we refused to touch) otherwise untouched.
            if self._manifest is not None and self._manifest.root is not None:
                for info in self._manifest.shards:
                    eout_path, ein_path = self._manifest.shard_paths(info)
                    eout_path.unlink(missing_ok=True)
                    ein_path.unlink(missing_ok=True)
                (self._manifest.root / MANIFEST_NAME).unlink(missing_ok=True)
            if self._spill_created:
                shutil.rmtree(self._workdir / _SPILL_DIR,
                              ignore_errors=True)
                self._spill_created = False
            self._manifest = None


def sharded_adjacency(
    source: Any,
    op_pair: OpPair,
    **options: Any,
) -> AssociativeArray:
    """One-shot sharded construction; returns just the adjacency array.

    ``options`` are :class:`ShardedAdjacencyPlan` keyword arguments.
    """
    return ShardedAdjacencyPlan(op_pair, **options).run(source).adjacency

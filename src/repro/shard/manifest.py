"""On-disk shard layout and its JSON manifest.

A *shard set* is a directory holding, for each shard ``s``, a pair of
incidence-entry files — ``shard_00000.eout.<ext>`` and
``shard_00000.ein.<ext>`` — plus one ``manifest.json`` describing the
whole set.  Restricting both incidence arrays to a shard's edge keys
``Kₛ`` is exactly the decomposition the paper's construction permits:

    ``A = Eoutᵀ ⊕.⊗ Ein = ⊕ₛ (Eout|Kₛ)ᵀ ⊕.⊗ (Ein|Kₛ)``

because the contraction runs over the edge dimension and ``⊕`` (for
certified pairs) is associative and commutative.

Two entry-file formats exist:

``"tsv"``
    ``edge_key<TAB>vertex<TAB>value`` lines — the D4M interchange format
    of :mod:`repro.arrays.io`; human-readable, limited to scalar values
    that survive the text round-trip (int/float/str).
``"pickle"``
    A stream of pickled ``(edge_key, vertex, value)`` tuples — arbitrary
    value sets (booleans, frozensets, tuples), arbitrary key types.

The manifest stores paths *relative to its own directory* so a shard set
can be moved or archived wholesale.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Optional, Tuple, Union

__all__ = ["ShardError", "ShardInfo", "ShardManifest", "FORMAT_VERSION"]

#: Manifest schema version (bump on incompatible layout changes).
FORMAT_VERSION = 1

#: File name of the manifest inside a shard directory.
MANIFEST_NAME = "manifest.json"

#: Known entry-file formats.
FORMATS = ("tsv", "pickle")


class ShardError(ValueError):
    """Raised for malformed shard sets, manifests, or shard parameters."""


@dataclass(frozen=True)
class ShardInfo:
    """One shard's files and sizes (paths relative to the manifest dir)."""

    index: int
    eout_path: str
    ein_path: str
    n_edges: int
    n_out_entries: int
    n_in_entries: int


@dataclass(frozen=True)
class ShardManifest:
    """Description of a complete shard set.

    Attributes
    ----------
    format:
        Entry-file format, ``"tsv"`` or ``"pickle"``.
    strategy:
        Partitioning strategy that produced the set (``"round_robin"`` or
        ``"hash"``) — informational; execution does not depend on it.
    n_edges:
        Total number of distinct edge keys across all shards.
    shards:
        Per-shard file records, in shard-index order.
    op_pair:
        Registry name of the op-pair the set was partitioned for, when
        known (``zero`` values were validated against it); purely
        informational at execution time.
    root:
        Directory holding the files.  Not serialized; set on save/load.
    version:
        Manifest schema version.
    """

    format: str
    strategy: str
    n_edges: int
    shards: Tuple[ShardInfo, ...]
    op_pair: Optional[str] = None
    root: Optional[Path] = field(default=None, compare=False)
    version: int = FORMAT_VERSION

    @property
    def n_shards(self) -> int:
        """Number of shards in the set."""
        return len(self.shards)

    def shard_paths(self, info: ShardInfo) -> Tuple[Path, Path]:
        """Absolute ``(eout, ein)`` paths of one shard."""
        if self.root is None:
            raise ShardError(
                "manifest has no root directory; save() or load() it first")
        return self.root / info.eout_path, self.root / info.ein_path

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """The manifest as a JSON document (without ``root``)."""
        doc = {
            "format_version": self.version,
            "format": self.format,
            "strategy": self.strategy,
            "n_edges": self.n_edges,
            "op_pair": self.op_pair,
            "shards": [asdict(s) for s in self.shards],
        }
        return json.dumps(doc, indent=2, sort_keys=True)

    def save(self, directory: Union[str, Path, None] = None) -> Path:
        """Write ``manifest.json`` into ``directory`` (default: root)."""
        root = Path(directory) if directory is not None else self.root
        if root is None:
            raise ShardError("no directory to save the manifest into")
        path = root / MANIFEST_NAME
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ShardManifest":
        """Read a manifest from ``manifest.json`` (or its directory)."""
        p = Path(path)
        if p.is_dir():
            p = p / MANIFEST_NAME
        try:
            doc = json.loads(p.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise ShardError(f"no manifest at {p}") from None
        except json.JSONDecodeError as exc:
            raise ShardError(f"malformed manifest {p}: {exc}") from None
        version = doc.get("format_version")
        if version != FORMAT_VERSION:
            raise ShardError(
                f"manifest {p} has format_version {version!r}; this build "
                f"reads version {FORMAT_VERSION}")
        fmt = doc.get("format")
        if fmt not in FORMATS:
            raise ShardError(f"manifest {p} has unknown format {fmt!r}")
        try:
            shards = tuple(
                ShardInfo(**{k: s[k] for k in (
                    "index", "eout_path", "ein_path", "n_edges",
                    "n_out_entries", "n_in_entries")})
                for s in doc.get("shards", ()))
        except (KeyError, TypeError) as exc:
            raise ShardError(
                f"malformed manifest {p}: bad shard record ({exc})"
            ) from None
        return cls(
            format=fmt,
            strategy=doc.get("strategy", "unknown"),
            n_edges=int(doc.get("n_edges", 0)),
            shards=shards,
            op_pair=doc.get("op_pair"),
            root=p.parent,
            version=version,
        )

    def with_root(self, root: Union[str, Path]) -> "ShardManifest":
        """A copy anchored at ``root``."""
        return replace(self, root=Path(root))

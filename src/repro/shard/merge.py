"""⊕-merge tree: combine per-shard adjacency arrays, spilling to disk.

For an edge partition ``K = K₁ ∪ … ∪ Kₙ`` the paper's construction
distributes over the contraction axis:

    ``A = ⊕ₛ (Eout|Kₛ)ᵀ ⊕.⊗ (Ein|Kₛ)``

*provided* ``⊕`` is associative and commutative — the per-shard folds
and the merge tree reassociate and reorder the Definition I.3 edge-key
fold.  The gate here therefore mirrors
:class:`~repro.core.streaming.StreamingAdjacencyBuilder`: the op-pair
must pass the Theorem II.1 certification **and** carry an
associative/commutative ``⊕``, unless the caller opts out with
``unsafe_ok=True`` (in which case the result is *not* guaranteed to
equal batch construction — exactly as the theorem predicts).

Merging is pairwise over a balanced binary tree.  The spilled variant
holds at most two operands in memory at any time and deletes inputs as
soon as their parent is written, so peak memory is O(result), not
O(result × shards).
"""

from __future__ import annotations

import pickle
import time
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.arrays.associative import AssociativeArray
from repro.obs.events import emit_event
from repro.obs.metrics import get_registry
from repro.obs.trace import span
from repro.arrays.backend import (
    embed_lookup,
    union_apply,
    usable_numeric_zero,
)
from repro.arrays.elementwise import elementwise_add, vectorizable_operands
from repro.core.certify import Certification, certify
from repro.shard.manifest import ShardError
from repro.values.equality import values_equal
from repro.values.semiring import OpPair

__all__ = [
    "check_merge_safety",
    "oplus_union",
    "oplus_fold",
    "merge_adjacency",
    "merge_spilled",
]


def check_merge_safety(
    op_pair: OpPair,
    *,
    unsafe_ok: bool = False,
    certification: Optional[Certification] = None,
    certification_seed: int = 0xD4,
) -> Optional[Certification]:
    """Certify that sharded construction equals batch for ``op_pair``.

    Raises :class:`ShardError` when the pair fails the Theorem II.1
    criteria or its ``⊕`` is flagged non-associative/non-commutative —
    unless ``unsafe_ok``.  Pass a precomputed ``certification`` to avoid
    re-running the criteria search (the plan front-end certifies once at
    construction and reuses it).  Returns the certification used, or
    ``None`` when ``unsafe_ok`` made computing one unnecessary.
    """
    if unsafe_ok:
        return certification
    cert = certification if certification is not None else certify(
        op_pair, seed=certification_seed, build_witness=False)
    if not cert.safe:
        raise ShardError(
            "op-pair fails the Theorem II.1 criteria; sharded construction "
            "would not be guaranteed to produce an adjacency array.  Pass "
            "unsafe_ok=True to override.\n" + cert.criteria.describe())
    if not (op_pair.add.associative and op_pair.add.commutative):
        raise ShardError(
            f"⊕ ({op_pair.add.name}) is not associative and commutative; "
            "the shard merge tree reorders the edge-key fold, so the "
            "merged result may differ from batch construction.  Pass "
            "unsafe_ok=True to override.")
    return cert


def oplus_union(
    a: AssociativeArray,
    b: AssociativeArray,
    op_pair: OpPair,
) -> AssociativeArray:
    """``a ⊕ b`` over the union of both key sets.

    Shard results cover different (overlapping) vertex sets; the merge
    embeds both into the union before the element-wise ``⊕``, which is
    exact because absent entries read as the shared zero — ``⊕``'s
    identity.  Numeric-backed shard results take a fully vectorised
    path (union key sets → monotone index remap → ufunc ⊕ over the
    coordinate-code union), so the merge tree stops being
    entry-at-a-time; exotic value sets fall back to the generic
    re-embed + element-wise evaluation.
    """
    registry = get_registry()
    started = time.perf_counter()
    merged = _oplus_union_vectorized(a, b, op_pair)
    path = "vectorized"
    if merged is None:
        path = "generic"
        if a.row_keys != b.row_keys or a.col_keys != b.col_keys:
            a = a.with_keys(a.row_keys.union(b.row_keys),
                            a.col_keys.union(b.col_keys))
            b = b.with_keys(a.row_keys, a.col_keys)
        merged = elementwise_add(a, b, op_pair.add)
    registry.counter("shard_merges_total", "Pairwise ⊕-merges performed",
                     path=path).inc()
    registry.histogram(
        "shard_merge_seconds", "Wall time of one pairwise ⊕-merge"
    ).observe(time.perf_counter() - started)
    return merged


def _oplus_union_vectorized(
    a: AssociativeArray,
    b: AssociativeArray,
    op_pair: OpPair,
) -> Optional[AssociativeArray]:
    """The numeric fast path of :func:`oplus_union`; None when inapplicable.

    Requires a ufunc ``⊕``, a shared plain-numeric zero, and operands on
    (or promotable to) the numeric backend; small dict-backed operands
    stay generic so value types are preserved for the tiny cases.
    """
    add = op_pair.add
    if add.ufunc is None:
        return None
    if not (usable_numeric_zero(a.zero) and values_equal(a.zero, b.zero)):
        return None
    if not values_equal(add(a.zero, b.zero), a.zero):
        return None                # generic path raises the proper error
    backends = vectorizable_operands(a, b)
    if backends is None:
        return None
    na, nb = backends
    rk, ck = a.row_keys, a.col_keys
    if rk != b.row_keys or ck != b.col_keys:
        rk = rk.union(b.row_keys)
        ck = ck.union(b.col_keys)
        shape = (len(rk), len(ck))
        rpos, cpos = rk.position_map(), ck.position_map()
        # Embedding sorted key sets into their sorted union is monotone,
        # so the remapped backends stay lex-sorted — no re-sort.
        na = na.remapped(
            embed_lookup(a.row_keys, rpos, len(a.row_keys)),
            embed_lookup(a.col_keys, cpos, len(a.col_keys)), shape)
        nb = nb.remapped(
            embed_lookup(b.row_keys, rpos, len(b.row_keys)),
            embed_lookup(b.col_keys, cpos, len(b.col_keys)), shape)
    zero = float(a.zero)
    rows, cols, vals = union_apply(na, nb, add.ufunc, zero, zero, zero,
                                   (len(rk), len(ck)))
    return AssociativeArray._from_numeric(
        rows, cols, vals, row_keys=rk, col_keys=ck, zero=a.zero,
        presorted=True, filtered=True)


def oplus_fold(
    arrays: Sequence[AssociativeArray],
    op_pair: OpPair,
) -> AssociativeArray:
    """Balanced pairwise ``⊕``-fold of in-memory arrays over union keys.

    The raw merge tree without the safety gate: callers that certified
    the op-pair once up front (:func:`check_merge_safety` — the plan
    front-end, :class:`~repro.serve.service.AdjacencyService` epoch
    publication) fold deltas through this without re-running the
    criteria search per merge.
    """
    if not arrays:
        raise ShardError("no arrays to merge")
    level = list(arrays)
    while len(level) > 1:
        level = [oplus_union(level[i], level[i + 1], op_pair)
                 if i + 1 < len(level) else level[i]
                 for i in range(0, len(level), 2)]
    return level[0]


def merge_adjacency(
    results: Sequence[AssociativeArray],
    op_pair: OpPair,
    *,
    unsafe_ok: bool = False,
) -> AssociativeArray:
    """Pairwise-merge in-memory shard results into one adjacency array."""
    check_merge_safety(op_pair, unsafe_ok=unsafe_ok)
    if not results:
        raise ShardError("no shard results to merge")
    return oplus_fold(results, op_pair)


def merge_spilled(
    paths: Sequence[Union[str, Path]],
    op_pair: OpPair,
    *,
    workdir: Optional[Union[str, Path]] = None,
    unsafe_ok: bool = False,
    cleanup: bool = True,
) -> AssociativeArray:
    """Pairwise-merge spilled (pickled) shard results from disk.

    Intermediate merge levels are themselves spilled to ``workdir``
    (default: the first input's directory); at most two operands are
    resident at once.  ``cleanup`` deletes inputs and intermediates as
    they are consumed.
    """
    check_merge_safety(op_pair, unsafe_ok=unsafe_ok)
    if not paths:
        raise ShardError("no shard results to merge")
    spilled = get_registry().counter(
        "shard_spill_bytes_total", "Bytes spilled by shard builds")
    level: List[Path] = [Path(p) for p in paths]
    root = Path(workdir) if workdir is not None else level[0].parent
    root.mkdir(parents=True, exist_ok=True)
    generation = 0
    with span("shard.merge_spilled", inputs=len(level)):
        while len(level) > 1:
            generation += 1
            if len(level) == 2:
                # Final merge: its product is the answer — return it
                # without the spill/reload round-trip (it is the largest
                # array of the whole run).
                merged = oplus_union(_load(level[0]), _load(level[1]),
                                     op_pair)
                if cleanup:
                    level[0].unlink(missing_ok=True)
                    level[1].unlink(missing_ok=True)
                return merged
            nxt: List[Path] = []
            for i in range(0, len(level), 2):
                if i + 1 >= len(level):
                    nxt.append(level[i])  # odd one out rides up a level
                    continue
                merged = oplus_union(_load(level[i]), _load(level[i + 1]),
                                     op_pair)
                out = root / f"merge_{generation:03d}_{i // 2:05d}.pkl"
                with out.open("wb") as fh:
                    pickle.dump(merged, fh,
                                protocol=pickle.HIGHEST_PROTOCOL)
                nbytes = out.stat().st_size
                spilled.inc(nbytes)
                emit_event("shard_spill", stage="merge",
                           level=generation, bytes=nbytes,
                           path=str(out))
                if cleanup:
                    level[i].unlink(missing_ok=True)
                    level[i + 1].unlink(missing_ok=True)
                nxt.append(out)
            level = nxt
        result = _load(level[0])
        if cleanup:
            level[0].unlink(missing_ok=True)
        return result


def _load(path: Path) -> AssociativeArray:
    try:
        with path.open("rb") as fh:
            return pickle.load(fh)
    except FileNotFoundError:
        raise ShardError(f"missing spilled shard result {path}") from None

"""Edge-source adapters: everything becomes a stream of edge records.

The partitioner consumes one shape — :class:`EdgeRecord`, an edge key
with its out-incidence and in-incidence entries — produced lazily from
any of the supported sources:

* an :class:`~repro.graphs.digraph.EdgeKeyedDigraph` (with optional
  weight specs, as :func:`repro.graphs.incidence.incidence_arrays`
  takes them);
* an iterable of ``(key, src, dst)`` or ``(key, src, dst, w_out, w_in)``
  tuples — the :class:`~repro.core.streaming.StreamingAdjacencyBuilder`
  wire shape;
* a pair of incidence :class:`~repro.arrays.associative.AssociativeArray`
  objects sharing their edge-key rows (hyperedge rows supported).

TSV-file pairs are *not* routed through records: they are line-streamed
directly by :func:`repro.shard.partition.partition_tsv_pair`, which
never groups a file's entries in memory.

Records carry hyperedges naturally: an edge key may touch several
out-vertices and several in-vertices (the paper's generalized incidence
arrays, e.g. the music tracks of Figure 2).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, NamedTuple, Tuple

from repro.arrays.associative import AssociativeArray
from repro.graphs.digraph import EdgeKeyedDigraph, GraphError
from repro.graphs.incidence import ValueSpec, _resolve_value
from repro.shard.manifest import ShardError

__all__ = ["EdgeRecord", "edge_records"]


class EdgeRecord(NamedTuple):
    """One edge key with its incidence entries on both sides.

    ``out_entries``/``in_entries`` are ``(vertex, value)`` tuples; either
    side may hold several entries (hyperedges) but not zero-valued ones
    (Definition I.4 — a zero incidence entry would erase the edge).
    """

    key: Any
    out_entries: Tuple[Tuple[Any, Any], ...]
    in_entries: Tuple[Tuple[Any, Any], ...]


def edge_records(
    source: Any,
    *,
    zero: Any = 0,
    one: Any = 1,
    out_values: ValueSpec = None,
    in_values: ValueSpec = None,
) -> Iterator[EdgeRecord]:
    """Normalize ``source`` into a lazy stream of :class:`EdgeRecord`.

    ``zero`` is the op-pair zero used to validate incidence values;
    ``one`` the default stored value; ``out_values``/``in_values`` apply
    to graph sources only (constant, mapping, or callable — see
    :func:`repro.graphs.incidence.incidence_arrays`).
    """
    if isinstance(source, EdgeKeyedDigraph):
        return _records_from_graph(source, zero=zero, one=one,
                                   out_values=out_values,
                                   in_values=in_values)
    if _is_array_pair(source):
        eout, ein = source
        return _records_from_arrays(eout, ein)
    if isinstance(source, (str, bytes)) or not _iterable(source):
        raise ShardError(
            f"unsupported edge source {type(source).__name__}; expected an "
            "EdgeKeyedDigraph, an (Eout, Ein) array pair, or an iterable "
            "of (key, src, dst[, w_out, w_in]) tuples")
    return _records_from_tuples(source, zero=zero, one=one)


def _iterable(obj: Any) -> bool:
    try:
        iter(obj)
        return True
    except TypeError:
        return False


def _is_array_pair(source: Any) -> bool:
    return (isinstance(source, (tuple, list)) and len(source) == 2
            and all(isinstance(x, AssociativeArray) for x in source))


def _records_from_graph(
    graph: EdgeKeyedDigraph,
    *,
    zero: Any,
    one: Any,
    out_values: ValueSpec,
    in_values: ValueSpec,
) -> Iterator[EdgeRecord]:
    for key, src, dst in graph.edges():
        ov = _resolve_value(out_values, key, src, one)
        iv = _resolve_value(in_values, key, dst, one)
        if ov == zero:
            raise GraphError(
                f"out-value for edge {key!r} equals the zero {zero!r}")
        if iv == zero:
            raise GraphError(
                f"in-value for edge {key!r} equals the zero {zero!r}")
        yield EdgeRecord(key, ((src, ov),), ((dst, iv),))


def _records_from_tuples(
    tuples: Iterable[Tuple[Any, ...]],
    *,
    zero: Any,
    one: Any,
) -> Iterator[EdgeRecord]:
    for item in tuples:
        if len(item) == 3:
            key, src, dst = item
            ov = iv = one
        elif len(item) == 5:
            key, src, dst, ov, iv = item
        else:
            raise GraphError(
                f"expected 3- or 5-tuples, got {len(item)}-tuple")
        if ov == zero or iv == zero:
            raise GraphError(
                f"incidence values for edge {key!r} must be nonzero")
        yield EdgeRecord(key, ((src, ov),), ((dst, iv),))


def _records_from_arrays(
    eout: AssociativeArray,
    ein: AssociativeArray,
) -> Iterator[EdgeRecord]:
    if eout.row_keys != ein.row_keys:
        raise ShardError(
            "Eout and Ein must share the edge key set K as rows; re-embed "
            "with with_keys() over the union first")
    out_rows: Dict[Any, List[Tuple[Any, Any]]] = {}
    in_rows: Dict[Any, List[Tuple[Any, Any]]] = {}
    for k, a, v in eout.entries():
        out_rows.setdefault(k, []).append((a, v))
    for k, b, v in ein.entries():
        in_rows.setdefault(k, []).append((b, v))
    for k in eout.row_keys:
        outs = tuple(out_rows.get(k, ()))
        ins = tuple(in_rows.get(k, ()))
        if not outs and not ins:
            continue  # a fully empty edge row contributes nothing
        yield EdgeRecord(k, outs, ins)

"""Out-of-core sharded adjacency construction.

The paper's construction ``A = Eoutᵀ ⊕.⊗ Ein`` contracts over the edge
dimension, so it distributes over any edge partition
``K = K₁ ∪ … ∪ Kₙ``:

    ``A = ⊕ₛ (Eout|Kₛ)ᵀ ⊕.⊗ (Ein|Kₛ)``

exactly when ``⊕`` is associative and commutative — which is what the
Theorem II.1 certification engine already decides.  This package turns
that identity into an engine for edge sets larger than RAM:

* :mod:`repro.shard.source` — adapters turning graphs, edge-tuple
  streams, incidence-array pairs, or TSV-triple files into one edge
  stream;
* :mod:`repro.shard.partition` — single-pass partitioner writing
  on-disk incidence shards plus a JSON manifest;
* :mod:`repro.shard.manifest` — the shard-set layout and its
  ``manifest.json`` round-trip;
* :mod:`repro.shard.executor` — per-shard adjacency construction in
  serial/thread/process workers (op-pairs shipped by registry name via
  :mod:`repro.values.shipping`), results spilled to disk;
* :mod:`repro.shard.merge` — the certification-gated ⊕-merge tree with
  spill-to-disk;
* :mod:`repro.shard.plan` — :class:`ShardedAdjacencyPlan`, the
  plan → execute → result front-end (also behind the ``repro build``
  CLI subcommand).
"""

from repro.shard.manifest import ShardError, ShardInfo, ShardManifest
from repro.shard.source import EdgeRecord, edge_records
from repro.shard.partition import (
    ShardAssigner,
    partition_edge_records,
    partition_tsv_pair,
)
from repro.shard.executor import ShardProduct, execute_shards, load_shard
from repro.shard.merge import (
    check_merge_safety,
    merge_adjacency,
    merge_spilled,
    oplus_fold,
    oplus_union,
)
from repro.shard.plan import (
    ShardedAdjacencyPlan,
    ShardedResult,
    sharded_adjacency,
)

__all__ = [
    "ShardError",
    "ShardInfo",
    "ShardManifest",
    "EdgeRecord",
    "edge_records",
    "ShardAssigner",
    "partition_edge_records",
    "partition_tsv_pair",
    "ShardProduct",
    "execute_shards",
    "load_shard",
    "check_merge_safety",
    "merge_adjacency",
    "merge_spilled",
    "oplus_fold",
    "oplus_union",
    "ShardedAdjacencyPlan",
    "ShardedResult",
    "sharded_adjacency",
]

"""Command-line interface.

``python -m repro <command>``:

``figures``
    Run every paper experiment and print the paper-vs-measured report
    (exit 1 on any mismatch) — the one-command reproduction.
``catalog``
    Certify the whole op-pair catalog and print the verdict table.
``certify PAIR``
    Certify one op-pair; prints criteria verdicts and, for violators, the
    lemma witness graph.
``music [--pair NAME] [--weighted]``
    Print the music-figure product for one op-pair (Figures 3/5 rows).
``render FIGURE``
    Print one regenerated figure (fig1..fig5, criteria, structured).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Constructing adjacency arrays from incidence arrays "
                    "(Jananthan, Dibert & Kepner, 2017) — reproduction CLI.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("figures",
                   help="run all experiments; print paper-vs-measured")

    sub.add_parser("catalog", help="certify the full op-pair catalog")

    p_cert = sub.add_parser("certify", help="certify one op-pair")
    p_cert.add_argument("pair", help="registry name, e.g. plus_times")
    p_cert.add_argument("--seed", type=int, default=0xA55)
    p_cert.add_argument("--samples", type=int, default=400)

    p_music = sub.add_parser("music",
                             help="print a Figure 3/5 product table")
    p_music.add_argument("--pair", default="plus_times")
    p_music.add_argument("--weighted", action="store_true",
                         help="use Figure 4's weighted E1 (Figure 5)")

    p_render = sub.add_parser("render", help="print one regenerated figure")
    p_render.add_argument("figure",
                          choices=["fig1", "fig2", "fig3", "fig4", "fig5",
                                   "criteria", "reverse", "structured"])
    return parser


def _cmd_figures() -> int:
    from repro.experiments.harness import render_report, run_all
    report = run_all()
    print(render_report(report))
    return 0 if report.all_matched else 1


def _cmd_catalog() -> int:
    from repro.core.certify import certify
    from repro.values import exotic  # noqa: F401 — registers pairs
    from repro.values.semiring import get_op_pair, list_op_pairs
    rows = []
    for name in list_op_pairs():
        pair = get_op_pair(name)
        cert = certify(pair, seed=0xA55)
        verdict = "SAFE  " if cert.safe else "UNSAFE"
        expected = pair.expected_safe
        mark = " " if expected is None or expected == cert.safe else "!"
        detail = ""
        if not cert.safe:
            violation = cert.criteria.first_violation()
            if violation is not None:
                detail = f"  ({violation.property_name})"
        rows.append(f"{verdict}{mark} {pair.display:24s} [{name}]{detail}")
    print("\n".join(rows))
    return 0


def _cmd_certify(name: str, seed: int, samples: int) -> int:
    from repro.core.certify import certify
    from repro.values import exotic  # noqa: F401
    from repro.values.semiring import SemiringError, get_op_pair
    try:
        pair = get_op_pair(name)
    except SemiringError as exc:
        print(exc, file=sys.stderr)
        return 2
    cert = certify(pair, seed=seed, samples=samples)
    print(cert.summary())
    if cert.witness is not None:
        from repro.arrays.printing import format_array
        print("\nwitness graph edges:",
              ", ".join(f"{k}: {s}→{t}"
                        for k, s, t in cert.witness.graph.edges()))
        print("Eout:")
        print(format_array(cert.witness.eout))
        print("Ein:")
        print(format_array(cert.witness.ein))
        print("EoutᵀEin (dense):")
        print(format_array(cert.witness.product) or "(all zero)")
    return 0 if cert.safe else 1


def _cmd_music(pair_name: str, weighted: bool) -> int:
    from repro.arrays.printing import format_array
    from repro.core.construction import correlate
    from repro.datasets.music import music_e1, music_e1_weighted, music_e2
    from repro.values.semiring import SemiringError, get_op_pair
    try:
        pair = get_op_pair(pair_name)
    except SemiringError as exc:
        print(exc, file=sys.stderr)
        return 2
    e1 = music_e1_weighted() if weighted else music_e1()
    e2 = music_e2()
    if not pair.is_zero(0):
        e1 = e1.with_zero(pair.zero)
        e2 = e2.with_zero(pair.zero)
    adj = correlate(e1, e2, pair)
    source = "Figure 5 (weighted E1)" if weighted else "Figure 3"
    print(format_array(
        adj, title=f"{source}: E1ᵀ {pair.display} E2", max_col_width=22))
    return 0


def _cmd_render(figure: str) -> int:
    from repro.experiments.figures import all_experiments
    for exp in all_experiments():
        if exp.name == figure:
            print(exp.render())
            return 0
    print(f"unknown figure {figure!r}", file=sys.stderr)  # pragma: no cover
    return 2  # pragma: no cover


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "figures":
        return _cmd_figures()
    if args.command == "catalog":
        return _cmd_catalog()
    if args.command == "certify":
        return _cmd_certify(args.pair, args.seed, args.samples)
    if args.command == "music":
        return _cmd_music(args.pair, args.weighted)
    if args.command == "render":
        return _cmd_render(args.figure)
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Command-line interface.

``python -m repro <command>`` (or just ``repro`` once installed):

``figures``
    Run every paper experiment and print the paper-vs-measured report
    (exit 1 on any mismatch) — the one-command reproduction.
``catalog``
    Certify the whole op-pair catalog and print the verdict table.
``certify PAIR``
    Certify one op-pair; prints criteria verdicts and, for violators, the
    lemma witness graph.
``music [--pair NAME] [--weighted]``
    Print the music-figure product for one op-pair (Figures 3/5 rows).
``render FIGURE``
    Print one regenerated figure (fig1..fig5, criteria, structured).
``build EOUT.tsv EIN.tsv -o ADJ.tsv``
    Out-of-core construction: shard a TSV incidence pair on disk, build
    per-shard adjacency arrays in parallel, ⊕-merge, write the adjacency
    array back out as TSV triples (see :mod:`repro.shard`).
``explain EOUT.tsv EIN.tsv``
    Show the lazy expression engine's optimized plan for the adjacency
    construction (applied rewrites with the algebraic properties that
    licensed them, refusals, per-node cost estimates) without — or,
    with ``--execute``, after — running it (see :mod:`repro.expr`).
``serve --source ADJ.tsv``
    Run the concurrent adjacency query service over HTTP: load an
    adjacency TSV (or a kept shard-manifest workdir), answer
    ``/query/*`` reads from immutable epoch snapshots, accept streamed
    edge deltas on ``POST /edges`` + ``/publish`` (see
    :mod:`repro.serve`).
``query KIND [VERTEX]``
    Ask a running server one question (``neighbors``, ``degrees``,
    ``khop``, ``path-lengths``, ``top-k``, ``stats``) and print the
    JSON answer.
``trace --source ADJ.tsv`` / ``trace --id TRACE_ID [--url URL]``
    Run one traced k-hop query against a local source and print the
    span tree (handler → cache → expr plan → kernels) — or fetch one
    finished trace from a running server by id; a miss prints the
    structured "no such trace (ring evicted?)" error with the ring's
    retention bounds (see :mod:`repro.obs.trace`).  ``--list`` prints
    a running server's newest-first trace index instead.
``profile start|stop|dump|diff``
    The sampling profiler (:mod:`repro.obs.profile`): ``start``/
    ``stop`` manage a running server's process-wide session over HTTP
    (``POST /profile/start|stop``); ``dump`` snapshots a live remote
    session (``GET /profile``) *or* profiles a local k-hop workload
    over ``--source`` for ``--seconds``, printing the hottest
    functions and optionally writing collapsed stacks (``-o``) and a
    self-contained HTML flamegraph (``--flame``); ``diff`` compares
    two profile artifacts (collapsed files, profile JSON, or profiled
    ``BENCH_*.json`` runs) function-by-function, most regressed
    first.  Every dump carries the sampler's self-measured
    ``overhead_ratio``.
``events [--follow] [--interval S] [--since SEQ] [--kind KIND]``
    Print a running server's structured event log (epoch publications,
    rewrite refusals, shard spills, cache invalidations, bench runs,
    loadgen steps/breaches) as JSON Lines; ``--follow`` tails it with
    a seq cursor every ``--interval`` seconds, and ``--kind`` filters
    by exact kind, comma-separated kinds, or a ``prefix.*`` wildcard
    (``--kind 'loadgen.*'`` watches a sweep live; see
    :mod:`repro.obs.events`).
``loadgen record|replay|sweep``
    The workload-capture and open-loop load-generation subsystem
    (:mod:`repro.obs.loadgen`): ``record`` synthesizes a replayable
    schema-versioned JSONL workload from a query-mix spec over a
    source's vertex set; ``replay`` drives it against an in-process
    source or a running server under a Poisson/fixed-rate arrival
    schedule, reporting coordinated-omission-corrected
    p50/p99/p99.9/max; ``sweep`` steps the arrival rate until a
    declared SLO (p99 bound, error budget) is violated and reports
    the max sustainable throughput; ``sweep --profile`` samples each
    step and keeps the breach step's collapsed stacks (write its
    flamegraph with ``--flame``).
``bench [NAMES...] [--compare A B] [--baseline-refresh --reason WHY]``
    The versioned benchmark harness: run the smoke benchmarks under a
    locked manifest (git sha, machine, config hash), writing
    ``BENCH_<runid>.json`` + ``report.md`` + the kernel-calibration
    snapshot; diff two runs' headline metrics against a regression
    threshold (exiting non-zero on any regression, with exemplar trace
    links); or re-lock ``BENCH_baseline.json`` with provenance — the
    reason and git sha land in the baseline's manifest (see
    :mod:`repro.obs.bench`).  With ``--profile`` the run executes
    under the sampling profiler and the run doc carries a per-function
    sample table; ``--compare`` on two such runs adds a function-level
    diff that *attributes* any headline regression.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Constructing adjacency arrays from incidence arrays "
                    "(Jananthan, Dibert & Kepner, 2017) — reproduction CLI.")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("figures",
                   help="run all experiments; print paper-vs-measured")

    sub.add_parser("catalog", help="certify the full op-pair catalog")

    p_cert = sub.add_parser("certify", help="certify one op-pair")
    p_cert.add_argument("pair", help="registry name, e.g. plus_times")
    p_cert.add_argument("--seed", type=int, default=0xA55)
    p_cert.add_argument("--samples", type=int, default=400)

    p_music = sub.add_parser("music",
                             help="print a Figure 3/5 product table")
    p_music.add_argument("--pair", default="plus_times")
    p_music.add_argument("--weighted", action="store_true",
                         help="use Figure 4's weighted E1 (Figure 5)")

    p_render = sub.add_parser("render", help="print one regenerated figure")
    p_render.add_argument("figure",
                          choices=["fig1", "fig2", "fig3", "fig4", "fig5",
                                   "criteria", "reverse", "structured"])

    p_build = sub.add_parser(
        "build",
        help="construct an adjacency TSV from a TSV incidence pair "
             "through on-disk shards")
    p_build.add_argument("eout", help="Eout TSV-triple file (edge, vertex, "
                                      "value)")
    p_build.add_argument("ein", help="Ein TSV-triple file")
    p_build.add_argument("-o", "--output", required=True,
                         help="output adjacency TSV-triple file")
    p_build.add_argument("--pair", default="plus_times",
                         help="op-pair registry name (default: plus_times)")
    p_build.add_argument("--shards", type=int, default=4,
                         help="number of edge shards (default: 4)")
    p_build.add_argument("--workers", type=int, default=4,
                         help="worker count (default: 4)")
    p_build.add_argument("--executor", default="thread",
                         choices=["serial", "thread", "process"],
                         help="per-shard execution backend")
    p_build.add_argument("--strategy", default="round_robin",
                         choices=["round_robin", "hash"],
                         help="edge-key → shard assignment")
    p_build.add_argument("--kernel", default="auto",
                         choices=["auto", "generic", "scipy", "sortmerge",
                                  "reduceat", "dense_blocked"],
                         help="multiply kernel")
    p_build.add_argument("--backend", default="auto",
                         choices=["auto", "dict", "numeric"],
                         help="array storage backend per shard (dict pins "
                              "the generic paths; numeric compiles the "
                              "columnar/CSR form at ingest and keeps it "
                              "through the ⊕-merge)")
    p_build.add_argument("--mode", default="sparse",
                         choices=["sparse", "dense"],
                         help="evaluation mode (dense = faithful "
                              "Definition I.3 semantics; required by "
                              "--kernel dense_blocked)")
    p_build.add_argument("--workdir", default=None,
                         help="shard/spill directory, kept after the run; "
                              "an existing shard set there is replaced.  "
                              "Default: a temporary directory")
    p_build.add_argument("--unsafe-ok", action="store_true",
                         help="accept op-pairs that fail the Theorem II.1 "
                              "criteria or have order-sensitive ⊕")
    p_build.add_argument("--quiet", action="store_true",
                         help="suppress the summary report")

    p_explain = sub.add_parser(
        "explain",
        help="print the optimizer's plan for an incidence-to-adjacency "
             "expression (rewrites, licenses, cost estimates)")
    p_explain.add_argument("eout", help="Eout TSV-triple file (edge, "
                                        "vertex, value)")
    p_explain.add_argument("ein", help="Ein TSV-triple file")
    p_explain.add_argument("--pair", default="plus_times",
                           help="op-pair registry name (default: "
                                "plus_times)")
    p_explain.add_argument("--khop", type=int, default=None, metavar="K",
                           help="plan the K-hop power chain A·A·…·A over "
                                "the squared adjacency (shows "
                                "common-subexpression sharing)")
    p_explain.add_argument("--reduce", default=None,
                           choices=["rows", "cols"],
                           help="plan a trailing ⊕-reduction (shows "
                                "reduction-into-matmul fusion)")
    p_explain.add_argument("--budget", type=int, default=None,
                           metavar="BYTES",
                           help="memory budget; fused products whose "
                                "estimated working set exceeds it route "
                                "through the out-of-core shard executor")
    p_explain.add_argument("--no-optimize", action="store_true",
                           help="plan the expression exactly as written "
                                "(no rewrites)")
    p_explain.add_argument("--execute", action="store_true",
                           help="also run the plan and report the result")

    p_serve = sub.add_parser(
        "serve",
        help="serve adjacency queries over HTTP from a TSV file or "
             "shard workdir")
    p_serve.add_argument("--source", required=True,
                         help="adjacency TSV-triple file (src, dst, "
                              "value — e.g. repro build output) or a "
                              "kept shard workdir with a manifest.json")
    p_serve.add_argument("--pair", default=None,
                         help="op-pair registry name (default: a "
                              "manifest source's recorded pair, else "
                              "plus_times)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8631,
                         help="TCP port (default: 8631; 0 = ephemeral)")
    p_serve.add_argument("--cache-size", type=int, default=1024,
                         help="query-cache capacity (0 disables caching)")
    p_serve.add_argument("--unsafe-ok", action="store_true",
                         help="accept op-pairs that fail the Theorem "
                              "II.1 criteria or have order-sensitive ⊕")
    p_serve.add_argument("--verbose", action="store_true",
                         help="log each HTTP request to stderr")
    p_serve.add_argument("--log-events", action="store_true",
                         dest="log_events",
                         help="route the per-request access log onto "
                              "the structured event ring (kind "
                              "http.log) instead of stderr — bounded "
                              "and filterable, so it stays sane under "
                              "generated load")

    p_query = sub.add_parser(
        "query", help="query a running adjacency service over HTTP")
    p_query.add_argument("kind",
                         choices=["neighbors", "degrees", "khop",
                                  "path-lengths", "top-k", "stats"])
    p_query.add_argument("vertex", nargs="?",
                         help="subject vertex (required by neighbors, "
                              "khop, path-lengths)")
    p_query.add_argument("--direction", default=None,
                         choices=["out", "in"],
                         help="edge direction for neighbors/degrees")
    p_query.add_argument("-k", type=int, default=None, dest="k",
                         help="hop count (khop) or result count (top-k)")
    p_query.add_argument("--query-pair", default=None, metavar="PAIR",
                         help="fold khop under this certified op-pair")
    p_query.add_argument("--url", default="http://127.0.0.1:8631",
                         help="server base URL")

    p_trace = sub.add_parser(
        "trace",
        help="run one traced k-hop query against a local source and "
             "print its span tree, or fetch a finished trace by id "
             "from a running server")
    p_trace.add_argument("--source", default=None,
                         help="adjacency TSV-triple file or kept shard "
                              "workdir (as in `repro serve`); required "
                              "unless --id is given")
    p_trace.add_argument("--id", default=None, dest="trace_id",
                         metavar="TRACE_ID",
                         help="fetch this finished trace from a running "
                              "server (GET /trace/<id>) instead of "
                              "running a local query; a miss reports "
                              "the trace ring's retention bounds")
    p_trace.add_argument("--url", default="http://127.0.0.1:8631",
                         help="server base URL for --id")
    p_trace.add_argument("--pair", default=None,
                         help="op-pair registry name (default: the "
                              "source's recorded pair, else plus_times)")
    p_trace.add_argument("--vertex", default=None,
                         help="query source vertex (default: the "
                              "snapshot's first vertex)")
    p_trace.add_argument("-k", type=int, default=2, dest="k",
                         help="hop count of the traced query (default: 2)")
    p_trace.add_argument("--unsafe-ok", action="store_true",
                         help="accept op-pairs that fail the Theorem "
                              "II.1 criteria or have order-sensitive ⊕")
    p_trace.add_argument("--json", action="store_true",
                         help="print the trace as JSON instead of a tree")
    p_trace.add_argument("--list", action="store_true", dest="list_traces",
                         help="print a running server's newest-first "
                              "trace index (GET /trace) instead of "
                              "running or fetching one trace")

    p_profile = sub.add_parser(
        "profile",
        help="sampling profiler: manage a server's session, dump a "
             "local or remote profile, or diff two profiles")
    pr = p_profile.add_subparsers(dest="profile_command", required=True)

    pr_start = pr.add_parser(
        "start", help="start a running server's profile session "
                      "(POST /profile/start)")
    pr_start.add_argument("--url", default="http://127.0.0.1:8631",
                          help="server base URL")
    pr_start.add_argument("--hz", type=float, default=None,
                          help="sampling rate (default: the server's, "
                               "97 Hz)")
    pr_start.add_argument("--memory", action="store_true",
                          help="also run tracemalloc heap-growth "
                               "accounting (slower; off by default)")

    pr_stop = pr.add_parser(
        "stop", help="stop the server's session and print the profile "
                     "(POST /profile/stop)")
    pr_stop.add_argument("--url", default="http://127.0.0.1:8631",
                         help="server base URL")
    pr_stop.add_argument("--flame", default=None, metavar="FILE",
                         help="also fetch the finished profile's HTML "
                              "flamegraph (GET /profile/flame) to FILE")
    pr_stop.add_argument("--json", action="store_true",
                         help="print the full profile dump as JSON")

    pr_dump = pr.add_parser(
        "dump", help="snapshot a live remote session (--url), or "
                     "profile a local k-hop workload over --source")
    pr_dump.add_argument("--url", default=None,
                         help="running server base URL (GET /profile); "
                              "mutually exclusive with --source")
    pr_dump.add_argument("--source", default=None,
                         help="adjacency TSV-triple file or kept shard "
                              "workdir to profile in-process")
    pr_dump.add_argument("--pair", default=None,
                         help="op-pair registry name for --source")
    pr_dump.add_argument("--unsafe-ok", action="store_true",
                         help="accept non-compliant op-pairs for "
                              "--source")
    pr_dump.add_argument("--seconds", type=float, default=2.0,
                         help="how long to drive the local workload "
                              "(default: 2)")
    pr_dump.add_argument("--hz", type=float, default=None,
                         help="sampling rate for --source (default: 97)")
    pr_dump.add_argument("-k", type=int, default=3, dest="k",
                         help="hop count of the driven k-hop queries "
                              "(default: 3)")
    pr_dump.add_argument("--vertex", default=None,
                         help="query source vertex (default: cycle "
                              "over the snapshot's vertices)")
    pr_dump.add_argument("--memory", action="store_true",
                         help="also run tracemalloc heap-growth "
                              "accounting for --source")
    pr_dump.add_argument("-o", "--out", default=None, metavar="FILE",
                         help="write collapsed stacks (Brendan Gregg "
                              "format) to FILE")
    pr_dump.add_argument("--flame", default=None, metavar="FILE",
                         help="write a self-contained HTML flamegraph "
                              "to FILE")
    pr_dump.add_argument("--top", type=int, default=15,
                         help="hottest functions to print (default: 15)")
    pr_dump.add_argument("--json", action="store_true",
                         help="print the full dump as JSON")

    pr_diff = pr.add_parser(
        "diff", help="function-level diff of two profile artifacts, "
                     "most regressed first")
    pr_diff.add_argument("baseline",
                         help="collapsed-stack file, profile JSON, or "
                              "profiled BENCH_*.json")
    pr_diff.add_argument("candidate", help="same formats as baseline")
    pr_diff.add_argument("--top", type=int, default=10,
                         help="rows to print (default: 10)")

    p_events = sub.add_parser(
        "events",
        help="print a running server's structured event log as JSONL")
    p_events.add_argument("--url", default="http://127.0.0.1:8631",
                          help="server base URL")
    p_events.add_argument("--since", type=int, default=None,
                          help="only events with seq > SINCE")
    p_events.add_argument("--kind", default=None,
                          help="filter by event kind: exact "
                               "(loadgen.slo_breach), comma-separated "
                               "alternatives, or a prefix wildcard "
                               "(loadgen.*); known kinds include "
                               "epoch_published, rewrite_refused, "
                               "shard_spill, cache_invalidation, "
                               "bench_run, loadgen.step, "
                               "loadgen.slo_breach, http.log")
    p_events.add_argument("--limit", type=int, default=None,
                          help="keep only the newest LIMIT events")
    p_events.add_argument("--follow", action="store_true",
                          help="poll for new events (seq cursor) until "
                               "interrupted")
    p_events.add_argument("--interval", type=float, default=1.0,
                          help="poll interval seconds for --follow "
                               "(default: 1.0)")

    p_loadgen = sub.add_parser(
        "loadgen",
        help="workload capture, open-loop load generation, and "
             "SLO-gated saturation sweeps")
    lg = p_loadgen.add_subparsers(dest="loadgen_command", required=True)

    def _lg_target(p, require_source=False):
        p.add_argument("--source", default=None,
                       help="adjacency TSV-triple file or kept shard "
                            "workdir to drive in-process"
                            + ("" if not require_source else
                               " (required)"))
        if not require_source:
            p.add_argument("--url", default=None,
                           help="base URL of a running `repro serve` "
                                "to drive over HTTP instead")
        p.add_argument("--pair", default=None,
                       help="op-pair registry name for --source "
                            "(default: the source's recorded pair, "
                            "else plus_times)")
        p.add_argument("--unsafe-ok", action="store_true",
                       help="accept non-compliant op-pairs for "
                            "--source")

    def _lg_schedule(p):
        p.add_argument("--rate", type=float, default=100.0,
                       help="offered arrival rate, requests/second "
                            "(default: 100)")
        p.add_argument("--process", default="poisson",
                       choices=["poisson", "fixed", "recorded"],
                       help="arrival process (recorded = replay the "
                            "workload's captured offsets)")
        p.add_argument("--threads", type=int, default=4,
                       help="injector threads (default: 4)")
        p.add_argument("--seed", type=int, default=0,
                       help="schedule RNG seed (default: 0)")

    lg_rec = lg.add_parser(
        "record",
        help="synthesize a replayable JSONL workload from a query-mix "
             "spec over a source's vertex set")
    _lg_target(lg_rec, require_source=True)
    lg_rec.add_argument("-o", "--output", required=True,
                        help="workload JSONL file to write")
    lg_rec.add_argument("--mix", default=None,
                        help="query mix as KIND=WEIGHT[,KIND=WEIGHT...] "
                             "over neighbors, degrees, khop, "
                             "path_lengths, top_k, stats (default: a "
                             "read-heavy service mix)")
    lg_rec.add_argument("--ops", type=int, default=1000,
                        help="operations to generate (default: 1000)")
    lg_rec.add_argument("--seed", type=int, default=0,
                        help="generator seed — same seed, same "
                             "workload (default: 0)")
    lg_rec.add_argument("--max-k", type=int, default=3, dest="max_k",
                        help="largest khop hop count (default: 3)")

    lg_rep = lg.add_parser(
        "replay",
        help="open-loop replay of a workload file with "
             "coordinated-omission-corrected latency")
    lg_rep.add_argument("workload", help="workload JSONL file "
                                         "(loadgen record output)")
    _lg_target(lg_rep)
    _lg_schedule(lg_rep)
    lg_rep.add_argument("--duration", type=float, default=None,
                        help="seconds of load (rate × duration "
                             "requests, cycling the workload); "
                             "default: one pass over the workload")
    lg_rep.add_argument("--warmup", type=int, default=0,
                        help="leading ops issued closed-loop and "
                             "unmeasured first (absorbs one-time "
                             "planning/cache-fill costs; default: 0)")
    lg_rep.add_argument("--json", action="store_true",
                        help="print the full report as JSON")

    lg_sweep = lg.add_parser(
        "sweep",
        help="step the arrival rate until the SLO is violated; report "
             "max sustainable throughput")
    lg_sweep.add_argument("--workload", default=None,
                          help="workload JSONL file to replay (default: "
                               "synthesize --mix over --source)")
    _lg_target(lg_sweep)
    _lg_schedule(lg_sweep)
    lg_sweep.add_argument("--mix", default=None,
                          help="query mix for the synthesized workload "
                               "when no --workload is given")
    lg_sweep.add_argument("--ops", type=int, default=500,
                          help="synthesized workload size (default: 500)")
    lg_sweep.add_argument("--rates", default=None,
                          help="explicit comma-separated rates to step "
                               "(e.g. 50,100,200,400); default: "
                               "geometric from --rate by --growth")
    lg_sweep.add_argument("--growth", type=float, default=2.0,
                          help="rate multiplier per step (default: 2)")
    lg_sweep.add_argument("--steps", type=int, default=5,
                          help="max steps when growing geometrically "
                               "(default: 5)")
    lg_sweep.add_argument("--duration", type=float, default=2.0,
                          help="seconds per rate step (default: 2)")
    lg_sweep.add_argument("--slo-p99-ms", type=float, default=50.0,
                          dest="slo_p99_ms",
                          help="SLO: corrected p99 bound in ms "
                               "(default: 50)")
    lg_sweep.add_argument("--slo-error-rate", type=float, default=0.01,
                          dest="slo_error_rate",
                          help="SLO: error-rate budget (default: 0.01)")
    lg_sweep.add_argument("--warmup", type=int, default=50,
                          help="unmeasured closed-loop ops before the "
                               "first step, so one-time planning and "
                               "cache-fill costs don't read as "
                               "saturation (default: 50)")
    lg_sweep.add_argument("--out", default=None,
                          help="also write the full sweep report JSON "
                               "here")
    lg_sweep.add_argument("--json", action="store_true",
                          help="print the full report as JSON")
    lg_sweep.add_argument("--profile", action="store_true",
                          help="sample each step with the profiler; "
                               "the breach step keeps its collapsed "
                               "stacks in the report")
    lg_sweep.add_argument("--flame", default=None, metavar="FILE",
                          help="with --profile: write the breach "
                               "step's HTML flamegraph to FILE")

    p_bench = sub.add_parser(
        "bench",
        help="run the versioned benchmark harness, or --compare two "
             "runs with a regression gate")
    p_bench.add_argument("names", nargs="*",
                         help="benchmarks to run (default: the smoke "
                              "set; see --list)")
    p_bench.add_argument("--quick", action="store_true",
                         help="small problem sizes (CI smoke mode)")
    p_bench.add_argument("--outdir", default=None,
                         help="write BENCH_<runid>.json and report.md "
                              "here")
    p_bench.add_argument("--bench-dir", default=None,
                         help="directory holding bench_*.py scripts "
                              "(default: the repo's benchmarks/)")
    p_bench.add_argument("--list", action="store_true", dest="list_only",
                         help="list runnable benchmarks and exit")
    p_bench.add_argument("--profile", action="store_true",
                         help="run under the sampling profiler; the "
                              "run doc gains a per-function sample "
                              "table (and profile.collapsed + "
                              "profile_flame.html with --outdir), and "
                              "--compare on two profiled runs prints "
                              "a function-level diff")
    p_bench.add_argument("--compare", nargs=2, default=None,
                         metavar=("BASELINE", "CANDIDATE"),
                         help="diff two runs (BENCH_*.json files or "
                              "directories holding them) instead of "
                              "running; exits 1 on any regression")
    p_bench.add_argument("--threshold", type=float, default=None,
                         help="relative regression threshold for "
                              "--compare (default: 0.20)")
    p_bench.add_argument("--baseline-refresh", action="store_true",
                         dest="baseline_refresh",
                         help="re-lock the baseline file to a fresh run "
                              "(or --from-run), recording --reason, the "
                              "git sha, and the superseded run id in "
                              "the baseline's manifest")
    p_bench.add_argument("--reason", default=None,
                         help="why the baseline moved (required by "
                              "--baseline-refresh)")
    p_bench.add_argument("--baseline-path", default="BENCH_baseline.json",
                         dest="baseline_path",
                         help="baseline file for --baseline-refresh "
                              "(default: BENCH_baseline.json)")
    p_bench.add_argument("--from-run", default=None, dest="from_run",
                         metavar="RUN",
                         help="with --baseline-refresh: promote this "
                              "existing BENCH_*.json (or a directory "
                              "holding one) instead of running the "
                              "benchmarks again")
    return parser


def _cmd_figures() -> int:
    from repro.experiments.harness import render_report, run_all
    report = run_all()
    print(render_report(report))
    return 0 if report.all_matched else 1


def _cmd_catalog() -> int:
    from repro.core.certify import certify
    from repro.values import exotic  # noqa: F401 — registers pairs
    from repro.values.semiring import get_op_pair, list_op_pairs
    rows = []
    for name in list_op_pairs():
        pair = get_op_pair(name)
        cert = certify(pair, seed=0xA55)
        verdict = "SAFE  " if cert.safe else "UNSAFE"
        expected = pair.expected_safe
        mark = " " if expected is None or expected == cert.safe else "!"
        detail = ""
        if not cert.safe:
            violation = cert.criteria.first_violation()
            if violation is not None:
                detail = f"  ({violation.property_name})"
        rows.append(f"{verdict}{mark} {pair.display:24s} [{name}]{detail}")
    print("\n".join(rows))
    return 0


def _cmd_certify(name: str, seed: int, samples: int) -> int:
    from repro.core.certify import certify
    from repro.values import exotic  # noqa: F401
    from repro.values.semiring import SemiringError, get_op_pair
    try:
        pair = get_op_pair(name)
    except SemiringError as exc:
        print(exc, file=sys.stderr)
        return 2
    cert = certify(pair, seed=seed, samples=samples)
    print(cert.summary())
    if cert.witness is not None:
        from repro.arrays.printing import format_array
        print("\nwitness graph edges:",
              ", ".join(f"{k}: {s}→{t}"
                        for k, s, t in cert.witness.graph.edges()))
        print("Eout:")
        print(format_array(cert.witness.eout))
        print("Ein:")
        print(format_array(cert.witness.ein))
        print("EoutᵀEin (dense):")
        print(format_array(cert.witness.product) or "(all zero)")
    return 0 if cert.safe else 1


def _cmd_music(pair_name: str, weighted: bool) -> int:
    from repro.arrays.printing import format_array
    from repro.core.construction import correlate
    from repro.datasets.music import music_e1, music_e1_weighted, music_e2
    from repro.values.semiring import SemiringError, get_op_pair
    try:
        pair = get_op_pair(pair_name)
    except SemiringError as exc:
        print(exc, file=sys.stderr)
        return 2
    e1 = music_e1_weighted() if weighted else music_e1()
    e2 = music_e2()
    if not pair.is_zero(0):
        e1 = e1.with_zero(pair.zero)
        e2 = e2.with_zero(pair.zero)
    adj = correlate(e1, e2, pair)
    source = "Figure 5 (weighted E1)" if weighted else "Figure 3"
    print(format_array(
        adj, title=f"{source}: E1ᵀ {pair.display} E2", max_col_width=22))
    return 0


def _cmd_render(figure: str) -> int:
    from repro.experiments.figures import all_experiments
    for exp in all_experiments():
        if exp.name == figure:
            print(exp.render())
            return 0
    print(f"unknown figure {figure!r}", file=sys.stderr)  # pragma: no cover
    return 2  # pragma: no cover


def _cmd_build(args) -> int:
    from repro.arrays.io import write_tsv_triples
    from repro.shard import ShardedAdjacencyPlan, ShardError
    from repro.values.semiring import SemiringError, get_op_pair
    try:
        pair = get_op_pair(args.pair)
    except SemiringError as exc:
        print(exc, file=sys.stderr)
        return 2
    try:
        plan = ShardedAdjacencyPlan(
            pair,
            n_shards=args.shards,
            executor=args.executor,
            n_workers=args.workers,
            mode=args.mode,
            kernel=args.kernel,
            backend=args.backend,
            strategy=args.strategy,
            shard_format="tsv",
            workdir=args.workdir,
            keep_workdir=args.workdir is not None,
            overwrite=True,  # pointing --workdir at a dir again is intent
            unsafe_ok=args.unsafe_ok,
        )
    except ShardError as exc:
        # The library hint names the keyword argument; translate to the
        # CLI spelling.
        msg = str(exc).replace("unsafe_ok=True", "--unsafe-ok")
        print(f"refused: {msg}", file=sys.stderr)
        return 1
    try:
        result = plan.run((args.eout, args.ein))
        write_tsv_triples(result.adjacency, args.output)
    except (ValueError, TypeError, OSError) as exc:
        # ValueError covers ShardError/KeyError_/MatmulError/GraphError;
        # TypeError covers algebra failures on malformed TSV values
        # (e.g. a text field where the op-pair expects a number).
        print(f"build failed: {exc}", file=sys.stderr)
        return 1
    if not args.quiet:
        m = result.manifest
        t = result.timings
        print(f"built {args.output}: {result.nnz} stored entries "
              f"({result.adjacency.shape[0]}×{result.adjacency.shape[1]})")
        waived = args.unsafe_ok and (not plan.certification.safe
                                     or plan.order_sensitive)
        print(f"  op-pair   {pair.display} [{pair.name}]"
              + ("  (UNSAFE — guarantees waived)" if waived else ""))
        print(f"  edges     {m.n_edges} across {m.n_shards} shards "
              f"({m.strategy}); per-shard nnz {list(result.shard_nnz)}")
        print(f"  executor  {args.executor} ×{args.workers} workers, "
              f"kernel={args.kernel}, backend={args.backend}")
        if args.workdir is not None:
            print(f"  manifest  {Path(args.workdir) / 'manifest.json'}")
        print("  timings   " + "  ".join(
            f"{k}={v:.3f}s" for k, v in t.items()))
    return 0


def _cmd_explain(args) -> int:
    import time
    from repro.arrays.associative import AssociativeArray
    from repro.arrays.io import iter_tsv_triples
    from repro.expr import lazy, plan
    from repro.values.semiring import SemiringError, get_op_pair
    try:
        pair = get_op_pair(args.pair)
    except SemiringError as exc:
        print(exc, file=sys.stderr)
        return 2
    try:
        eout = AssociativeArray.from_triples(
            iter_tsv_triples(args.eout), zero=pair.zero)
        ein = AssociativeArray.from_triples(
            iter_tsv_triples(args.ein), zero=pair.zero)
    except (OSError, ValueError) as exc:
        print(f"cannot load incidence pair: {exc}", file=sys.stderr)
        return 2
    if eout.row_keys != ein.row_keys:
        edges = eout.row_keys.union(ein.row_keys)
        eout = eout.with_keys(edges)
        ein = ein.with_keys(edges)
    expr = lazy(eout, "Eout").T.matmul(lazy(ein, "Ein"), pair)
    if args.khop is not None:
        if args.khop < 1:
            print("--khop must be >= 1", file=sys.stderr)
            return 2
        # Square the adjacency over the vertex union, then chain hops;
        # CSE shares the squared-adjacency subtree across every hop.
        vertices = eout.col_keys.union(ein.col_keys)
        squared = expr.with_keys(vertices, vertices)
        expr = squared
        for _ in range(args.khop - 1):
            expr = expr.matmul(squared, pair)
    if args.reduce == "rows":
        expr = expr.reduce_rows(pair.add)
    elif args.reduce == "cols":
        expr = expr.reduce_cols(pair.add)
    try:
        the_plan = plan(expr, optimize_plan=not args.no_optimize,
                        memory_budget=args.budget)
    except ValueError as exc:
        print(f"planning failed: {exc}", file=sys.stderr)
        return 1
    print(the_plan.explain())
    if args.execute:
        t0 = time.perf_counter()
        result = the_plan.execute()
        elapsed = time.perf_counter() - t0
        print(f"\nexecuted in {elapsed:.3f}s: "
              f"{result.shape[0]}×{result.shape[1]} array, "
              f"{result.nnz} stored entries ({result.backend} backend)")
    return 0


def load_service(source: str, pair_name: Optional[str] = None, *,
                 cache_size: int = 1024, unsafe_ok: bool = False):
    """Build an :class:`~repro.serve.AdjacencyService` from ``--source``.

    A directory (or a path to a ``manifest.json``) is treated as a kept
    shard workdir and constructed on load; anything else is read as an
    adjacency TSV-triple file.  ``pair_name=None`` means "not chosen":
    a manifest source then uses its recorded op-pair, a TSV source
    defaults to ``plus_times``.  Raises ``ValueError`` subclasses with
    user-facing messages; ``FileNotFoundError`` for a missing source.
    """
    from repro.serve import AdjacencyService
    from repro.values.semiring import get_op_pair
    path = Path(source)
    options = {"cache_size": cache_size, "unsafe_ok": unsafe_ok}
    if path.is_dir() or path.name == "manifest.json":
        # The manifest records its own op-pair; an explicit --pair wins.
        pair = get_op_pair(pair_name) if pair_name is not None else None
        return AdjacencyService.from_manifest(path, pair, **options)
    if not path.exists():
        raise FileNotFoundError(f"no such source: {path}")
    return AdjacencyService.from_tsv(
        path, get_op_pair(pair_name or "plus_times"), **options)


def _cmd_serve(args) -> int:
    from repro.serve import build_server
    from repro.values.semiring import SemiringError
    try:
        service = load_service(
            args.source, args.pair,
            cache_size=args.cache_size, unsafe_ok=args.unsafe_ok)
    except FileNotFoundError as exc:
        print(exc, file=sys.stderr)
        return 2
    except (SemiringError, ValueError) as exc:
        # ServeError / ShardError / KeyError_ are ValueErrors with
        # user-facing messages; the library hint names the keyword
        # argument — translate to the CLI spelling.
        msg = str(exc).replace("unsafe_ok=True", "--unsafe-ok")
        print(f"refused: {msg}", file=sys.stderr)
        return 1
    server = build_server(service, args.host, args.port,
                          quiet=not args.verbose,
                          log_events=args.log_events)
    host, port = server.server_address[:2]
    snap = service.snapshot()
    print(f"serving {args.source} on http://{host}:{port}  "
          f"(epoch {snap.epoch}, {len(snap.vertices)} vertices, "
          f"{snap.nnz} entries, op-pair {service.op_pair.name})")
    print("  GET  /health  /healthz  /stats  /metrics  /trace  /events")
    print("  GET  /query/<kind>?vertex=...&k=...  /profile[/flame]")
    print("  POST /edges   /publish   /profile/start   /profile/stop")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        server.server_close()
    return 0


def _cmd_query(args) -> int:
    import json
    from urllib import error as urlerror
    from urllib import request as urlrequest
    from urllib.parse import urlencode
    kind = args.kind.replace("-", "_")
    if kind == "stats":
        url = f"{args.url.rstrip('/')}/stats"
    else:
        params = {}
        if args.vertex is not None:
            params["vertex"] = args.vertex
        if args.direction is not None:
            params["direction"] = args.direction
        if args.k is not None:
            params["k"] = args.k
        if args.query_pair is not None:
            params["pair"] = args.query_pair
        url = f"{args.url.rstrip('/')}/query/{kind}"
        if params:
            url += "?" + urlencode(params)
    try:
        with urlrequest.urlopen(url, timeout=30) as resp:
            doc = json.loads(resp.read().decode("utf-8"))
    except urlerror.HTTPError as exc:
        try:
            doc = json.loads(exc.read().decode("utf-8"))
            message = doc.get("error", str(exc))
        except Exception:
            message = str(exc)
        print(f"query failed: {message}", file=sys.stderr)
        return 1
    except urlerror.URLError as exc:
        print(f"cannot reach {args.url}: {exc.reason}", file=sys.stderr)
        return 1
    print(json.dumps(doc, indent=2, sort_keys=True))
    return 0


def _fetch_json(url: str, timeout: float = 30.0):
    """``(status, doc)`` for one GET; HTTP errors still parse the JSON
    body (the server's structured errors are the interesting part)."""
    import json
    from urllib import error as urlerror
    from urllib import request as urlrequest
    try:
        with urlrequest.urlopen(url, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read().decode("utf-8"))
    except urlerror.HTTPError as exc:
        try:
            return exc.code, json.loads(exc.read().decode("utf-8"))
        except Exception:
            return exc.code, {"error": str(exc), "status": exc.code}


def _post_json(url: str, payload=None, timeout: float = 30.0):
    """``(status, doc)`` for one JSON POST; structured error bodies
    parse just like :func:`_fetch_json`."""
    import json
    from urllib import error as urlerror
    from urllib import request as urlrequest
    body = json.dumps(payload or {}).encode("utf-8")
    req = urlrequest.Request(
        url, data=body, headers={"Content-Type": "application/json"},
        method="POST")
    try:
        with urlrequest.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read().decode("utf-8"))
    except urlerror.HTTPError as exc:
        try:
            return exc.code, json.loads(exc.read().decode("utf-8"))
        except Exception:
            return exc.code, {"error": str(exc), "status": exc.code}


def _cmd_trace_fetch(args) -> int:
    """``repro trace --id``: one finished trace from a running server."""
    import json
    from urllib import error as urlerror
    url = f"{args.url.rstrip('/')}/trace/{args.trace_id}"
    try:
        status, doc = _fetch_json(url)
    except urlerror.URLError as exc:
        print(f"cannot reach {args.url}: {exc.reason}", file=sys.stderr)
        return 1
    if status != 200:
        print(f"trace lookup failed: {doc.get('error', status)}",
              file=sys.stderr)
        retention = doc.get("retention")
        if isinstance(retention, dict):
            print("  ring retention: "
                  + ", ".join(f"{k}={v}"
                              for k, v in sorted(retention.items())),
                  file=sys.stderr)
        return 1
    print(json.dumps(doc, indent=2, sort_keys=True, default=str))
    return 0


def _cmd_trace_list(args) -> int:
    """``repro trace --list``: a server's newest-first trace index."""
    import json
    from urllib import error as urlerror
    url = f"{args.url.rstrip('/')}/trace"
    try:
        status, doc = _fetch_json(url)
    except urlerror.URLError as exc:
        print(f"cannot reach {args.url}: {exc.reason}", file=sys.stderr)
        return 1
    if status != 200:
        print(f"trace index fetch failed: {doc.get('error', status)}",
              file=sys.stderr)
        return 1
    traces = doc.get("traces", [])
    if args.json:
        print(json.dumps(traces, indent=2, sort_keys=True, default=str))
        return 0
    if not traces:
        print("no finished traces in the ring")
        return 0
    print(f"{len(traces)} finished trace(s), newest first:")
    print("  trace_id    duration_ms  spans  name")
    for row in traces:
        ms = row.get("duration_ms")
        print(f"  {row.get('trace_id', '?'):<10}  "
              f"{ms if ms is not None else float('nan'):>11.3f}  "
              f"{row.get('spans', 0):>5}  {row.get('name', '?')}")
    return 0


def _cmd_trace(args) -> int:
    import json
    from repro.obs.trace import render_trace
    from repro.values.semiring import SemiringError
    if args.list_traces:
        return _cmd_trace_list(args)
    if args.trace_id is not None:
        return _cmd_trace_fetch(args)
    if args.source is None:
        print("--source is required unless --id is given",
              file=sys.stderr)
        return 2
    try:
        service = load_service(
            args.source, args.pair, unsafe_ok=args.unsafe_ok)
    except FileNotFoundError as exc:
        print(exc, file=sys.stderr)
        return 2
    except (SemiringError, ValueError) as exc:
        msg = str(exc).replace("unsafe_ok=True", "--unsafe-ok")
        print(f"refused: {msg}", file=sys.stderr)
        return 1
    snapshot = service.snapshot()
    vertex = args.vertex
    if vertex is None:
        if not len(snapshot.vertices):
            print("source has no vertices to query", file=sys.stderr)
            return 1
        vertex = snapshot.vertices[0]
    elif vertex not in snapshot.vertices:
        for cast in (int, float):
            try:
                if cast(vertex) in snapshot.vertices:
                    vertex = cast(vertex)
                    break
            except ValueError:
                continue
    try:
        frontier = service.khop(vertex, args.k)
    except ValueError as exc:
        print(f"query failed: {exc}", file=sys.stderr)
        return 1
    root = service.tracer.latest()
    if root is None:  # pragma: no cover - query() always traces
        print("no trace was recorded", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(root.to_dict(), indent=2, default=str))
    else:
        print(f"khop(vertex={vertex!r}, k={args.k}): "
              f"{len(frontier)} frontier entries, epoch {service.epoch}")
        print(render_trace(root))
    return 0


def _cmd_events(args) -> int:
    import json
    import time as time_mod
    from urllib import error as urlerror
    from urllib.parse import urlencode
    base = f"{args.url.rstrip('/')}/events"
    cursor = args.since

    def fetch(since):
        params = {}
        if since is not None:
            params["since"] = since
        if args.kind is not None:
            params["kind"] = args.kind
        if args.limit is not None:
            params["limit"] = args.limit
        url = base + ("?" + urlencode(params) if params else "")
        return _fetch_json(url)

    try:
        status, doc = fetch(cursor)
    except urlerror.URLError as exc:
        print(f"cannot reach {args.url}: {exc.reason}", file=sys.stderr)
        return 1
    if status != 200:
        print(f"events fetch failed: {doc.get('error', status)}",
              file=sys.stderr)
        return 1
    for event in doc.get("events", []):
        print(json.dumps(event, sort_keys=True, default=str))
        cursor = event.get("seq", cursor)
    if not args.follow:
        retention = doc.get("retention", {})
        print("retention: "
              + ", ".join(f"{k}={v}"
                          for k, v in sorted(retention.items())),
              file=sys.stderr)
        return 0
    try:
        while True:   # pragma: no cover - interactive tail
            time_mod.sleep(max(args.interval, 0.05))
            try:
                status, doc = fetch(cursor)
            except urlerror.URLError as exc:
                print(f"lost {args.url}: {exc.reason}", file=sys.stderr)
                return 1
            if status != 200:
                print(f"events fetch failed: {doc.get('error', status)}",
                      file=sys.stderr)
                return 1
            for event in doc.get("events", []):
                print(json.dumps(event, sort_keys=True, default=str),
                      flush=True)
                cursor = event.get("seq", cursor)
    except KeyboardInterrupt:   # pragma: no cover - interactive
        return 0


def _load_loadgen_target(args):
    """Resolve ``--source``/``--url`` into a loadgen target.

    Returns ``(target, service_or_None)`` — the service rides along so
    synthesized workloads can draw from its vertex set.
    """
    from repro.obs.loadgen import HTTPTarget, ServiceTarget
    url = getattr(args, "url", None)
    if args.source is not None and url is not None:
        raise ValueError("--source and --url are mutually exclusive")
    if url is not None:
        return HTTPTarget(url), None
    if args.source is None:
        raise ValueError("one of --source or --url is required")
    service = load_service(args.source, args.pair,
                           unsafe_ok=args.unsafe_ok)
    return ServiceTarget(service), service


def _cmd_loadgen(args) -> int:
    import json
    from repro.obs.loadgen import (LoadgenError, SLO, Workload,
                                   render_replay, render_sweep, replay,
                                   sweep, synthesize)
    from repro.values.semiring import SemiringError
    try:
        if args.loadgen_command == "record":
            service = load_service(args.source, args.pair,
                                   unsafe_ok=args.unsafe_ok)
            vertices = list(service.snapshot().vertices)
            workload = synthesize(vertices, mix=args.mix,
                                  n_ops=args.ops, seed=args.seed,
                                  max_k=args.max_k)
            path = workload.save(args.output)
            mix = ", ".join(f"{k}={n}"
                            for k, n in sorted(workload.kinds().items()))
            print(f"wrote {path}: {len(workload)} ops over "
                  f"{len(vertices)} vertices (seed {args.seed})")
            print(f"  mix  {mix}")
            return 0
        if args.loadgen_command == "replay":
            workload = Workload.load(args.workload)
            target, _service = _load_loadgen_target(args)
            report = replay(workload, target, rate=args.rate,
                            process=args.process, threads=args.threads,
                            seed=args.seed, duration=args.duration,
                            warmup=args.warmup)
            if args.json:
                print(json.dumps(report, indent=2, sort_keys=True,
                                 default=str))
            else:
                print(render_replay(report))
            return 0
        if args.loadgen_command == "sweep":
            target, service = _load_loadgen_target(args)
            if args.workload is not None:
                workload = Workload.load(args.workload)
            elif service is not None:
                vertices = list(service.snapshot().vertices)
                workload = synthesize(vertices, mix=args.mix,
                                      n_ops=args.ops, seed=args.seed)
            else:
                print("sweeping --url requires --workload (the vertex "
                      "set of a remote server is not enumerable)",
                      file=sys.stderr)
                return 2
            rates = None
            if args.rates is not None:
                rates = [float(r) for r in args.rates.split(",")
                         if r.strip()]
            doc = sweep(workload, target, rates=rates,
                        start_rate=args.rate, growth=args.growth,
                        max_steps=args.steps, duration=args.duration,
                        slo=SLO(p99_ms=args.slo_p99_ms,
                                max_error_rate=args.slo_error_rate),
                        process=args.process, threads=args.threads,
                        seed=args.seed, warmup=args.warmup,
                        profile=args.profile)
            breach_profile = (doc.get("breach") or {}).get("profile")
            if args.flame is not None:
                if breach_profile is None:
                    print("--flame: no breach profile captured (sweep "
                          "never saturated, or --profile not given)",
                          file=sys.stderr)
                else:
                    from repro.obs.profile import (parse_collapsed,
                                                   render_flamegraph_html)
                    stacks = parse_collapsed(breach_profile["collapsed"])
                    Path(args.flame).write_text(
                        render_flamegraph_html(
                            stacks,
                            title=f"sweep breach @ "
                                  f"{doc['breach']['rate']:g} req/s",
                            meta={"hz": breach_profile["hz"],
                                  "overhead":
                                  f"{breach_profile['overhead_ratio']:.2%}"}),
                        encoding="utf-8")
            if args.out is not None:
                Path(args.out).write_text(
                    json.dumps(doc, indent=2, sort_keys=True,
                               default=str) + "\n", encoding="utf-8")
            if args.json:
                print(json.dumps(doc, indent=2, sort_keys=True,
                                 default=str))
            else:
                print(render_sweep(doc))
                if args.out is not None:
                    print(f"  full report: {args.out}")
                if args.flame is not None and breach_profile is not None:
                    print(f"  breach flamegraph: {args.flame}")
            return 0
        raise AssertionError("unreachable")  # pragma: no cover
    except FileNotFoundError as exc:
        print(exc, file=sys.stderr)
        return 2
    except LoadgenError as exc:
        print(f"loadgen: {exc}", file=sys.stderr)
        return 2
    except (SemiringError, ValueError) as exc:
        msg = str(exc).replace("unsafe_ok=True", "--unsafe-ok")
        print(f"refused: {msg}", file=sys.stderr)
        return 1


def _print_profile_summary(doc, top: int = 15) -> None:
    """The human-readable core of a profile dump: identity line,
    honesty line, hottest functions, per-span CPU."""
    print(f"profile {doc.get('profile_id', '?')}: "
          f"{doc.get('samples', 0)} samples @ {doc.get('hz', '?')} Hz "
          f"over {doc.get('duration_seconds', 0.0):.2f}s "
          f"({doc.get('distinct_stacks', 0)} distinct stacks, "
          f"{doc.get('threads_seen', 0)} thread(s))")
    print(f"  sampler overhead: {float(doc.get('overhead_ratio', 0.0)):.2%} "
          "of wall time (self-measured)")
    rows = doc.get("top_functions", [])[:top]
    if rows:
        print("  hottest functions (self%  total%  function):")
        for row in rows:
            print(f"    {row['self_pct']:>6.2f}  {row['total_pct']:>6.2f}"
                  f"  {row['function']}")
    span_cpu = doc.get("span_cpu", [])
    if span_cpu:
        print("  sampled CPU per finished span (newest last):")
        for entry in span_cpu[-10:]:
            print(f"    {entry['name']}  {entry['cpu_ms']:.1f} ms "
                  f"({entry['cpu_samples']} samples)  "
                  f"trace {entry['trace_id']}")
    memory = doc.get("memory")
    if memory and memory.get("enabled"):
        print(f"  heap: current {memory.get('current_bytes', 0)} B, "
              f"peak {memory.get('peak_bytes', 0)} B, "
              f"{len(memory.get('deltas', []))} labelled delta(s)")
        for delta in memory.get("deltas", [])[-5:]:
            print(f"    {delta['label']}: {delta['grew_bytes']:+d} B")


def _cmd_profile_dump_local(args) -> int:
    """Profile a local k-hop workload: the in-process spelling of
    ``repro profile dump`` (no server needed)."""
    import json
    from repro.obs.profile import start_profile, stop_profile
    from repro.values.semiring import SemiringError
    try:
        # cache_size=0: repeated queries must exercise the kernels, not
        # the LRU — a cached dump would profile dictionary lookups.
        service = load_service(args.source, args.pair, cache_size=0,
                               unsafe_ok=args.unsafe_ok)
    except FileNotFoundError as exc:
        print(exc, file=sys.stderr)
        return 2
    except (SemiringError, ValueError) as exc:
        msg = str(exc).replace("unsafe_ok=True", "--unsafe-ok")
        print(f"refused: {msg}", file=sys.stderr)
        return 1
    vertices = list(service.snapshot().vertices)
    if not vertices:
        print("source has no vertices to query", file=sys.stderr)
        return 1
    chosen = [args.vertex] if args.vertex is not None else vertices
    import time as time_mod
    session = start_profile(hz=args.hz or 97.0, memory=args.memory)
    queries = 0
    try:
        deadline = time_mod.perf_counter() + max(args.seconds, 0.1)
        while time_mod.perf_counter() < deadline:
            service.khop(chosen[queries % len(chosen)], args.k)
            queries += 1
    finally:
        profile = stop_profile()
    doc = profile.to_dict(top=max(args.top, 1))
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True, default=str))
    else:
        print(f"drove {queries} khop(k={args.k}) queries over "
              f"{len(chosen)} vertex(es), uncached")
        _print_profile_summary(doc, top=args.top)
    if args.out is not None:
        Path(args.out).write_text(profile.collapsed(), encoding="utf-8")
        print(f"wrote collapsed stacks: {args.out}")
    if args.flame is not None:
        Path(args.flame).write_text(profile.flamegraph_html(),
                                    encoding="utf-8")
        print(f"wrote flamegraph: {args.flame}")
    return 0


def _cmd_profile(args) -> int:
    import json
    from urllib import error as urlerror
    from repro.obs.profile import (ProfileError, diff_function_tables,
                                   load_profile_functions,
                                   render_profile_diff)
    if args.profile_command == "diff":
        try:
            baseline = load_profile_functions(args.baseline)
            candidate = load_profile_functions(args.candidate)
        except ProfileError as exc:
            print(exc, file=sys.stderr)
            return 2
        rows = diff_function_tables(baseline, candidate,
                                    top=max(args.top, 1))
        print(f"baseline  {args.baseline}")
        print(f"candidate {args.candidate}")
        print(render_profile_diff(rows))
        return 0
    base = args.url.rstrip("/") if args.url else None
    try:
        if args.profile_command == "start":
            payload = {"memory": args.memory}
            if args.hz is not None:
                payload["hz"] = args.hz
            status, doc = _post_json(f"{base}/profile/start", payload)
            if status != 200:
                print(f"profile start failed: {doc.get('error', status)}",
                      file=sys.stderr)
                return 1
            print(f"profiling started: session {doc.get('profile_id')} "
                  f"@ {doc.get('hz')} Hz"
                  + (" with memory accounting" if doc.get("memory")
                     else ""))
            return 0
        if args.profile_command == "stop":
            status, doc = _post_json(f"{base}/profile/stop")
            if status != 200:
                print(f"profile stop failed: {doc.get('error', status)}",
                      file=sys.stderr)
                return 1
            if args.json:
                print(json.dumps(doc, indent=2, sort_keys=True,
                                 default=str))
            else:
                _print_profile_summary(doc)
            if args.flame is not None:
                from urllib import request as urlrequest
                with urlrequest.urlopen(f"{base}/profile/flame",
                                        timeout=30) as resp:
                    Path(args.flame).write_bytes(resp.read())
                print(f"wrote flamegraph: {args.flame}")
            return 0
        if args.profile_command == "dump":
            if args.url is not None and args.source is not None:
                print("--url and --source are mutually exclusive",
                      file=sys.stderr)
                return 2
            if args.url is None:
                if args.source is None:
                    print("one of --url or --source is required",
                          file=sys.stderr)
                    return 2
                return _cmd_profile_dump_local(args)
            url = f"{base}/profile"
            if args.out is not None:
                url += "?stacks=1"
            status, doc = _fetch_json(url)
            if status != 200:
                print(f"profile dump failed: {doc.get('error', status)}",
                      file=sys.stderr)
                return 1
            if args.json:
                print(json.dumps(doc, indent=2, sort_keys=True,
                                 default=str))
            else:
                _print_profile_summary(doc, top=args.top)
            if args.out is not None:
                stacks = doc.get("stacks", {})
                text = "\n".join(f"{k} {v}" for k, v in sorted(
                    stacks.items(), key=lambda kv: -kv[1]))
                Path(args.out).write_text(text + ("\n" if text else ""),
                                          encoding="utf-8")
                print(f"wrote collapsed stacks: {args.out}")
            if args.flame is not None:
                from urllib import request as urlrequest
                with urlrequest.urlopen(f"{base}/profile/flame",
                                        timeout=30) as resp:
                    Path(args.flame).write_bytes(resp.read())
                print(f"wrote flamegraph: {args.flame}")
            return 0
    except urlerror.URLError as exc:
        print(f"cannot reach {args.url}: {exc.reason}", file=sys.stderr)
        return 1
    raise AssertionError("unreachable")  # pragma: no cover


def _cmd_bench(args) -> int:
    from repro.obs.bench import (
        BenchError,
        DEFAULT_THRESHOLD,
        compare,
        describe_profile_diff,
        describe_with_exemplars,
        discover_benchmarks,
        load_run,
        refresh_baseline,
        render_markdown,
        run_benchmarks,
    )
    if args.list_only:
        for name in discover_benchmarks(args.bench_dir):
            print(name)
        return 0
    if args.baseline_refresh:
        if args.reason is None:
            print("--baseline-refresh requires --reason (the manifest "
                  "records why the bar moved)", file=sys.stderr)
            return 2
        try:
            if args.from_run is not None:
                run = load_run(args.from_run)
            else:
                run = run_benchmarks(args.names or None, quick=args.quick,
                                     outdir=args.outdir,
                                     bench_dir=args.bench_dir,
                                     progress=True, profile=args.profile)
            doc = refresh_baseline(run, args.baseline_path,
                                   reason=args.reason)
        except BenchError as exc:
            print(exc, file=sys.stderr)
            return 2
        refresh = doc["manifest"]["baseline_refresh"]
        print(f"baseline {args.baseline_path} re-locked to run "
              f"{doc.get('run_id')}")
        print(f"  reason           {refresh['reason']}")
        print(f"  git sha          {refresh['git_sha'] or 'unknown'}")
        print(f"  superseded run   "
              f"{refresh['previous_run_id'] or '(none)'}")
        return 0
    if args.reason is not None or args.from_run is not None:
        print("--reason/--from-run only apply with --baseline-refresh",
              file=sys.stderr)
        return 2
    if args.compare is not None:
        threshold = args.threshold if args.threshold is not None \
            else DEFAULT_THRESHOLD
        try:
            baseline = load_run(args.compare[0])
            candidate = load_run(args.compare[1])
            result = compare(baseline, candidate, threshold=threshold)
        except BenchError as exc:
            print(exc, file=sys.stderr)
            return 2
        print(describe_with_exemplars(result, candidate))
        profile_diff = describe_profile_diff(baseline, candidate)
        if profile_diff is not None:
            print()
            print(profile_diff)
        return 0 if result.ok else 1
    if args.threshold is not None:
        print("--threshold only applies with --compare", file=sys.stderr)
        return 2
    try:
        doc = run_benchmarks(args.names or None, quick=args.quick,
                             outdir=args.outdir,
                             bench_dir=args.bench_dir, progress=True,
                             profile=args.profile)
    except BenchError as exc:
        print(exc, file=sys.stderr)
        return 2
    print(render_markdown(doc))
    if "profile" in doc:
        p = doc["profile"]
        print(f"profiled: {p['samples']} samples @ {p['hz']:g} Hz, "
              f"overhead {p['overhead_ratio']:.2%}")
        for row in p.get("top_functions", [])[:5]:
            print(f"  {row['self_pct']:>6.2f}%  {row['function']}")
    if "artifacts" in doc:
        print(f"wrote {doc['artifacts']['json']} and "
              f"{doc['artifacts']['markdown']}")
        if "flamegraph" in doc["artifacts"]:
            print(f"wrote {doc['artifacts']['collapsed']} and "
                  f"{doc['artifacts']['flamegraph']}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "figures":
        return _cmd_figures()
    if args.command == "catalog":
        return _cmd_catalog()
    if args.command == "certify":
        return _cmd_certify(args.pair, args.seed, args.samples)
    if args.command == "music":
        return _cmd_music(args.pair, args.weighted)
    if args.command == "render":
        return _cmd_render(args.figure)
    if args.command == "build":
        return _cmd_build(args)
    if args.command == "explain":
        return _cmd_explain(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "query":
        return _cmd_query(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "events":
        return _cmd_events(args)
    if args.command == "loadgen":
        return _cmd_loadgen(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "bench":
        return _cmd_bench(args)
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Matrix powers and closures of adjacency arrays over op-pairs.

The classical payoff of the adjacency representation: powers of ``A``
count/weigh k-hop paths, and iterated squaring gives reachability and
all-pairs path problems — with the *same* code specialised by the op-pair:

* ``+.×`` power: number (or total weight) of length-k walks;
* ``min.+`` closure: all-pairs shortest paths;
* ``max.min`` closure: all-pairs widest (bottleneck) paths;
* ``∨.∧`` closure: transitive closure / reachability.

All functions require a square array (shared vertex key set) and fold in
key order like everything else in the library.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.arrays.associative import AssociativeArray
from repro.arrays.elementwise import elementwise_apply
from repro.arrays.matmul import multiply
from repro.graphs.digraph import GraphError
from repro.values.semiring import OpPair

__all__ = [
    "matrix_power",
    "walk_counts",
    "closure",
    "all_pairs_shortest_paths",
    "all_pairs_widest_paths",
    "transitive_closure_pattern",
]


def _require_square(adj: AssociativeArray) -> None:
    if adj.row_keys != adj.col_keys:
        raise GraphError(
            "square adjacency array required; re-embed with with_keys() "
            "over the vertex union first")


def matrix_power(adj: AssociativeArray, exponent: int, op_pair: OpPair,
                 *, kernel: str = "auto") -> AssociativeArray:
    """``A^k`` over ``⊕.⊗`` (left-associated; ``k ≥ 1``)."""
    _require_square(adj)
    if exponent < 1:
        raise ValueError("exponent must be >= 1")
    out = adj
    for _ in range(exponent - 1):
        out = multiply(out, adj, op_pair, kernel=kernel)
    return out


def walk_counts(adj: AssociativeArray, length: int,
                op_pair: Optional[OpPair] = None) -> AssociativeArray:
    """Entry ``(u, v)`` = number (weight) of length-``length`` walks
    ``u → v``; ``+.×`` by default."""
    if op_pair is None:
        from repro.values.semiring import get_op_pair
        op_pair = get_op_pair("plus_times")
    return matrix_power(adj, length, op_pair)


def _with_diagonal(adj: AssociativeArray, value: Any) -> AssociativeArray:
    """``A`` with ``value`` ⊕-merged onto the diagonal (for closures the
    diagonal seeds "the empty path")."""
    data = adj.to_dict()
    for v in adj.row_keys:
        data[(v, v)] = value
    return AssociativeArray(data, row_keys=adj.row_keys,
                            col_keys=adj.col_keys, zero=adj.zero)


def closure(adj: AssociativeArray, op_pair: OpPair,
            *, max_iterations: Optional[int] = None,
            kernel: str = "auto") -> AssociativeArray:
    """The reflexive closure ``A* = I ⊕ A ⊕ A² ⊕ ...`` by repeated
    squaring of ``(I ⊕ A)``, iterated to fixpoint.

    Termination requires the op-pair to be idempotent-ish in practice
    (``min``/``max``/``∨`` style ``⊕``); for ``+.×`` on graphs with
    cycles the series diverges and ``max_iterations`` (default
    ``⌈log₂ |V|⌉ + 1``) bounds the loop — results then cover walks up to
    that length, documented rather than hidden.

    The diagonal is seeded with the ⊗-identity (the weight of the empty
    path).
    """
    _require_square(adj)
    n = len(adj.row_keys)
    if n == 0:
        return adj
    limit = max_iterations
    if limit is None:
        limit = max(1, (n - 1).bit_length() + 1)
    current = _with_diagonal(adj, op_pair.one)
    for _ in range(limit):
        nxt = multiply(current, current, op_pair, kernel=kernel)
        # ⊕-merge with the previous iterate so entries only improve.
        merged = elementwise_apply(nxt.with_keys(
            row_keys=current.row_keys, col_keys=current.col_keys),
            current, op_pair.add, zero=op_pair.zero)
        if merged == current:
            return merged
        current = merged
    return current


def all_pairs_shortest_paths(adj: AssociativeArray) -> AssociativeArray:
    """All-pairs shortest path lengths via the ``min.+`` closure.

    ``adj`` holds non-negative edge weights with zero ``+∞``; the result's
    diagonal is 0 (the empty path).
    """
    from repro.values.semiring import get_op_pair
    return closure(adj, get_op_pair("min_plus"))


def all_pairs_widest_paths(adj: AssociativeArray) -> AssociativeArray:
    """All-pairs maximum-bottleneck widths via the ``max.min`` closure.

    The diagonal seeds with ``+∞`` (the ⊗-identity: an empty path has
    unbounded width).
    """
    from repro.values.semiring import get_op_pair
    return closure(adj, get_op_pair("max_min"))


def transitive_closure_pattern(adj: AssociativeArray) -> frozenset:
    """Reachability pairs ``(u, v)`` with a path of length ≥ 0 — the
    pattern of the ``∨.∧`` closure, computed directly on sets."""
    _require_square(adj)
    succ: Dict[Any, set] = {v: {v} for v in adj.row_keys}
    for (r, c) in adj.nonzero_pattern():
        succ[r].add(c)
    changed = True
    while changed:
        changed = False
        for u in succ:
            new = set()
            for w in succ[u]:
                new |= succ[w]
            if not new <= succ[u]:
                succ[u] |= new
                changed = True
    return frozenset((u, v) for u, reach in succ.items() for v in reach)

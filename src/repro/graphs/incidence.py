"""Incidence arrays of a graph (Definition I.4) and their validation.

``Eout : K × Kout → V`` is a *source* incidence array when
``Eout(k, a) ≠ 0`` iff edge ``k`` is directed outward from vertex ``a``;
``Ein : K × Kin → V`` is a *target* incidence array when
``Ein(k, b) ≠ 0`` iff edge ``k`` is directed into ``b``.

For an ordinary directed multigraph each edge has exactly one source and
one target, so each row of ``Eout``/``Ein`` carries exactly one stored
entry.  The *values* of those entries are unconstrained beyond being
nonzero — that freedom (edge weights, labels, sets) is what the different
``⊕.⊗`` products of Section IV exploit.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional, Tuple, Union

from repro.arrays.associative import AssociativeArray
from repro.graphs.digraph import EdgeKeyedDigraph, GraphError

__all__ = [
    "incidence_arrays",
    "graph_from_incidence",
    "is_source_incidence_of",
    "is_target_incidence_of",
]

ValueSpec = Union[None, Any, Mapping[Any, Any], Callable[[Any, Any], Any]]


def _resolve_value(spec: ValueSpec, edge: Any, vertex: Any, one: Any) -> Any:
    """Evaluate a value specification for incidence entry ``(edge, vertex)``.

    ``None`` → the op-pair one; a mapping → per-edge values; a callable →
    ``spec(edge, vertex)``; anything else → that constant.
    """
    if spec is None:
        return one
    if callable(spec):
        return spec(edge, vertex)
    if isinstance(spec, Mapping):
        return spec.get(edge, one)
    return spec


def incidence_arrays(
    graph: EdgeKeyedDigraph,
    *,
    zero: Any = 0,
    one: Any = 1,
    out_values: ValueSpec = None,
    in_values: ValueSpec = None,
) -> Tuple[AssociativeArray, AssociativeArray]:
    """Build ``(Eout, Ein)`` for ``graph``.

    Parameters
    ----------
    zero:
        The arrays' zero element (match the op-pair you will multiply
        under, or reinterpret later with
        :meth:`~repro.arrays.associative.AssociativeArray.with_zero`).
    one:
        Default stored value (the paper's "usually 1").
    out_values, in_values:
        Optional weights: a constant, a ``{edge_key: value}`` mapping, or
        a callable ``(edge_key, vertex) → value``.  Values equal to
        ``zero`` are rejected — a zero incidence entry would erase the
        edge (Definition I.4's "if and only if").

    Both arrays share the full edge set ``K`` as row keys.
    """
    k = graph.edge_keys
    kout = graph.out_vertices
    kin = graph.in_vertices
    out_data: Dict[Tuple[Any, Any], Any] = {}
    in_data: Dict[Tuple[Any, Any], Any] = {}
    for key, src, dst in graph.edges():
        ov = _resolve_value(out_values, key, src, one)
        iv = _resolve_value(in_values, key, dst, one)
        if ov == zero:
            raise GraphError(
                f"out-value for edge {key!r} equals the zero {zero!r}")
        if iv == zero:
            raise GraphError(
                f"in-value for edge {key!r} equals the zero {zero!r}")
        out_data[(key, src)] = ov
        in_data[(key, dst)] = iv
    eout = AssociativeArray(out_data, row_keys=k, col_keys=kout, zero=zero)
    ein = AssociativeArray(in_data, row_keys=k, col_keys=kin, zero=zero)
    return eout, ein


def graph_from_incidence(
    eout: AssociativeArray,
    ein: AssociativeArray,
) -> EdgeKeyedDigraph:
    """Recover the directed multigraph from a pair of incidence arrays.

    Requires each edge row to hold exactly one stored entry in each array
    (ordinary directed edges).  Rows with zero entries in both arrays are
    ignored; a row stored in only one array, or with several entries
    (a hyperedge), raises :class:`GraphError` — such pairs do not describe
    a directed multigraph, though the adjacency *construction* still
    accepts them (see :func:`repro.core.construction.adjacency_array`).
    """
    if eout.row_keys != ein.row_keys:
        raise GraphError("Eout and Ein must share the edge key set K")
    out_rows: Dict[Any, list] = {}
    in_rows: Dict[Any, list] = {}
    for (k, a), _v in eout.to_dict().items():
        out_rows.setdefault(k, []).append(a)
    for (k, b), _v in ein.to_dict().items():
        in_rows.setdefault(k, []).append(b)
    g = EdgeKeyedDigraph()
    for k in eout.row_keys:
        sources = out_rows.get(k, [])
        targets = in_rows.get(k, [])
        if not sources and not targets:
            continue
        if len(sources) != 1 or len(targets) != 1:
            raise GraphError(
                f"edge {k!r} has {len(sources)} source(s) and "
                f"{len(targets)} target(s); not an ordinary directed edge")
        g.add_edge(k, sources[0], targets[0])
    return g


def is_source_incidence_of(
    eout: AssociativeArray,
    graph: EdgeKeyedDigraph,
) -> bool:
    """Definition I.4 check: ``Eout(k, a) ≠ 0  ⇔  k leaves a``.

    Key sets must match the graph's (rows = ``K``, columns = ``Kout``).
    """
    if eout.row_keys != graph.edge_keys:
        return False
    if eout.col_keys != graph.out_vertices:
        return False
    expected = {(k, s) for k, s, _t in graph.edges()}
    return eout.nonzero_pattern() == frozenset(expected)


def is_target_incidence_of(
    ein: AssociativeArray,
    graph: EdgeKeyedDigraph,
) -> bool:
    """Definition I.4 check: ``Ein(k, b) ≠ 0  ⇔  k enters b``."""
    if ein.row_keys != graph.edge_keys:
        return False
    if ein.col_keys != graph.in_vertices:
        return False
    expected = {(k, t) for k, _s, t in graph.edges()}
    return ein.nonzero_pattern() == frozenset(expected)

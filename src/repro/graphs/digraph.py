"""Edge-keyed directed multigraphs.

The paper's Definition I.4 treats edges as *keys*: the incidence arrays are
indexed ``K × Kout`` and ``K × Kin`` where ``K`` is the edge set.  So the
graph model here names every edge explicitly, and permits the two features
the Theorem II.1 proofs depend on:

* **parallel edges** — Lemma II.2's witness has two edges from ``a`` to
  ``b``;
* **self-loops** — Lemmas II.3 and II.4 use them.

Following the paper, ``Kout`` is the set of vertices that are sources of at
least one edge, ``Kin`` the set of targets, and the vertex set is their
union.  An isolated vertex cannot exist in this model (it would appear in
neither incidence array), matching the paper's assumption.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.arrays.keys import KeySet

__all__ = ["GraphError", "EdgeKeyedDigraph"]


class GraphError(ValueError):
    """Raised for malformed graphs (duplicate edge keys, unknown edges)."""


class EdgeKeyedDigraph:
    """A directed multigraph whose edges carry explicit, unique keys.

    Parameters
    ----------
    edges:
        Iterable of ``(edge_key, source, target)`` triples.  Edge keys must
        be unique and totally ordered (they become incidence-array rows);
        vertices must be totally ordered (they become columns).
    """

    __slots__ = ("_edges",)

    def __init__(self, edges: Iterable[Tuple[Any, Any, Any]] = ()) -> None:
        self._edges: Dict[Any, Tuple[Any, Any]] = {}
        for key, src, dst in edges:
            self.add_edge(key, src, dst)

    # -- construction ---------------------------------------------------------
    def add_edge(self, key: Any, src: Any, dst: Any) -> None:
        """Add edge ``key`` from ``src`` to ``dst``; keys are unique."""
        if key in self._edges:
            raise GraphError(f"duplicate edge key {key!r}")
        self._edges[key] = (src, dst)

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[Any, Any]],
                   *, prefix: str = "e") -> "EdgeKeyedDigraph":
        """Build from ``(source, target)`` pairs with generated edge keys
        ``e000, e001, ...`` in input order."""
        pairs = list(pairs)
        width = max(3, len(str(max(len(pairs) - 1, 0))))
        return cls((f"{prefix}{i:0{width}d}", s, t)
                   for i, (s, t) in enumerate(pairs))

    # -- key sets (Definition I.4 naming) --------------------------------------
    @property
    def edge_keys(self) -> KeySet:
        """``K``: the edge set, totally ordered."""
        return KeySet(self._edges)

    @property
    def out_vertices(self) -> KeySet:
        """``Kout``: vertices that are the source of at least one edge."""
        return KeySet({s for (s, _t) in self._edges.values()})

    @property
    def in_vertices(self) -> KeySet:
        """``Kin``: vertices that are the target of at least one edge."""
        return KeySet({t for (_s, t) in self._edges.values()})

    @property
    def vertices(self) -> KeySet:
        """``Kout ∪ Kin``: the graph's vertex set."""
        return self.out_vertices.union(self.in_vertices)

    # -- queries ----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._edges)

    @property
    def num_edges(self) -> int:
        """Number of edges (counting parallels)."""
        return len(self._edges)

    @property
    def num_vertices(self) -> int:
        """Number of distinct vertices."""
        return len(self.vertices)

    def endpoints(self, key: Any) -> Tuple[Any, Any]:
        """``(source, target)`` of edge ``key``."""
        try:
            return self._edges[key]
        except KeyError:
            raise GraphError(f"unknown edge key {key!r}") from None

    def edges(self) -> Iterator[Tuple[Any, Any, Any]]:
        """Edges as ``(key, source, target)`` in edge-key order."""
        for k in self.edge_keys:
            s, t = self._edges[k]
            yield k, s, t

    def edge_pairs(self) -> Iterator[Tuple[Any, Any]]:
        """``(source, target)`` pairs in edge-key order (with multiplicity)."""
        for _k, s, t in self.edges():
            yield s, t

    def edges_between(self, src: Any, dst: Any) -> List[Any]:
        """All edge keys from ``src`` to ``dst`` (parallel edges), ordered."""
        return [k for k, s, t in self.edges() if s == src and t == dst]

    def has_edge_between(self, src: Any, dst: Any) -> bool:
        """Whether at least one edge runs ``src → dst``."""
        return any(s == src and t == dst for s, t in self._edges.values())

    def adjacency_pairs(self) -> frozenset:
        """The set of ``(source, target)`` pairs with at least one edge.

        This is exactly the nonzero pattern Definition I.5 demands of any
        adjacency array of the graph.
        """
        return frozenset(self._edges.values())

    def out_degree(self, vertex: Any) -> int:
        """Number of edges with source ``vertex``."""
        return sum(1 for s, _t in self._edges.values() if s == vertex)

    def in_degree(self, vertex: Any) -> int:
        """Number of edges with target ``vertex``."""
        return sum(1 for _s, t in self._edges.values() if t == vertex)

    def self_loops(self) -> List[Any]:
        """Edge keys whose source equals their target, ordered."""
        return [k for k, s, t in self.edges() if s == t]

    def has_parallel_edges(self) -> bool:
        """Whether some ordered vertex pair carries more than one edge."""
        return len(self.adjacency_pairs()) < len(self._edges)

    # -- transforms ---------------------------------------------------------------
    def reverse(self) -> "EdgeKeyedDigraph":
        """The reverse graph Ḡ: same keys and vertices, arrows flipped.

        Corollary III.1: ``EinᵀEout`` is an adjacency array of this graph.
        """
        return EdgeKeyedDigraph((k, t, s) for k, s, t in self.edges())

    def subgraph_by_edges(self, keys: Iterable[Any]) -> "EdgeKeyedDigraph":
        """The multigraph on a subset of edge keys."""
        keys = set(keys)
        return EdgeKeyedDigraph((k, s, t) for k, s, t in self.edges()
                                if k in keys)

    # -- comparison ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EdgeKeyedDigraph):
            return NotImplemented
        return self._edges == other._edges

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("EdgeKeyedDigraph is unhashable")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"EdgeKeyedDigraph(|K|={self.num_edges}, "
                f"|Kout ∪ Kin|={self.num_vertices})")

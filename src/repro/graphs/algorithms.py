"""Graph algorithms over adjacency arrays and op-pairs.

The reason adjacency arrays matter — the paper's opening sentence — is that
they "can be processed with a variety of algorithms".  This module provides
the classic semiring formulations, consuming the
:class:`~repro.arrays.associative.AssociativeArray` adjacency arrays this
library constructs:

* BFS levels via repeated ``∨.∧`` vector-matrix products;
* single-source shortest paths via ``min.+`` relaxation (Bellman–Ford);
* widest ("maximum bottleneck") paths via ``max.min``;
* weakly connected components;
* triangle counting on the undirected pattern;
* degree arrays.

Vectors are represented as plain ``{vertex: value}`` dicts with zeros
elided, matching the sparse-array philosophy.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Optional

import numpy as np

from repro.arrays.associative import AssociativeArray
from repro.graphs.digraph import GraphError

__all__ = [
    "semiring_vecmat",
    "bfs_levels",
    "shortest_path_lengths",
    "widest_path_widths",
    "weakly_connected_components",
    "triangle_count",
    "out_degrees",
    "in_degrees",
]


def _square_vertex_array(adj: AssociativeArray) -> None:
    if adj.row_keys != adj.col_keys:
        raise GraphError(
            "algorithm requires a square adjacency array (row and column "
            "key sets equal); re-embed with with_keys() over the vertex "
            "union first")


def semiring_vecmat(
    vector: Dict[Any, Any],
    adj: AssociativeArray,
    op_pair,
) -> Dict[Any, Any]:
    """``y = x ⊕.⊗ A``: sparse vector–matrix product over an op-pair.

    ``y(j) = ⊕_i x(i) ⊗ A(i, j)`` folded in row-key order; entries equal
    to the op-pair's zero are elided.

    For ufunc op-pairs over a numeric-backed adjacency the relaxation
    is fully vectorised (:func:`_vecmat_vectorized`): one gather of the
    frontier values through the cached CSC view, one ``⊗`` ufunc call,
    and a ``⊕`` group-fold with ``ufunc.reduceat`` — the dense-frontier
    hot path of the serve k-hop / path-length queries.  Everything else
    (exotic value sets, ufunc-less ops, tiny dict-backed arrays) takes
    the per-edge reference loop below.
    """
    fast = _vecmat_vectorized(vector, adj, op_pair)
    if fast is not None:
        return fast
    terms: Dict[Any, list] = {}
    row_order = {k: i for i, k in enumerate(adj.row_keys)}
    items = sorted(((i, v) for i, v in vector.items() if i in row_order),
                   key=lambda iv: row_order[iv[0]])
    cols_of: Dict[Any, list] = {}
    for (r, c), av in adj.to_dict().items():
        cols_of.setdefault(r, []).append((c, av))
    for i, xv in items:
        for c, av in cols_of.get(i, ()):
            terms.setdefault(c, []).append(op_pair.multiply(xv, av))
    out = {}
    for c, ts in terms.items():
        val = op_pair.fold_add(ts)
        if not op_pair.is_zero(val):
            out[c] = val
    return out


def _vecmat_vectorized(
    vector: Dict[Any, Any],
    adj: AssociativeArray,
    op_pair,
) -> Optional[Dict[Any, Any]]:
    """Vectorised ``x ⊕.⊗ A`` relaxation, or ``None`` when inapplicable.

    Shares the sortmerge kernel's grouping helper
    (:func:`repro.arrays.matmul.fold_grouped`): the CSC view orders
    ``A``'s entries by (col, row), so after masking to rows the frontier
    actually stores, each output column's terms sit adjacent and in
    ascending row order — exactly the reference loop's fold order — and
    one ``reduceat`` folds ``⊕`` per column.  Bails out (``None``) on
    ufunc-less or non-numeric op-pairs, NaN zeros, non-numeric frontier
    values, and dict-backed adjacencies below the promotion threshold.
    """
    from repro.arrays.backend import (
        VECTORIZE_MIN_NNZ,
        is_number,
        usable_numeric_zero,
    )
    from repro.arrays.matmul import fold_grouped
    if not vector:
        return {}
    if not (op_pair.has_ufuncs and op_pair.is_numeric):
        return None
    if not usable_numeric_zero(op_pair.zero):
        return None
    if adj.backend != "numeric" and adj.nnz < VECTORIZE_MIN_NNZ:
        return None
    nb = adj.numeric_backend()
    if nb is None:
        return None
    row_pos = adj.row_keys.position_map()
    idx = []
    xv = []
    for k, v in vector.items():
        p = row_pos.get(k)
        if p is None:
            continue
        if not is_number(v):
            return None
        idx.append(p)
        xv.append(float(v))
    if not idx:
        return {}

    present = np.zeros(nb.shape[0], dtype=bool)
    xvals = np.zeros(nb.shape[0], dtype=np.float64)
    present[idx] = True
    xvals[idx] = xv
    data, row_idx, _indptr, perm = nb.csc()
    keep = present[row_idx]
    if not keep.any():
        return {}
    terms = op_pair.mul.ufunc(xvals[row_idx[keep]], data[keep])
    (grp_cols,), reduced = fold_grouped(
        (nb.cols[perm][keep],), terms, op_pair.add.ufunc)
    zero = float(op_pair.zero)
    col_keys = tuple(adj.col_keys)
    return {col_keys[c]: v
            for c, v in zip(grp_cols.tolist(), reduced.tolist())
            if v != zero}


def bfs_levels(
    adj: AssociativeArray,
    source: Any,
    *,
    max_levels: Optional[int] = None,
) -> Dict[Any, int]:
    """Breadth-first levels from ``source`` following edge direction.

    Works on the nonzero *pattern* (any value set): level 0 is the source,
    level ``k`` the vertices first reached after ``k`` hops.
    """
    _square_vertex_array(adj)
    if source not in adj.row_keys:
        raise GraphError(f"source {source!r} not a vertex")
    succ: Dict[Any, list] = {}
    for (r, c) in adj.nonzero_pattern():
        succ.setdefault(r, []).append(c)
    levels = {source: 0}
    frontier = [source]
    level = 0
    limit = max_levels if max_levels is not None else len(adj.row_keys)
    while frontier and level < limit:
        level += 1
        nxt = []
        for u in frontier:
            for v in succ.get(u, ()):
                if v not in levels:
                    levels[v] = level
                    nxt.append(v)
        frontier = nxt
    return levels


def shortest_path_lengths(
    adj: AssociativeArray,
    source: Any,
    *,
    vecmat: Callable[[Dict[Any, Any], AssociativeArray, Any],
                     Dict[Any, Any]] = semiring_vecmat,
) -> Dict[Any, float]:
    """Single-source shortest path lengths by ``min.+`` relaxation.

    ``adj`` holds non-negative edge weights (parallel edges should already
    be collapsed, e.g. by constructing the adjacency array over ``min.+``).
    Runs Bellman–Ford-style rounds until fixpoint (≤ |V| rounds).
    ``vecmat`` swaps the relaxation product implementation — the query
    service passes :func:`repro.expr.vecmat` so each round runs on the
    snapshot's compiled backend instead of this module's reference
    Python fold.
    """
    _square_vertex_array(adj)
    if source not in adj.row_keys:
        raise GraphError(f"source {source!r} not a vertex")
    from repro.values.semiring import get_op_pair
    min_plus = get_op_pair("min_plus")
    dist: Dict[Any, float] = {source: 0.0}
    for _ in range(len(adj.row_keys)):
        relaxed = vecmat(dist, adj, min_plus)
        new = dict(dist)
        changed = False
        for v, d in relaxed.items():
            if d < new.get(v, math.inf):
                new[v] = d
                changed = True
        dist = new
        if not changed:
            break
    return dist


def widest_path_widths(
    adj: AssociativeArray,
    source: Any,
) -> Dict[Any, float]:
    """Maximum-bottleneck path widths by ``max.min`` relaxation.

    The Section IV reading of ``max.min``: each relaxation keeps, per
    target, "the largest of all the shortest connections".  The source has
    width +∞ by convention.
    """
    _square_vertex_array(adj)
    if source not in adj.row_keys:
        raise GraphError(f"source {source!r} not a vertex")
    from repro.values.semiring import get_op_pair
    max_min = get_op_pair("max_min")
    width: Dict[Any, float] = {source: math.inf}
    for _ in range(len(adj.row_keys)):
        relaxed = semiring_vecmat(width, adj, max_min)
        new = dict(width)
        changed = False
        for v, w in relaxed.items():
            if w > new.get(v, 0.0):
                new[v] = w
                changed = True
        width = new
        if not changed:
            break
    return width


def weakly_connected_components(adj: AssociativeArray) -> Dict[Any, int]:
    """Component index per vertex on the undirected pattern.

    Components are numbered in the order of their smallest vertex key.
    """
    _square_vertex_array(adj)
    nbrs: Dict[Any, set] = {v: set() for v in adj.row_keys}
    for (r, c) in adj.nonzero_pattern():
        nbrs[r].add(c)
        nbrs[c].add(r)
    comp: Dict[Any, int] = {}
    label = 0
    for v in adj.row_keys:
        if v in comp:
            continue
        stack = [v]
        comp[v] = label
        while stack:
            u = stack.pop()
            for w in nbrs[u]:
                if w not in comp:
                    comp[w] = label
                    stack.append(w)
        label += 1
    return comp


def triangle_count(adj: AssociativeArray) -> int:
    """Number of undirected triangles in the nonzero pattern.

    Self-loops are ignored; parallel/antiparallel edges collapse to one
    undirected edge.  Counting is per unordered vertex triple.
    """
    _square_vertex_array(adj)
    nbrs: Dict[Any, set] = {}
    for (r, c) in adj.nonzero_pattern():
        if r == c:
            continue
        nbrs.setdefault(r, set()).add(c)
        nbrs.setdefault(c, set()).add(r)
    order = {v: i for i, v in enumerate(adj.row_keys)}
    count = 0
    for u, nu in nbrs.items():
        for v in nu:
            if order[v] <= order[u]:
                continue
            for w in nu & nbrs.get(v, set()):
                if order[w] > order[v]:
                    count += 1
    return count


def _degree_backend(adj: AssociativeArray):
    """The numeric backend for degree counting, or ``None``.

    Mirrors the reductions-module bailout: an array not already numeric
    with nnz below ``VECTORIZE_MIN_NNZ`` is cheaper to count generically
    than to promote.
    """
    from repro.arrays.backend import VECTORIZE_MIN_NNZ
    if adj.backend != "numeric" and adj.nnz < VECTORIZE_MIN_NNZ:
        return None
    return adj.numeric_backend()


def out_degrees(adj: AssociativeArray) -> Dict[Any, int]:
    """Number of stored entries per row (out-degree in the pattern).

    Numeric-backed arrays count row lengths straight off the cached CSR
    index pointer (one vectorised ``diff``, no per-entry Python loop);
    everything else falls back to iterating the stored pattern.  Small
    dict-backed arrays stay generic (the usual ``VECTORIZE_MIN_NNZ``
    bailout — promotion would cost more than the count).
    """
    nb = _degree_backend(adj)
    if nb is not None:
        _data, _indices, indptr = nb.csr()
        counts = np.diff(indptr)
        return dict(zip(adj.row_keys.keys(), counts.tolist()))
    deg: Dict[Any, int] = {v: 0 for v in adj.row_keys}
    for (r, _c) in adj.nonzero_pattern():
        deg[r] += 1
    return deg


def in_degrees(adj: AssociativeArray) -> Dict[Any, int]:
    """Number of stored entries per column (in-degree in the pattern).

    The numeric fast path mirrors :func:`out_degrees` over the cached
    CSC index pointer — building it here also warms the CSC view that
    per-column neighbor queries reuse.
    """
    nb = _degree_backend(adj)
    if nb is not None:
        _data, _rows, indptr, _perm = nb.csc()
        counts = np.diff(indptr)
        return dict(zip(adj.col_keys.keys(), counts.tolist()))
    deg: Dict[Any, int] = {v: 0 for v in adj.col_keys}
    for (_r, c) in adj.nonzero_pattern():
        deg[c] += 1
    return deg

"""Graph substrate: edge-keyed multigraphs, incidence arrays, generators.

The paper's graphs are directed multigraphs whose edge set ``K`` is itself
a finite totally ordered key set (edges are first-class keys — rows of the
incidence arrays).  This package provides:

* :mod:`repro.graphs.digraph` — :class:`EdgeKeyedDigraph`, supporting
  self-loops and parallel edges (both are load-bearing: the Theorem II.1
  witness graphs are built from exactly those);
* :mod:`repro.graphs.incidence` — Definition I.4 construction and
  validation of ``Eout``/``Ein`` and the graph ⇄ incidence round-trip;
* :mod:`repro.graphs.generators` — seeded random multigraphs and random
  incidence values over arbitrary value domains;
* :mod:`repro.graphs.algorithms` — downstream consumers of adjacency
  arrays over semirings (BFS, SSSP, components, triangles).
"""

from repro.graphs.digraph import EdgeKeyedDigraph, GraphError
from repro.graphs.incidence import (
    graph_from_incidence,
    incidence_arrays,
    is_source_incidence_of,
    is_target_incidence_of,
)
from repro.graphs.generators import (
    complete_bipartite_graph,
    cycle_graph,
    erdos_renyi_multigraph,
    path_graph,
    random_incidence_values,
    rmat_multigraph,
    star_graph,
)

__all__ = [
    "EdgeKeyedDigraph",
    "GraphError",
    "incidence_arrays",
    "graph_from_incidence",
    "is_source_incidence_of",
    "is_target_incidence_of",
    "erdos_renyi_multigraph",
    "rmat_multigraph",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_bipartite_graph",
    "random_incidence_values",
]

"""Interoperability with networkx and plain edge lists.

The library's multigraphs and adjacency arrays convert losslessly to and
from ``networkx.MultiDiGraph`` (edge keys preserved) so downstream users
can mix ecosystems; adjacency arrays also export to weighted
``networkx.DiGraph`` for algorithm cross-validation, which the test suite
uses extensively.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Tuple

from repro.arrays.associative import AssociativeArray
from repro.graphs.digraph import EdgeKeyedDigraph, GraphError

__all__ = [
    "to_networkx",
    "from_networkx",
    "adjacency_to_networkx",
    "edge_list",
    "from_edge_list",
]


def to_networkx(graph: EdgeKeyedDigraph):
    """As a ``networkx.MultiDiGraph`` with the same edge keys."""
    import networkx as nx
    g = nx.MultiDiGraph()
    g.add_nodes_from(graph.vertices)
    for k, s, t in graph.edges():
        g.add_edge(s, t, key=k)
    return g


def from_networkx(nx_graph) -> EdgeKeyedDigraph:
    """From any networkx directed graph (multigraph keys preserved when
    present and unique; otherwise keys are generated)."""
    import networkx as nx
    if not nx_graph.is_directed():
        raise GraphError("expected a directed networkx graph")
    out = EdgeKeyedDigraph()
    if nx_graph.is_multigraph():
        keys = [k for (_u, _v, k) in nx_graph.edges(keys=True)]
        unique = len(set(keys)) == len(keys)
        for i, (u, v, k) in enumerate(sorted(nx_graph.edges(keys=True),
                                             key=repr)):
            out.add_edge(k if unique else f"e{i:05d}", u, v)
    else:
        for i, (u, v) in enumerate(sorted(nx_graph.edges(), key=repr)):
            out.add_edge(f"e{i:05d}", u, v)
    return out


def adjacency_to_networkx(adj: AssociativeArray, *,
                          weight_attr: str = "weight"):
    """A weighted ``networkx.DiGraph`` from an adjacency array's stored
    entries (numeric values become edge weights; others ride along as
    attributes)."""
    import networkx as nx
    g = nx.DiGraph()
    g.add_nodes_from(adj.row_keys)
    g.add_nodes_from(adj.col_keys)
    for r, c, v in adj.entries():
        if isinstance(v, (int, float)) and not isinstance(v, bool):
            g.add_edge(r, c, **{weight_attr: v})
        else:
            g.add_edge(r, c, **{weight_attr: 1, "value": v})
    return g


def edge_list(graph: EdgeKeyedDigraph) -> list:
    """Plain ``(key, source, target)`` triples in edge-key order."""
    return list(graph.edges())


def from_edge_list(
    triples: Iterable[Tuple[Any, Any, Any]],
) -> EdgeKeyedDigraph:
    """Inverse of :func:`edge_list`."""
    return EdgeKeyedDigraph(triples)

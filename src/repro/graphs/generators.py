"""Seeded graph and incidence-value generators.

Used by the property-based tests (random multigraphs ⇒ Theorem II.1's
sufficiency direction must hold on *every* graph) and by the scaling
benchmarks (R-MAT/Kronecker-style skewed degree distributions are the
standard GraphBLAS workload).

All generators take an integer ``seed`` and are deterministic given it.
Vertex keys are strings ``v000, v001, ...`` and edge keys ``e0000, ...`` so
that every key set is totally ordered and stable across runs.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.graphs.digraph import EdgeKeyedDigraph, GraphError
from repro.values.domains import Domain
from repro.values.semiring import OpPair

__all__ = [
    "erdos_renyi_multigraph",
    "rmat_multigraph",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_bipartite_graph",
    "random_incidence_values",
]


def _vkey(i: int, width: int = 3) -> str:
    return f"v{i:0{width}d}"


def _edges_to_graph(pairs: List[Tuple[str, str]]) -> EdgeKeyedDigraph:
    width = max(4, len(str(max(len(pairs) - 1, 0))))
    return EdgeKeyedDigraph(
        (f"e{i:0{width}d}", s, t) for i, (s, t) in enumerate(pairs))


def erdos_renyi_multigraph(
    n_vertices: int,
    n_edges: int,
    *,
    seed: int,
    allow_self_loops: bool = True,
) -> EdgeKeyedDigraph:
    """Uniform random directed multigraph: ``n_edges`` i.i.d. vertex pairs.

    Parallel edges arise naturally (sampling is with replacement), which
    is deliberate: multigraphs are the paper's general case.
    """
    if n_vertices < 1:
        raise GraphError("need at least one vertex")
    rng = random.Random(seed)
    pairs: List[Tuple[str, str]] = []
    while len(pairs) < n_edges:
        u = rng.randrange(n_vertices)
        v = rng.randrange(n_vertices)
        if not allow_self_loops and u == v:
            continue
        pairs.append((_vkey(u), _vkey(v)))
    return _edges_to_graph(pairs)


def rmat_multigraph(
    scale: int,
    n_edges: int,
    *,
    seed: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
) -> EdgeKeyedDigraph:
    """R-MAT (stochastic Kronecker) multigraph on ``2**scale`` vertices.

    Each edge picks a quadrant per bit level with probabilities
    ``(a, b, c, d = 1−a−b−c)``, yielding the skewed degree distributions
    typical of the graphs D4M/GraphBLAS target.  Defaults follow the
    Graph500 parameters.
    """
    d = 1.0 - a - b - c
    if d < 0:
        raise GraphError("a + b + c must be <= 1")
    rng = random.Random(seed)
    n = 1 << scale
    width = len(str(n - 1))
    pairs: List[Tuple[str, str]] = []
    for _ in range(n_edges):
        u = v = 0
        for _level in range(scale):
            r = rng.random()
            if r < a:
                q = (0, 0)
            elif r < a + b:
                q = (0, 1)
            elif r < a + b + c:
                q = (1, 0)
            else:
                q = (1, 1)
            u = (u << 1) | q[0]
            v = (v << 1) | q[1]
        pairs.append((_vkey(u, width), _vkey(v, width)))
    return _edges_to_graph(pairs)


def path_graph(n_vertices: int) -> EdgeKeyedDigraph:
    """Directed path ``v0 → v1 → ... → v(n−1)``."""
    if n_vertices < 2:
        raise GraphError("a path needs at least two vertices")
    return _edges_to_graph([(_vkey(i), _vkey(i + 1))
                            for i in range(n_vertices - 1)])


def cycle_graph(n_vertices: int) -> EdgeKeyedDigraph:
    """Directed cycle on ``n_vertices``."""
    if n_vertices < 1:
        raise GraphError("a cycle needs at least one vertex")
    return _edges_to_graph([(_vkey(i), _vkey((i + 1) % n_vertices))
                            for i in range(n_vertices)])


def star_graph(n_leaves: int) -> EdgeKeyedDigraph:
    """Star: hub ``v000`` points at ``n_leaves`` leaves."""
    if n_leaves < 1:
        raise GraphError("a star needs at least one leaf")
    return _edges_to_graph([(_vkey(0), _vkey(i + 1))
                            for i in range(n_leaves)])


def complete_bipartite_graph(n_left: int, n_right: int) -> EdgeKeyedDigraph:
    """All edges from ``l*`` vertices to ``r*`` vertices."""
    if n_left < 1 or n_right < 1:
        raise GraphError("both sides need at least one vertex")
    pairs = [(f"l{i:03d}", f"r{j:03d}")
             for i in range(n_left) for j in range(n_right)]
    return _edges_to_graph(pairs)


def random_incidence_values(
    graph: EdgeKeyedDigraph,
    op_pair: OpPair,
    *,
    seed: int,
    domain: Optional[Domain] = None,
) -> Tuple[Dict[Any, Any], Dict[Any, Any]]:
    """Random nonzero incidence values for every edge, from the op-pair's
    domain (or an explicit one).

    Returns ``(out_values, in_values)`` mappings suitable for
    :func:`repro.graphs.incidence.incidence_arrays`.  Values are sampled
    with the op-pair's zero excluded — Definition I.4 requires incidence
    entries to be nonzero.
    """
    dom = domain if domain is not None else op_pair.domain
    rng = random.Random(seed)
    keys = list(graph.edge_keys)
    out_vals = dom.sample(rng, len(keys), exclude=op_pair.zero)
    in_vals = dom.sample(rng, len(keys), exclude=op_pair.zero)
    return dict(zip(keys, out_vals)), dict(zip(keys, in_vals))

"""Exotic operations: criteria-compliant but non-associative/commutative.

Theorem II.1 pointedly does **not** assume ``⊕``/``⊗`` are associative or
commutative, nor that ``⊗`` distributes over ``⊕`` — only the three
zero-related criteria.  The paper (Section III) notes that "several
semiring-like structures satisfy the criteria" while lacking those classical
axioms.  This module constructs concrete such structures over ℝ≥0 so the
property-based tests can exercise the theorem in its full generality:

* :data:`SKEW_PLUS` — ``a ⊕ b = a + b + a²b``.  Two-sided identity 0,
  zero-sum-free over ℝ≥0 (all terms non-negative), but neither associative
  nor commutative.
* :data:`TWISTED_TIMES` — ``a ⊗ b = a·b·exp(min((a−1)(b−1)a, 50))``.
  Two-sided identity 1 (either factor = 1 zeroes the exponent), strictly
  positive unless ``a·b = 0``, hence no zero divisors and 0 annihilates;
  neither associative nor commutative (the exponent is skewed by ``a``).

The exponent clamp keeps products finite for the sampled ranges; it only
flattens the operation far outside the test envelope and does not affect
the zero-related criteria (the clamp never maps a nonzero product to zero).

Three op-pairs combining these with standard ops are registered:
``skew_plus_times``, ``plus_twisted_times`` and ``skew_twisted`` — all
``expected_safe=True``.
"""

from __future__ import annotations

import math

from repro.values.domains import NonNegativeReals
from repro.values.operations import BinaryOp, PLUS, TIMES, register_operation
from repro.values.semiring import OpPair, register_op_pair

__all__ = [
    "SKEW_PLUS",
    "TWISTED_TIMES",
    "SKEW_PLUS_TIMES",
    "PLUS_TWISTED_TIMES",
    "SKEW_TWISTED",
]


def _skew_plus(a: float, b: float) -> float:
    """``a + b + a²b``: zero-sum-free, identity 0, non-associative."""
    return a + b + a * a * b


def _twisted_times(a: float, b: float) -> float:
    """``a·b·exp((a−1)(b−1)a)`` with a clamped exponent.

    Zero iff ``a = 0`` or ``b = 0`` (the exponential never vanishes), so no
    zero divisors; identity 1 on both sides; order of arguments matters.
    """
    if a == 0 or b == 0:
        return 0.0
    exponent = (a - 1.0) * (b - 1.0) * a
    return a * b * math.exp(min(exponent, 50.0))


SKEW_PLUS = register_operation(BinaryOp(
    "skew_plus", _skew_plus, 0.0, symbol="⊕̃",
    associative=False, commutative=False,
    doc="a + b + a²b on ℝ≥0: zero-sum-free but neither associative nor "
        "commutative."))

TWISTED_TIMES = register_operation(BinaryOp(
    "twisted_times", _twisted_times, 1.0, symbol="⊗̃",
    associative=False, commutative=False,
    doc="a·b·exp((a−1)(b−1)a) on ℝ≥0: no zero divisors, 0 annihilates, "
        "identity 1; neither associative nor commutative."))


SKEW_PLUS_TIMES = register_op_pair(OpPair(
    name="skew_plus_times",
    display="⊕̃.×",
    add=SKEW_PLUS, mul=TIMES,
    domain=NonNegativeReals(),
    expected_safe=True,
    description="Non-associative, non-commutative ⊕ with ordinary ×: "
                "complies with the Theorem II.1 criteria, demonstrating "
                "they do not require ⊕ to be associative or commutative.",
))

PLUS_TWISTED_TIMES = register_op_pair(OpPair(
    name="plus_twisted_times",
    display="+.⊗̃",
    add=PLUS, mul=TWISTED_TIMES,
    domain=NonNegativeReals(),
    expected_safe=True,
    description="Ordinary + with a non-associative, non-commutative ⊗: "
                "complies with the criteria; also breaks (AB)ᵀ = BᵀAᵀ.",
))

SKEW_TWISTED = register_op_pair(OpPair(
    name="skew_twisted",
    display="⊕̃.⊗̃",
    add=SKEW_PLUS, mul=TWISTED_TIMES,
    domain=NonNegativeReals(),
    expected_safe=True,
    description="Both operations exotic: the most hostile compliant pair "
                "in the catalog (no associativity, commutativity or "
                "distributivity anywhere).",
))

"""Value domains (carrier sets) for associative arrays.

A :class:`Domain` is the set ``V`` of Definition I.1 — the values an
associative array can take.  The paper stresses that ``V`` may hold
"nontraditional data": non-negative reals, tropical reals with ∓∞, power
sets, alphanumeric strings, and so on.  Domains provide

* membership testing (closure checks for operations),
* exhaustive enumeration when the domain is finite (axiom checks on finite
  domains are exact), and
* seeded random sampling when it is not (axiom checks become randomised
  searches for counterexamples, with reproducible seeds).

Domains are *purely carriers*; which element acts as the array "zero" is a
property of the op-pair (the identity of ``⊕``), not of the domain.
"""

from __future__ import annotations

import itertools
import math
import random
import string as _string
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence

__all__ = [
    "DomainError",
    "Domain",
    "Naturals",
    "Integers",
    "NonNegativeReals",
    "Reals",
    "TropicalReals",
    "MinPlusReals",
    "CompletedReals",
    "ExtendedReals",
    "ExtendedNonNegativeReals",
    "PositiveExtendedReals",
    "BooleanDomain",
    "FiniteField2",
    "IntegersModN",
    "BoundedIntegerRange",
    "PowerSetDomain",
    "StringDomain",
    "get_domain",
    "list_domains",
]


class DomainError(ValueError):
    """Raised for domain violations or unknown domain names."""


class Domain:
    """Base class for value domains.

    Subclasses implement :meth:`contains` and either :meth:`elements`
    (finite domains) or :meth:`_sample_one` (infinite domains); the base
    class supplies seeded batch sampling on top of either.
    """

    #: Human-readable name; also the registry key for singleton domains.
    name: str = "domain"
    #: Whether :meth:`elements` enumerates the whole carrier.
    is_finite: bool = False

    # -- membership ---------------------------------------------------------
    def contains(self, value: Any) -> bool:
        """Whether ``value`` belongs to this carrier set."""
        raise NotImplementedError

    def validate(self, value: Any) -> Any:
        """Return ``value`` if it belongs to the domain, else raise."""
        if not self.contains(value):
            raise DomainError(f"{value!r} is not an element of {self.name}")
        return value

    # -- enumeration / sampling ---------------------------------------------
    def elements(self) -> Iterator[Any]:
        """Iterate over all elements (finite domains only)."""
        raise DomainError(f"domain {self.name} is not finite")

    def _sample_one(self, rng: random.Random) -> Any:
        """Draw one element at random (infinite domains override this)."""
        pool = list(self.elements())
        return rng.choice(pool)

    def sample(
        self,
        rng: random.Random,
        size: int,
        *,
        exclude: Any = None,
        exclude_values: Optional[Sequence[Any]] = None,
    ) -> List[Any]:
        """Draw ``size`` elements, optionally avoiding given values.

        ``exclude``/``exclude_values`` let callers draw *nonzero* values
        (the incidence-array constructions need entries distinct from the
        op-pair's zero).  Rejection-samples with a bounded number of
        retries; raises :class:`DomainError` if the domain cannot supply
        enough distinct-from-excluded values (e.g. asking for nonzero
        elements of a 1-element domain).
        """
        banned = set()
        if exclude is not None:
            banned.add(_freeze(exclude))
        for v in exclude_values or ():
            banned.add(_freeze(v))
        out: List[Any] = []
        attempts = 0
        limit = 100 * max(size, 1) + 100
        while len(out) < size:
            v = self._sample_one(rng)
            attempts += 1
            if _freeze(v) in banned:
                if attempts > limit:
                    raise DomainError(
                        f"cannot sample {size} values from {self.name} "
                        f"avoiding {sorted(map(repr, banned))}")
                continue
            out.append(v)
        return out

    #: Largest tuple-space size exhaustively enumerated by :meth:`pairs` /
    #: :meth:`triples`; beyond this, random sampling is used even for finite
    #: domains.
    EXHAUSTIVE_LIMIT = 20_000

    def pairs(self, rng: random.Random, count: int) -> Iterator[tuple]:
        """Yield element pairs: the full Cartesian square for small finite
        domains (exact checks), otherwise ``count`` random pairs."""
        if self.is_finite:
            pool = list(self.elements())
            if len(pool) ** 2 <= self.EXHAUSTIVE_LIMIT:
                yield from itertools.product(pool, repeat=2)
                return
        for _ in range(count):
            yield self._sample_one(rng), self._sample_one(rng)

    def triples(self, rng: random.Random, count: int) -> Iterator[tuple]:
        """Yield element triples; exhaustive for small finite domains."""
        if self.is_finite:
            pool = list(self.elements())
            if len(pool) ** 3 <= self.EXHAUSTIVE_LIMIT:
                yield from itertools.product(pool, repeat=3)
                return
        for _ in range(count):
            yield (self._sample_one(rng), self._sample_one(rng),
                   self._sample_one(rng))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Domain {self.name}>"


def _freeze(v: Any) -> Any:
    """Hashable view of a value (sets become frozensets)."""
    if isinstance(v, (set, frozenset)):
        return frozenset(v)
    if isinstance(v, float) and math.isnan(v):
        return "nan"
    return v


def _is_real(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


# ---------------------------------------------------------------------------
# Numeric domains
# ---------------------------------------------------------------------------

class Naturals(Domain):
    """ℕ = {0, 1, 2, ...} — the paper's canonical zero-sum-free example."""

    name = "naturals"
    is_finite = False

    def __init__(self, sample_bound: int = 20) -> None:
        self.sample_bound = int(sample_bound)

    def contains(self, value: Any) -> bool:
        return _is_real(value) and float(value).is_integer() and value >= 0

    def _sample_one(self, rng: random.Random) -> int:
        return rng.randint(0, self.sample_bound)


class Integers(Domain):
    """ℤ — a ring, hence *not* zero-sum-free (non-example in Section III)."""

    name = "integers"
    is_finite = False

    def __init__(self, sample_bound: int = 20) -> None:
        self.sample_bound = int(sample_bound)

    def contains(self, value: Any) -> bool:
        return _is_real(value) and float(value).is_integer()

    def _sample_one(self, rng: random.Random) -> int:
        return rng.randint(-self.sample_bound, self.sample_bound)


class NonNegativeReals(Domain):
    """ℝ≥0 with standard + and × — the most common value set."""

    name = "nonnegative_reals"
    is_finite = False

    def contains(self, value: Any) -> bool:
        return _is_real(value) and not math.isnan(value) \
            and 0 <= value < math.inf

    def _sample_one(self, rng: random.Random) -> float:
        # Mix zeros, small integers, and continuous draws so edge cases
        # (the additive identity in particular) appear with fair frequency.
        r = rng.random()
        if r < 0.15:
            return 0.0
        if r < 0.55:
            return float(rng.randint(1, 9))
        return round(rng.uniform(0.0, 10.0), 3)


class Reals(Domain):
    """ℝ — has additive inverses, hence not zero-sum-free."""

    name = "reals"
    is_finite = False

    def contains(self, value: Any) -> bool:
        return _is_real(value) and not math.isnan(value) and math.isfinite(value)

    def _sample_one(self, rng: random.Random) -> float:
        r = rng.random()
        if r < 0.1:
            return 0.0
        if r < 0.5:
            return float(rng.randint(-9, 9))
        return round(rng.uniform(-10.0, 10.0), 3)


class TropicalReals(Domain):
    """ℝ ∪ {−∞}: the standard max-plus carrier.

    With ``⊕ = max`` (identity −∞) and ``⊗ = +`` this *does* satisfy the
    paper's criteria — the non-example is :class:`CompletedReals`
    (see DESIGN.md §5).
    """

    name = "tropical_reals"
    is_finite = False

    def contains(self, value: Any) -> bool:
        if not _is_real(value) or math.isnan(value):
            return False
        return value == -math.inf or math.isfinite(value)

    def _sample_one(self, rng: random.Random) -> float:
        r = rng.random()
        if r < 0.15:
            return -math.inf
        if r < 0.55:
            return float(rng.randint(-9, 9))
        return round(rng.uniform(-10.0, 10.0), 3)


class MinPlusReals(Domain):
    """ℝ ∪ {+∞}: the min-plus (shortest-path) carrier."""

    name = "min_plus_reals"
    is_finite = False

    def contains(self, value: Any) -> bool:
        if not _is_real(value) or math.isnan(value):
            return False
        return value == math.inf or math.isfinite(value)

    def _sample_one(self, rng: random.Random) -> float:
        r = rng.random()
        if r < 0.15:
            return math.inf
        if r < 0.55:
            return float(rng.randint(-9, 9))
        return round(rng.uniform(-10.0, 10.0), 3)


class CompletedReals(Domain):
    """ℝ ∪ {−∞, +∞}: the *completed* max-plus carrier.

    This is the paper's max-plus **non-example**: with the convention
    ``(+∞) + (−∞) = −∞``, the pair (+∞, −∞) multiplies to the zero −∞, so
    ``⊗`` has zero divisors and Theorem II.1(criterion b) fails.
    """

    name = "completed_reals"
    is_finite = False

    def contains(self, value: Any) -> bool:
        return _is_real(value) and not math.isnan(value)

    def _sample_one(self, rng: random.Random) -> float:
        r = rng.random()
        if r < 0.12:
            return -math.inf
        if r < 0.24:
            return math.inf
        if r < 0.6:
            return float(rng.randint(-9, 9))
        return round(rng.uniform(-10.0, 10.0), 3)


#: Alias — some texts call ℝ∪{±∞} the extended reals.
ExtendedReals = CompletedReals


class ExtendedNonNegativeReals(Domain):
    """[0, +∞]: carrier for ``min.max`` (zero is +∞) and ``max.min``."""

    name = "extended_nonnegative_reals"
    is_finite = False

    def contains(self, value: Any) -> bool:
        return _is_real(value) and not math.isnan(value) and value >= 0

    def _sample_one(self, rng: random.Random) -> float:
        r = rng.random()
        if r < 0.1:
            return 0.0
        if r < 0.2:
            return math.inf
        if r < 0.6:
            return float(rng.randint(1, 9))
        return round(rng.uniform(0.0, 10.0), 3)


class PositiveExtendedReals(Domain):
    """(0, +∞]: carrier for ``min.×`` (zero is +∞; excluding 0 avoids 0·∞)."""

    name = "positive_extended_reals"
    is_finite = False

    def contains(self, value: Any) -> bool:
        return _is_real(value) and not math.isnan(value) and value > 0

    def _sample_one(self, rng: random.Random) -> float:
        r = rng.random()
        if r < 0.15:
            return math.inf
        if r < 0.6:
            return float(rng.randint(1, 9))
        return round(rng.uniform(0.001, 10.0), 3)


# ---------------------------------------------------------------------------
# Finite domains
# ---------------------------------------------------------------------------

class BooleanDomain(Domain):
    """{False, True} — the trivial Boolean algebra; ``or.and`` is safe."""

    name = "booleans"
    is_finite = True

    def contains(self, value: Any) -> bool:
        return isinstance(value, bool)

    def elements(self) -> Iterator[bool]:
        yield False
        yield True


class FiniteField2(Domain):
    """GF(2) = {0, 1} with ⊕ = xor, ⊗ = and — a ring, so 1 ⊕ 1 = 0
    violates zero-sum-freeness (a ring non-example)."""

    name = "gf2"
    is_finite = True

    def contains(self, value: Any) -> bool:
        return value in (0, 1) and not isinstance(value, float)

    def elements(self) -> Iterator[int]:
        yield 0
        yield 1


class IntegersModN(Domain):
    """Z_n — rings mod n; non-examples for n ≥ 2 (additive inverses)."""

    is_finite = True

    def __init__(self, n: int) -> None:
        if n < 1:
            raise DomainError("modulus must be >= 1")
        self.n = int(n)
        self.name = f"integers_mod_{n}"

    def contains(self, value: Any) -> bool:
        return _is_real(value) and float(value).is_integer() \
            and 0 <= value < self.n

    def elements(self) -> Iterator[int]:
        return iter(range(self.n))


class BoundedIntegerRange(Domain):
    """{lo, ..., hi} — small exhaustive carrier for exact axiom checks."""

    is_finite = True

    def __init__(self, lo: int, hi: int) -> None:
        if hi < lo:
            raise DomainError("empty integer range")
        self.lo, self.hi = int(lo), int(hi)
        self.name = f"integers[{lo},{hi}]"

    def contains(self, value: Any) -> bool:
        return _is_real(value) and float(value).is_integer() \
            and self.lo <= value <= self.hi

    def elements(self) -> Iterator[int]:
        return iter(range(self.lo, self.hi + 1))


class PowerSetDomain(Domain):
    """The power set of a finite universe, as frozensets.

    With ``⊕ = ∪`` (identity ∅) and ``⊗ = ∩`` (identity = universe), a
    power set over ≥ 2 elements is the paper's "non-trivial Boolean
    algebra" non-example: disjoint non-empty sets are zero divisors.
    """

    is_finite = True

    def __init__(self, universe: Iterable[Any]) -> None:
        self.universe = frozenset(universe)
        self.name = f"powerset[{len(self.universe)}]"

    def contains(self, value: Any) -> bool:
        return isinstance(value, (set, frozenset)) \
            and frozenset(value) <= self.universe

    def elements(self) -> Iterator[frozenset]:
        items = sorted(self.universe, key=repr)
        for r in range(len(items) + 1):
            for combo in itertools.combinations(items, r):
                yield frozenset(combo)

    def _sample_one(self, rng: random.Random) -> frozenset:
        return frozenset(x for x in self.universe if rng.random() < 0.5)


class StringDomain(Domain):
    """Alphanumeric strings up to a maximum length, ordered lexicographically.

    The introduction's example: ``⊕ = max``, ``⊗ = min`` on strings; the
    empty string is the bottom of the order and thus the array zero.  The
    domain's :attr:`top` element ("z" * max_len) is the identity for
    ``min`` (see :func:`repro.values.operations.make_str_min`).
    """

    is_finite = False

    #: Alphabet used for sampling and for the top element.
    ALPHABET = _string.digits + _string.ascii_lowercase

    def __init__(self, max_len: Optional[int] = 6, *,
                 include_nul: bool = False) -> None:
        if max_len is not None and max_len < 1:
            raise DomainError("max_len must be >= 1 (or None for unbounded)")
        self.max_len = None if max_len is None else int(max_len)
        self.include_nul = bool(include_nul)
        self.name = "strings[*]" if max_len is None else f"strings[<= {max_len}]"

    @property
    def top(self) -> str:
        """The lexicographic maximum of the domain (bounded domains only).

        Unbounded string domains have no maximum, hence no two-sided
        identity for ``min``; ``min``-based op-pairs require a bounded
        domain.
        """
        if self.max_len is None:
            raise DomainError("unbounded string domain has no top element")
        return "z" * self.max_len

    def contains(self, value: Any) -> bool:
        if not isinstance(value, str):
            return False
        if self.max_len is not None and len(value) > self.max_len:
            return False
        if value == "\0":
            return self.include_nul
        return all(c in self.ALPHABET for c in value)

    def _sample_one(self, rng: random.Random) -> str:
        r = rng.random()
        if r < 0.12:
            return ""
        if self.include_nul and r < 0.2:
            return "\0"
        length = rng.randint(1, min(self.max_len or 4, 6))
        return "".join(rng.choice(self.ALPHABET) for _ in range(length))


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_DOMAINS: Dict[str, Domain] = {}


def _register(domain: Domain) -> Domain:
    _DOMAINS[domain.name] = domain
    return domain


_register(Naturals())
_register(Integers())
_register(NonNegativeReals())
_register(Reals())
_register(TropicalReals())
_register(MinPlusReals())
_register(CompletedReals())
_register(ExtendedNonNegativeReals())
_register(PositiveExtendedReals())
_register(BooleanDomain())
_register(FiniteField2())
_register(IntegersModN(6))
_register(PowerSetDomain(frozenset({"a", "b", "c"})))
_register(StringDomain())


def get_domain(name: str) -> Domain:
    """Look up a registered singleton domain by name."""
    try:
        return _DOMAINS[name]
    except KeyError:
        known = ", ".join(sorted(_DOMAINS))
        raise DomainError(f"unknown domain {name!r}; known: {known}") from None


def list_domains() -> list[str]:
    """Sorted names of registered domains."""
    return sorted(_DOMAINS)

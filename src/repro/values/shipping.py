"""Shipping op-pairs across process boundaries by registry name.

Op-pairs close over arbitrary Python callables (often lambdas), which do
not pickle — so any executor that crosses a process boundary sends the
*registry name* instead and re-resolves it on the other side.  Two users
today: :mod:`repro.arrays.parallel` (row-partitioned fan-out) and
:mod:`repro.shard` (out-of-core sharded construction); both must agree on
the re-import side effects that populate the registry in a freshly
spawned interpreter, which is why the logic lives here once.
"""

from __future__ import annotations

from repro.values.semiring import OpPair, SemiringError, get_op_pair

__all__ = [
    "ensure_catalog_loaded",
    "registered_name",
    "resolve_registered_pair",
]


def ensure_catalog_loaded() -> None:
    """Import the modules that register op-pairs as a side effect.

    A freshly spawned worker interpreter has an empty registry beyond the
    core catalog; these imports make every shipped name resolvable.
    """
    import repro.values.exotic  # noqa: F401
    import repro.values.extensions  # noqa: F401


def registered_name(op_pair: OpPair) -> str:
    """The registry name under which ``op_pair`` can be re-resolved.

    Raises :class:`SemiringError` when the pair is not the registered
    instance of its own name — shipping such a pair by name would resolve
    to a *different* object (or fail) in the worker.
    """
    try:
        if get_op_pair(op_pair.name) is op_pair:
            return op_pair.name
    except SemiringError:
        pass
    raise SemiringError(
        f"op-pair {op_pair.name!r} is not registered; cross-process "
        "execution ships pairs by registry name (operations may not "
        "pickle)")


def resolve_registered_pair(name: str) -> OpPair:
    """Worker-side inverse of :func:`registered_name`."""
    ensure_catalog_loaded()
    return get_op_pair(name)

"""The one value-equality predicate used across the codebase.

Sparse storage, zero-filtering, array equality and identity checks all
need the same notion of "these two values are the same element of V":

* ``NaN == NaN`` must hold (a NaN zero would otherwise never match
  itself, so NaN-zero arrays could never drop entries);
* ``3 == 3.0`` must hold (int/float mixing is routine — TSV ingest
  parses ``3`` as int while the vectorised kernels produce floats);
* values that raise on ``==`` (exotic carriers) fall back to identity.

Historically this predicate was re-implemented per module
(``_values_equal`` in :mod:`repro.arrays.associative` and
:mod:`repro.values.operations`, ``_eq`` in
:mod:`repro.arrays.elementwise`); this module is the single shared home.
"""

from __future__ import annotations

import math
from typing import Any

__all__ = ["values_equal"]


def values_equal(a: Any, b: Any) -> bool:
    """Equality robust to NaN, to int/float mixing, and to broken ``==``."""
    if isinstance(a, float) and isinstance(b, float) \
            and math.isnan(a) and math.isnan(b):
        return True
    try:
        return bool(a == b)
    except Exception:  # pragma: no cover - defensive
        return a is b

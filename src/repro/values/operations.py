"""Binary operations on value sets.

The paper treats ``⊕`` and ``⊗`` as *closed binary operations on V with
two-sided identities* and deliberately does **not** assume associativity,
commutativity, distributivity, or that the additive identity annihilates
under ``⊗`` — those are exactly the properties Theorem II.1 characterises.

:class:`BinaryOp` therefore wraps a plain callable with only the metadata
the theory needs (a name and an identity element), plus optional metadata
used by the vectorised kernels (a NumPy ufunc equivalent, if one exists).

A process-wide registry maps operation names to constructors so op-pairs
can be described by strings (``"max"``, ``"plus"``, ``"union"``, ...),
mirroring how D4M lets users pick ``⊕.⊗`` pairs by name.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

import numpy as np

from repro.values.equality import values_equal as _values_equal

__all__ = [
    "OperationError",
    "BinaryOp",
    "register_operation",
    "get_operation",
    "list_operations",
]


class OperationError(ValueError):
    """Raised for malformed operations or unknown operation names."""


@dataclass(frozen=True)
class BinaryOp:
    """A closed binary operation on a value set, with a two-sided identity.

    Parameters
    ----------
    name:
        Human-readable name, e.g. ``"plus"`` or ``"max"``.  Used in
        pretty-printed op-pair names such as ``"max.min"``.
    func:
        The operation itself, a callable of two values.
    identity:
        The two-sided identity element ``e`` with ``op(v, e) == op(e, v) == v``.
        For ``⊕`` this is the paper's ``0``; for ``⊗`` the paper's ``1``.
    symbol:
        Short display symbol (``"+"``, ``"max"``, ``"∪"`` ...).
    ufunc:
        Optional NumPy ufunc implementing the same operation element-wise on
        arrays; enables the vectorised kernels in
        :mod:`repro.arrays.sparse_backend`.
    associative, commutative:
        Optional *claims* used only for documentation and kernel selection;
        they are verified empirically by :mod:`repro.values.properties`
        rather than trusted.
    doc:
        One-line description.
    """

    name: str
    func: Callable[[Any, Any], Any]
    identity: Any
    symbol: str = ""
    ufunc: Optional[np.ufunc] = None
    associative: bool = True
    commutative: bool = True
    doc: str = ""

    def __post_init__(self) -> None:
        if not callable(self.func):
            raise OperationError(f"operation {self.name!r} is not callable")
        if not self.name:
            raise OperationError("operation must have a non-empty name")

    def __call__(self, a: Any, b: Any) -> Any:
        return self.func(a, b)

    def fold(self, values, *, initial: Any = None) -> Any:
        """Left-fold ``values`` in iteration order.

        Folding starts from ``initial`` if given, else from the identity.
        Because the identity is two-sided, starting the fold from it does not
        perturb results even for non-associative operations:
        ``e ⊕ v == v``.

        Returns the identity for an empty sequence.
        """
        acc = self.identity if initial is None else initial
        for v in values:
            acc = self.func(acc, v)
        return acc

    def is_identity(self, value: Any) -> bool:
        """Whether ``value`` equals this operation's identity element."""
        return _values_equal(value, self.identity)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BinaryOp({self.name!r}, identity={self.identity!r})"


# ---------------------------------------------------------------------------
# Standard operations
# ---------------------------------------------------------------------------

def _plus(a, b):
    return a + b


def _times(a, b):
    return a * b


def _max(a, b):
    return a if a >= b else b


def _min(a, b):
    return a if a <= b else b


def _union(a, b):
    return frozenset(a) | frozenset(b)


def _intersection(a, b):
    return frozenset(a) & frozenset(b)


def _symmetric_difference(a, b):
    return frozenset(a) ^ frozenset(b)


def _or(a, b):
    return bool(a) or bool(b)


def _and(a, b):
    return bool(a) and bool(b)


def _xor(a, b):
    return bool(a) != bool(b)


def _gcd(a, b):
    return math.gcd(int(a), int(b))


def _lcm(a, b):
    return math.lcm(int(a), int(b))


def _completed_plus(a, b):
    """Addition on ℝ∪{±∞} resolving the indeterminate form to +∞.

    The *standard* tropical convention resolves (−∞) + (+∞) to −∞, which
    keeps −∞ absorbing and — as our certification engine confirms — makes
    the completed max-plus algebra satisfy the paper's criteria.  The
    paper's max-plus **non-example** is the naive completion used here,
    where +∞ dominates: then ``(+∞) ⊗ 0̄ = (+∞) + (−∞) = +∞ ≠ 0̄``, so the
    additive identity fails to annihilate (criterion c) and the
    "zero-product property" the paper cites is violated.  See DESIGN.md §5.
    """
    if (a == math.inf and b == -math.inf) or (a == -math.inf and b == math.inf):
        return math.inf
    return a + b


# --- string-lattice operations ---------------------------------------------
#
# The paper's introduction uses the set of alphanumeric strings with
# ``⊕ = max`` and ``⊗ = min`` under lexicographic order.  The empty string is
# the minimum, hence serves as the array zero.

def _str_max(a: str, b: str) -> str:
    return a if a >= b else b


def _str_min(a: str, b: str) -> str:
    return a if a <= b else b


# --- non-commutative multiplication with explicit zero ----------------------
#
# String concatenation with a distinguished zero symbol.  ``⊗ = concat`` has
# two-sided identity "" and, by construction, the distinguished zero
# annihilates and there are no zero divisors — so ``max.concat`` satisfies
# Theorem II.1 while ⊗ is non-commutative.  It is used to demonstrate the
# Section III remark that (AB)ᵀ = BᵀAᵀ may fail.

#: Distinguished zero for the concat algebra.  Ordered below every
#: alphanumeric string by virtue of being compared via a wrapper in
#: :class:`repro.values.domains.StringDomain`; here we use the empty-string
#: sentinel "\0" which sorts below all printable strings.
CONCAT_ZERO = "\0"


def _concat(a: str, b: str) -> str:
    if a == CONCAT_ZERO or b == CONCAT_ZERO:
        return CONCAT_ZERO
    return a + b


def _str_max_with_zero(a: str, b: str) -> str:
    # The distinguished zero is adjoined as the bottom of the string order
    # (Python would otherwise sort "\0" *above* "", breaking bottomness).
    if a == CONCAT_ZERO:
        return b
    if b == CONCAT_ZERO:
        return a
    return a if a >= b else b


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, BinaryOp] = {}


def register_operation(op: BinaryOp, *, overwrite: bool = False) -> BinaryOp:
    """Register ``op`` under ``op.name``; returns it for chaining."""
    if not overwrite and op.name in _REGISTRY:
        raise OperationError(f"operation {op.name!r} already registered")
    _REGISTRY[op.name] = op
    return op


def get_operation(name: str) -> BinaryOp:
    """Look up a registered operation by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise OperationError(f"unknown operation {name!r}; known: {known}") from None


def list_operations() -> list[str]:
    """Sorted names of all registered operations."""
    return sorted(_REGISTRY)


# Arithmetic over numbers ----------------------------------------------------
PLUS = register_operation(BinaryOp(
    "plus", _plus, 0, symbol="+", ufunc=np.add,
    doc="Arithmetic addition; identity 0."))
TIMES = register_operation(BinaryOp(
    "times", _times, 1, symbol="×", ufunc=np.multiply,
    doc="Arithmetic multiplication; identity 1."))
MAX = register_operation(BinaryOp(
    "max", _max, -math.inf, symbol="max", ufunc=np.maximum,
    doc="Maximum under the usual order; identity −∞."))
MIN = register_operation(BinaryOp(
    "min", _min, math.inf, symbol="min", ufunc=np.minimum,
    doc="Minimum under the usual order; identity +∞."))
MAX_ZERO = register_operation(BinaryOp(
    "max0", _max, 0, symbol="max", ufunc=np.maximum,
    doc="Maximum restricted to non-negative values; identity 0."))
MIN_INF = register_operation(BinaryOp(
    "min_inf", _min, math.inf, symbol="min", ufunc=np.minimum,
    doc="Alias of min with explicit +∞ identity (min-plus zero)."))
COMPLETED_PLUS = register_operation(BinaryOp(
    "completed_plus", _completed_plus, 0, symbol="+",
    doc="Addition on ℝ∪{±∞} with −∞ + (+∞) = −∞ (max-plus convention)."))

# Boolean ---------------------------------------------------------------------
OR = register_operation(BinaryOp(
    "or", _or, False, symbol="∨", ufunc=np.logical_or,
    doc="Logical disjunction; identity False."))
AND = register_operation(BinaryOp(
    "and", _and, True, symbol="∧", ufunc=np.logical_and,
    doc="Logical conjunction; identity True."))
XOR = register_operation(BinaryOp(
    "xor", _xor, False, symbol="⊻", ufunc=np.logical_xor,
    doc="Exclusive or (= addition in GF(2)); identity False."))

# Number theory ---------------------------------------------------------------
GCD = register_operation(BinaryOp(
    "gcd", _gcd, 0, symbol="gcd",
    doc="Greatest common divisor on ℕ; identity 0 (gcd(a, 0) = a)."))
LCM = register_operation(BinaryOp(
    "lcm", _lcm, 1, symbol="lcm",
    doc="Least common multiple on ℕ; identity 1."))

# Sets ------------------------------------------------------------------------
UNION = register_operation(BinaryOp(
    "union", _union, frozenset(), symbol="∪",
    doc="Set union; identity ∅."))
INTERSECTION = register_operation(BinaryOp(
    "intersection", _intersection, None, symbol="∩",
    doc="Set intersection; identity is the universe (domain-dependent), "
        "so instances are created per power-set domain."))
SYMMETRIC_DIFFERENCE = register_operation(BinaryOp(
    "symmetric_difference", _symmetric_difference, frozenset(), symbol="Δ",
    doc="Symmetric difference (= addition in the Boolean ring); identity ∅."))

# Strings ---------------------------------------------------------------------
STR_MAX = register_operation(BinaryOp(
    "str_max", _str_max, "", symbol="max",
    doc="Lexicographic maximum of strings; identity is the empty string "
        "(the minimum of the string order)."))
STR_MIN = register_operation(BinaryOp(
    "str_min", _str_min, None, symbol="min",
    doc="Lexicographic minimum of strings; identity is the top string of a "
        "bounded string domain, so instances are created per domain."))
CONCAT = register_operation(BinaryOp(
    "concat", _concat, "", symbol="·", associative=True, commutative=False,
    doc="String concatenation with distinguished annihilating zero '\\0'; "
        "identity ''.  Non-commutative."))
STR_MAX_WITH_ZERO = register_operation(BinaryOp(
    "str_max_zero", _str_max_with_zero, CONCAT_ZERO, symbol="max",
    doc="Lexicographic maximum with the concat algebra's distinguished "
        "zero '\\0' as identity/bottom."))


def make_intersection(universe: frozenset) -> BinaryOp:
    """Intersection on the power set of ``universe``; identity = universe.

    The paper's Section III document×word example uses ``⊕ = ∪, ⊗ = ∩``;
    the two-sided identity of ``∩`` is the universe of the power set, which
    depends on the domain, so this is a factory rather than a singleton.
    """
    return BinaryOp(
        name=f"intersection[{len(universe)}]",
        func=_intersection,
        identity=frozenset(universe),
        symbol="∩",
        doc=f"Set intersection on the power set of a {len(universe)}-element "
            "universe; identity is the universe.",
    )


def make_str_min(top: str) -> BinaryOp:
    """Lexicographic minimum on strings bounded above by ``top``.

    ``min``'s two-sided identity is the maximum of the order, which for a
    string domain is its top element; hence a factory.
    """
    return BinaryOp(
        name=f"str_min[top={top!r}]",
        func=_str_min,
        identity=top,
        symbol="min",
        doc="Lexicographic minimum of strings; identity is the domain top.",
    )

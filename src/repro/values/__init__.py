"""Value-set algebra substrate.

The paper's associative arrays map key pairs into a *value set* ``V``
equipped with two closed binary operations ``⊕`` (array addition, identity
``0``) and ``⊗`` (array multiplication, identity ``1``).  This package
provides:

* :mod:`repro.values.operations` — the :class:`~repro.values.operations.BinaryOp`
  abstraction and a registry of standard operations (arithmetic, lattice,
  set-theoretic, tropical, string and deliberately exotic non-associative
  operations);
* :mod:`repro.values.domains` — carrier sets ``V`` with membership tests,
  exhaustive enumeration (when finite) and seeded sampling (when not);
* :mod:`repro.values.properties` — checkers for each algebraic axiom the
  paper discusses, returning witnesses on failure;
* :mod:`repro.values.semiring` — the :class:`~repro.values.semiring.OpPair`
  ``(V, ⊕, ⊗, 0, 1)`` and the catalog of op-pairs used throughout the paper;
* :mod:`repro.values.exotic` — non-associative / non-commutative operations
  demonstrating that Theorem II.1 does not require those properties.
"""

from repro.values.operations import (
    BinaryOp,
    OperationError,
    get_operation,
    list_operations,
    register_operation,
)
from repro.values.domains import (
    Domain,
    DomainError,
    BooleanDomain,
    BoundedIntegerRange,
    CompletedReals,
    ExtendedNonNegativeReals,
    ExtendedReals,
    FiniteField2,
    IntegersModN,
    Integers,
    MinPlusReals,
    Naturals,
    NonNegativeReals,
    PositiveExtendedReals,
    PowerSetDomain,
    Reals,
    StringDomain,
    TropicalReals,
    get_domain,
    list_domains,
)
from repro.values.properties import (
    PropertyReport,
    check_annihilator,
    check_associativity,
    check_commutativity,
    check_distributivity,
    check_identity,
    check_no_zero_divisors,
    check_zero_sum_free,
)
from repro.values.semiring import (
    OpPair,
    SemiringError,
    get_op_pair,
    list_op_pairs,
    register_op_pair,
    PAPER_FIGURE_PAIRS,
)

__all__ = [
    "BinaryOp",
    "OperationError",
    "get_operation",
    "list_operations",
    "register_operation",
    "Domain",
    "DomainError",
    "BooleanDomain",
    "BoundedIntegerRange",
    "CompletedReals",
    "ExtendedNonNegativeReals",
    "ExtendedReals",
    "FiniteField2",
    "IntegersModN",
    "Integers",
    "MinPlusReals",
    "Naturals",
    "NonNegativeReals",
    "PositiveExtendedReals",
    "PowerSetDomain",
    "Reals",
    "StringDomain",
    "TropicalReals",
    "get_domain",
    "list_domains",
    "PropertyReport",
    "check_annihilator",
    "check_associativity",
    "check_commutativity",
    "check_distributivity",
    "check_identity",
    "check_no_zero_divisors",
    "check_zero_sum_free",
    "OpPair",
    "SemiringError",
    "get_op_pair",
    "list_op_pairs",
    "register_op_pair",
    "PAPER_FIGURE_PAIRS",
]

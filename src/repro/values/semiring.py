"""Op-pairs ``(V, ⊕, ⊗, 0, 1)`` and the catalog used in the paper.

The paper calls these "semirings" informally, but is explicit that the
structures need not be semirings: associativity, commutativity and
distributivity are *not* assumed.  We therefore model the raw object — an
:class:`OpPair` of two closed binary operations with identities over a
domain — and leave classification (which axioms actually hold, and whether
Theorem II.1's criteria are satisfied) to :mod:`repro.core.certify`.

The registry contains:

* the seven pairs of Figures 3 and 5 —
  ``+.×``, ``max.×``, ``min.×``, ``max.+``, ``min.+``, ``max.min``,
  ``min.max`` (see :data:`PAPER_FIGURE_PAIRS`);
* the Section III examples and non-examples — ``or.and`` (trivial Boolean
  algebra, safe), ``∪.∩`` on a power set (non-trivial Boolean algebra,
  unsafe), the completed max-plus algebra (unsafe), integer and modular
  rings (unsafe), string ``max.min`` (safe);
* extensions exercising the "semiring-like structures" remark —
  ``gcd.lcm``, the non-commutative ``max.concat``, and the deliberately
  non-associative pairs from :mod:`repro.values.exotic`.

``expected_safe`` records the *paper's* claim for each pair; the test suite
verifies that the certification engine reproduces every claim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.values.domains import (
    BooleanDomain,
    CompletedReals,
    Domain,
    ExtendedNonNegativeReals,
    FiniteField2,
    Integers,
    IntegersModN,
    MinPlusReals,
    Naturals,
    NonNegativeReals,
    PositiveExtendedReals,
    PowerSetDomain,
    StringDomain,
    TropicalReals,
)
from repro.values.operations import (
    AND,
    BinaryOp,
    COMPLETED_PLUS,
    CONCAT,
    GCD,
    LCM,
    MAX,
    MAX_ZERO,
    MIN,
    OR,
    PLUS,
    STR_MAX,
    STR_MAX_WITH_ZERO,
    TIMES,
    UNION,
    make_intersection,
    make_str_min,
)

__all__ = [
    "SemiringError",
    "OpPair",
    "register_op_pair",
    "get_op_pair",
    "list_op_pairs",
    "PAPER_FIGURE_PAIRS",
    "SECTION_III_EXAMPLES",
    "SECTION_III_NON_EXAMPLES",
]


class SemiringError(ValueError):
    """Raised for malformed op-pairs or unknown op-pair names."""


@dataclass(frozen=True)
class OpPair:
    """A value set with two closed binary operations and identities.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"plus_times"``.
    display:
        Paper-style display name, e.g. ``"+.×"`` or ``"max.min"``.
    add:
        The ``⊕`` operation; its identity is the array zero ``0``.
    mul:
        The ``⊗`` operation; its identity is the array one ``1``.
    domain:
        The carrier set ``V``.
    expected_safe:
        The paper's claim about whether this pair satisfies the Theorem II.1
        criteria (None when the paper is silent); verified in tests against
        :func:`repro.core.certify.certify`.
    description:
        The Section IV synopsis line for this pair, where the paper gives
        one; otherwise a short gloss.
    """

    name: str
    display: str
    add: BinaryOp
    mul: BinaryOp
    domain: Domain
    expected_safe: Optional[bool] = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.mul.identity is None:
            raise SemiringError(
                f"op-pair {self.name!r}: ⊗ ({self.mul.name}) has no concrete "
                "identity; use the per-domain factory")
        if not self.domain.contains(self.zero):
            raise SemiringError(
                f"op-pair {self.name!r}: zero {self.zero!r} not in domain "
                f"{self.domain.name}")
        if not self.domain.contains(self.one):
            raise SemiringError(
                f"op-pair {self.name!r}: one {self.one!r} not in domain "
                f"{self.domain.name}")

    # -- identities ----------------------------------------------------------
    @property
    def zero(self) -> Any:
        """The array zero: the identity of ``⊕``."""
        return self.add.identity

    @property
    def one(self) -> Any:
        """The array one: the identity of ``⊗``."""
        return self.mul.identity

    def is_zero(self, value: Any) -> bool:
        """Whether ``value`` is this pair's zero (NaN-safe)."""
        z = self.zero
        if isinstance(value, float) and isinstance(z, float) \
                and math.isnan(value) and math.isnan(z):
            return True
        return value == z

    # -- evaluation helpers ---------------------------------------------------
    def fold_add(self, terms: Iterable[Any]) -> Any:
        """Left-fold ``⊕`` over ``terms`` in iteration order.

        Returns the zero for an empty term sequence — the paper's empty
        ``⊕``-sum.  Fold order matters because ``⊕`` need not be
        associative or commutative; callers must present terms in inner-key
        order.
        """
        return self.add.fold(terms)

    def multiply(self, a: Any, b: Any) -> Any:
        """Apply ``⊗``."""
        return self.mul(a, b)

    @property
    def has_ufuncs(self) -> bool:
        """Whether both operations have NumPy ufunc forms (vectorisable)."""
        return self.add.ufunc is not None and self.mul.ufunc is not None

    @property
    def is_numeric(self) -> bool:
        """Whether zero/one are plain numbers (dense/CSR kernels apply)."""
        def _num(x: Any) -> bool:
            return isinstance(x, (int, float)) and not isinstance(x, bool)
        return _num(self.zero) and _num(self.one)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OpPair({self.display!r} over {self.domain.name})"


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, OpPair] = {}


def register_op_pair(pair: OpPair, *, overwrite: bool = False) -> OpPair:
    """Register ``pair`` under ``pair.name``."""
    if not overwrite and pair.name in _REGISTRY:
        raise SemiringError(f"op-pair {pair.name!r} already registered")
    _REGISTRY[pair.name] = pair
    return pair


def get_op_pair(name: str) -> OpPair:
    """Look up an op-pair by registry name (e.g. ``"max_min"``)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise SemiringError(f"unknown op-pair {name!r}; known: {known}") from None


def list_op_pairs() -> List[str]:
    """Sorted names of all registered op-pairs."""
    return sorted(_REGISTRY)


# ---------------------------------------------------------------------------
# GF(2) operations (integer-valued xor/and so that 0/1 stay ints)
# ---------------------------------------------------------------------------

def _xor_int(a: int, b: int) -> int:
    return (a + b) % 2


def _and_int(a: int, b: int) -> int:
    return a * b


XOR_INT = BinaryOp("xor_int", _xor_int, 0, symbol="⊕₂",
                   doc="Addition in GF(2); identity 0.")
AND_INT = BinaryOp("and_int", _and_int, 1, symbol="∧",
                   doc="Multiplication in GF(2); identity 1.")


def _mod_plus(n: int) -> BinaryOp:
    return BinaryOp(f"plus_mod_{n}", lambda a, b: (a + b) % n, 0, symbol="+",
                    doc=f"Addition mod {n}; identity 0.")


def _mod_times(n: int) -> BinaryOp:
    return BinaryOp(f"times_mod_{n}", lambda a, b: (a * b) % n, 1, symbol="×",
                    doc=f"Multiplication mod {n}; identity 1.")


# ---------------------------------------------------------------------------
# The paper's Figure 3/5 pairs
# ---------------------------------------------------------------------------

PLUS_TIMES = register_op_pair(OpPair(
    name="plus_times",
    display="+.×",
    add=PLUS, mul=TIMES,
    domain=NonNegativeReals(),
    expected_safe=True,
    description="sum of products of edge weights connecting two vertices; "
                "computes the strength of all connections between two "
                "connected vertices.",
))

MAX_TIMES = register_op_pair(OpPair(
    name="max_times",
    display="max.×",
    add=MAX_ZERO, mul=TIMES,
    domain=NonNegativeReals(),
    expected_safe=True,
    description="maximum of products of edge weights connecting two "
                "vertices; selects the edge with largest weighted product "
                "of all the edges connecting two vertices.",
))

MIN_TIMES = register_op_pair(OpPair(
    name="min_times",
    display="min.×",
    add=MIN, mul=TIMES,
    domain=PositiveExtendedReals(),
    expected_safe=True,
    description="minimum of products of edge weights connecting two "
                "vertices; selects the edge with smallest weighted product "
                "of all the edges connecting two vertices.",
))

MAX_PLUS = register_op_pair(OpPair(
    name="max_plus",
    display="max.+",
    add=MAX, mul=PLUS,
    domain=TropicalReals(),
    expected_safe=True,
    description="maximum of sums of edge weights connecting two vertices; "
                "selects the edge with largest weighted sum of all the "
                "edges connecting two vertices.",
))

MIN_PLUS = register_op_pair(OpPair(
    name="min_plus",
    display="min.+",
    add=MIN, mul=PLUS,
    domain=MinPlusReals(),
    expected_safe=True,
    description="minimum of sums of edge weights connecting two vertices; "
                "selects the edge with smallest weighted sum of all the "
                "edges connecting two vertices.",
))

MAX_MIN = register_op_pair(OpPair(
    name="max_min",
    display="max.min",
    add=MAX_ZERO, mul=MIN,
    domain=ExtendedNonNegativeReals(),
    expected_safe=True,
    description="maximum of the minimum of weights connecting two vertices; "
                "selects the largest of all the shortest connections "
                "between two vertices.",
))

MIN_MAX = register_op_pair(OpPair(
    name="min_max",
    display="min.max",
    add=MIN, mul=MAX_ZERO,
    domain=ExtendedNonNegativeReals(),
    expected_safe=True,
    description="minimum of the maximum of weights connecting two vertices; "
                "selects the smallest of all the largest connections "
                "between two vertices.",
))

#: The op-pairs of Figures 3 and 5, in the paper's presentation order.
PAPER_FIGURE_PAIRS: Tuple[str, ...] = (
    "plus_times",
    "max_times",
    "min_times",
    "max_plus",
    "min_plus",
    "max_min",
    "min_max",
)

#: Figure 3/5 stacking: op-pairs whose adjacency arrays coincide are shown
#: stacked in the paper.  Order matches the figures top-to-bottom.
PAPER_FIGURE_STACKS: Tuple[Tuple[str, ...], ...] = (
    ("plus_times",),
    ("max_times", "min_times"),
    ("max_plus", "min_plus"),
    ("max_min",),
    ("min_max",),
)


# ---------------------------------------------------------------------------
# Section III examples and non-examples
# ---------------------------------------------------------------------------

NAT_PLUS_TIMES = register_op_pair(OpPair(
    name="nat_plus_times",
    display="+.× (ℕ)",
    add=PLUS, mul=TIMES,
    domain=Naturals(),
    expected_safe=True,
    description="ℕ with standard addition and multiplication — the paper's "
                "first compliant example.",
))

OR_AND = register_op_pair(OpPair(
    name="or_and",
    display="∨.∧",
    add=OR, mul=AND,
    domain=BooleanDomain(),
    expected_safe=True,
    description="The trivial Boolean algebra {False, True}: the unweighted "
                "graph semiring; safe because the 2-element algebra has no "
                "zero divisors.",
))

_POWERSET = PowerSetDomain(frozenset({"a", "b", "c"}))
UNION_INTERSECTION = register_op_pair(OpPair(
    name="union_intersection",
    display="∪.∩",
    add=UNION, mul=make_intersection(_POWERSET.universe),
    domain=_POWERSET,
    expected_safe=False,
    description="A non-trivial Boolean algebra (power set of 3 elements): "
                "disjoint non-empty sets intersect to ∅, so ⊗ has zero "
                "divisors and the pair fails criterion (b).  Section III's "
                "document×word structure restores correctness.",
))

COMPLETED_MAX_PLUS = register_op_pair(OpPair(
    name="completed_max_plus",
    display="max.+ (ℝ±∞)",
    add=MAX, mul=COMPLETED_PLUS,
    domain=CompletedReals(),
    expected_safe=False,
    description="The naively completed max-plus algebra ℝ∪{±∞} with "
                "(−∞) + (+∞) = +∞: the zero −∞ fails to annihilate "
                "(criterion c) — the paper's max-plus non-example.  (With "
                "the standard tropical convention the completion is safe; "
                "see DESIGN.md §5.)",
))

NONNEG_MAX_PLUS = register_op_pair(OpPair(
    name="nonneg_max_plus",
    display="max.+ (ℝ≥0, zero 0)",
    add=MAX_ZERO, mul=PLUS,
    domain=NonNegativeReals(),
    expected_safe=False,
    description="max.+ read over ℝ≥0 with 0 as the empty value — the "
                "practitioner's trap: v ⊗ 0 = v + 0 = v ≠ 0, so criterion "
                "(c) fails (and the ⊗ identity coincides with the zero).  "
                "Unstored cells silently contribute to sums under dense "
                "evaluation.",
))

INT_PLUS_TIMES = register_op_pair(OpPair(
    name="int_plus_times",
    display="+.× (ℤ)",
    add=PLUS, mul=TIMES,
    domain=Integers(),
    expected_safe=False,
    description="The ring ℤ: v ⊕ (−v) = 0 violates zero-sum-freeness — "
                "the paper's ring non-example.",
))

GF2_XOR_AND = register_op_pair(OpPair(
    name="gf2_xor_and",
    display="⊕.∧ (GF(2))",
    add=XOR_INT, mul=AND_INT,
    domain=FiniteField2(),
    expected_safe=False,
    description="GF(2): 1 ⊕ 1 = 0 violates zero-sum-freeness (a field is a "
                "ring).",
))

_Z6 = IntegersModN(6)
Z6_PLUS_TIMES = register_op_pair(OpPair(
    name="z6_plus_times",
    display="+.× (Z₆)",
    add=_mod_plus(6), mul=_mod_times(6),
    domain=_Z6,
    expected_safe=False,
    description="Z₆: both 1 ⊕ 5 = 0 (zero sums) and 2 ⊗ 3 = 0 (zero "
                "divisors).",
))

_STRINGS = StringDomain()
STRING_MAX_MIN = register_op_pair(OpPair(
    name="string_max_min",
    display="max.min (strings)",
    add=STR_MAX, mul=make_str_min(_STRINGS.top),
    domain=_STRINGS,
    expected_safe=True,
    description="Alphanumeric strings under lexicographic max/min — the "
                "introduction's motivating non-numeric example; any "
                "linearly ordered set with max.min complies.",
))

_STRINGS_NUL = StringDomain(max_len=None, include_nul=True)
MAX_CONCAT = register_op_pair(OpPair(
    name="max_concat",
    display="max.concat",
    add=STR_MAX_WITH_ZERO, mul=CONCAT,
    domain=_STRINGS_NUL,
    expected_safe=True,
    description="Strings with ⊕ = lexicographic max (zero '\\0') and "
                "⊗ = concatenation: satisfies the criteria while ⊗ is "
                "non-commutative, demonstrating that (AB)ᵀ = BᵀAᵀ may "
                "fail (Section III).",
))

GCD_LCM = register_op_pair(OpPair(
    name="gcd_lcm",
    display="gcd.lcm",
    add=GCD, mul=LCM,
    domain=Naturals(),
    expected_safe=True,
    description="ℕ under gcd/lcm: a semiring-like lattice structure "
                "satisfying the criteria (gcd(a,b) = 0 ⇔ a = b = 0; "
                "lcm(a,b) = 0 ⇔ a = 0 or b = 0).",
))

#: Paper example pairs (comply with the criteria).
SECTION_III_EXAMPLES: Tuple[str, ...] = (
    "nat_plus_times",
    "plus_times",
    "max_min",
    "string_max_min",
    "or_and",
)

#: Paper non-example pairs (violate at least one criterion).
SECTION_III_NON_EXAMPLES: Tuple[str, ...] = (
    "completed_max_plus",
    "union_intersection",
    "int_plus_times",
    "gf2_xor_and",
    "z6_plus_times",
)

"""Extension algebras beyond the paper's catalog.

The paper closes by noting that "a wide range of graph adjacency arrays
can be constructed via array multiplication of incidence arrays over
different semirings".  This module adds three families that downstream
users of such a library reach for immediately — each certified through
the same Theorem II.1 machinery as the paper's own catalog:

* **Log semiring** ``logaddexp.+`` over ℝ∪{−∞}: numerically stable
  probability accumulation in log space (``⊕ = log(eˣ + eʸ)``,
  ``⊗ = +``, zero −∞, one 0).  Zero-sum-free, no zero divisors, −∞
  annihilates ⇒ SAFE; both operations have ufunc forms, so the
  vectorised kernels apply.
* **Viterbi semiring** ``max.×`` on the unit interval [0, 1]: most
  probable derivation/path weights.  SAFE, vectorisable.
* **Lexicographic min-plus** over pairs ``(cost, hops)``: multi-objective
  shortest paths ("cheapest, then fewest hops").  ``⊕`` = lexicographic
  minimum (identity ``(∞, ∞)``), ``⊗`` = componentwise addition
  (identity ``(0, 0)``; the zero annihilates componentwise).  SAFE, with
  genuinely *tuple-valued* arrays exercising the non-numeric code paths.
"""

from __future__ import annotations

import math
import random
from typing import Any, Tuple

import numpy as np

from repro.values.domains import Domain, TropicalReals
from repro.values.operations import BinaryOp, PLUS, TIMES, register_operation
from repro.values.semiring import OpPair, register_op_pair

__all__ = [
    "UnitInterval",
    "LexicographicPairs",
    "LOGADDEXP",
    "LEX_MIN",
    "PAIR_PLUS",
    "LOG_SEMIRING",
    "VITERBI_MAX_TIMES",
    "LEX_MIN_PLUS",
]


# ---------------------------------------------------------------------------
# Domains
# ---------------------------------------------------------------------------

class UnitInterval(Domain):
    """[0, 1] — probability weights for the Viterbi semiring."""

    name = "unit_interval"
    is_finite = False

    def contains(self, value: Any) -> bool:
        return isinstance(value, (int, float)) \
            and not isinstance(value, bool) \
            and not math.isnan(value) and 0 <= value <= 1

    def _sample_one(self, rng: random.Random) -> float:
        r = rng.random()
        if r < 0.1:
            return 0.0
        if r < 0.2:
            return 1.0
        return round(rng.uniform(0.0, 1.0), 3)


class LexicographicPairs(Domain):
    """Pairs ``(cost, hops)`` with finite components, plus ``(∞, ∞)``.

    Ordered lexicographically; ``(∞, ∞)`` is the top (the ``⊕`` identity
    for lexicographic min) and serves as the array zero.
    """

    name = "lex_pairs"
    is_finite = False

    #: The zero/top element.
    TOP: Tuple[float, float] = (math.inf, math.inf)

    def contains(self, value: Any) -> bool:
        if not (isinstance(value, tuple) and len(value) == 2):
            return False
        a, b = value
        def _num(x):
            return isinstance(x, (int, float)) and not isinstance(x, bool) \
                and not (isinstance(x, float) and math.isnan(x))
        if not (_num(a) and _num(b)):
            return False
        if value == self.TOP:
            return True
        return math.isfinite(a) and math.isfinite(b)

    def _sample_one(self, rng: random.Random) -> Tuple[float, float]:
        if rng.random() < 0.1:
            return self.TOP
        return (float(rng.randint(0, 9)), float(rng.randint(0, 5)))


# ---------------------------------------------------------------------------
# Operations
# ---------------------------------------------------------------------------

def _logaddexp(a: float, b: float) -> float:
    if a == -math.inf:
        return b
    if b == -math.inf:
        return a
    m = max(a, b)
    return m + math.log(math.exp(a - m) + math.exp(b - m))


LOGADDEXP = register_operation(BinaryOp(
    "logaddexp", _logaddexp, -math.inf, symbol="⊕ₗ", ufunc=np.logaddexp,
    doc="log(eˣ + eʸ): probability addition in log space; identity −∞."))


def _lex_min(a: Tuple[float, float], b: Tuple[float, float]
             ) -> Tuple[float, float]:
    return a if a <= b else b


def _pair_plus(a: Tuple[float, float], b: Tuple[float, float]
               ) -> Tuple[float, float]:
    return (a[0] + b[0], a[1] + b[1])


LEX_MIN = register_operation(BinaryOp(
    "lex_min", _lex_min, LexicographicPairs.TOP, symbol="min₍lex₎",
    doc="Lexicographic minimum of (cost, hops) pairs; identity (∞, ∞)."))

PAIR_PLUS = register_operation(BinaryOp(
    "pair_plus", _pair_plus, (0.0, 0.0), symbol="+₂",
    doc="Componentwise addition of (cost, hops) pairs; identity (0, 0); "
        "(∞, ∞) annihilates componentwise."))


# ---------------------------------------------------------------------------
# Op-pairs
# ---------------------------------------------------------------------------

LOG_SEMIRING = register_op_pair(OpPair(
    name="log_semiring",
    display="logaddexp.+",
    add=LOGADDEXP, mul=PLUS,
    domain=TropicalReals(),
    expected_safe=True,
    description="The log semiring: numerically stable accumulation of "
                "probabilities in log space; the ⊕ of forward algorithms. "
                "Certified by the same criteria as the paper's pairs.",
))

VITERBI_MAX_TIMES = register_op_pair(OpPair(
    name="viterbi_max_times",
    display="max.× ([0,1])",
    add=BinaryOp("max_unit", lambda a, b: a if a >= b else b, 0.0,
                 symbol="max", ufunc=np.maximum,
                 doc="Maximum on [0,1]; identity 0."),
    mul=TIMES,
    domain=UnitInterval(),
    expected_safe=True,
    description="The Viterbi semiring on probabilities: selects the most "
                "probable connection between two vertices.",
))

LEX_MIN_PLUS = register_op_pair(OpPair(
    name="lex_min_plus",
    display="min₍lex₎.+₂",
    add=LEX_MIN, mul=PAIR_PLUS,
    domain=LexicographicPairs(),
    expected_safe=True,
    description="Multi-objective min-plus over (cost, hops) pairs: "
                "selects the cheapest connection, breaking ties by hop "
                "count — tuple-valued adjacency arrays.",
))

"""Algebraic axiom checkers with witnesses.

Theorem II.1 characterises when ``EoutᵀEin`` is always an adjacency array in
terms of three properties of ``(V, ⊕, ⊗, 0)``:

* **zero-sum-freeness** of ``⊕`` — ``a ⊕ b = 0  ⇔  a = b = 0``;
* **no zero divisors** for ``⊗`` — ``a ⊗ b = 0  ⇔  a = 0 or b = 0``;
* **0 annihilates** under ``⊗`` — ``a ⊗ 0 = 0 ⊗ a = 0``.

This module implements those checks (plus the classical axioms the paper
explicitly does *not* require: associativity, commutativity, distributivity,
identity) over a :class:`~repro.values.domains.Domain`.  Finite domains are
checked exhaustively, so results there are proofs; infinite domains are
searched with seeded random sampling, so a "holds" verdict is evidence while
a "fails" verdict carries an explicit witness and is definitive.

Every checker returns a :class:`PropertyReport` carrying the verdict, the
number of cases examined, and — on failure — the offending elements, which
the certification engine then turns into the Lemma II.2–II.4 witness graphs.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from repro.values.domains import Domain
from repro.values.operations import BinaryOp

__all__ = [
    "PropertyReport",
    "check_identity",
    "check_closure",
    "check_associativity",
    "check_commutativity",
    "check_distributivity",
    "check_zero_sum_free",
    "check_no_zero_divisors",
    "check_annihilator",
    "PROPERTY_CHECKERS",
    "check_named_property",
    "DEFAULT_SAMPLES",
]

#: Number of random cases drawn per check on infinite domains.
DEFAULT_SAMPLES = 400


@dataclass(frozen=True)
class PropertyReport:
    """Outcome of checking one axiom over one domain.

    Attributes
    ----------
    property_name:
        Which axiom was checked (e.g. ``"zero-sum-free"``).
    holds:
        Verdict.  Exact for finite domains; randomized evidence otherwise.
    exhaustive:
        True when every element combination of the domain was examined, in
        which case ``holds`` is a proof rather than evidence.
    cases:
        Number of element tuples examined.
    witness:
        On failure, the tuple of elements violating the axiom.
    detail:
        Human-readable elaboration (e.g. the two unequal sides).
    """

    property_name: str
    holds: bool
    exhaustive: bool
    cases: int
    witness: Optional[Tuple[Any, ...]] = None
    detail: str = ""

    def __bool__(self) -> bool:
        return self.holds

    def describe(self) -> str:
        """One-line human-readable summary."""
        status = "holds" if self.holds else "FAILS"
        mode = "exhaustively" if self.exhaustive else f"on {self.cases} samples"
        msg = f"{self.property_name}: {status} ({mode})"
        if not self.holds and self.witness is not None:
            msg += f"; witness {self.witness}"
        if self.detail:
            msg += f" — {self.detail}"
        return msg


def _eq(a: Any, b: Any) -> bool:
    """Value equality robust to NaN and float/int mixing."""
    if isinstance(a, float) and isinstance(b, float) \
            and math.isnan(a) and math.isnan(b):
        return True
    try:
        return bool(a == b)
    except Exception:  # pragma: no cover - defensive
        return a is b


def _rng(seed: Optional[int]) -> random.Random:
    return random.Random(0xA55 if seed is None else seed)


def _eq_tol(a: Any, b: Any, rel_tol: float) -> bool:
    """:func:`_eq`, optionally relaxed to float closeness.

    ``rel_tol > 0`` treats two finite numbers within the relative
    tolerance as equal — the reading the expression optimizer needs:
    ``⊕ = +`` over ℝ *is* associative in the paper's algebra, and the
    float64 rounding of one re-association is evaluation noise, not an
    axiom violation.  Exact comparison (the default) stays the
    arbiter everywhere correctness of a verdict is the point.
    """
    if _eq(a, b):
        return True
    if rel_tol > 0.0 and isinstance(a, (int, float)) \
            and isinstance(b, (int, float)) \
            and not isinstance(a, bool) and not isinstance(b, bool):
        try:
            return math.isclose(a, b, rel_tol=rel_tol, abs_tol=1e-12)
        except TypeError:  # pragma: no cover - defensive
            return False
    return False


# ---------------------------------------------------------------------------
# Structural axioms (not required by Theorem II.1; provided for the catalog)
# ---------------------------------------------------------------------------

def check_closure(
    op: BinaryOp,
    domain: Domain,
    *,
    samples: int = DEFAULT_SAMPLES,
    seed: Optional[int] = None,
) -> PropertyReport:
    """``V`` is closed under ``op``: results stay in the domain."""
    rng = _rng(seed)
    cases = 0
    exhaustive = domain.is_finite
    for a, b in domain.pairs(rng, samples):
        cases += 1
        try:
            r = op(a, b)
        except Exception as exc:
            return PropertyReport(
                f"closure of {op.name}", False, exhaustive, cases,
                witness=(a, b), detail=f"raised {exc!r}")
        if not domain.contains(r):
            return PropertyReport(
                f"closure of {op.name}", False, exhaustive, cases,
                witness=(a, b), detail=f"{a!r} {op.symbol} {b!r} = {r!r} ∉ V")
    return PropertyReport(f"closure of {op.name}", True, exhaustive, cases)


def check_identity(
    op: BinaryOp,
    domain: Domain,
    *,
    samples: int = DEFAULT_SAMPLES,
    seed: Optional[int] = None,
) -> PropertyReport:
    """``op.identity`` is a two-sided identity on the domain."""
    rng = _rng(seed)
    e = op.identity
    cases = 0
    exhaustive = domain.is_finite
    pool = domain.elements() if domain.is_finite else \
        iter(domain.sample(rng, samples))
    for v in pool:
        cases += 1
        left = op(e, v)
        right = op(v, e)
        if not _eq(left, v):
            return PropertyReport(
                f"identity of {op.name}", False, exhaustive, cases,
                witness=(v,), detail=f"{e!r} {op.symbol} {v!r} = {left!r} ≠ {v!r}")
        if not _eq(right, v):
            return PropertyReport(
                f"identity of {op.name}", False, exhaustive, cases,
                witness=(v,), detail=f"{v!r} {op.symbol} {e!r} = {right!r} ≠ {v!r}")
    return PropertyReport(f"identity of {op.name}", True, exhaustive, cases)


def check_associativity(
    op: BinaryOp,
    domain: Domain,
    *,
    samples: int = DEFAULT_SAMPLES,
    seed: Optional[int] = None,
    rel_tol: float = 0.0,
) -> PropertyReport:
    """``(a op b) op c == a op (b op c)``.

    ``rel_tol`` relaxes the comparison to float closeness (see
    :func:`_eq_tol`) — callers reasoning about real-number algebras
    evaluated in float64 pass a small tolerance so rounding noise does
    not masquerade as an axiom violation.
    """
    rng = _rng(seed)
    cases = 0
    exhaustive = domain.is_finite
    for a, b, c in domain.triples(rng, samples):
        cases += 1
        left = op(op(a, b), c)
        right = op(a, op(b, c))
        if not _eq_tol(left, right, rel_tol):
            return PropertyReport(
                f"associativity of {op.name}", False, exhaustive, cases,
                witness=(a, b, c),
                detail=f"({a!r} {op.symbol} {b!r}) {op.symbol} {c!r} = {left!r} "
                       f"≠ {right!r}")
    return PropertyReport(f"associativity of {op.name}", True, exhaustive, cases)


def check_commutativity(
    op: BinaryOp,
    domain: Domain,
    *,
    samples: int = DEFAULT_SAMPLES,
    seed: Optional[int] = None,
    rel_tol: float = 0.0,
) -> PropertyReport:
    """``a op b == b op a`` (``rel_tol`` as in :func:`check_associativity`)."""
    rng = _rng(seed)
    cases = 0
    exhaustive = domain.is_finite
    for a, b in domain.pairs(rng, samples):
        cases += 1
        left, right = op(a, b), op(b, a)
        if not _eq_tol(left, right, rel_tol):
            return PropertyReport(
                f"commutativity of {op.name}", False, exhaustive, cases,
                witness=(a, b),
                detail=f"{a!r} {op.symbol} {b!r} = {left!r} ≠ {right!r}")
    return PropertyReport(f"commutativity of {op.name}", True, exhaustive, cases)


def check_distributivity(
    add: BinaryOp,
    mul: BinaryOp,
    domain: Domain,
    *,
    samples: int = DEFAULT_SAMPLES,
    seed: Optional[int] = None,
    rel_tol: float = 0.0,
) -> PropertyReport:
    """``a ⊗ (b ⊕ c) == (a ⊗ b) ⊕ (a ⊗ c)`` and the right-handed dual
    (``rel_tol`` as in :func:`check_associativity`)."""
    rng = _rng(seed)
    cases = 0
    exhaustive = domain.is_finite
    for a, b, c in domain.triples(rng, samples):
        cases += 1
        left = mul(a, add(b, c))
        right = add(mul(a, b), mul(a, c))
        if not _eq_tol(left, right, rel_tol):
            return PropertyReport(
                "left distributivity", False, exhaustive, cases,
                witness=(a, b, c),
                detail=f"{a!r} ⊗ ({b!r} ⊕ {c!r}) = {left!r} ≠ {right!r}")
        left = mul(add(b, c), a)
        right = add(mul(b, a), mul(c, a))
        if not _eq_tol(left, right, rel_tol):
            return PropertyReport(
                "right distributivity", False, exhaustive, cases,
                witness=(a, b, c),
                detail=f"({b!r} ⊕ {c!r}) ⊗ {a!r} = {left!r} ≠ {right!r}")
    return PropertyReport("distributivity", True, exhaustive, cases)


# ---------------------------------------------------------------------------
# The three Theorem II.1 criteria
# ---------------------------------------------------------------------------

def check_zero_sum_free(
    add: BinaryOp,
    domain: Domain,
    *,
    zero: Any = None,
    samples: int = DEFAULT_SAMPLES,
    seed: Optional[int] = None,
) -> PropertyReport:
    """Criterion (a): ``a ⊕ b = 0`` if and only if ``a = b = 0``.

    The "if" direction is the identity axiom (0 ⊕ 0 = 0); the content is the
    "only if": no two values, not both zero, may sum to zero.  A failure
    witness ``(a, b)`` feeds Lemma II.2's two-parallel-edge graph.
    """
    rng = _rng(seed)
    z = add.identity if zero is None else zero
    cases = 0
    exhaustive = domain.is_finite
    if not _eq(add(z, z), z):
        return PropertyReport(
            "zero-sum-free", False, exhaustive, 1, witness=(z, z),
            detail=f"0 ⊕ 0 = {add(z, z)!r} ≠ 0")
    for a, b in domain.pairs(rng, samples):
        cases += 1
        if _eq(a, z) and _eq(b, z):
            continue
        if _eq(add(a, b), z):
            return PropertyReport(
                "zero-sum-free", False, exhaustive, cases, witness=(a, b),
                detail=f"{a!r} ⊕ {b!r} = 0 with (a, b) ≠ (0, 0)")
    return PropertyReport("zero-sum-free", True, exhaustive, cases)


def check_no_zero_divisors(
    mul: BinaryOp,
    domain: Domain,
    *,
    zero: Any,
    samples: int = DEFAULT_SAMPLES,
    seed: Optional[int] = None,
) -> PropertyReport:
    """Criterion (b): ``a ⊗ b = 0`` only when ``a = 0`` or ``b = 0``.

    (The converse — that zero times anything *is* zero — is criterion (c),
    checked separately, exactly as the paper separates them.)  A failure
    witness ``(a, b)`` feeds Lemma II.3's single-self-loop graph.
    """
    rng = _rng(seed)
    cases = 0
    exhaustive = domain.is_finite
    for a, b in domain.pairs(rng, samples):
        cases += 1
        if _eq(a, zero) or _eq(b, zero):
            continue
        if _eq(mul(a, b), zero):
            return PropertyReport(
                "no zero divisors", False, exhaustive, cases, witness=(a, b),
                detail=f"{a!r} ⊗ {b!r} = 0 with a ≠ 0 and b ≠ 0")
    return PropertyReport("no zero divisors", True, exhaustive, cases)


def check_annihilator(
    mul: BinaryOp,
    domain: Domain,
    *,
    zero: Any,
    samples: int = DEFAULT_SAMPLES,
    seed: Optional[int] = None,
) -> PropertyReport:
    """Criterion (c): ``a ⊗ 0 = 0 ⊗ a = 0`` for every ``a``.

    A failure witness ``(a,)`` feeds Lemma II.4's two-self-loop graph.
    """
    rng = _rng(seed)
    cases = 0
    exhaustive = domain.is_finite
    pool = domain.elements() if domain.is_finite else \
        iter(domain.sample(rng, samples))
    for a in pool:
        cases += 1
        left = mul(a, zero)
        right = mul(zero, a)
        if not _eq(left, zero):
            return PropertyReport(
                "0 annihilates ⊗", False, exhaustive, cases, witness=(a,),
                detail=f"{a!r} ⊗ 0 = {left!r} ≠ 0")
        if not _eq(right, zero):
            return PropertyReport(
                "0 annihilates ⊗", False, exhaustive, cases, witness=(a,),
                detail=f"0 ⊗ {a!r} = {right!r} ≠ 0")
    return PropertyReport("0 annihilates ⊗", True, exhaustive, cases)


# ---------------------------------------------------------------------------
# By-name dispatch (rewrite rules declare the properties they require)
# ---------------------------------------------------------------------------

#: Axiom checkers addressable by name.  Consumers that *declare* property
#: requirements — most prominently the certified rewrite rules of
#: :mod:`repro.expr.rewrite` — resolve the declaration through this
#: table, so "the properties a rule requires" and "the checks that ran"
#: can never drift apart.  Single-operation checkers take ``(op, domain)``;
#: ``"distributivity"`` takes ``(add, mul, domain)``.
PROPERTY_CHECKERS = {
    "closure": check_closure,
    "identity": check_identity,
    "associativity": check_associativity,
    "commutativity": check_commutativity,
    "distributivity": check_distributivity,
    "zero-sum-free": check_zero_sum_free,
    "no-zero-divisors": check_no_zero_divisors,
    "annihilator": check_annihilator,
}


def check_named_property(name: str, *args: Any, **kwargs: Any) -> PropertyReport:
    """Run the checker registered under ``name``; unknown names raise.

    Positional/keyword arguments are forwarded to the checker verbatim
    (see :data:`PROPERTY_CHECKERS` for the per-checker signatures).
    """
    try:
        checker = PROPERTY_CHECKERS[name]
    except KeyError:
        known = ", ".join(sorted(PROPERTY_CHECKERS))
        raise KeyError(
            f"unknown property {name!r}; known: {known}") from None
    return checker(*args, **kwargs)

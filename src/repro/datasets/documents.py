"""Document×word set-valued arrays (Section III's structured exemption).

Section III: "if each key set of an undirected incidence array ``E`` is a
list of documents and the array entries are sets of words shared by
documents, then it is necessary that a word in ``E(i,j)`` and ``E(m,n)``
has to be in ``E(i,n)`` and ``E(m,j)``.  This structure means that when
multiplying ``EᵀE`` using ``⊕ = ∪`` and ``⊗ = ∩``, a nonempty set will
never be multiplied by a disjoint nonempty set" — so the zero-divisor
failure of ``∪.∩`` cannot bite, and "the array produced will contain as
entries a list of words shared by those two documents".

Here ``E(i, j) = W(i) ∩ W(j)`` for per-document word sets ``W`` (the
diagonal ``E(i, i) = W(i)`` included), which realises exactly the quoted
structural property: a word in ``E(i,j)`` lies in all of
``W(i), W(j)``, so membership propagates to every cross entry.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, List, Mapping, Sequence

from repro.arrays.associative import AssociativeArray

__all__ = [
    "example_word_sets",
    "random_word_sets",
    "shared_word_incidence",
    "expected_shared_adjacency",
]


def example_word_sets() -> Dict[str, FrozenSet[str]]:
    """A small curated corpus with overlapping vocabularies.

    Chosen so that some document pairs share words, some do not, and —
    crucially for exercising the exemption — there exist documents ``m``
    sharing *different* words with ``i`` and ``j`` (the configuration
    where unstructured set arrays hit the ``∪.∩`` zero-divisor failure).
    """
    return {
        "doc_graphs": frozenset({"graph", "matrix", "vertex", "edge"}),
        "doc_linear": frozenset({"matrix", "vector", "basis"}),
        "doc_music": frozenset({"genre", "writer", "track"}),
        "doc_meta": frozenset({"track", "edge", "schema"}),
        "doc_algebra": frozenset({"semiring", "matrix", "vertex"}),
    }


def random_word_sets(
    n_docs: int,
    vocabulary: Sequence[str],
    *,
    seed: int,
    p_word: float = 0.35,
    ensure_nonempty: bool = True,
) -> Dict[str, FrozenSet[str]]:
    """Random per-document word sets over a vocabulary (seeded)."""
    rng = random.Random(seed)
    out: Dict[str, FrozenSet[str]] = {}
    width = max(2, len(str(max(n_docs - 1, 0))))
    for i in range(n_docs):
        words = {w for w in vocabulary if rng.random() < p_word}
        if ensure_nonempty and not words:
            words = {rng.choice(list(vocabulary))}
        out[f"doc{i:0{width}d}"] = frozenset(words)
    return out


def shared_word_incidence(
    word_sets: Mapping[str, FrozenSet[str]],
) -> AssociativeArray:
    """The undirected incidence array ``E(i, j) = W(i) ∩ W(j)``.

    Set-valued with zero ``∅``; symmetric; diagonal ``E(i, i) = W(i)``.
    Only nonempty intersections are stored.
    """
    docs = sorted(word_sets)
    data = {}
    for i in docs:
        for j in docs:
            shared = frozenset(word_sets[i]) & frozenset(word_sets[j])
            if shared:
                data[(i, j)] = shared
    return AssociativeArray(data, row_keys=docs, col_keys=docs,
                            zero=frozenset())


def expected_shared_adjacency(
    word_sets: Mapping[str, FrozenSet[str]],
) -> AssociativeArray:
    """The paper's predicted ``EᵀE`` under ``∪.∩``: entries are exactly
    the word sets shared by the two documents (equal to ``E`` itself for
    this construction)."""
    return shared_word_incidence(word_sets)

"""Datasets used by the paper's evaluation and remarks.

* :mod:`repro.datasets.music` — the Figure 1 music-metadata table
  (22 tracks × 31 ``field|value`` columns), reconstructed from the
  figures; see DESIGN.md §4 for the reconstruction and its caveats.
* :mod:`repro.datasets.documents` — document×word set-valued arrays for
  Section III's ``∪.∩`` structured-data exemption.
"""

from repro.datasets.music import (
    music_e1,
    music_e1_weighted,
    music_e2,
    music_incidence,
    music_table,
)
from repro.datasets.documents import (
    example_word_sets,
    random_word_sets,
    shared_word_incidence,
)

__all__ = [
    "music_table",
    "music_incidence",
    "music_e1",
    "music_e2",
    "music_e1_weighted",
    "example_word_sets",
    "random_word_sets",
    "shared_word_incidence",
]

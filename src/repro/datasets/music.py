"""The Figure 1 music-metadata dataset.

22 tracks of the band Kitten ("ktn" in the row keys) with seven fields
(Artist, Date, Genre, Label, Release, Type, Writer), exploded per Figure 1
into a 22 × 31 sparse associative array with ``field|value`` column keys.

Reconstruction provenance (full derivation in DESIGN.md §4): the Genre and
Writer columns — the only fields entering Figures 2–5 — are pinned exactly
by cross-checking Figures 2–5; the remaining fields are the unique natural
assignment consistent with Figure 1's per-row nonzero counts
(:data:`FIGURE1_ROW_COUNTS`).  Two documented inferences: track
``031013ktnA1``'s third writer (Nicholas Johns) and track ``093012ktnA8``'s
genres (Electronic + Pop).

The track groups correspond to real releases: *Yesterday* (single),
*Japanese Eyes* (single), *Kill The Light* (EP), *Cut It Out* (EP, with two
remix tracks by Bandayde and Kastle) and *Like A Stranger* (LP, with a
writerless bonus cut of *Cut It Out/Sugar*).
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.arrays.associative import AssociativeArray
from repro.arrays.io import explode_table

__all__ = [
    "music_table",
    "music_incidence",
    "music_e1",
    "music_e2",
    "music_e1_weighted",
    "FIGURE1_ROW_COUNTS",
    "FIGURE4_GENRE_WEIGHTS",
    "GENRE_COLUMNS",
    "WRITER_COLUMNS",
]

#: Figure 1's per-row nonzero counts, in row-key order (used as a
#: reconstruction invariant and verified in the tests).
FIGURE1_ROW_COUNTS: Dict[str, int] = {
    "031013ktnA1": 10,
    "053013ktnA1": 9,
    "053013ktnA2": 7,
    "063012ktnA1": 8,
    "063012ktnA2": 8,
    "063012ktnA3": 8,
    "063012ktnA4": 8,
    "063012ktnA5": 8,
    "082812ktnA1": 9,
    "082812ktnA2": 8,
    "082812ktnA3": 8,
    "082812ktnA4": 8,
    "082812ktnA5": 9,
    "082812ktnA6": 8,
    "093012ktnA1": 9,
    "093012ktnA2": 9,
    "093012ktnA3": 10,
    "093012ktnA4": 9,
    "093012ktnA5": 9,
    "093012ktnA6": 9,
    "093012ktnA7": 9,
    "093012ktnA8": 6,
}

#: Figure 4's re-weighting of E1's nonzero values, per genre column.
FIGURE4_GENRE_WEIGHTS: Dict[str, int] = {
    "Genre|Electronic": 1,
    "Genre|Pop": 2,
    "Genre|Rock": 3,
}

GENRE_COLUMNS = ("Genre|Electronic", "Genre|Pop", "Genre|Rock")
WRITER_COLUMNS = (
    "Writer|Barrett Rich",
    "Writer|Chad Anderson",
    "Writer|Chloe Chaidez",
    "Writer|Julian Chaidez",
    "Writer|Nicholas Johns",
)

# Short-hand writer names used below.
_BR = "Barrett Rich"
_CA = "Chad Anderson"
_CC = "Chloe Chaidez"
_JC = "Julian Chaidez"
_NJ = "Nicholas Johns"


def music_table() -> Dict[str, Dict[str, Any]]:
    """The music table: ``{track: {field: value_or_values}}``.

    Feed to :func:`repro.arrays.io.explode_table` (or
    :class:`repro.core.pipeline.GraphConstructionPipeline`) to obtain the
    Figure 1 sparse view.
    """
    table: Dict[str, Dict[str, Any]] = {}

    # -- Yesterday (single, 2013-10-03) ------------------------------------
    table["031013ktnA1"] = {
        "Artist": "Kitten",
        "Date": "2013-10-03",
        "Genre": "Rock",
        "Label": ["Elektra Records", "Atlantic"],
        "Release": "Yesterday",
        "Type": "Single",
        "Writer": [_CA, _CC, _NJ],
    }

    # -- Japanese Eyes (single, 2013-05-30) ---------------------------------
    table["053013ktnA1"] = {
        "Artist": "Kitten",
        "Date": "2013-05-30",
        "Genre": "Electronic",
        "Label": ["Atlantic", "Elektra Records"],
        "Release": "Japanese Eyes",
        "Type": "Single",
        "Writer": [_BR, _JC],
    }
    table["053013ktnA2"] = {
        "Artist": "Kitten",
        "Date": "2013-05-30",
        "Genre": "Electronic",
        "Label": "Atlantic",
        "Release": "Japanese Eyes",
        "Type": "Single",
        "Writer": _NJ,
    }

    # -- Kill The Light EP (2010-06-30, The Control Group) -------------------
    for i in range(1, 6):
        table[f"063012ktnA{i}"] = {
            "Artist": "Kitten",
            "Date": "2010-06-30",
            "Genre": "Rock",
            "Label": "The Control Group",
            "Release": "Kill The Light",
            "Type": "EP",
            "Writer": [_CA, _CC],
        }

    # -- Cut It Out EP (2012-08-28, Atlantic) + remixes ----------------------
    cut_it_out_writers = {
        1: [_CA, _CC, _JC],
        2: [_CA, _CC],
        3: [_CA, _CC],
        4: [_CA, _CC],
    }
    for i, writers in cut_it_out_writers.items():
        table[f"082812ktnA{i}"] = {
            "Artist": "Kitten",
            "Date": "2012-08-28",
            "Genre": "Pop",
            "Label": "Atlantic",
            "Release": "Cut It Out",
            "Type": "EP",
            "Writer": writers,
        }
    table["082812ktnA5"] = {
        "Artist": "Bandayde",
        "Date": "2012-08-28",
        "Genre": "Pop",
        "Label": "Free",
        "Release": "Cut It Out Remixes",
        "Type": "Single",
        "Writer": [_CA, _CC, _JC],
    }
    table["082812ktnA6"] = {
        "Artist": "Kastle",
        "Date": "2012-09-16",
        "Genre": "Pop",
        "Label": "Free",
        "Release": "Cut It Out Remixes",
        "Type": "Single",
        "Writer": [_CA, _CC],
    }

    # -- Like A Stranger LP (2013-09-30, Elektra Records) --------------------
    for i in range(1, 8):
        writers = [_CA, _CC, _JC] if i == 3 else [_CA, _CC]
        table[f"093012ktnA{i}"] = {
            "Artist": "Kitten",
            "Date": "2013-09-30",
            "Genre": ["Electronic", "Pop"],
            "Label": "Elektra Records",
            "Release": "Like A Stranger",
            "Type": "LP",
            "Writer": writers,
        }
    # Writerless, label-less bonus cut (see DESIGN.md §4: its zero writer
    # count and missing label are *forced* by the Figure 3 row sums and the
    # Figure 1 row count of 6).
    table["093012ktnA8"] = {
        "Artist": "Kitten",
        "Date": "2013-09-30",
        "Genre": ["Electronic", "Pop"],
        "Release": "Cut It Out/Sugar",
        "Type": "Single",
    }
    return table


def music_incidence() -> AssociativeArray:
    """Figure 1's associative array ``E``: the exploded music table."""
    return explode_table(music_table())


def music_e1() -> AssociativeArray:
    """Figure 2's ``E1 = E(:, 'Genre|A : Genre|Z')`` (22 × 3, unit values)."""
    return music_incidence().select(":", "Genre|A : Genre|Z")


def music_e2() -> AssociativeArray:
    """Figure 2's ``E2 = E(:, 'Writer|A : Writer|Z')`` (22 × 5, unit values)."""
    return music_incidence().select(":", "Writer|A : Writer|Z")


def music_e1_weighted() -> AssociativeArray:
    """Figure 4's ``E1``: nonzero genre entries re-weighted 1/2/3.

    "a value of 2 is given to the non-zero values in the column Genre|Pop
    and a value of 3 is given to the non-zero values in the column
    Genre|Rock" (Electronic keeps 1).
    """
    e1 = music_e1()
    data = {(r, c): FIGURE4_GENRE_WEIGHTS[c] * v
            for (r, c), v in e1.to_dict().items()}
    return AssociativeArray(data, row_keys=e1.row_keys,
                            col_keys=e1.col_keys, zero=e1.zero)

"""repro — constructing adjacency arrays from incidence arrays.

A from-scratch Python implementation of

    Hayden Jananthan, Karia Dibert, Jeremy Kepner,
    *Constructing Adjacency Arrays from Incidence Arrays*,
    IPDPS Workshops / IPPS 2017 (arXiv:1702.07832),

comprising a D4M-style associative-array library over arbitrary value
algebras, a certification engine for the paper's Theorem II.1 criteria
(with constructive Lemma II.2–II.4 witnesses), an edge-keyed multigraph
substrate, semiring graph algorithms, an out-of-core sharded
construction engine (:mod:`repro.shard`), a concurrent adjacency query
service with snapshot isolation (:mod:`repro.serve`), a lazy expression
engine with certification-gated rewrites and cost-based execution
(:mod:`repro.expr`), and harnesses reproducing every figure of the
paper.

Quickstart
----------
>>> import repro
>>> g = repro.EdgeKeyedDigraph([("e1", "alice", "bob"),
...                             ("e2", "alice", "bob"),
...                             ("e3", "bob", "carol")])
>>> eout, ein = repro.incidence_arrays(g)
>>> a = repro.adjacency_array(eout, ein, repro.get_op_pair("plus_times"))
>>> a["alice", "bob"]
2
>>> repro.is_adjacency_array_of_graph(a, g)
True

See ``examples/`` for the full Figure 1–5 music pipeline, the semiring
gallery, and the set-valued document example.
"""

from repro.values import (
    BinaryOp,
    Domain,
    OpPair,
    get_domain,
    get_op_pair,
    list_domains,
    list_op_pairs,
    PAPER_FIGURE_PAIRS,
)
from repro.values.semiring import PAPER_FIGURE_STACKS
from repro.arrays import (
    AssociativeArray,
    KeySet,
    explode_table,
    format_array,
    format_stacked,
    multiply,
)
from repro.graphs import (
    EdgeKeyedDigraph,
    erdos_renyi_multigraph,
    graph_from_incidence,
    incidence_arrays,
    rmat_multigraph,
)
from repro.core import (
    Certification,
    GraphConstructionPipeline,
    StreamingAdjacencyBuilder,
    Witness,
    adjacency_array,
    certify,
    check_criteria,
    correlate,
    is_adjacency_array_of,
    is_adjacency_array_of_graph,
    reverse_adjacency_array,
)
from repro.shard import (
    ShardedAdjacencyPlan,
    ShardedResult,
    ShardManifest,
    sharded_adjacency,
)
from repro.serve import AdjacencyService, Snapshot
from repro.expr import LazyArray, evaluate, explain, lazy
from repro.arrays.kron import kron, kron_power, kronecker_graph
from repro.arrays.reductions import reduce_cols, reduce_rows

# Exotic and extension op-pairs register themselves on import.
from repro.values import exotic as _exotic  # noqa: F401
from repro.values import extensions as _extensions  # noqa: F401

__version__ = "1.3.0"

__all__ = [
    "__version__",
    # values
    "BinaryOp",
    "Domain",
    "OpPair",
    "get_domain",
    "get_op_pair",
    "list_domains",
    "list_op_pairs",
    "PAPER_FIGURE_PAIRS",
    "PAPER_FIGURE_STACKS",
    # arrays
    "AssociativeArray",
    "KeySet",
    "explode_table",
    "format_array",
    "format_stacked",
    "multiply",
    # graphs
    "EdgeKeyedDigraph",
    "incidence_arrays",
    "graph_from_incidence",
    "erdos_renyi_multigraph",
    "rmat_multigraph",
    # core
    "adjacency_array",
    "reverse_adjacency_array",
    "correlate",
    "is_adjacency_array_of",
    "is_adjacency_array_of_graph",
    "certify",
    "check_criteria",
    "Certification",
    "Witness",
    "GraphConstructionPipeline",
    "StreamingAdjacencyBuilder",
    # shard (out-of-core construction)
    "ShardedAdjacencyPlan",
    "ShardedResult",
    "ShardManifest",
    "sharded_adjacency",
    # serve (concurrent query service)
    "AdjacencyService",
    "Snapshot",
    # expr (lazy expressions + optimizer)
    "LazyArray",
    "lazy",
    "evaluate",
    "explain",
    "kron",
    "kron_power",
    "kronecker_graph",
    "reduce_rows",
    "reduce_cols",
]

"""Structured event log: a bounded, thread-safe JSONL event ring.

Metrics say *how much*, traces say *where the time went*; the event
log says *what happened* — the discrete state changes an operator
greps for when a dashboard looks wrong:

* ``epoch_published`` — a service folded its delta and swapped in a
  new snapshot (epoch, delta size, duration, merged nnz);
* ``rewrite_refused`` — the expression optimizer matched a rule
  structurally but the certification gate vetoed it, with the property
  evidence;
* ``shard_spill`` — a shard build or merge level spilled bytes to
  disk;
* ``cache_invalidation`` — a publication reclaimed superseded query
  cache entries;
* ``bench_run`` — the versioned harness completed a run;
* ``profile.start`` / ``profile.stop`` — a sampling-profiler session
  opened or closed (:mod:`repro.obs.profile`), bracketing the window
  whose samples the resulting profile covers (the stop event carries
  sample count and the self-measured overhead ratio).

Every event is stamped with a monotone sequence number, a UNIX
timestamp, and — when one is active — the current trace/span ids
(:func:`repro.obs.trace.current_ids`), so an event cross-links to the
span tree of the request that caused it.  The ring is bounded
(:class:`EventLog` drops the oldest events past ``capacity`` and
counts the drops), so instrumented library code can emit freely
without unbounded growth.

Surfaces: ``GET /events`` (``?since=SEQ&kind=KIND&limit=N``) and
``repro events [--follow]``; :meth:`EventLog.to_jsonl` renders the
canonical one-object-per-line form.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.obs.trace import current_ids

__all__ = ["Event", "EventLog", "get_event_log", "emit_event"]

#: Default ring capacity — deep enough for a busy service's recent
#: history, bounded enough to never matter for memory.
DEFAULT_CAPACITY = 1024


def _kind_predicate(spec: str):
    """Compile a kind-filter spec into a predicate.

    A spec is a comma-separated list of alternatives; each alternative
    matches exactly, or — with a trailing ``*`` — as a prefix.  So
    ``"loadgen.*"`` follows every load-generator event and
    ``"loadgen.slo_breach,bench_run"`` watches exactly two kinds.
    Dotted event families (``loadgen.step``, ``http.log``) make the
    prefix form the natural "one subsystem, all kinds" filter.
    """
    exact = set()
    prefixes: List[str] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if part.endswith("*"):
            prefixes.append(part[:-1])
        else:
            exact.add(part)

    def match(kind: str) -> bool:
        return kind in exact or any(kind.startswith(p)
                                    for p in prefixes)
    return match


class Event:
    """One immutable log entry."""

    __slots__ = ("seq", "kind", "timestamp", "trace_id", "span_id",
                 "fields")

    def __init__(self, seq: int, kind: str, timestamp: float,
                 trace_id: Optional[str], span_id: Optional[str],
                 fields: Dict[str, Any]) -> None:
        self.seq = seq
        self.kind = kind
        self.timestamp = timestamp
        self.trace_id = trace_id
        self.span_id = span_id
        self.fields = fields

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "seq": self.seq,
            "kind": self.kind,
            "timestamp": round(self.timestamp, 6),
        }
        if self.trace_id is not None:
            doc["trace_id"] = self.trace_id
            doc["span_id"] = self.span_id
        doc.update(self.fields)
        return doc

    def __repr__(self) -> str:   # pragma: no cover - cosmetic
        return f"Event(#{self.seq} {self.kind})"


class EventLog:
    """Bounded, thread-safe ring of structured events.

    ``capacity`` bounds live entries; older events are dropped (and
    counted) as new ones arrive.  Sequence numbers are monotone across
    drops, so ``events(since=seq)`` pagination never replays and a gap
    between a reader's last seq and :meth:`retention`'s ``first_seq``
    is an honest "you missed N events" signal.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._events: Deque[Event] = deque(maxlen=capacity)
        self._seq = 0
        self._dropped = 0

    # -- writes ---------------------------------------------------------
    def emit(self, kind: str, **fields: Any) -> Event:
        """Append one event; stamps seq, timestamp, and the active
        trace/span ids.  Field values should be JSON-ready scalars."""
        ids = current_ids()
        with self._lock:
            self._seq += 1
            if len(self._events) == self.capacity:
                self._dropped += 1
            event = Event(self._seq, kind, time.time(),
                          ids[0] if ids else None,
                          ids[1] if ids else None, fields)
            self._events.append(event)
        return event

    def clear(self) -> None:
        """Drop every stored event (sequence numbering continues)."""
        with self._lock:
            self._events.clear()

    # -- reads ----------------------------------------------------------
    def events(self, *, since: Optional[int] = None,
               kind: Optional[str] = None,
               limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Stored events as dicts, oldest first.

        ``since`` keeps only events with ``seq > since`` (the follow
        cursor); ``kind`` filters by event kind — exact, a trailing-``*``
        prefix (``loadgen.*``), or a comma-separated list of either;
        ``limit`` keeps the *newest* N after filtering.
        """
        with self._lock:
            rows = list(self._events)
        if since is not None:
            rows = [e for e in rows if e.seq > since]
        if kind is not None:
            match = _kind_predicate(kind)
            rows = [e for e in rows if match(e.kind)]
        if limit is not None and limit >= 0:
            rows = rows[-limit:] if limit else []
        return [e.to_dict() for e in rows]

    def to_jsonl(self, **filters: Any) -> str:
        """The filtered events as JSON Lines (one object per line)."""
        return "\n".join(json.dumps(doc, sort_keys=True, default=str)
                         for doc in self.events(**filters))

    def retention(self) -> Dict[str, Any]:
        """Ring bounds: capacity, occupancy, seq window, drop count."""
        with self._lock:
            rows = list(self._events)
            seq, dropped = self._seq, self._dropped
        return {
            "capacity": self.capacity,
            "stored": len(rows),
            "first_seq": rows[0].seq if rows else None,
            "last_seq": seq if rows else None,
            "dropped": dropped,
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


#: The process-global event log instrumented library code emits to.
_GLOBAL_LOG = EventLog()


def get_event_log() -> EventLog:
    """The process-global event log (what ``GET /events`` serves)."""
    return _GLOBAL_LOG


def emit_event(kind: str, **fields: Any) -> Event:
    """Emit onto the process-global log — the one-liner for library
    instrumentation sites."""
    return _GLOBAL_LOG.emit(kind, **fields)

"""``repro.obs`` — unified observability: metrics, tracing, benchmarks.

The measurement substrate the ROADMAP's scaling items gate on.  Three
dependency-free pieces, threaded through every hot layer:

* :mod:`repro.obs.metrics` — a thread-safe registry of counters,
  gauges, and fixed-bucket histograms (with percentile estimation),
  rendered as JSON (``/stats``) or Prometheus text (``/metrics``).
  Library-level instruments (expression rewrites, kernel timings,
  shard build/merge/spill) live on the process-global registry
  (:func:`~repro.obs.metrics.get_registry`); per-service instruments
  (cache hit ratio, per-endpoint latency) live on each service's own.
* :mod:`repro.obs.trace` — span tracing with ``contextvars``
  propagation: one HTTP k-hop query produces one trace tree (handler →
  cache → snapshot → expr plan → kernel), dumpable as JSON
  (``GET /trace/<id>``) and renderable by ``repro trace``.
* :mod:`repro.obs.bench` — the versioned benchmark harness behind
  ``repro bench``: run-id'd runs with locked manifests (git sha,
  machine info, config hash), ``BENCH_<runid>.json`` + ``report.md``
  artifacts, and ``--compare`` regression gates consumed by CI against
  the committed ``BENCH_baseline.json``.
"""

from repro.obs.bench import (
    BenchError,
    CompareResult,
    DEFAULT_THRESHOLD,
    MetricDelta,
    compare,
    config_hash,
    discover_benchmarks,
    load_run,
    render_markdown,
    run_benchmarks,
    run_metadata,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    render_prometheus,
)
from repro.obs.trace import Span, Tracer, current_span, render_trace, span

__all__ = [
    "BenchError",
    "CompareResult",
    "Counter",
    "DEFAULT_THRESHOLD",
    "Gauge",
    "Histogram",
    "MetricDelta",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "compare",
    "config_hash",
    "current_span",
    "discover_benchmarks",
    "get_registry",
    "load_run",
    "render_markdown",
    "render_prometheus",
    "render_trace",
    "run_benchmarks",
    "run_metadata",
    "span",
]

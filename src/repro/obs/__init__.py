"""``repro.obs`` — unified observability: metrics, tracing, benchmarks.

The measurement substrate the ROADMAP's scaling items gate on.  Five
dependency-free pieces, threaded through every hot layer:

* :mod:`repro.obs.metrics` — a thread-safe registry of counters,
  gauges, and fixed-bucket histograms (with percentile estimation and
  per-bucket trace exemplars), rendered as JSON (``/stats``) or
  Prometheus/OpenMetrics text (``/metrics``).  Library-level
  instruments (expression rewrites, kernel timings, shard
  build/merge/spill) live on the process-global registry
  (:func:`~repro.obs.metrics.get_registry`); per-service instruments
  (cache hit ratio, per-endpoint latency) live on each service's own.
* :mod:`repro.obs.trace` — span tracing with ``contextvars``
  propagation: one HTTP k-hop query produces one trace tree (handler →
  cache → snapshot → expr plan → kernel), dumpable as JSON
  (``GET /trace/<id>``) and renderable by ``repro trace``; misses
  raise :class:`~repro.obs.trace.TraceNotFound` with the ring's
  retention bounds.
* :mod:`repro.obs.events` — a bounded, thread-safe structured event
  log (epoch publications, rewrite refusals, shard spills, cache
  invalidations, bench runs), each event stamped with the active trace
  id; served by ``GET /events`` and ``repro events --follow``.
* :mod:`repro.obs.calibration` — the persistent kernel-calibration
  store: EWMA seconds-per-term per (kernel, machine fingerprint),
  saved to a versioned JSON file so a *cold* process's first
  ``explain()`` plans with measured throughput.
* :mod:`repro.obs.bench` — the versioned benchmark harness behind
  ``repro bench``: run-id'd runs with locked manifests (git sha,
  machine info, config hash), ``BENCH_<runid>.json`` + ``report.md``
  + calibration-snapshot artifacts, ``--compare`` regression gates
  with exemplar trace links, and the ``--baseline-refresh`` lifecycle
  (provenance-stamped re-locking of ``BENCH_baseline.json``).
* :mod:`repro.obs.loadgen` — workload capture (sampled, schema-
  versioned JSONL query logs off a live service), synthetic query-mix
  generation, the open-loop load generator (Poisson/fixed-rate
  arrival schedules, coordinated-omission-corrected latency on wide
  log-bucketed histograms), and the SLO-gated saturation sweep behind
  ``repro loadgen record|replay|sweep`` and ``bench_loadgen``'s
  ``sustainable_qps`` headline.
* :mod:`repro.obs.profile` — the attribution layer: a stdlib-only
  sampling profiler (daemon thread over ``sys._current_frames()``)
  aggregating collapsed stacks into flamegraphs (HTML/text), per-span
  CPU attribution stamped into trace trees, ``tracemalloc`` heap-growth
  accounting (:func:`~repro.obs.profile.heap_delta`), self-measured
  overhead ratios, and function-level profile diffs behind
  ``repro profile start|stop|dump|diff``, ``GET /profile[/flame]``,
  and the bench harness's per-run profile artifacts.
"""

from repro.obs.bench import (
    BenchError,
    CompareResult,
    DEFAULT_THRESHOLD,
    MetricDelta,
    compare,
    config_hash,
    describe_profile_diff,
    describe_with_exemplars,
    discover_benchmarks,
    harvest_exemplars,
    load_run,
    refresh_baseline,
    render_markdown,
    run_benchmarks,
    run_metadata,
)
from repro.obs.calibration import (
    CalibrationStore,
    calibration_enabled,
    get_calibration_store,
    machine_fingerprint,
    reset_calibration_store,
)
from repro.obs.events import Event, EventLog, emit_event, get_event_log
from repro.obs.loadgen import (
    SLO,
    HTTPTarget,
    LoadgenError,
    ServiceTarget,
    Workload,
    WorkloadRecorder,
    arrival_offsets,
    render_replay,
    render_sweep,
    replay,
    sweep,
    synthesize,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS_WIDE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    install_process_gauges,
    log_buckets,
    render_prometheus,
)
from repro.obs.profile import (
    DEFAULT_HZ,
    NoActiveProfile,
    Profile,
    ProfileError,
    ProfileRing,
    ProfileSession,
    active_session,
    diff_function_tables,
    get_profile_ring,
    heap_delta,
    load_profile_functions,
    parse_collapsed,
    render_flamegraph_html,
    render_flamegraph_text,
    render_profile_diff,
    start_profile,
    stop_profile,
)
from repro.obs.trace import (
    Span,
    TraceNotFound,
    Tracer,
    current_ids,
    current_span,
    get_span_observer,
    render_trace,
    set_span_observer,
    span,
)

__all__ = [
    "BenchError",
    "CalibrationStore",
    "CompareResult",
    "Counter",
    "DEFAULT_HZ",
    "DEFAULT_THRESHOLD",
    "Event",
    "EventLog",
    "Gauge",
    "HTTPTarget",
    "Histogram",
    "LATENCY_BUCKETS_WIDE",
    "LoadgenError",
    "MetricDelta",
    "MetricsRegistry",
    "NoActiveProfile",
    "Profile",
    "ProfileError",
    "ProfileRing",
    "ProfileSession",
    "SLO",
    "ServiceTarget",
    "Span",
    "TraceNotFound",
    "Tracer",
    "Workload",
    "WorkloadRecorder",
    "active_session",
    "arrival_offsets",
    "calibration_enabled",
    "compare",
    "config_hash",
    "current_ids",
    "current_span",
    "describe_profile_diff",
    "describe_with_exemplars",
    "diff_function_tables",
    "discover_benchmarks",
    "emit_event",
    "get_calibration_store",
    "get_event_log",
    "get_profile_ring",
    "get_registry",
    "get_span_observer",
    "harvest_exemplars",
    "heap_delta",
    "install_process_gauges",
    "load_profile_functions",
    "load_run",
    "log_buckets",
    "machine_fingerprint",
    "parse_collapsed",
    "refresh_baseline",
    "render_flamegraph_html",
    "render_flamegraph_text",
    "render_markdown",
    "render_profile_diff",
    "render_prometheus",
    "render_replay",
    "render_sweep",
    "render_trace",
    "replay",
    "reset_calibration_store",
    "run_benchmarks",
    "run_metadata",
    "set_span_observer",
    "span",
    "start_profile",
    "stop_profile",
    "sweep",
    "synthesize",
]

"""``repro.obs`` — unified observability: metrics, tracing, benchmarks.

The measurement substrate the ROADMAP's scaling items gate on.  Five
dependency-free pieces, threaded through every hot layer:

* :mod:`repro.obs.metrics` — a thread-safe registry of counters,
  gauges, and fixed-bucket histograms (with percentile estimation and
  per-bucket trace exemplars), rendered as JSON (``/stats``) or
  Prometheus/OpenMetrics text (``/metrics``).  Library-level
  instruments (expression rewrites, kernel timings, shard
  build/merge/spill) live on the process-global registry
  (:func:`~repro.obs.metrics.get_registry`); per-service instruments
  (cache hit ratio, per-endpoint latency) live on each service's own.
* :mod:`repro.obs.trace` — span tracing with ``contextvars``
  propagation: one HTTP k-hop query produces one trace tree (handler →
  cache → snapshot → expr plan → kernel), dumpable as JSON
  (``GET /trace/<id>``) and renderable by ``repro trace``; misses
  raise :class:`~repro.obs.trace.TraceNotFound` with the ring's
  retention bounds.
* :mod:`repro.obs.events` — a bounded, thread-safe structured event
  log (epoch publications, rewrite refusals, shard spills, cache
  invalidations, bench runs), each event stamped with the active trace
  id; served by ``GET /events`` and ``repro events --follow``.
* :mod:`repro.obs.calibration` — the persistent kernel-calibration
  store: EWMA seconds-per-term per (kernel, machine fingerprint),
  saved to a versioned JSON file so a *cold* process's first
  ``explain()`` plans with measured throughput.
* :mod:`repro.obs.bench` — the versioned benchmark harness behind
  ``repro bench``: run-id'd runs with locked manifests (git sha,
  machine info, config hash), ``BENCH_<runid>.json`` + ``report.md``
  + calibration-snapshot artifacts, ``--compare`` regression gates
  with exemplar trace links, and the ``--baseline-refresh`` lifecycle
  (provenance-stamped re-locking of ``BENCH_baseline.json``).
* :mod:`repro.obs.loadgen` — workload capture (sampled, schema-
  versioned JSONL query logs off a live service), synthetic query-mix
  generation, the open-loop load generator (Poisson/fixed-rate
  arrival schedules, coordinated-omission-corrected latency on wide
  log-bucketed histograms), and the SLO-gated saturation sweep behind
  ``repro loadgen record|replay|sweep`` and ``bench_loadgen``'s
  ``sustainable_qps`` headline.
"""

from repro.obs.bench import (
    BenchError,
    CompareResult,
    DEFAULT_THRESHOLD,
    MetricDelta,
    compare,
    config_hash,
    describe_with_exemplars,
    discover_benchmarks,
    harvest_exemplars,
    load_run,
    refresh_baseline,
    render_markdown,
    run_benchmarks,
    run_metadata,
)
from repro.obs.calibration import (
    CalibrationStore,
    calibration_enabled,
    get_calibration_store,
    machine_fingerprint,
    reset_calibration_store,
)
from repro.obs.events import Event, EventLog, emit_event, get_event_log
from repro.obs.loadgen import (
    SLO,
    HTTPTarget,
    LoadgenError,
    ServiceTarget,
    Workload,
    WorkloadRecorder,
    arrival_offsets,
    render_replay,
    render_sweep,
    replay,
    sweep,
    synthesize,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS_WIDE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    log_buckets,
    render_prometheus,
)
from repro.obs.trace import (
    Span,
    TraceNotFound,
    Tracer,
    current_ids,
    current_span,
    render_trace,
    span,
)

__all__ = [
    "BenchError",
    "CalibrationStore",
    "CompareResult",
    "Counter",
    "DEFAULT_THRESHOLD",
    "Event",
    "EventLog",
    "Gauge",
    "HTTPTarget",
    "Histogram",
    "LATENCY_BUCKETS_WIDE",
    "LoadgenError",
    "MetricDelta",
    "MetricsRegistry",
    "SLO",
    "ServiceTarget",
    "Span",
    "TraceNotFound",
    "Tracer",
    "Workload",
    "WorkloadRecorder",
    "arrival_offsets",
    "calibration_enabled",
    "compare",
    "config_hash",
    "current_ids",
    "current_span",
    "describe_with_exemplars",
    "discover_benchmarks",
    "emit_event",
    "get_calibration_store",
    "get_event_log",
    "get_registry",
    "harvest_exemplars",
    "load_run",
    "log_buckets",
    "machine_fingerprint",
    "refresh_baseline",
    "render_markdown",
    "render_prometheus",
    "render_replay",
    "render_sweep",
    "render_trace",
    "replay",
    "reset_calibration_store",
    "run_benchmarks",
    "run_metadata",
    "span",
    "sweep",
    "synthesize",
]

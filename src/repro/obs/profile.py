"""Continuous sampling profiler with per-span CPU attribution.

The attribution half of the observability stack: the bench gate and the
loadgen sweep can *detect* a slowdown, this module says **where the
time and memory went** — stdlib only, always-on-capable, honest about
its own overhead.

* **Sampling** — a daemon thread walks :func:`sys._current_frames` at a
  configurable rate (:data:`DEFAULT_HZ`), aggregating each thread's
  stack into **collapsed-stack** form (Brendan Gregg's
  ``root;child;leaf count`` lines), renderable as a self-contained HTML
  flamegraph (:func:`render_flamegraph_html`) or a text tree
  (:func:`render_flamegraph_text`).  No ``threading.setprofile`` /
  ``sys.settrace`` anywhere: unprofiled code runs untouched, and even
  profiled code pays only the GIL handoffs the sampler tick costs.
* **Per-span CPU attribution** — while a session is active, a span
  observer (:func:`repro.obs.trace.set_span_observer`) mirrors each
  thread's innermost open span into a table the sampler can read
  (``contextvars`` — the mechanism behind
  :func:`repro.obs.trace.current_ids` — are invisible across threads,
  so the push/pop feed is the cross-thread spelling of the same hook).
  Samples land on the innermost span; when a span closes its sampled
  CPU is stamped into its attrs (``cpu_samples``, ``cpu_ms``), so
  ``GET /trace/<id>`` and ``repro trace`` report sampled CPU next to
  wall time with no extra plumbing.
* **Memory accounting** — with ``memory=True`` the session runs
  :mod:`tracemalloc` and :func:`heap_delta` snapshots heap growth
  around labelled blocks (epoch publications, bench runs), recording
  the per-site top growers.  Off by default: tracemalloc taxes every
  allocation, and the sampler alone is the always-on mode.
* **Honesty** — every dump carries ``overhead_ratio``: the sampler's
  self-measured frame-walk time divided by the session's wall time.
  CI gates this under 10% on the bench workload.

One session per process (the sampler is process-wide);
:func:`start_profile` / :func:`stop_profile` manage it, finished
profiles land in a bounded ring (:func:`get_profile_ring`) for
``GET /profile/flame`` after the fact, and ``profile.start`` /
``profile.stop`` events mark the window on the event ring.

Surfaces: ``GET /profile`` (+ structured 409 when idle),
``GET /profile/flame``, ``POST /profile/start|stop``, and
``repro profile start|stop|dump|diff``.
"""

from __future__ import annotations

import json
import sys
import threading
import time
import tracemalloc
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.events import emit_event
from repro.obs.trace import Span, set_span_observer

__all__ = [
    "DEFAULT_HZ",
    "ProfileError",
    "NoActiveProfile",
    "Profile",
    "ProfileRing",
    "ProfileSession",
    "start_profile",
    "stop_profile",
    "active_session",
    "get_profile_ring",
    "heap_delta",
    "parse_collapsed",
    "function_totals",
    "diff_function_tables",
    "render_profile_diff",
    "render_flamegraph_html",
    "render_flamegraph_text",
    "load_profile_functions",
]

#: Default sampling rate.  97 Hz is the profiler folklore choice — a
#: prime just under 100 so samples never phase-lock with 10 ms / 100 Hz
#: periodic work and misreport it as 0% or 100%.
DEFAULT_HZ = 97

#: Frames kept per sampled stack before truncation (deep k-hop chains
#: are real; unbounded recursion is not worth sampling forever).
DEFAULT_MAX_DEPTH = 512

#: How the CLI starts a session — named in the structured 409 so the
#: error teaches the fix.
START_HINT = ("no profile session is active; start one with "
              "`repro profile start` (POST /profile/start)")


class ProfileError(RuntimeError):
    """Raised for profiler misuse: double starts, bad rates, bad dumps."""


class NoActiveProfile(ProfileError):
    """Stop/dump with no session running; carries :data:`START_HINT`."""

    def __init__(self, message: str = START_HINT) -> None:
        super().__init__(message)


# ---------------------------------------------------------------------------
# Span observer: the cross-thread "which span is active" table
# ---------------------------------------------------------------------------

class _SpanTracker:
    """Mirror of each thread's innermost open span, plus sample counts.

    ``span_pushed``/``span_popped`` run on the *instrumented* threads
    (dict writes, GIL-atomic); :meth:`attribute` runs on the sampler
    thread.  On pop, the span's accumulated samples are stamped into
    its attrs — after that the finished trace tree itself carries the
    CPU attribution.
    """

    def __init__(self, hz: float, max_completed: int = 1024) -> None:
        self._hz = hz
        self._active: Dict[int, Span] = {}
        self._counts: Dict[int, int] = {}
        self.completed: Deque[Dict[str, Any]] = deque(maxlen=max_completed)

    # -- called from instrumented threads (via trace.set_span_observer)
    def span_pushed(self, span: Span) -> None:
        self._active[threading.get_ident()] = span

    def span_popped(self, span: Span) -> None:
        ident = threading.get_ident()
        if span.parent is not None:
            self._active[ident] = span.parent
        else:
            self._active.pop(ident, None)
        samples = self._counts.pop(id(span), 0)
        if samples:
            cpu_ms = round(samples * 1000.0 / self._hz, 3)
            span.set_attr("cpu_samples", samples)
            span.set_attr("cpu_ms", cpu_ms)
            self.completed.append({
                "trace_id": span.trace_id,
                "span_id": span.span_id,
                "name": span.name,
                "cpu_samples": samples,
                "cpu_ms": cpu_ms,
            })

    # -- called from the sampler thread
    def attribute(self, ident: int) -> None:
        span = self._active.get(ident)
        if span is not None:
            key = id(span)
            self._counts[key] = self._counts.get(key, 0) + 1

    def live_attribution(self) -> List[Dict[str, Any]]:
        """Samples on spans still open right now (a live dump's view)."""
        out: List[Dict[str, Any]] = []
        for span in list(self._active.values()):
            samples = self._counts.get(id(span), 0)
            if samples:
                out.append({
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                    "name": span.name,
                    "cpu_samples": samples,
                    "cpu_ms": round(samples * 1000.0 / self._hz, 3),
                })
        return out


# ---------------------------------------------------------------------------
# The sampler thread
# ---------------------------------------------------------------------------

def _frame_label(frame: Any) -> str:
    """One stack entry: ``module.qualname`` (readable, low cardinality —
    no filenames or line numbers, so recursion folds onto one frame)."""
    code = frame.f_code
    name = getattr(code, "co_qualname", None) or code.co_name
    module = frame.f_globals.get("__name__") or "?"
    return f"{module}.{name}"


class _Sampler(threading.Thread):
    """Walks ``sys._current_frames()`` at the session's rate.

    Runs as a daemon so a crashed owner never leaves a non-daemon
    thread pinning the interpreter.  The tick loop drops missed ticks
    instead of bunching them — under a long GIL hold the sampler falls
    behind honestly rather than firing a catch-up burst that would
    overweight whatever ran right after.
    """

    def __init__(self, session: "ProfileSession") -> None:
        super().__init__(name="repro-profile-sampler", daemon=True)
        self._session = session
        # Not named ``_stop``: threading.Thread owns a private method
        # by that name and shadowing it breaks ``join()``.
        self._halt = threading.Event()

    def stop(self) -> None:
        self._halt.set()

    def run(self) -> None:
        interval = 1.0 / self._session.hz
        next_tick = time.perf_counter() + interval
        while not self._halt.is_set():
            delay = next_tick - time.perf_counter()
            if delay > 0:
                self._halt.wait(delay)
            if self._halt.is_set():
                return
            t0 = time.perf_counter()
            self._session._take_sample(self.ident)
            now = time.perf_counter()
            self._session._walk_seconds += now - t0
            next_tick += interval
            if next_tick < now:   # behind: drop missed ticks
                next_tick = now + interval


# ---------------------------------------------------------------------------
# Collapsed-stack utilities (shared by sessions, dumps, and the CLI)
# ---------------------------------------------------------------------------

def parse_collapsed(text: str) -> Dict[Tuple[str, ...], int]:
    """Parse Brendan Gregg collapsed-stack lines back into stack counts.

    Each non-empty line is ``frame;frame;...;frame count`` — the exact
    inverse of :meth:`Profile.collapsed`, so a dumped file round-trips
    into :func:`render_flamegraph_html` and :func:`diff_function_tables`.
    """
    stacks: Dict[Tuple[str, ...], int] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        stack_text, _, count_text = line.rpartition(" ")
        if not stack_text:
            raise ProfileError(
                f"line {lineno}: expected 'frame;...;frame count', "
                f"got {line!r}")
        try:
            count = int(count_text)
        except ValueError:
            raise ProfileError(
                f"line {lineno}: sample count must be an integer, "
                f"got {count_text!r}") from None
        key = tuple(stack_text.split(";"))
        stacks[key] = stacks.get(key, 0) + count
    return stacks


def function_totals(stacks: Dict[Tuple[str, ...], int]
                    ) -> Dict[str, Dict[str, int]]:
    """Per-function sample totals from stack counts.

    ``self`` counts samples where the function was the running leaf;
    ``total`` counts samples where it appeared anywhere on the stack
    (each function counted once per sample, however often recursion
    repeats it).
    """
    out: Dict[str, Dict[str, int]] = {}
    for stack, count in stacks.items():
        if not stack:
            continue
        leaf = stack[-1]
        row = out.setdefault(leaf, {"self": 0, "total": 0})
        row["self"] += count
        for frame in set(stack):
            out.setdefault(frame, {"self": 0, "total": 0})["total"] += count
    return out


def diff_function_tables(
    baseline: Dict[str, Dict[str, Any]],
    candidate: Dict[str, Dict[str, Any]],
    *,
    top: int = 10,
    min_delta_pct: float = 0.1,
) -> List[Dict[str, Any]]:
    """Top functions whose **self-time share** moved between two
    profiles, most-regressed first.

    Shares (percent of each profile's own total samples) rather than
    raw counts, so two runs of different lengths diff honestly.  Rows
    below ``min_delta_pct`` percentage points of movement are noise and
    dropped.
    """
    def shares(table: Dict[str, Dict[str, Any]]) -> Dict[str, float]:
        total = sum(int(row.get("self", 0)) for row in table.values())
        if total <= 0:
            return {}
        return {name: 100.0 * int(row.get("self", 0)) / total
                for name, row in table.items()}

    base = shares(baseline)
    cand = shares(candidate)
    rows: List[Dict[str, Any]] = []
    for name in set(base) | set(cand):
        b, c = base.get(name, 0.0), cand.get(name, 0.0)
        delta = c - b
        if abs(delta) < min_delta_pct:
            continue
        rows.append({
            "function": name,
            "baseline_self_pct": round(b, 2),
            "candidate_self_pct": round(c, 2),
            "delta_pct": round(delta, 2),
        })
    rows.sort(key=lambda r: -r["delta_pct"])
    return rows[:top]


def render_profile_diff(rows: Sequence[Dict[str, Any]]) -> str:
    """The function-level diff as an aligned text table."""
    if not rows:
        return "profile diff: no function moved materially"
    lines = ["profile diff (self-time share, most regressed first):",
             "  delta_pp  baseline  candidate  function"]
    for row in rows:
        lines.append(
            f"  {row['delta_pct']:>+8.2f}  "
            f"{row['baseline_self_pct']:>7.2f}%  "
            f"{row['candidate_self_pct']:>8.2f}%  {row['function']}")
    return "\n".join(lines)


def load_profile_functions(path: Union[str, "Any"]) -> Dict[str, Dict[str, Any]]:
    """Function-total table from a profile artifact on disk.

    Accepts a collapsed-stack text file (``repro profile dump
    --collapsed`` output), a profile JSON dump (``"functions"`` or
    ``"stacks"`` key), or a ``BENCH_*.json`` run carrying a
    ``"profile"`` section — whatever the operator has at hand.
    """
    from pathlib import Path
    p = Path(path)
    try:
        text = p.read_text(encoding="utf-8")
    except OSError as exc:
        raise ProfileError(f"cannot read profile {p}: {exc}") from None
    stripped = text.lstrip()
    if stripped.startswith("{"):
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ProfileError(f"{p}: malformed JSON: {exc}") from None
        if isinstance(doc.get("profile"), dict):   # a BENCH_*.json run
            doc = doc["profile"]
        if isinstance(doc.get("functions"), dict):
            return doc["functions"]
        if isinstance(doc.get("stacks"), dict):
            return function_totals(parse_collapsed(
                "\n".join(f"{k} {v}" for k, v in doc["stacks"].items())))
        raise ProfileError(
            f"{p}: no 'functions', 'stacks', or 'profile' section — "
            "not a profile dump")
    return function_totals(parse_collapsed(text))


# ---------------------------------------------------------------------------
# Flamegraph rendering (iterative throughout: 1k-frame stacks are real)
# ---------------------------------------------------------------------------

def _build_tree(stacks: Dict[Tuple[str, ...], int]) -> Dict[str, Any]:
    """Merge stack counts into one tree (iteratively — no recursion)."""
    root: Dict[str, Any] = {"name": "all", "value": 0, "children": {}}
    for stack, count in stacks.items():
        root["value"] += count
        node = root
        for frame in stack:
            child = node["children"].get(frame)
            if child is None:
                child = {"name": frame, "value": 0, "children": {}}
                node["children"][frame] = child
            child["value"] += count
            node = child
    return root


def render_flamegraph_text(
    stacks: Dict[Tuple[str, ...], int],
    *,
    max_depth: int = 40,
    min_pct: float = 0.5,
) -> str:
    """The sample tree as indented text (the terminal's flamegraph).

    Children print heaviest-first; subtrees below ``min_pct`` of all
    samples collapse into one ``… (n more)`` line so a hot path reads
    top-to-bottom without noise.
    """
    root = _build_tree(stacks)
    total = root["value"]
    if total == 0:
        return "(no samples)"
    lines = [f"flamegraph: {total} samples"]
    stack: List[Tuple[Dict[str, Any], int]] = [(root, 0)]
    while stack:
        node, depth = stack.pop()
        if depth > 0:
            pct = 100.0 * node["value"] / total
            lines.append(f"{'  ' * depth}{node['name']}  "
                         f"{pct:.1f}% ({node['value']})")
        if depth >= max_depth:
            continue
        children = sorted(node["children"].values(),
                          key=lambda c: -c["value"])
        shown = [c for c in children
                 if 100.0 * c["value"] / total >= min_pct]
        hidden = len(children) - len(shown)
        if hidden > 0:
            lines.append(f"{'  ' * (depth + 1)}… ({hidden} more)")
        for child in reversed(shown):
            stack.append((child, depth + 1))
    return "\n".join(lines)


_FLAME_CSS = """
body { font: 12px/1.4 -apple-system, 'Segoe UI', sans-serif; margin: 16px; }
h1 { font-size: 15px; } .meta { color: #666; margin-bottom: 12px; }
#flame { position: relative; }
.fr { position: absolute; height: 15px; overflow: hidden;
      white-space: nowrap; text-overflow: ellipsis; font-size: 10px;
      line-height: 15px; padding: 0 3px; box-sizing: border-box;
      border: 1px solid rgba(255,255,255,.7); border-radius: 2px;
      cursor: default; }
.fr:hover { border-color: #000; }
"""


def _flame_color(index: int) -> str:
    """A deterministic warm palette keyed on node order (no RNG — dumps
    must be byte-stable for artifact diffing)."""
    hues = (18, 28, 8, 35, 12, 24, 4, 31)
    hue = hues[index % len(hues)]
    light = 55 + (index * 7) % 18
    return f"hsl({hue},86%,{light}%)"


def render_flamegraph_html(
    stacks: Dict[Tuple[str, ...], int],
    *,
    title: str = "repro profile",
    meta: Optional[Dict[str, Any]] = None,
    min_frac: float = 0.001,
) -> str:
    """A self-contained HTML flamegraph (no external assets).

    Frames are absolutely positioned divs — a flat element list, so a
    1000-frame stack renders without nesting 1000 elements inside each
    other.  Frames narrower than ``min_frac`` of the root are pruned
    (they would be sub-pixel anyway); each div's tooltip carries the
    full frame name, sample count, and share.
    """
    root = _build_tree(stacks)
    total = root["value"]
    rows: List[str] = []
    max_depth = 0
    if total:
        # Iterative layout: (node, depth, left-edge as fraction of root).
        work: List[Tuple[Dict[str, Any], int, float]] = [(root, 0, 0.0)]
        index = 0
        while work:
            node, depth, left = work.pop()
            frac = node["value"] / total
            if depth > 0 and frac >= min_frac:
                pct = 100.0 * frac
                label = (node["name"].replace("&", "&amp;")
                         .replace("<", "&lt;").replace(">", "&gt;"))
                tip = f"{label} — {node['value']} samples ({pct:.2f}%)"
                rows.append(
                    f'<div class="fr" title="{tip}" style="'
                    f'left:{left * 100:.4f}%;width:{pct:.4f}%;'
                    f'top:{(depth - 1) * 16}px;'
                    f'background:{_flame_color(index)}">{label}</div>')
                index += 1
                max_depth = max(max_depth, depth)
            if depth > 0 and frac < min_frac:
                continue
            edge = left
            for child in sorted(node["children"].values(),
                                key=lambda c: c["name"]):
                work.append((child, depth + 1, edge))
                edge += child["value"] / total
    meta_bits = [f"{total} samples"]
    for key, value in sorted((meta or {}).items()):
        meta_bits.append(f"{key}={value}")
    return (
        "<!doctype html><html><head><meta charset='utf-8'>"
        f"<title>{title}</title><style>{_FLAME_CSS}</style></head><body>"
        f"<h1>{title}</h1><div class='meta'>{' · '.join(meta_bits)}</div>"
        f"<div id='flame' style='height:{max_depth * 16 + 2}px'>"
        + "".join(rows)
        + "</div></body></html>")


# ---------------------------------------------------------------------------
# Profiles, the ring, and the session
# ---------------------------------------------------------------------------

class Profile:
    """One finished profiling session's aggregated result."""

    __slots__ = ("profile_id", "hz", "started_at", "duration", "samples",
                 "stacks", "span_cpu", "thread_samples", "memory",
                 "overhead_ratio")

    def __init__(self, *, profile_id: str, hz: float, started_at: float,
                 duration: float, samples: int,
                 stacks: Dict[Tuple[str, ...], int],
                 span_cpu: List[Dict[str, Any]],
                 thread_samples: Dict[int, int],
                 memory: Optional[Dict[str, Any]],
                 overhead_ratio: float) -> None:
        self.profile_id = profile_id
        self.hz = hz
        self.started_at = started_at
        self.duration = duration
        self.samples = samples
        self.stacks = dict(stacks)
        self.span_cpu = list(span_cpu)
        self.thread_samples = dict(thread_samples)
        self.memory = memory
        self.overhead_ratio = overhead_ratio

    # -- exports --------------------------------------------------------
    def collapsed(self) -> str:
        """Brendan Gregg collapsed-stack text, heaviest stack first."""
        rows = sorted(self.stacks.items(), key=lambda kv: (-kv[1], kv[0]))
        return "\n".join(f"{';'.join(stack)} {count}"
                         for stack, count in rows) + ("\n" if rows else "")

    def function_totals(self) -> Dict[str, Dict[str, int]]:
        return function_totals(self.stacks)

    def top_functions(self, n: int = 20) -> List[Dict[str, Any]]:
        """Hottest functions by self samples, with total (inclusive)
        samples and shares alongside."""
        table = self.function_totals()
        total = max(self.samples, 1)
        rows = sorted(table.items(),
                      key=lambda kv: (-kv[1]["self"], -kv[1]["total"],
                                      kv[0]))
        return [{
            "function": name,
            "self": counts["self"],
            "total": counts["total"],
            "self_pct": round(100.0 * counts["self"] / total, 2),
            "total_pct": round(100.0 * counts["total"] / total, 2),
        } for name, counts in rows[:n] if counts["total"] > 0]

    def flamegraph_html(self, title: Optional[str] = None) -> str:
        return render_flamegraph_html(
            self.stacks,
            title=title or f"repro profile {self.profile_id}",
            meta={"hz": self.hz,
                  "duration_s": round(self.duration, 3),
                  "overhead": f"{self.overhead_ratio:.2%}"})

    def to_dict(self, *, top: int = 20,
                stacks: bool = False) -> Dict[str, Any]:
        """JSON-ready dump: identity, honesty block, hottest functions,
        span attribution, memory accounting — plus, on request, the raw
        collapsed stacks (they dominate the payload, so opt-in)."""
        doc: Dict[str, Any] = {
            "profile_id": self.profile_id,
            "hz": self.hz,
            "started_at": self.started_at,
            "duration_seconds": round(self.duration, 4),
            "samples": self.samples,
            "distinct_stacks": len(self.stacks),
            "threads_seen": len(self.thread_samples),
            "overhead_ratio": round(self.overhead_ratio, 5),
            "top_functions": self.top_functions(top),
            "span_cpu": list(self.span_cpu),
        }
        if self.memory is not None:
            doc["memory"] = self.memory
        if stacks:
            doc["stacks"] = {";".join(k): v
                             for k, v in self.stacks.items()}
        return doc

    def __repr__(self) -> str:   # pragma: no cover - cosmetic
        return (f"Profile({self.profile_id!r}, {self.samples} samples "
                f"@ {self.hz} Hz, {self.duration:.2f}s)")


class ProfileRing:
    """Bounded, thread-safe ring of finished profiles.

    The same retention contract as the trace and event rings: the last
    ``max_profiles`` sessions stay inspectable (``GET /profile/flame``
    after a session ends), older ones drop silently-but-countably.
    """

    def __init__(self, max_profiles: int = 8) -> None:
        if max_profiles < 1:
            raise ProfileError(
                f"max_profiles must be >= 1, got {max_profiles}")
        self.max_profiles = max_profiles
        self._lock = threading.Lock()
        self._profiles: Deque[Profile] = deque(maxlen=max_profiles)
        self._dropped = 0

    def add(self, profile: Profile) -> None:
        with self._lock:
            if len(self._profiles) == self.max_profiles:
                self._dropped += 1
            self._profiles.append(profile)

    def latest(self) -> Optional[Profile]:
        with self._lock:
            return self._profiles[-1] if self._profiles else None

    def get(self, profile_id: str) -> Optional[Profile]:
        with self._lock:
            for profile in self._profiles:
                if profile.profile_id == profile_id:
                    return profile
        return None

    def profiles(self) -> List[Dict[str, Any]]:
        """Newest-first index (id, when, samples, duration)."""
        with self._lock:
            rows = list(self._profiles)
        return [{
            "profile_id": p.profile_id,
            "started_at": p.started_at,
            "duration_seconds": round(p.duration, 4),
            "samples": p.samples,
            "hz": p.hz,
        } for p in reversed(rows)]

    def retention(self) -> Dict[str, Any]:
        with self._lock:
            return {"max_profiles": self.max_profiles,
                    "stored": len(self._profiles),
                    "dropped": self._dropped}

    def clear(self) -> None:
        with self._lock:
            self._profiles.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._profiles)


class ProfileSession:
    """One live sampling session (use :func:`start_profile` normally).

    ``hz`` bounds: past ~1000 Hz the sampler would spend more time
    holding the GIL than the workload; below 1 Hz nothing statistical
    survives.  ``memory=True`` additionally runs :mod:`tracemalloc`
    for :func:`heap_delta` accounting (measurably slower — leave it off
    for always-on use).
    """

    _ids = 0
    _ids_lock = threading.Lock()

    def __init__(self, *, hz: float = DEFAULT_HZ, memory: bool = False,
                 max_depth: int = DEFAULT_MAX_DEPTH) -> None:
        if not 1 <= hz <= 1000:
            raise ProfileError(f"hz must be in [1, 1000], got {hz}")
        if max_depth < 1:
            raise ProfileError(f"max_depth must be >= 1, got {max_depth}")
        with ProfileSession._ids_lock:
            ProfileSession._ids += 1
            self.profile_id = f"p{ProfileSession._ids:06d}"
        self.hz = float(hz)
        self.memory = bool(memory)
        self.max_depth = max_depth
        self.started_at = 0.0
        self._t0 = 0.0
        self._lock = threading.Lock()
        self._stacks: Dict[Tuple[str, ...], int] = {}
        self._samples = 0
        self._thread_samples: Dict[int, int] = {}
        self._walk_seconds = 0.0
        self._tracker = _SpanTracker(self.hz)
        self._sampler: Optional[_Sampler] = None
        self._memory_deltas: List[Dict[str, Any]] = []
        self._started_tracemalloc = False

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "ProfileSession":
        if self._sampler is not None:
            raise ProfileError("profile session already started")
        if self.memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True
        set_span_observer(self._tracker)
        self.started_at = time.time()
        self._t0 = time.perf_counter()
        self._sampler = _Sampler(self)
        self._sampler.start()
        emit_event("profile.start", profile_id=self.profile_id,
                   hz=self.hz, memory=self.memory)
        return self

    def stop(self) -> Profile:
        sampler = self._sampler
        if sampler is None:
            raise ProfileError("profile session was never started")
        sampler.stop()
        sampler.join(timeout=5.0)
        self._sampler = None
        set_span_observer(None)
        duration = time.perf_counter() - self._t0
        memory: Optional[Dict[str, Any]] = None
        if self.memory:
            current, peak = tracemalloc.get_traced_memory()
            memory = {
                "enabled": True,
                "current_bytes": current,
                "peak_bytes": peak,
                "deltas": list(self._memory_deltas),
            }
            if self._started_tracemalloc:
                tracemalloc.stop()
        with self._lock:
            profile = Profile(
                profile_id=self.profile_id, hz=self.hz,
                started_at=self.started_at, duration=duration,
                samples=self._samples, stacks=self._stacks,
                span_cpu=list(self._tracker.completed),
                thread_samples=self._thread_samples,
                memory=memory,
                overhead_ratio=self._overhead_ratio(duration))
        emit_event("profile.stop", profile_id=self.profile_id,
                   samples=profile.samples,
                   duration_seconds=round(duration, 4),
                   overhead_ratio=round(profile.overhead_ratio, 5))
        return profile

    # -- sampling (sampler thread only) ---------------------------------
    def _take_sample(self, sampler_ident: Optional[int]) -> None:
        frames = sys._current_frames()
        rows: List[Tuple[int, Tuple[str, ...]]] = []
        for ident, frame in frames.items():
            if ident == sampler_ident:
                continue
            stack: List[str] = []
            depth = 0
            while frame is not None and depth < self.max_depth:
                stack.append(_frame_label(frame))
                frame = frame.f_back
                depth += 1
            if frame is not None:
                stack.append("<truncated>")
            stack.reverse()   # collapsed form is root-first
            rows.append((ident, tuple(stack)))
        with self._lock:
            for ident, key in rows:
                self._stacks[key] = self._stacks.get(key, 0) + 1
                self._samples += 1
                self._thread_samples[ident] = \
                    self._thread_samples.get(ident, 0) + 1
        for ident, _key in rows:
            self._tracker.attribute(ident)

    def _overhead_ratio(self, wall: float) -> float:
        return (self._walk_seconds / wall) if wall > 0 else 0.0

    # -- memory accounting ---------------------------------------------
    def record_heap_delta(self, entry: Dict[str, Any]) -> None:
        with self._lock:
            self._memory_deltas.append(entry)
            del self._memory_deltas[:-256]   # bounded, newest kept

    # -- live inspection ------------------------------------------------
    @property
    def running(self) -> bool:
        return self._sampler is not None

    def dump(self, *, top: int = 20, stacks: bool = False) -> Dict[str, Any]:
        """A live snapshot of the running session (no stop needed)."""
        wall = time.perf_counter() - self._t0
        with self._lock:
            snapshot = Profile(
                profile_id=self.profile_id, hz=self.hz,
                started_at=self.started_at, duration=wall,
                samples=self._samples, stacks=dict(self._stacks),
                span_cpu=list(self._tracker.completed),
                thread_samples=dict(self._thread_samples),
                memory=None, overhead_ratio=self._overhead_ratio(wall))
        doc = snapshot.to_dict(top=top, stacks=stacks)
        doc["running"] = self.running
        doc["live_span_cpu"] = self._tracker.live_attribution()
        if self.memory:
            current, peak = tracemalloc.get_traced_memory() \
                if tracemalloc.is_tracing() else (0, 0)
            with self._lock:
                doc["memory"] = {"enabled": True,
                                 "current_bytes": current,
                                 "peak_bytes": peak,
                                 "deltas": list(self._memory_deltas)}
        return doc

    def snapshot_profile(self) -> Profile:
        """The live stacks as a :class:`Profile` (for flame rendering
        mid-session)."""
        wall = time.perf_counter() - self._t0
        with self._lock:
            return Profile(
                profile_id=self.profile_id, hz=self.hz,
                started_at=self.started_at, duration=wall,
                samples=self._samples, stacks=dict(self._stacks),
                span_cpu=list(self._tracker.completed),
                thread_samples=dict(self._thread_samples),
                memory=None, overhead_ratio=self._overhead_ratio(wall))


# ---------------------------------------------------------------------------
# Process-global session management
# ---------------------------------------------------------------------------

_RING = ProfileRing()
_ACTIVE: Optional[ProfileSession] = None
_ACTIVE_LOCK = threading.Lock()


def get_profile_ring() -> ProfileRing:
    """The process-global ring of finished profiles."""
    return _RING


def active_session() -> Optional[ProfileSession]:
    """The live process-global session, or ``None``."""
    return _ACTIVE


def start_profile(*, hz: float = DEFAULT_HZ, memory: bool = False,
                  max_depth: int = DEFAULT_MAX_DEPTH) -> ProfileSession:
    """Start the process-global sampling session.

    One at a time by construction — the sampler is process-wide, and
    two would bill each other's frame walks as workload.  Raises
    :class:`ProfileError` if one is already running.
    """
    global _ACTIVE
    with _ACTIVE_LOCK:
        if _ACTIVE is not None:
            raise ProfileError(
                f"profile session {_ACTIVE.profile_id} is already "
                "active; stop it first (`repro profile stop` / "
                "POST /profile/stop)")
        session = ProfileSession(hz=hz, memory=memory, max_depth=max_depth)
        session.start()
        _ACTIVE = session
        return session


def stop_profile() -> Profile:
    """Stop the process-global session; the finished profile lands in
    the ring and is returned.  Raises :class:`NoActiveProfile` when
    nothing is running."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        if _ACTIVE is None:
            raise NoActiveProfile()
        session, _ACTIVE = _ACTIVE, None
    profile = session.stop()
    _RING.add(profile)
    return profile


# ---------------------------------------------------------------------------
# Heap-growth accounting around labelled blocks
# ---------------------------------------------------------------------------

class _HeapDelta:
    """Context manager behind :func:`heap_delta`; no-op unless the
    active session has memory accounting on."""

    __slots__ = ("label", "_session", "_before", "_snap")

    def __init__(self, label: str) -> None:
        self.label = label
        self._session: Optional[ProfileSession] = None

    def __enter__(self) -> "_HeapDelta":
        session = _ACTIVE
        if session is not None and session.memory \
                and tracemalloc.is_tracing():
            self._session = session
            self._before = tracemalloc.get_traced_memory()[0]
            self._snap = tracemalloc.take_snapshot()
        return self

    def __exit__(self, *exc: Any) -> None:
        session = self._session
        if session is None:
            return
        after = tracemalloc.get_traced_memory()[0]
        top: List[Dict[str, Any]] = []
        try:
            diff = tracemalloc.take_snapshot().compare_to(
                self._snap, "lineno")
            for stat in diff[:5]:
                if stat.size_diff <= 0:
                    break
                frame = stat.traceback[0]
                top.append({"site": f"{frame.filename}:{frame.lineno}",
                            "grew_bytes": stat.size_diff,
                            "count_diff": stat.count_diff})
        except Exception:   # snapshot diffing must never break the block
            pass
        session.record_heap_delta({
            "label": self.label,
            "grew_bytes": after - self._before,
            "at": time.time(),
            "top": top,
        })


def heap_delta(label: str) -> _HeapDelta:
    """Measure heap growth across a block, when accounting is on.

    The instrumentation call for labelled allocation sites — epoch
    publications, bench runs.  Without an active ``memory=True``
    session the cost is one module-global read; with one, tracemalloc
    snapshots bracket the block and the top growth sites land in the
    session's ``memory["deltas"]``.
    """
    return _HeapDelta(label)

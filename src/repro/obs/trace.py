"""Span tracing with ``contextvars`` propagation.

One traced request produces one **trace tree**: a root span (opened by
a :class:`Tracer`) with nested child spans opened anywhere downstream
— the HTTP handler, the service's cache lookup, the expression
planner, each kernel execution.  Propagation rides a single
:mod:`contextvars` context variable, so

* nesting is automatic — any code that calls :func:`span` while a
  trace is active attaches to the innermost open span, however many
  call frames (or memoised executor nodes) sit in between;
* threads are isolated — two concurrent HTTP requests each build their
  own tree (``ThreadingHTTPServer`` gives each request a thread, and
  contextvars are per-thread by default);
* untraced execution is almost free — :func:`span` returns a shared
  no-op context manager when no trace is active, so instrumented hot
  paths (per-node kernel execution) cost one contextvar read when
  tracing is off.

Completed traces land in the owning tracer's bounded ring
(:meth:`Tracer.get` / :meth:`Tracer.traces`), dumpable as JSON for
``GET /trace/<id>`` and renderable as a text tree for ``repro trace``
(:func:`render_trace`).
"""

from __future__ import annotations

import contextvars
import itertools
import threading
import time
from collections import OrderedDict
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["Span", "Tracer", "TraceNotFound", "span", "current_span",
           "current_ids", "render_trace", "set_span_observer",
           "get_span_observer"]

#: The innermost open span of the current execution context.
_CURRENT: "contextvars.ContextVar[Optional[Span]]" = \
    contextvars.ContextVar("repro_obs_current_span", default=None)

#: Optional process-wide span observer (``span_pushed``/``span_popped``
#: callbacks).  Installed by :mod:`repro.obs.profile` while a sampling
#: session is active so the sampler can attribute CPU samples to the
#: span each thread currently has open — ``contextvars`` are invisible
#: across threads, so the profiler needs an explicit push/pop feed.
#: When no observer is installed (the overwhelmingly common case) the
#: cost is one module-global read and an ``is None`` check per span
#: enter/exit.
_OBSERVER: Optional[Any] = None


def set_span_observer(observer: Optional[Any]) -> None:
    """Install (or, with ``None``, remove) the process-wide span
    observer.  At most one observer exists at a time; installing over a
    live one raises — two profilers sampling the same process would
    double-count each other's overhead."""
    global _OBSERVER
    if observer is not None and _OBSERVER is not None:
        raise RuntimeError(
            "a span observer is already installed; stop the active "
            "profile session first")
    _OBSERVER = observer


def get_span_observer() -> Optional[Any]:
    """The currently installed span observer, or ``None``."""
    return _OBSERVER

_ids = itertools.count(1)
_id_lock = threading.Lock()


def _next_id(prefix: str) -> str:
    with _id_lock:
        n = next(_ids)
    return f"{prefix}{n:08x}"


class Span:
    """One timed operation inside a trace tree.

    Spans are context managers; entering pushes the span onto the
    context, exiting pops it, stamps the duration, and (for roots)
    hands the finished tree to the owning tracer.  Exceptions mark the
    span ``error`` with the exception text and propagate.
    """

    __slots__ = ("name", "attrs", "trace_id", "span_id", "parent",
                 "children", "started_at", "duration", "error",
                 "_tracer", "_token", "_t0")

    def __init__(self, name: str, attrs: Dict[str, Any],
                 parent: "Optional[Span]",
                 tracer: "Optional[Tracer]") -> None:
        self.name = name
        self.attrs = dict(attrs)
        self.parent = parent
        self.children: List[Span] = []
        self.trace_id = parent.trace_id if parent is not None \
            else _next_id("t")
        self.span_id = _next_id("s")
        self.started_at = time.time()
        self.duration: Optional[float] = None
        self.error: Optional[str] = None
        self._tracer = tracer if parent is None else None
        self._token: Optional[contextvars.Token] = None

    # -- context-manager protocol --------------------------------------
    def __enter__(self) -> "Span":
        if self.parent is not None:
            self.parent.children.append(self)
        self._token = _CURRENT.set(self)
        observer = _OBSERVER
        if observer is not None:
            observer.span_pushed(self)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.duration = time.perf_counter() - self._t0
        observer = _OBSERVER
        if observer is not None:
            observer.span_popped(self)
        if exc is not None:
            self.error = f"{type(exc).__name__}: {exc}"
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        if self.parent is None and self._tracer is not None:
            self._tracer._record(self)

    # -- enrichment -----------------------------------------------------
    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    # -- export ---------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict of the subtree rooted here."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "started_at": self.started_at,
            "duration_ms": (round(self.duration * 1e3, 4)
                            if self.duration is not None else None),
            "attrs": dict(self.attrs),
            "error": self.error,
            "children": [c.to_dict() for c in self.children],
        }

    def walk(self) -> Iterator["Span"]:
        """Pre-order iteration over the subtree (iterative — hop chains
        make deep trees)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def __repr__(self) -> str:   # pragma: no cover - cosmetic
        return (f"Span({self.name!r}, trace={self.trace_id}, "
                f"children={len(self.children)})")


class _NullSpan:
    """Shared no-op: what :func:`span` returns when no trace is active."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        pass

    def set_attr(self, key: str, value: Any) -> None:
        pass


_NULL = _NullSpan()


class TraceNotFound(LookupError):
    """An id that resolves to no finished trace in a tracer's ring.

    Carries the ring's retention bounds (``retention`` attribute and
    the message), so callers — ``GET /trace/<id>``, ``repro trace`` —
    can tell a never-existed id from one the bounded ring has already
    evicted.
    """

    def __init__(self, trace_id: str, retention: Dict[str, Any]) -> None:
        self.trace_id = trace_id
        self.retention = dict(retention)
        stored = retention.get("stored", 0)
        oldest = retention.get("oldest_trace_id")
        window = (f"ring holds {stored}/{retention.get('max_traces')} "
                  f"trace(s)")
        if oldest is not None:
            window += f", oldest {oldest}"
        super().__init__(
            f"no such trace {trace_id!r} (ring evicted?); {window}")


class Tracer:
    """Starts root spans and keeps the last ``max_traces`` finished trees.

    Each service owns one tracer, so the trace ring of one service is
    not polluted by another's traffic (and tests stay deterministic).
    """

    def __init__(self, max_traces: int = 64) -> None:
        if max_traces < 1:
            raise ValueError("max_traces must be >= 1")
        self.max_traces = max_traces
        self._lock = threading.Lock()
        self._done: "OrderedDict[str, Span]" = OrderedDict()

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a span: a child of the current span if a trace is
        active, otherwise a new root recorded here on completion."""
        return Span(name, attrs, parent=_CURRENT.get(), tracer=self)

    def _record(self, root: Span) -> None:
        with self._lock:
            self._done[root.trace_id] = root
            while len(self._done) > self.max_traces:
                self._done.popitem(last=False)

    # -- retrieval ------------------------------------------------------
    def get(self, trace_id: str) -> Optional[Span]:
        with self._lock:
            return self._done.get(trace_id)

    def lookup(self, trace_id: str) -> Span:
        """Like :meth:`get`, but a miss raises :class:`TraceNotFound`
        carrying the ring's retention bounds — the structured error the
        HTTP endpoint and CLI render."""
        root = self.get(trace_id)
        if root is None:
            raise TraceNotFound(trace_id, self.retention())
        return root

    def retention(self) -> Dict[str, Any]:
        """The ring's retention bounds: capacity, occupancy, and the
        oldest/newest trace ids still resolvable."""
        with self._lock:
            ids = list(self._done)
        return {
            "max_traces": self.max_traces,
            "stored": len(ids),
            "oldest_trace_id": ids[0] if ids else None,
            "newest_trace_id": ids[-1] if ids else None,
        }

    def latest(self) -> Optional[Span]:
        with self._lock:
            if not self._done:
                return None
            return next(reversed(self._done.values()))

    def traces(self) -> List[Dict[str, Any]]:
        """Newest-first index of finished traces (id, root name, ms)."""
        with self._lock:
            roots = list(self._done.values())
        return [{
            "trace_id": r.trace_id,
            "name": r.name,
            "started_at": r.started_at,
            "duration_ms": (round(r.duration * 1e3, 4)
                            if r.duration is not None else None),
            "spans": sum(1 for _ in r.walk()),
        } for r in reversed(roots)]

    def clear(self) -> None:
        with self._lock:
            self._done.clear()


def span(name: str, **attrs: Any):
    """A child span of the active trace, or a no-op outside any trace.

    The instrumentation call for library code that does not own a
    tracer: inside a traced request it nests under the caller's span;
    on an untraced path it costs one contextvar read and allocates
    nothing.
    """
    parent = _CURRENT.get()
    if parent is None:
        return _NULL
    return Span(name, attrs, parent=parent, tracer=None)


def current_span():
    """The innermost open span, or a no-op stand-in (always safe to
    call ``set_attr`` on the result)."""
    return _CURRENT.get() or _NULL


def current_ids() -> "Optional[Tuple[str, str]]":
    """``(trace_id, span_id)`` of the innermost open span, else ``None``.

    The cheap hook exemplar-recording histograms and the event log use
    to stamp observations with the active trace — one contextvar read,
    no allocation when no trace is active.
    """
    sp = _CURRENT.get()
    if sp is None:
        return None
    return sp.trace_id, sp.span_id


def render_trace(root: Span) -> str:
    """The span tree as indented text (the ``repro trace`` rendering)."""
    lines: List[str] = [f"trace {root.trace_id}"]
    stack: List[Any] = [(root, "", True, True)]
    while stack:
        node, prefix, tail, top = stack.pop()
        connector = "" if top else ("└─ " if tail else "├─ ")
        ms = f"{node.duration * 1e3:.3f} ms" \
            if node.duration is not None else "…"
        attrs = " ".join(f"{k}={v}" for k, v in sorted(node.attrs.items()))
        line = f"{prefix}{connector}{node.name}  [{ms}]"
        if attrs:
            line += f"  {attrs}"
        if node.error:
            line += f"  !! {node.error}"
        lines.append(line)
        child_prefix = prefix + ("" if top else ("   " if tail else "│  "))
        for i, child in reversed(list(enumerate(node.children))):
            stack.append((child, child_prefix,
                          i == len(node.children) - 1, False))
    return "\n".join(lines)

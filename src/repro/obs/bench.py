"""Versioned benchmark harness with locked manifests and regression gates.

The ``benchmarks/bench_*.py`` scripts each print one JSON
document — honest measurements with no trajectory.  This module wraps
them into **runs**: a run has an id, a locked manifest (git sha,
machine info, config hash), the per-benchmark reports, and the
*headline metrics* each script nominates (its ``headline(report)``
hook).  Artifacts:

* ``BENCH_<runid>.json`` — the whole run, machine-readable;
* ``report.md`` — the human-readable summary table.

Two runs diff with :func:`compare`: every headline metric shared by
both runs is checked against a regression threshold in its declared
direction (``lower`` is better for latencies, ``higher`` for
speedups/throughput).  ``repro bench --compare A B`` exits non-zero on
any regression — the CI gate consumes exactly this against the
committed ``BENCH_baseline.json``.

Script contract (all existing smoke benches already satisfy it):

* ``run(quick: bool) -> dict`` — execute and return the JSON report;
* ``headline(report: dict) -> dict`` *(optional)* — nominate gateable
  metrics as ``{name: {"value": float, "direction": "lower"|"higher",
  "unit": str}}``.
"""

from __future__ import annotations

import hashlib
import importlib.util
import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.calibration import get_calibration_store
from repro.obs.events import emit_event
from repro.obs.metrics import get_registry
from repro.obs.profile import (active_session, heap_delta, start_profile,
                               stop_profile)

__all__ = [
    "SCRIPT_BENCHMARKS",
    "BenchError",
    "MetricDelta",
    "CompareResult",
    "run_metadata",
    "config_hash",
    "discover_benchmarks",
    "run_benchmarks",
    "harvest_exemplars",
    "render_markdown",
    "load_run",
    "compare",
    "describe_with_exemplars",
    "describe_profile_diff",
    "refresh_baseline",
    "DEFAULT_THRESHOLD",
]

#: The script benchmarks the harness knows how to drive, in run order.
#: (Discovered dynamically too — this tuple is the curated smoke set.)
SCRIPT_BENCHMARKS: Tuple[str, ...] = (
    "bench_shard", "bench_matmul", "bench_semiring_matmul",
    "bench_serve", "bench_expr", "bench_loadgen")

#: Default regression threshold: 20% — the CI gate's bar.
DEFAULT_THRESHOLD = 0.20


class BenchError(RuntimeError):
    """Raised for harness misuse: unknown benchmarks, unreadable runs."""


# ---------------------------------------------------------------------------
# Manifest
# ---------------------------------------------------------------------------

def _git_sha(cwd: Optional[Path] = None) -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, capture_output=True,
            text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired):   # pragma: no cover
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _module_version(name: str) -> Optional[str]:
    try:
        module = __import__(name)
    except ImportError:   # pragma: no cover - both are baked into CI
        return None
    return getattr(module, "__version__", None)


def run_metadata(cwd: Optional[Union[str, Path]] = None) -> Dict[str, Any]:
    """Machine/commit attribution for one run (or one ``-s`` bench
    session): git sha, interpreter and numeric-stack versions, platform.

    Everything here answers "could this number be compared with that
    one?" — the manifest half of a locked run.
    """
    return {
        "git_sha": _git_sha(Path(cwd) if cwd is not None else None),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": _module_version("numpy"),
        "scipy": _module_version("scipy"),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def config_hash(config: Dict[str, Any]) -> str:
    """Stable digest of a run configuration (key-order independent)."""
    canonical = json.dumps(config, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def _run_id(sha: Optional[str]) -> str:
    stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
    suffix = (sha or "nogit")[:7]
    return f"{stamp}-{suffix}"


# ---------------------------------------------------------------------------
# Discovery and execution
# ---------------------------------------------------------------------------

def _default_bench_dir() -> Path:
    """``benchmarks/`` next to the repo the package is imported from,
    falling back to the working directory's ``benchmarks/``."""
    here = Path(__file__).resolve()
    for parent in here.parents:
        candidate = parent / "benchmarks"
        if (candidate / "bench_shard.py").exists():
            return candidate
    return Path.cwd() / "benchmarks"


def discover_benchmarks(bench_dir: Optional[Union[str, Path]] = None
                        ) -> List[str]:
    """Names of every harness-runnable script in ``bench_dir`` — i.e.
    modules exposing ``run(quick)`` (checked cheaply by source grep so
    discovery does not import, and thus execute, anything)."""
    root = Path(bench_dir) if bench_dir is not None \
        else _default_bench_dir()
    names: List[str] = []
    for path in sorted(root.glob("bench_*.py")):
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:   # pragma: no cover - unreadable file
            continue
        if "def run(" in text and "def main(" in text:
            names.append(path.stem)
    return names


def _load_bench_module(name: str, bench_dir: Path):
    path = bench_dir / f"{name}.py"
    if not path.exists():
        raise BenchError(
            f"unknown benchmark {name!r} (no {path}); known: "
            f"{', '.join(discover_benchmarks(bench_dir)) or 'none'}")
    spec = importlib.util.spec_from_file_location(
        f"repro_bench_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    if not hasattr(module, "run"):
        raise BenchError(f"benchmark {name!r} has no run(quick) hook")
    return module


def run_benchmarks(
    names: Optional[Sequence[str]] = None,
    *,
    quick: bool = True,
    outdir: Optional[Union[str, Path]] = None,
    bench_dir: Optional[Union[str, Path]] = None,
    progress: bool = False,
    profile: bool = False,
) -> Dict[str, Any]:
    """Execute benchmarks under one locked run; returns the run doc.

    ``names`` defaults to the curated smoke set
    (:data:`SCRIPT_BENCHMARKS`).  When ``outdir`` is given the run doc
    is written as ``BENCH_<runid>.json`` plus ``report.md`` (and the
    doc's ``"artifacts"`` entry records both paths).

    ``profile=True`` runs the whole set under a sampling-profiler
    session (:mod:`repro.obs.profile`), attaching a ``"profile"``
    section — per-function sample table, hottest functions, and the
    self-measured ``overhead_ratio`` — to the run doc, plus
    ``profile.collapsed`` and ``profile_flame.html`` artifacts when
    ``outdir`` is given.  Two such runs diff function-by-function under
    ``repro bench --compare``.  Memory accounting stays *off* here:
    tracemalloc taxes every allocation and would pollute the very
    timings being locked.
    """
    root = Path(bench_dir) if bench_dir is not None \
        else _default_bench_dir()
    chosen = list(names) if names else list(SCRIPT_BENCHMARKS)
    meta = run_metadata(root.parent)
    config = {"benchmarks": chosen, "quick": quick}
    run_id = _run_id(meta.get("git_sha"))
    results: Dict[str, Any] = {}
    headline: Dict[str, Dict[str, Any]] = {}
    timings: Dict[str, float] = {}
    session = None
    if profile:
        if active_session() is not None:
            raise BenchError(
                "a profile session is already active; stop it before "
                "`repro bench --profile` (the run must own its sampler "
                "for an honest overhead ratio)")
        session = start_profile()
    try:
        for name in chosen:
            module = _load_bench_module(name, root)
            if progress:
                print(f"[{run_id}] running {name} "
                      f"({'quick' if quick else 'full'}) ...",
                      file=sys.stderr)
            t0 = time.perf_counter()
            with heap_delta(f"bench_{name}"):
                report = module.run(quick)
            timings[name] = round(time.perf_counter() - t0, 4)
            results[name] = report
            extract = getattr(module, "headline", None)
            if extract is not None:
                headline[name] = extract(report)
    finally:
        run_profile = stop_profile() if session is not None else None
    doc: Dict[str, Any] = {
        "run_id": run_id,
        "manifest": {
            **meta,
            "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                        time.gmtime()),
            "config": config,
            "config_hash": config_hash(config),
        },
        "bench_seconds": timings,
        "headline": headline,
        "results": results,
    }
    # Whatever trace exemplars the benchmarks left on the process-global
    # histograms ride along with the run, so a regression in a headline
    # metric can be chased to a concrete trace id.
    exemplars = harvest_exemplars()
    if exemplars:
        doc["exemplars"] = exemplars
    # Snapshot the kernel calibration the run produced (and ran under):
    # the run artifact then records the throughput numbers cold planners
    # on this machine will use.
    store = get_calibration_store()
    if store is not None:
        store.flush()
        doc["calibration"] = store.snapshot()
    if run_profile is not None:
        doc["profile"] = {
            "profile_id": run_profile.profile_id,
            "hz": run_profile.hz,
            "samples": run_profile.samples,
            "duration_seconds": round(run_profile.duration, 4),
            "overhead_ratio": round(run_profile.overhead_ratio, 5),
            "top_functions": run_profile.top_functions(20),
            "functions": run_profile.function_totals(),
        }
    if outdir is not None:
        out = Path(outdir)
        out.mkdir(parents=True, exist_ok=True)
        json_path = out / f"BENCH_{run_id}.json"
        json_path.write_text(json.dumps(doc, indent=2, ensure_ascii=False)
                             + "\n", encoding="utf-8")
        md_path = out / "report.md"
        md_path.write_text(render_markdown(doc), encoding="utf-8")
        doc["artifacts"] = {"json": str(json_path), "markdown": str(md_path)}
        if "calibration" in doc:
            cal_path = out / "calibration.json"
            cal_path.write_text(
                json.dumps(doc["calibration"], indent=2, sort_keys=True,
                           default=str) + "\n", encoding="utf-8")
            doc["artifacts"]["calibration"] = str(cal_path)
        if run_profile is not None:
            collapsed_path = out / "profile.collapsed"
            collapsed_path.write_text(run_profile.collapsed(),
                                      encoding="utf-8")
            flame_path = out / "profile_flame.html"
            flame_path.write_text(
                run_profile.flamegraph_html(f"bench {run_id}"),
                encoding="utf-8")
            doc["artifacts"]["collapsed"] = str(collapsed_path)
            doc["artifacts"]["flamegraph"] = str(flame_path)
    emit_event("bench_run", run_id=run_id, benchmarks=",".join(chosen),
               quick=quick, seconds=round(sum(timings.values()), 4))
    return doc


def harvest_exemplars(registry: Any = None) -> Dict[str, Dict[str, Any]]:
    """Slowest-bucket exemplars of every histogram on ``registry``
    (default: the process-global one), keyed ``name{labels}``.

    Empty for histograms that never saw a traced observation — the
    harness never fabricates a trace link.
    """
    reg = registry if registry is not None else get_registry()
    out: Dict[str, Dict[str, Any]] = {}
    for family in reg.families():
        if family.kind != "histogram":
            continue
        for labels, inst in sorted(family.children.items()):
            ex = inst.exemplar()
            if ex is None:
                continue
            label_text = ",".join(f"{k}={v}" for k, v in labels)
            key = f"{family.name}{{{label_text}}}" if label_text \
                else family.name
            out[key] = ex
    return out


def render_markdown(doc: Dict[str, Any]) -> str:
    """``report.md`` for one run: manifest block + headline table."""
    m = doc.get("manifest", {})
    lines = [
        f"# Benchmark run `{doc.get('run_id', '?')}`",
        "",
        f"- **commit:** `{m.get('git_sha') or 'unknown'}`",
        f"- **created:** {m.get('created_at', '?')}",
        f"- **python:** {m.get('python', '?')} "
        f"({m.get('implementation', '?')}) · numpy {m.get('numpy', '?')} "
        f"· scipy {m.get('scipy', '?')}",
        f"- **machine:** {m.get('platform', '?')} "
        f"({m.get('cpu_count', '?')} cpus)",
        f"- **config hash:** `{m.get('config_hash', '?')}` "
        f"(quick={m.get('config', {}).get('quick')})",
        "",
        "## Headline metrics",
        "",
        "| benchmark | metric | value | unit | direction |",
        "|---|---|---:|---|---|",
    ]
    for bench, metrics in sorted(doc.get("headline", {}).items()):
        for name, spec in sorted(metrics.items()):
            value = spec.get("value")
            shown = f"{value:.6g}" if isinstance(value, (int, float)) \
                else str(value)
            lines.append(
                f"| {bench} | {name} | {shown} "
                f"| {spec.get('unit', '')} "
                f"| {spec.get('direction', 'lower')} is better |")
    lines.append("")
    lines.append("## Wall time per benchmark")
    lines.append("")
    for bench, seconds in sorted(doc.get("bench_seconds", {}).items()):
        lines.append(f"- `{bench}`: {seconds:.3f}s")
    lines.append("")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Comparison / regression gate
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MetricDelta:
    """One headline metric diffed across two runs."""

    benchmark: str
    metric: str
    direction: str          # "lower" | "higher" (which way is better)
    baseline: float
    candidate: float
    change: float           # signed relative change vs baseline
    regression: bool
    unit: str = ""

    def describe(self) -> str:
        arrow = "↑" if self.candidate >= self.baseline else "↓"
        verdict = "REGRESSION" if self.regression else "ok"
        return (f"{self.benchmark}.{self.metric}: "
                f"{self.baseline:.6g} → {self.candidate:.6g} "
                f"{self.unit} ({arrow}{abs(self.change) * 100:.1f}%, "
                f"{self.direction} is better) [{verdict}]")


@dataclass
class CompareResult:
    """The full diff of two runs' headline metrics."""

    baseline_id: str
    candidate_id: str
    threshold: float
    deltas: List[MetricDelta] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.regression]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def describe(self) -> str:
        lines = [
            f"baseline  {self.baseline_id}",
            f"candidate {self.candidate_id}",
            f"threshold {self.threshold * 100:.0f}% "
            f"({len(self.deltas)} shared headline metric(s))",
        ]
        lines += ["  " + d.describe() for d in self.deltas]
        for name in self.missing:
            lines.append(f"  {name}: present in only one run (skipped)")
        lines.append(
            f"verdict: {'OK' if self.ok else 'REGRESSION'} "
            f"({len(self.regressions)} regression(s))")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "baseline": self.baseline_id,
            "candidate": self.candidate_id,
            "threshold": self.threshold,
            "ok": self.ok,
            "deltas": [vars(d) for d in self.deltas],
            "missing": list(self.missing),
        }


def load_run(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a run doc from a ``BENCH_*.json`` file — or from a
    directory, picking its lexically latest ``BENCH_*.json`` (run ids
    start with a UTC timestamp, so lexical order is creation order)."""
    p = Path(path)
    if p.is_dir():
        candidates = sorted(p.glob("BENCH_*.json"))
        if not candidates:
            raise BenchError(f"no BENCH_*.json in {p}")
        p = candidates[-1]
    try:
        doc = json.loads(p.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BenchError(f"cannot read run {p}: {exc}") from None
    if not isinstance(doc, dict) or "headline" not in doc:
        raise BenchError(
            f"{p} is not a harness run (no 'headline' section); "
            "was it produced by `repro bench`?")
    return doc


def compare(
    baseline: Dict[str, Any],
    candidate: Dict[str, Any],
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> CompareResult:
    """Diff two run docs' headline metrics against ``threshold``.

    A metric regresses when it moves in its *worse* direction by more
    than ``threshold`` (relative): a ``lower``-is-better latency that
    grows >20%, a ``higher``-is-better speedup that shrinks >20%.
    Metrics present in only one run are reported but never gate.
    """
    if threshold < 0:
        raise BenchError(f"threshold must be >= 0, got {threshold}")
    result = CompareResult(
        baseline_id=str(baseline.get("run_id", "?")),
        candidate_id=str(candidate.get("run_id", "?")),
        threshold=threshold)
    base_h = baseline.get("headline", {})
    cand_h = candidate.get("headline", {})
    names = set()
    for bench in set(base_h) | set(cand_h):
        for metric in set(base_h.get(bench, {})) | set(
                cand_h.get(bench, {})):
            names.add((bench, metric))
    for bench, metric in sorted(names):
        a = base_h.get(bench, {}).get(metric)
        b = cand_h.get(bench, {}).get(metric)
        if a is None or b is None:
            result.missing.append(f"{bench}.{metric}")
            continue
        try:
            av, bv = float(a["value"]), float(b["value"])
        except (KeyError, TypeError, ValueError):
            result.missing.append(f"{bench}.{metric}")
            continue
        direction = str(a.get("direction", "lower"))
        change = (bv - av) / av if av else (0.0 if bv == av else
                                            float("inf"))
        if direction == "higher":
            regression = change < -threshold
        else:
            regression = change > threshold
        result.deltas.append(MetricDelta(
            benchmark=bench, metric=metric, direction=direction,
            baseline=av, candidate=bv, change=change,
            regression=regression, unit=str(a.get("unit", ""))))
    return result


def describe_with_exemplars(result: CompareResult,
                            candidate: Dict[str, Any]) -> str:
    """:meth:`CompareResult.describe` plus the candidate run's exemplar
    trace links — so a regression verdict names the trace ids behind
    the slowest observed buckets, not just the moved numbers."""
    text = result.describe()
    exemplars = candidate.get("exemplars") or {}
    if not exemplars:
        return text
    lines = [text, "", "exemplar traces (candidate run):"]
    for key, ex in sorted(exemplars.items()):
        lines.append(
            f"  {key}: trace {ex.get('trace_id', '?')} "
            f"span {ex.get('span_id', '?')} "
            f"value {float(ex.get('value', 0.0)):.6g}")
    return "\n".join(lines)


def describe_profile_diff(baseline: Dict[str, Any],
                          candidate: Dict[str, Any],
                          *, top: int = 10) -> Optional[str]:
    """Function-level profile diff of two run docs, or ``None``.

    When both runs were produced with ``--profile``, their per-function
    sample tables diff by self-time share (most regressed first) — the
    attribution a failed headline gate needs.  ``None`` when either run
    carries no profile (the caller prints nothing rather than a
    fabricated diff).
    """
    from repro.obs.profile import diff_function_tables, render_profile_diff
    base = (baseline.get("profile") or {}).get("functions")
    cand = (candidate.get("profile") or {}).get("functions")
    if not base or not cand:
        return None
    rows = diff_function_tables(base, cand, top=top)
    return render_profile_diff(rows)


# ---------------------------------------------------------------------------
# Baseline lifecycle
# ---------------------------------------------------------------------------

def refresh_baseline(
    run: Dict[str, Any],
    baseline_path: Union[str, Path],
    *,
    reason: str,
    cwd: Optional[Union[str, Path]] = None,
) -> Dict[str, Any]:
    """Re-lock ``baseline_path`` to ``run``, recording provenance.

    The written doc is the run plus a ``manifest["baseline_refresh"]``
    block — the operator's ``reason``, the git sha the refresh happened
    at, the refresh timestamp, and the run id of the baseline being
    superseded — so a future "why did the bar move?" reads the answer
    out of the baseline file itself.  ``reason`` is mandatory and
    non-empty by design: an unexplained baseline refresh is how
    regression gates rot.
    """
    if not reason or not reason.strip():
        raise BenchError(
            "baseline refresh requires a non-empty --reason; the "
            "manifest records why the bar moved")
    path = Path(baseline_path)
    previous_run_id: Optional[str] = None
    if path.exists():
        try:
            previous_run_id = str(load_run(path).get("run_id"))
        except BenchError:
            previous_run_id = None   # corrupt old baseline; still refresh
    doc = dict(run)
    manifest = dict(doc.get("manifest", {}))
    manifest["baseline_refresh"] = {
        "reason": reason.strip(),
        "git_sha": _git_sha(Path(cwd) if cwd is not None else None),
        "refreshed_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "previous_run_id": previous_run_id,
    }
    doc["manifest"] = manifest
    doc.pop("artifacts", None)   # paths of the source run, not of this file
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, ensure_ascii=False) + "\n",
                    encoding="utf-8")
    emit_event("baseline_refresh", run_id=str(doc.get("run_id", "?")),
               path=str(path), reason=reason.strip(),
               previous_run_id=previous_run_id)
    return doc

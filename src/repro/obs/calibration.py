"""Persistent per-kernel calibration: measured seconds-per-term that
survives the process.

The expression engine's cost model learns each multiply kernel's
throughput from executed products (``expr_kernel_seconds_total`` /
``expr_kernel_terms_total`` on the process-global registry).  Those
counters die with the process, so before this module every cold start
planned with *no* wall-time estimates until the first product ran.
The calibration store makes the measured rates durable:

* every executed product updates an **EWMA seconds-per-term** per
  kernel (:meth:`CalibrationStore.record`), keyed under a **machine
  fingerprint** so rates measured on one box never inform plans on
  another;
* the store persists as schema-versioned JSON (like the bench
  manifests) at ``~/.repro/calibration.json``, or wherever
  ``REPRO_CALIBRATION_PATH`` points (a workdir-local path is the
  per-project spelling); writes are atomic (tmp + rename);
* :func:`repro.expr.cost.measured_seconds_per_term` falls back to the
  stored rate when the process has no in-process samples yet, so a
  cold ``explain()`` reports *calibrated* wall-time estimates instead
  of none;
* ``repro bench`` snapshots the store into its run artifacts, so a
  locked run records the kernel rates it planned with.

Set ``REPRO_CALIBRATION=0`` to disable the store entirely (no reads,
no writes) — the cost model then behaves exactly as before this
module existed.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import threading
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

__all__ = [
    "SCHEMA",
    "CalibrationStore",
    "calibration_enabled",
    "default_path",
    "machine_fingerprint",
    "get_calibration_store",
    "reset_calibration_store",
]

#: Schema tag of the on-disk document; bumped on incompatible change.
SCHEMA = "repro-calibration/v1"

#: EWMA weight of one new sample (higher = adapts faster, noisier).
DEFAULT_ALPHA = 0.25

_ENV_PATH = "REPRO_CALIBRATION_PATH"
_ENV_TOGGLE = "REPRO_CALIBRATION"


def calibration_enabled() -> bool:
    """Whether the persistent store is active (``REPRO_CALIBRATION``
    unset or truthy)."""
    return os.environ.get(_ENV_TOGGLE, "1").lower() not in (
        "0", "off", "false", "no")


def default_path() -> Path:
    """``$REPRO_CALIBRATION_PATH`` if set, else
    ``~/.repro/calibration.json``."""
    env = os.environ.get(_ENV_PATH)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".repro" / "calibration.json"


def _machine_info() -> Dict[str, Any]:
    return {
        "machine": platform.machine(),
        "processor": platform.processor(),
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
    }


def machine_fingerprint(info: Optional[Dict[str, Any]] = None) -> str:
    """Stable 12-hex digest identifying "this kind of machine".

    Rates measured under one fingerprint are only ever served to
    processes with the same fingerprint — a laptop's scipy throughput
    must not calibrate plans on a 64-core server sharing the same
    home directory.
    """
    canonical = json.dumps(info or _machine_info(), sort_keys=True,
                           default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


class CalibrationStore:
    """EWMA seconds-per-term per (kernel, machine fingerprint), on disk.

    Thread-safe; loads leniently (a missing, corrupt, or
    schema-incompatible file starts a fresh document — calibration is
    an optimization, never an error source) and saves atomically.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None, *,
                 alpha: float = DEFAULT_ALPHA) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.path = Path(path) if path is not None else default_path()
        self.alpha = alpha
        self._lock = threading.Lock()
        self._info = _machine_info()
        self.fingerprint = machine_fingerprint(self._info)
        self._doc = self._load(self.path)
        self._dirty = 0
        self._last_save = 0.0

    @staticmethod
    def _load(path: Path) -> Dict[str, Any]:
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            doc = None
        if (not isinstance(doc, dict) or doc.get("schema") != SCHEMA
                or not isinstance(doc.get("machines"), dict)):
            doc = {"schema": SCHEMA, "updated_at": None, "machines": {}}
        return doc

    # -- reads ----------------------------------------------------------
    def rate(self, kernel: str) -> Optional[float]:
        """Stored EWMA seconds-per-term for ``kernel`` on this machine
        fingerprint, or ``None`` if never calibrated."""
        with self._lock:
            entry = (self._doc["machines"].get(self.fingerprint, {})
                     .get("kernels", {}).get(kernel))
            if not isinstance(entry, dict):
                return None
            value = entry.get("seconds_per_term")
        try:
            value = float(value)
        except (TypeError, ValueError):
            return None
        return value if value > 0 else None

    def kernels(self) -> Dict[str, Dict[str, Any]]:
        """All calibrated kernels for this machine fingerprint."""
        with self._lock:
            machine = self._doc["machines"].get(self.fingerprint, {})
            return json.loads(json.dumps(machine.get("kernels", {})))

    def snapshot(self) -> Dict[str, Any]:
        """A deep copy of the whole document (bench-artifact payload),
        annotated with this process's fingerprint and store path."""
        with self._lock:
            doc = json.loads(json.dumps(self._doc, default=str))
        doc["active_fingerprint"] = self.fingerprint
        doc["path"] = str(self.path)
        return doc

    # -- writes ---------------------------------------------------------
    def record(self, kernel: str, terms: float, seconds: float) -> None:
        """Fold one executed product into the kernel's EWMA rate.

        Degenerate samples (no terms, non-positive wall time) are
        ignored — they carry no throughput information.
        """
        if terms <= 0 or seconds <= 0:
            return
        sample = seconds / terms
        with self._lock:
            machine = self._doc["machines"].setdefault(
                self.fingerprint, {"info": dict(self._info),
                                   "kernels": {}})
            entry = machine["kernels"].get(kernel)
            if not isinstance(entry, dict) or not isinstance(
                    entry.get("seconds_per_term"), (int, float)):
                entry = {"seconds_per_term": sample, "samples": 0,
                         "terms_total": 0.0, "seconds_total": 0.0}
            else:
                entry["seconds_per_term"] = (
                    self.alpha * sample
                    + (1.0 - self.alpha) * float(entry["seconds_per_term"]))
            entry["samples"] = int(entry.get("samples", 0)) + 1
            entry["terms_total"] = float(
                entry.get("terms_total", 0.0)) + terms
            entry["seconds_total"] = float(
                entry.get("seconds_total", 0.0)) + seconds
            entry["updated_at"] = _utc_now()
            machine["kernels"][kernel] = entry
            self._doc["updated_at"] = _utc_now()
            self._dirty += 1

    def save(self, path: Optional[Union[str, Path]] = None) -> Path:
        """Write the document atomically; returns the path written."""
        target = Path(path) if path is not None else self.path
        with self._lock:
            payload = json.dumps(self._doc, indent=2, sort_keys=True,
                                 default=str) + "\n"
            self._dirty = 0
            self._last_save = time.monotonic()
        target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.with_name(target.name + ".tmp")
        tmp.write_text(payload, encoding="utf-8")
        os.replace(tmp, target)
        return target

    def maybe_save(self, *, min_updates: int = 8,
                   min_interval: float = 2.0) -> bool:
        """Throttled save for hot-path callers: persist when enough
        updates accumulated and the last save is old enough.  Errors
        are swallowed — calibration must never fail a computation."""
        with self._lock:
            due = (self._dirty >= min_updates
                   and time.monotonic() - self._last_save >= min_interval)
        if not due:
            return False
        try:
            self.save()
        except OSError:   # pragma: no cover - disk trouble is not ours
            return False
        return True

    def flush(self) -> None:
        """Persist any pending updates (process-exit hook, bench end)."""
        with self._lock:
            dirty = self._dirty
        if dirty:
            try:
                self.save()
            except OSError:   # pragma: no cover
                pass


def _utc_now() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


_STORE_LOCK = threading.Lock()
_STORE: Optional[CalibrationStore] = None


def get_calibration_store() -> Optional[CalibrationStore]:
    """The process-global store, created lazily from the environment;
    ``None`` when calibration is disabled (``REPRO_CALIBRATION=0``).

    The first call registers an ``atexit`` flush so rates measured in
    this process reach disk even without an explicit save — that is
    what makes the *next* process's cold plans calibrated.
    """
    global _STORE
    if not calibration_enabled():
        return None
    with _STORE_LOCK:
        if _STORE is None:
            _STORE = CalibrationStore()
            import atexit
            atexit.register(_STORE.flush)
        return _STORE


def reset_calibration_store() -> None:
    """Drop the process-global store so the next access re-reads the
    environment (test isolation; flushes pending updates first)."""
    global _STORE
    with _STORE_LOCK:
        if _STORE is not None:
            _STORE.flush()
        _STORE = None

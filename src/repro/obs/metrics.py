"""Thread-safe metrics registry: counters, gauges, histograms.

The measurement substrate for every subsystem — dependency-free (stdlib
only), cheap enough for hot paths, and renderable in two shapes:

* :meth:`MetricsRegistry.snapshot` — a plain nested dict for JSON
  surfaces (the service's ``/stats`` query, bench-run artifacts);
* :meth:`MetricsRegistry.render_prometheus` — the Prometheus text
  exposition format for ``GET /metrics``.

Instruments are organised as *families*: one name + help text + type,
with one child per distinct label set (``requests_total{kind="khop"}``
and ``requests_total{kind="stats"}`` are two children of one family).
Families are get-or-create and idempotent — asking for the same name
with the same type returns the same object, so instrumented library
code can run at import time without coordination.

Two registry scopes coexist by design:

* the **process-global** registry (:func:`get_registry`) carries
  library-level instruments — expression-engine rewrite/kernels
  counters, shard build/merge/spill timings — that have no natural
  owning object;
* **per-instance** registries (e.g. one per
  :class:`~repro.serve.service.AdjacencyService`) carry instruments
  whose counts must not bleed across instances (cache hit ratios,
  per-endpoint latency).  The HTTP ``/metrics`` endpoint renders both
  (:func:`render_prometheus`).

Histograms use fixed bucket upper bounds (cumulative, Prometheus
style); :meth:`Histogram.percentile` estimates quantiles by linear
interpolation inside the winning bucket — exact enough for p50/p99
dashboards without storing samples.

When an observation happens inside an active trace
(:func:`repro.obs.trace.current_ids`), the histogram additionally
records a per-bucket **exemplar** — the most recent over-threshold
``(trace_id, span_id, value)`` seen in that bucket — rendered in
OpenMetrics exemplar syntax on ``/metrics`` and surfaced by
:meth:`Histogram.snapshot` so ``/stats`` can cross-link a latency
percentile to the concrete span tree behind it.
"""

from __future__ import annotations

import gc
import math
import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.trace import current_ids

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "LATENCY_BUCKETS_WIDE",
    "log_buckets",
    "get_registry",
    "render_prometheus",
    "install_process_gauges",
]

#: Default histogram buckets (seconds): 100 µs .. 60 s, roughly
#: logarithmic — wide enough for both kernel micro-timings and epoch
#: publication latencies.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0)


def log_buckets(lo: float, hi: float,
                per_decade: int = 9) -> Tuple[float, ...]:
    """Logarithmically spaced bucket bounds from ``lo`` to ``hi``.

    ``per_decade`` bounds per factor of ten keeps the relative
    quantile-estimation error bounded by one bucket ratio
    (``10^(1/per_decade)`` — ~29% at the default 9/decade) across the
    whole range, instead of the unbounded *absolute* error a narrow
    fixed-bucket layout produces once observations saturate its first
    or last bucket.  Bounds are rounded to two significant digits so
    rendered ``le`` labels stay readable; ``hi`` is always included.
    """
    if lo <= 0 or hi <= lo:
        raise ValueError(
            f"need 0 < lo < hi, got lo={lo!r} hi={hi!r}")
    if per_decade < 1:
        raise ValueError(f"per_decade must be >= 1, got {per_decade}")
    bounds: List[float] = []
    step = 10.0 ** (1.0 / per_decade)
    value = lo
    while value < hi * (1.0 - 1e-12):
        rounded = float(f"{value:.1e}")
        if not bounds or rounded > bounds[-1]:
            bounds.append(rounded)
        value *= step
    bounds.append(float(hi))
    return tuple(bounds)


#: Wide-dynamic-range latency buckets (seconds): 1 µs .. 60 s at 9
#: bounds per decade (~70 buckets).  The preset for request-latency
#: histograms that must resolve both sub-millisecond cache hits *and*
#: multi-second saturation tails — p50/p99/p99.9 stay within ~29%
#: relative error anywhere in the range, where the narrower default
#: preset pins everything below 100 µs into its first bucket.
LATENCY_BUCKETS_WIDE: Tuple[float, ...] = log_buckets(1e-6, 60.0)

LabelPairs = Tuple[Tuple[str, str], ...]


class Counter:
    """Monotone counter (one label-child of a counter family)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """Settable instantaneous value, or a callback sampled at collection.

    A callback gauge (``fn=...``) reads its value lazily — the idiom
    for values that are a *function of now* (snapshot age, uptime,
    queue depth derived from a container) rather than an event count.
    """

    __slots__ = ("_lock", "_value", "_fn")

    def __init__(self, fn: Optional[Callable[[], float]] = None) -> None:
        self._lock = threading.Lock()
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_function(self, fn: Optional[Callable[[], float]]) -> None:
        with self._lock:
            self._fn = fn

    @property
    def value(self) -> float:
        fn = self._fn
        if fn is not None:
            try:
                return float(fn())
            except Exception:
                return math.nan   # a broken callback must not break /metrics
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with percentile estimation and exemplars.

    Buckets are cumulative upper bounds (Prometheus ``le`` semantics)
    plus an implicit ``+Inf``; ``observe`` is O(log buckets) via binary
    search under one lock, so concurrent writers stay cheap.

    Observations made inside an active trace attach an **exemplar** to
    their bucket — the most recent ``(trace_id, span_id, value,
    timestamp)`` at or above :attr:`exemplar_threshold` — so a p99
    spike on ``/metrics`` resolves to one concrete trace id.  Untraced
    observations never allocate exemplar state.
    """

    __slots__ = ("_lock", "buckets", "_counts", "_count", "_sum",
                 "_min", "_max", "_exemplars", "exemplar_threshold")

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                 exemplar_threshold: float = 0.0) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)   # last = +Inf overflow
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        #: Minimum value an observation must reach to record an
        #: exemplar (0.0 = every traced observation qualifies).
        self.exemplar_threshold = exemplar_threshold
        # One optional (trace_id, span_id, value, unix_ts) per bucket.
        self._exemplars: List[Optional[Tuple[str, str, float, float]]] = \
            [None] * (len(bounds) + 1)

    def observe(self, value: float) -> None:
        # Binary search for the first bound >= value.
        lo, hi = 0, len(self.buckets)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.buckets[mid]:
                hi = mid
            else:
                lo = mid + 1
        ids = current_ids() if value >= self.exemplar_threshold else None
        with self._lock:
            self._counts[lo] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if ids is not None:
                self._exemplars[lo] = (ids[0], ids[1], value, time.time())

    def time(self) -> "_HistogramTimer":
        """``with hist.time(): ...`` observes the block's wall time."""
        return _HistogramTimer(self)

    # -- reads ---------------------------------------------------------
    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def percentile(self, q: float) -> Optional[float]:
        """Estimated ``q``-quantile (``0 <= q <= 1``) by bucket
        interpolation.

        ``None`` on an empty histogram (rendered as ``null`` in JSON
        surfaces — there is no quantile to estimate, and a fabricated
        bucket boundary would read as a real latency).  With exactly
        one observation the sole observed value is returned exactly.
        Otherwise, within the winning bucket the estimate interpolates
        linearly between its bounds (the lower bound of the first
        bucket is the observed minimum, the upper bound of the overflow
        bucket the observed maximum), so the error is at most one
        bucket width.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            total = self._count
            if total == 0:
                return None
            if total == 1:
                return self._min   # the sole observation, exactly
            rank = q * total
            cumulative = 0
            for i, n in enumerate(self._counts):
                cumulative += n
                if cumulative >= rank and n:
                    lower = self._min if i == 0 else self.buckets[i - 1]
                    upper = self._max if i == len(self.buckets) \
                        else self.buckets[i]
                    lower = max(min(lower, upper), min(self._min, upper))
                    frac = (rank - (cumulative - n)) / n
                    return lower + (upper - lower) * frac
            return self._max   # pragma: no cover - defensive

    def snapshot(self) -> Dict[str, Any]:
        """Count/sum/mean/min/max plus p50/p90/p99 estimates.

        Percentiles are ``None`` (JSON ``null``) while the histogram is
        empty.  When a traced observation has attached an exemplar, the
        slowest bucket's exemplar rides along under ``"exemplar"`` —
        the one-hop link from a latency summary to ``GET /trace/<id>``.
        """
        with self._lock:
            count, total = self._count, self._sum
        out = {
            "count": count,
            "sum": total,
            "mean": (total / count) if count else 0.0,
            "min": self._min if count else 0.0,
            "max": self._max if count else 0.0,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
            "p999": self.percentile(0.999),
        }
        worst = self.exemplar()
        if worst is not None:
            out["exemplar"] = worst
        return out

    def exemplar(self) -> Optional[Dict[str, Any]]:
        """The slowest-bucket exemplar as a dict, or ``None``.

        "Slowest" means the highest bucket holding one — the exemplar a
        p99 investigation wants first.
        """
        with self._lock:
            rows = list(self._exemplars)
        for i in range(len(rows) - 1, -1, -1):
            ex = rows[i]
            if ex is not None:
                trace_id, span_id, value, ts = ex
                return {"trace_id": trace_id, "span_id": span_id,
                        "value": value, "timestamp": ts}
        return None

    def exemplars(self) -> List[Optional[Dict[str, Any]]]:
        """Per-bucket exemplars aligned with :meth:`cumulative_buckets`
        rows (``None`` for buckets that never saw a traced
        observation)."""
        with self._lock:
            rows = list(self._exemplars)
        return [None if ex is None else
                {"trace_id": ex[0], "span_id": ex[1], "value": ex[2],
                 "timestamp": ex[3]}
                for ex in rows]

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` rows, ending at +Inf."""
        with self._lock:
            counts = list(self._counts)
        rows: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.buckets, counts):
            running += n
            rows.append((bound, running))
        rows.append((math.inf, running + counts[-1]))
        return rows


class _HistogramTimer:
    __slots__ = ("_hist", "_t0")

    def __init__(self, hist: Histogram) -> None:
        self._hist = hist

    def __enter__(self) -> "_HistogramTimer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        self._hist.observe(time.perf_counter() - self._t0)


class _Family:
    """One metric name: help text, type, and children per label set."""

    __slots__ = ("name", "help", "kind", "children", "_lock", "_ctor")

    def __init__(self, name: str, help_text: str, kind: str,
                 ctor: Callable[[], Any]) -> None:
        self.name = name
        self.help = help_text
        self.kind = kind
        self.children: Dict[LabelPairs, Any] = {}
        self._lock = threading.Lock()
        self._ctor = ctor

    def child(self, labels: LabelPairs) -> Any:
        with self._lock:
            inst = self.children.get(labels)
            if inst is None:
                inst = self._ctor()
                self.children[labels] = inst
            return inst


def _label_key(labels: Dict[str, Any]) -> LabelPairs:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Get-or-create instrument families, thread-safe end to end."""

    def __init__(self, namespace: str = "") -> None:
        self.namespace = namespace
        self._lock = threading.Lock()
        self._families: "Dict[str, _Family]" = {}

    # -- instrument accessors ------------------------------------------
    def _family(self, name: str, help_text: str, kind: str,
                ctor: Callable[[], Any]) -> _Family:
        if not name or not all(c.isalnum() or c == "_" for c in name):
            raise ValueError(
                f"metric names are [A-Za-z0-9_]+, got {name!r}")
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, help_text, kind, ctor)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{family.kind}, not {kind}")
            return family

    def counter(self, name: str, help_text: str = "",
                **labels: Any) -> Counter:
        return self._family(name, help_text, "counter",
                            Counter).child(_label_key(labels))

    def gauge(self, name: str, help_text: str = "",
              fn: Optional[Callable[[], float]] = None,
              **labels: Any) -> Gauge:
        gauge = self._family(name, help_text, "gauge",
                             Gauge).child(_label_key(labels))
        if fn is not None:
            gauge.set_function(fn)
        return gauge

    def histogram(self, name: str, help_text: str = "",
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                  **labels: Any) -> Histogram:
        return self._family(
            name, help_text, "histogram",
            lambda: Histogram(buckets)).child(_label_key(labels))

    # -- collection -----------------------------------------------------
    def families(self) -> List[_Family]:
        with self._lock:
            return list(self._families.values())

    def snapshot(self) -> Dict[str, Any]:
        """Nested plain-dict view, JSON-ready.

        ``{name: {"type": ..., "values": {label_repr: value_or_summary}}}``
        — histogram children summarise to count/sum/percentiles.
        """
        out: Dict[str, Any] = {}
        for family in self.families():
            values: Dict[str, Any] = {}
            for labels, inst in sorted(family.children.items()):
                key = ",".join(f"{k}={v}" for k, v in labels) or ""
                if family.kind == "histogram":
                    values[key] = inst.snapshot()
                else:
                    values[key] = inst.value
            out[family.name] = {"type": family.kind, "values": values}
        return out

    def render_prometheus(self) -> str:
        """This registry's families in Prometheus text format."""
        return render_prometheus(self)

    def reset(self) -> None:
        """Drop every family (tests and bench-run isolation)."""
        with self._lock:
            self._families.clear()


def _fmt_value(v: float) -> str:
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    if math.isnan(v):
        return "NaN"
    if float(v).is_integer() and abs(v) < 1e15:
        return str(int(v))
    return repr(float(v))


def _escape_label_value(v: str) -> str:
    """Escape a label value per the Prometheus exposition spec:
    backslash, double quote, and line feed."""
    return (v.replace("\\", r"\\").replace('"', r'\"')
             .replace("\n", r"\n"))


def _label_text(labels: LabelPairs, extra: str = "") -> str:
    parts = [f'{k}="{_escape_label_value(v)}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _exemplar_text(ex: Optional[Dict[str, Any]]) -> str:
    """OpenMetrics exemplar suffix for one bucket line (or '')."""
    if ex is None:
        return ""
    return (f' # {{trace_id="{_escape_label_value(ex["trace_id"])}",'
            f'span_id="{_escape_label_value(ex["span_id"])}"}} '
            f'{_fmt_value(ex["value"])} {ex["timestamp"]:.3f}')


def render_prometheus(*registries: MetricsRegistry) -> str:
    """Prometheus text exposition for one or more registries.

    Rendering several registries at once is how ``GET /metrics``
    combines a service's per-instance instruments with the
    process-global library instruments; duplicate family names across
    registries keep their first help/type line (Prometheus tolerates
    repeated samples of one family).  Histogram buckets that hold an
    exemplar render it in OpenMetrics exemplar syntax
    (``… # {trace_id="…",span_id="…"} value timestamp``), so a bucket
    count links straight to the span tree that produced it.
    """
    lines: List[str] = []
    seen_header: set = set()
    for registry in registries:
        for family in registry.families():
            if family.name not in seen_header:
                seen_header.add(family.name)
                if family.help:
                    lines.append(f"# HELP {family.name} {family.help}")
                lines.append(f"# TYPE {family.name} {family.kind}")
            for labels, inst in sorted(family.children.items()):
                if family.kind == "histogram":
                    exemplars = inst.exemplars()
                    for i, (bound, cum) in enumerate(
                            inst.cumulative_buckets()):
                        le = 'le="%s"' % _fmt_value(bound)
                        lines.append(
                            f"{family.name}_bucket"
                            f"{_label_text(labels, le)} {cum}"
                            f"{_exemplar_text(exemplars[i])}")
                    lines.append(f"{family.name}_sum"
                                 f"{_label_text(labels)} "
                                 f"{_fmt_value(inst.sum)}")
                    lines.append(f"{family.name}_count"
                                 f"{_label_text(labels)} {inst.count}")
                else:
                    lines.append(f"{family.name}{_label_text(labels)} "
                                 f"{_fmt_value(inst.value)}")
    return "\n".join(lines) + "\n"


#: The process-global registry for library-level instruments.
_GLOBAL_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _GLOBAL_REGISTRY


# ---------------------------------------------------------------------------
# Process runtime gauges
# ---------------------------------------------------------------------------

def _rss_bytes() -> float:
    """Resident set size.  ``/proc/self/statm`` field 2 (pages) × page
    size on Linux; elsewhere, ``resource.getrusage`` ``ru_maxrss``
    (peak, in KiB on Linux / bytes on macOS — close enough for a
    fallback gauge)."""
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as fh:
            pages = int(fh.read().split()[1])
        return float(pages * os.sysconf("SC_PAGESIZE"))
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource
        rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports KiB, macOS bytes; heuristically a value under
        # 1 GiB-as-KiB is KiB.
        return float(rss * 1024 if rss < 1 << 30 else rss)
    except Exception:
        return math.nan


def _open_fds() -> float:
    """Open file descriptors via ``/proc/self/fd``; NaN where absent."""
    try:
        return float(len(os.listdir("/proc/self/fd")))
    except OSError:
        return math.nan


def install_process_gauges(
        registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Register process runtime gauges (idempotent, callback-based).

    RSS, per-generation GC collections/collected, live thread count,
    and open FD count on ``registry`` (default: the process-global
    one), each as a callback :class:`Gauge` sampled at collection time
    — the serving tier calls this once at startup and ``GET /metrics``
    reports live values with zero steady-state cost.
    """
    reg = registry if registry is not None else _GLOBAL_REGISTRY
    reg.gauge("process_resident_memory_bytes",
              "Resident set size of this process", fn=_rss_bytes)
    reg.gauge("process_open_fds",
              "Open file descriptors held by this process", fn=_open_fds)
    reg.gauge("process_threads",
              "Live Python threads", fn=lambda: float(threading.active_count()))
    for gen in range(3):
        reg.gauge("python_gc_collections_total",
                  "GC runs per generation",
                  fn=(lambda g=gen: float(gc.get_stats()[g]["collections"])),
                  generation=gen)
        reg.gauge("python_gc_collected_total",
                  "Objects collected by the GC per generation",
                  fn=(lambda g=gen: float(gc.get_stats()[g]["collected"])),
                  generation=gen)
    return reg

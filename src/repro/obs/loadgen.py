"""Workload capture, open-loop load generation, and SLO gating.

The instrument that judges the serving tier.  ``bench_serve.py``
measures *closed-loop* single-query latency: issue, wait, issue again.
Production traffic is **open-loop** — arrivals don't wait for the
server — and under open-loop load the honest latency of a request runs
from the moment it *should* have started, not from the moment a stalled
injector finally got around to sending it.  A load generator that
measures from actual send time silently forgives every server stall
(the **coordinated omission** mistake); this module measures from the
intended arrival time, so a half-second hiccup shows up in p99 as the
pile-up it caused, not as one slow sample.

Three stages, each usable alone:

* **capture** — :class:`WorkloadRecorder` hangs off
  :meth:`repro.serve.service.AdjacencyService.start_capture` and writes
  a sampled, schema-versioned query log (kind, params, epoch, arrival
  offset) as replayable JSONL (:class:`Workload`);
  :func:`synthesize` fabricates the same shape from a query-mix spec
  over a vertex set, deterministically under a seed.
* **replay** — :func:`replay` drives a target (an in-process
  :class:`ServiceTarget` or an :class:`HTTPTarget` against the JSON
  front end) under a Poisson or fixed-rate arrival schedule
  (:func:`arrival_offsets`) with N injector threads, recording
  coordinated-omission-corrected latency into the wide log-bucketed
  histograms of :mod:`repro.obs.metrics` (accurate p50/p99/p99.9/max
  from microseconds to seconds) plus per-interval time series and the
  slowest requests.
* **sweep & gate** — :func:`sweep` steps the arrival rate until a
  declared :class:`SLO` is violated, emits ``loadgen.step`` /
  ``loadgen.slo_breach`` / ``loadgen.sweep`` events on the
  process-global ring, and reports ``sustainable_qps`` — the headline
  ``repro bench`` gates on (``benchmarks/bench_loadgen.py``).

CLI: ``repro loadgen record|replay|sweep``.
"""

from __future__ import annotations

import json
import random
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.events import emit_event
from repro.obs.metrics import LATENCY_BUCKETS_WIDE, Histogram

__all__ = [
    "WORKLOAD_SCHEMA",
    "DEFAULT_MIX",
    "LoadgenError",
    "Workload",
    "WorkloadRecorder",
    "SLO",
    "ServiceTarget",
    "HTTPTarget",
    "arrival_offsets",
    "synthesize",
    "replay",
    "sweep",
    "render_replay",
    "render_sweep",
]

#: Schema tag on the first line of every workload file; bump on any
#: incompatible record change so old replayers fail loudly, not subtly.
WORKLOAD_SCHEMA = "repro.workload/1"

#: Default query mix for synthetic workloads: read-heavy, the shape of
#: graph-service traffic (point reads dominate, analytic hops ride
#: along, a trickle of stats polling).
DEFAULT_MIX: Dict[str, float] = {
    "neighbors": 0.55, "degrees": 0.15, "khop": 0.20,
    "path_lengths": 0.05, "top_k": 0.04, "stats": 0.01,
}

class LoadgenError(RuntimeError):
    """Raised for load-generator misuse: bad mixes, rates, workloads."""


# ---------------------------------------------------------------------------
# Workloads: capture, synthesis, JSONL round-trip
# ---------------------------------------------------------------------------

class Workload:
    """An ordered list of query operations plus provenance metadata.

    Each op is a dict ``{"t": arrival_offset_seconds, "kind": str,
    "params": {...}}`` (captured ops also carry ``"epoch"``).  The
    JSONL form opens with a schema header line so a replayer can reject
    files it does not understand.
    """

    def __init__(self, ops: Sequence[Dict[str, Any]],
                 meta: Optional[Dict[str, Any]] = None) -> None:
        self.ops: List[Dict[str, Any]] = list(ops)
        self.meta: Dict[str, Any] = dict(meta or {})

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)

    def kinds(self) -> Dict[str, int]:
        """Op count per query kind (the mix actually in the file)."""
        out: Dict[str, int] = {}
        for op in self.ops:
            out[op["kind"]] = out.get(op["kind"], 0) + 1
        return out

    def to_jsonl(self) -> str:
        """Header line + one op per line, the canonical file form."""
        header = {"schema": WORKLOAD_SCHEMA, "count": len(self.ops),
                  **self.meta}
        lines = [json.dumps(header, sort_keys=True, default=str)]
        lines += [json.dumps(op, sort_keys=True, default=str)
                  for op in self.ops]
        return "\n".join(lines) + "\n"

    def save(self, path: Union[str, Path]) -> Path:
        """Write the JSONL form to ``path``; returns the path."""
        p = Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(self.to_jsonl(), encoding="utf-8")
        return p

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Workload":
        """Read a workload file, validating the schema header."""
        p = Path(path)
        try:
            lines = p.read_text(encoding="utf-8").splitlines()
        except OSError as exc:
            raise LoadgenError(f"cannot read workload {p}: {exc}") \
                from None
        rows: List[Dict[str, Any]] = []
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise LoadgenError(
                    f"{p}:{i + 1}: malformed JSON: {exc}") from None
        if not rows:
            raise LoadgenError(f"{p} is empty — not a workload file")
        header, ops = rows[0], rows[1:]
        schema = header.get("schema")
        if schema != WORKLOAD_SCHEMA:
            raise LoadgenError(
                f"{p} has schema {schema!r}; this reader understands "
                f"{WORKLOAD_SCHEMA!r}")
        for i, op in enumerate(ops):
            if "kind" not in op:
                raise LoadgenError(f"{p}: op {i} has no 'kind'")
        meta = {k: v for k, v in header.items()
                if k not in ("schema", "count")}
        return cls(ops, meta)


class WorkloadRecorder:
    """Sampled, bounded query-log recorder for a live service.

    Installed by :meth:`AdjacencyService.start_capture`; the service
    calls :meth:`record` once per query (before compute, so arrival
    order is arrival order).  ``sample_rate`` keeps every Nth-ish query
    by seeded Bernoulli draw — cheap enough to leave on under load —
    and ``capacity`` bounds memory (past it, new samples are dropped
    and counted, never silently).
    """

    def __init__(self, *, sample_rate: float = 1.0, seed: int = 0,
                 capacity: int = 100_000) -> None:
        if not 0.0 < sample_rate <= 1.0:
            raise LoadgenError(
                f"sample_rate must be in (0, 1], got {sample_rate}")
        if capacity < 1:
            raise LoadgenError(f"capacity must be >= 1, got {capacity}")
        self.sample_rate = sample_rate
        self.capacity = capacity
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._t0 = time.perf_counter()
        self._started_at = time.time()
        self._ops: List[Dict[str, Any]] = []
        self._seen = 0
        self._dropped = 0

    def record(self, kind: str, params: Dict[str, Any],
               epoch: int) -> None:
        """One query arrival; samples, stamps the offset, appends."""
        now = time.perf_counter()
        with self._lock:
            self._seen += 1
            if self.sample_rate < 1.0 \
                    and self._rng.random() >= self.sample_rate:
                return
            if len(self._ops) >= self.capacity:
                self._dropped += 1
                return
            self._ops.append({
                "t": round(now - self._t0, 6),
                "kind": kind,
                "params": dict(params),
                "epoch": epoch,
            })

    def stats(self) -> Dict[str, Any]:
        """Seen/kept/dropped counts — the honesty block of a capture."""
        with self._lock:
            return {"seen": self._seen, "kept": len(self._ops),
                    "dropped": self._dropped,
                    "sample_rate": self.sample_rate,
                    "capacity": self.capacity}

    def workload(self) -> Workload:
        """The captured ops as a :class:`Workload` (metadata included)."""
        with self._lock:
            ops = [dict(op) for op in self._ops]
            stats = {"seen": self._seen, "kept": len(ops),
                     "dropped": self._dropped}
        return Workload(ops, meta={
            "source": "capture",
            "sample_rate": self.sample_rate,
            "started_at": self._started_at,
            **stats,
        })


def _parse_mix(mix: Union[str, Dict[str, float], None]) -> Dict[str, float]:
    """Normalise a query-mix spec to positive weights summing to 1.

    Accepts a dict or the CLI spelling ``"khop=0.3,neighbors=0.7"``.
    """
    if mix is None:
        parsed = dict(DEFAULT_MIX)
    elif isinstance(mix, str):
        parsed = {}
        for part in mix.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise LoadgenError(
                    f"mix entries are KIND=WEIGHT, got {part!r}")
            kind, _, weight = part.partition("=")
            try:
                parsed[kind.strip()] = float(weight)
            except ValueError:
                raise LoadgenError(
                    f"mix weight for {kind.strip()!r} must be a number, "
                    f"got {weight!r}") from None
    else:
        parsed = {k: float(v) for k, v in mix.items()}
    known = set(DEFAULT_MIX)
    unknown = set(parsed) - known
    if unknown:
        raise LoadgenError(
            f"unknown query kind(s) in mix: {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(known))}")
    parsed = {k: v for k, v in parsed.items() if v > 0}
    total = sum(parsed.values())
    if not parsed or total <= 0:
        raise LoadgenError("mix needs at least one positive weight")
    return {k: v / total for k, v in parsed.items()}


def synthesize(
    vertices: Sequence[Any],
    *,
    mix: Union[str, Dict[str, float], None] = None,
    n_ops: int = 1000,
    seed: int = 0,
    max_k: int = 3,
    nominal_rate: float = 100.0,
) -> Workload:
    """A deterministic synthetic workload over ``vertices``.

    ``mix`` weights the query kinds (default :data:`DEFAULT_MIX`);
    vertices and parameters are drawn by one seeded RNG, so the same
    seed always yields the same workload.  The recorded ``t`` offsets
    space ops uniformly at ``nominal_rate`` — only the ``recorded``
    replay process uses them; rate-driven replays impose their own
    schedule.
    """
    if not vertices:
        raise LoadgenError("cannot synthesize a workload over zero "
                           "vertices")
    if n_ops < 1:
        raise LoadgenError(f"n_ops must be >= 1, got {n_ops}")
    weights = _parse_mix(mix)
    rng = random.Random(seed)
    kinds = sorted(weights)
    kind_weights = [weights[k] for k in kinds]
    pool = list(vertices)
    ops: List[Dict[str, Any]] = []
    for i in range(n_ops):
        kind = rng.choices(kinds, weights=kind_weights)[0]
        params: Dict[str, Any] = {}
        if kind in ("neighbors", "degrees"):
            params["direction"] = rng.choice(("out", "in"))
        if kind in ("neighbors", "khop", "path_lengths"):
            params["vertex"] = rng.choice(pool)
        if kind == "khop":
            params["k"] = rng.randint(1, max(max_k, 1))
        if kind == "top_k":
            params["k"] = rng.choice((5, 10, 20))
        ops.append({"t": round(i / nominal_rate, 6), "kind": kind,
                    "params": params})
    return Workload(ops, meta={
        "source": "synthetic",
        "seed": seed,
        "mix": {k: round(v, 6) for k, v in weights.items()},
        "vertices": len(pool),
        "nominal_rate": nominal_rate,
    })


# ---------------------------------------------------------------------------
# Arrival schedules
# ---------------------------------------------------------------------------

def arrival_offsets(n: int, rate: float, *, process: str = "poisson",
                    seed: int = 0) -> List[float]:
    """``n`` intended start offsets (seconds from t0) at ``rate`` req/s.

    ``poisson`` draws exponential inter-arrival gaps (the memoryless
    arrivals of independent clients); ``fixed`` spaces arrivals exactly
    ``1/rate`` apart.  Both are deterministic under ``seed`` — a replay
    is reproducible end to end.
    """
    if n < 0:
        raise LoadgenError(f"n must be >= 0, got {n}")
    if rate <= 0:
        raise LoadgenError(f"rate must be > 0, got {rate}")
    if process == "fixed":
        return [i / rate for i in range(n)]
    if process == "poisson":
        rng = random.Random(seed)
        offsets: List[float] = []
        t = 0.0
        for _ in range(n):
            t += rng.expovariate(rate)
            offsets.append(t)
        return offsets
    raise LoadgenError(
        f"unknown arrival process {process!r}; known: poisson, fixed "
        "(plus 'recorded' for replay of captured offsets)")


# ---------------------------------------------------------------------------
# Targets
# ---------------------------------------------------------------------------

class ServiceTarget:
    """Drive an in-process :class:`AdjacencyService` (duck-typed)."""

    def __init__(self, service: Any) -> None:
        self._service = service
        pair = getattr(service, "op_pair", None)
        self.name = f"service:{pair.name}" if pair is not None \
            else "service"

    def __call__(self, kind: str, params: Dict[str, Any]) -> Any:
        return self._service.query(kind, **params)

    def exemplars(self) -> Dict[str, Any]:
        """Slowest-bucket trace exemplars off the service's request
        histograms — the one-hop link from a saturation tail to a
        concrete span tree."""
        out: Dict[str, Any] = {}
        for family in self._service.metrics.families():
            if family.name != "serve_request_seconds":
                continue
            for labels, hist in sorted(family.children.items()):
                ex = hist.exemplar()
                if ex is not None:
                    out[dict(labels).get("kind", "")] = ex
        return out


class HTTPTarget:
    """Drive a running JSON front end (``repro serve``) over HTTP.

    Each injector thread issues plain blocking ``urllib`` GETs; error
    responses raise, so the replay loop counts them.
    """

    def __init__(self, base_url: str, *, timeout: float = 10.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.name = f"http:{self.base_url}"

    def __call__(self, kind: str, params: Dict[str, Any]) -> Any:
        import urllib.request
        from urllib.parse import urlencode
        if kind == "stats":
            url = f"{self.base_url}/stats"
        else:
            url = f"{self.base_url}/query/{kind}"
            if params:
                url += "?" + urlencode(
                    {k: v for k, v in params.items() if v is not None})
        with urllib.request.urlopen(url, timeout=self.timeout) as resp:
            return json.loads(resp.read().decode("utf-8"))

    def exemplars(self) -> Dict[str, Any]:
        return {}   # server-side traces; not harvestable over the wire


def _as_target(target: Any) -> Any:
    """Accept a prepared target, a service, or a URL string."""
    if callable(target):
        return target
    if isinstance(target, str):
        return HTTPTarget(target)
    if hasattr(target, "query"):
        return ServiceTarget(target)
    raise LoadgenError(
        f"cannot drive {target!r}: pass a callable, an "
        "AdjacencyService, or a base URL")


# ---------------------------------------------------------------------------
# Open-loop replay with coordinated-omission correction
# ---------------------------------------------------------------------------

def _percentiles_ms(hist: Histogram) -> Dict[str, Optional[float]]:
    def ms(v: Optional[float]) -> Optional[float]:
        return None if v is None else round(v * 1e3, 4)
    snap = hist.snapshot()
    return {
        "p50_ms": ms(snap["p50"]),
        "p99_ms": ms(snap["p99"]),
        "p999_ms": ms(snap["p999"]),
        "max_ms": ms(snap["max"] if snap["count"] else None),
        "mean_ms": ms(snap["mean"] if snap["count"] else None),
    }


def replay(
    workload: Union[Workload, Sequence[Dict[str, Any]]],
    target: Any,
    *,
    rate: float = 100.0,
    process: str = "poisson",
    threads: int = 4,
    seed: int = 0,
    duration: Optional[float] = None,
    interval: float = 1.0,
    warmup: int = 0,
    emit: bool = True,
) -> Dict[str, Any]:
    """Open-loop replay of ``workload`` against ``target``.

    The schedule fixes every request's **intended** start time before
    the run begins (``process`` as in :func:`arrival_offsets`, or
    ``"recorded"`` to reuse the workload's captured offsets); injector
    threads round-robin the requests and each waits for its intended
    time, fires, and records two latencies:

    * **corrected** — completion minus *intended* start.  This is the
      latency an open-loop client experienced, queueing included; a
      server stall inflates every request scheduled behind it.
    * **service** — completion minus actual send.  The closed-loop
      number, reported alongside so the coordinated-omission gap is
      visible instead of silently flattering the server.

    ``duration`` (seconds) sizes the request count as ``rate ×
    duration``, cycling the workload as needed; default is one pass
    over the workload.  ``warmup`` issues that many leading ops
    closed-loop and unmeasured first, so one-time costs (expression
    planning, certification, cache fill) surface as warmup, not as a
    fake saturation tail.  Returns a JSON-ready report: corrected and
    service-time percentiles off wide log-bucketed histograms,
    ``achieved_qps``, per-``interval`` time series, the slowest
    requests, injector start-lag, and (in-process targets) trace
    exemplars.
    """
    ops = list(workload.ops if isinstance(workload, Workload)
               else workload)
    if not ops:
        raise LoadgenError("workload has no operations to replay")
    if threads < 1:
        raise LoadgenError(f"threads must be >= 1, got {threads}")
    if interval <= 0:
        raise LoadgenError(f"interval must be > 0, got {interval}")
    tgt = _as_target(target)
    for op in ops[:max(warmup, 0)]:
        try:
            tgt(op["kind"], op.get("params") or {})
        except Exception:
            pass   # warmup errors repeat (and count) in the run proper
    if process == "recorded":
        base = float(ops[0].get("t", 0.0))
        offsets = [max(float(op.get("t", 0.0)) - base, 0.0)
                   for op in ops]
        n = len(offsets)
        eff_rate = (n / offsets[-1]) if n > 1 and offsets[-1] > 0 \
            else float(rate)
    else:
        n = int(rate * duration) if duration is not None else len(ops)
        if n < 1:
            raise LoadgenError(
                f"rate={rate} × duration={duration} yields no requests")
        offsets = arrival_offsets(n, rate, process=process, seed=seed)
        eff_rate = float(rate)

    corrected_hist = Histogram(LATENCY_BUCKETS_WIDE)
    service_hist = Histogram(LATENCY_BUCKETS_WIDE)
    samples: List[List[Tuple[float, float, float, float, bool, int]]] = \
        [[] for _ in range(threads)]
    t0 = time.perf_counter() + 0.05   # let every injector reach its gate

    def injector(tid: int) -> None:
        mine = samples[tid]
        for i in range(tid, len(offsets), threads):
            intended = t0 + offsets[i]
            now = time.perf_counter()
            if intended > now:
                time.sleep(intended - now)
            start = time.perf_counter()
            op = ops[i % len(ops)]
            ok = True
            try:
                tgt(op["kind"], op.get("params") or {})
            except Exception:
                ok = False
            end = time.perf_counter()
            service = end - start
            corrected = max(end - intended, service)
            corrected_hist.observe(corrected)
            service_hist.observe(service)
            mine.append((offsets[i], corrected, service,
                         start - intended, ok, i))

    workers = [threading.Thread(target=injector, args=(tid,), daemon=True)
               for tid in range(threads)]
    for w in workers:
        w.start()
    for w in workers:
        w.join()

    rows = sorted(r for chunk in samples for r in chunk)
    errors = sum(1 for r in rows if not r[4])
    max_lag = max((r[3] for r in rows), default=0.0)
    # Schedule start → last completion (end_i = t0 + offset_i +
    # corrected_i), so the gate delay and thread-join overhead never
    # dilute the throughput figure.
    elapsed = max((r[0] + r[1] for r in rows), default=0.0)

    # Per-interval time series keyed on the *intended* arrival window.
    series: List[Dict[str, Any]] = []
    if rows:
        n_bins = int(rows[-1][0] // interval) + 1
        for b in range(n_bins):
            bin_rows = [r for r in rows
                        if b * interval <= r[0] < (b + 1) * interval]
            if not bin_rows:
                continue
            lats = sorted(r[1] for r in bin_rows)
            p99 = lats[min(len(lats) - 1, int(0.99 * len(lats)))]
            series.append({
                "t": round(b * interval, 3),
                "requests": len(bin_rows),
                "errors": sum(1 for r in bin_rows if not r[4]),
                "p99_ms": round(p99 * 1e3, 4),
                "max_ms": round(lats[-1] * 1e3, 4),
            })

    slowest = sorted(rows, key=lambda r: -r[1])[:5]
    report: Dict[str, Any] = {
        "schema": "repro.loadgen.replay/1",
        "target": getattr(tgt, "name", repr(tgt)),
        "process": process,
        "offered_rate": round(eff_rate, 4),
        "threads": threads,
        "seed": seed,
        "requests": len(rows),
        "errors": errors,
        "error_rate": round(errors / len(rows), 6) if rows else 0.0,
        "elapsed_seconds": round(elapsed, 4),
        "achieved_qps": round(len(rows) / elapsed, 2) if elapsed else 0.0,
        "corrected": _percentiles_ms(corrected_hist),
        "service_time": _percentiles_ms(service_hist),
        "max_start_lag_ms": round(max_lag * 1e3, 4),
        "series": series,
        "slowest": [{
            "t": round(r[0], 4),
            "kind": ops[r[5] % len(ops)]["kind"],
            "corrected_ms": round(r[1] * 1e3, 4),
            "service_ms": round(r[2] * 1e3, 4),
        } for r in slowest],
    }
    exemplars = getattr(tgt, "exemplars", None)
    if exemplars is not None:
        found = exemplars()
        if found:
            report["exemplars"] = found
    if emit:
        emit_event("loadgen.replay", target=report["target"],
                   process=process, rate=report["offered_rate"],
                   requests=report["requests"], errors=errors,
                   p99_ms=report["corrected"]["p99_ms"],
                   achieved_qps=report["achieved_qps"])
    return report


# ---------------------------------------------------------------------------
# Saturation sweep with SLO gating
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SLO:
    """A declared service-level objective a sweep gates against."""

    p99_ms: float = 50.0
    max_error_rate: float = 0.01

    def breaches(self, report: Dict[str, Any]) -> List[str]:
        """Human-readable violations of this SLO in a replay report."""
        out: List[str] = []
        p99 = report.get("corrected", {}).get("p99_ms")
        if p99 is not None and p99 > self.p99_ms:
            out.append(f"corrected p99 {p99:.3g} ms > SLO "
                       f"{self.p99_ms:.3g} ms")
        err = report.get("error_rate", 0.0)
        if err > self.max_error_rate:
            out.append(f"error rate {err:.2%} > SLO "
                       f"{self.max_error_rate:.2%}")
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {"p99_ms": self.p99_ms,
                "max_error_rate": self.max_error_rate}


def sweep(
    workload: Union[Workload, Sequence[Dict[str, Any]]],
    target: Any,
    *,
    rates: Optional[Sequence[float]] = None,
    start_rate: float = 50.0,
    growth: float = 2.0,
    max_steps: int = 6,
    duration: float = 2.0,
    slo: Optional[SLO] = None,
    process: str = "poisson",
    threads: int = 4,
    seed: int = 0,
    warmup: int = 0,
    emit: bool = True,
    profile: bool = False,
) -> Dict[str, Any]:
    """Step the offered arrival rate until the SLO is violated.

    Rates come from ``rates`` verbatim, or grow geometrically from
    ``start_rate`` by ``growth`` for up to ``max_steps`` steps.  Each
    step is one open-loop :func:`replay` of ``duration`` seconds
    (``warmup`` unmeasured closed-loop ops precede the first step);
    the first SLO-violating step stops the sweep (and emits a
    ``loadgen.slo_breach`` event with the breach detail).

    The headline is ``sustainable_qps`` — the *achieved* throughput of
    the fastest step that met the SLO (0.0 when even the first rate
    violated it).  The full report carries every step's replay report,
    so the latency-vs-rate curve is in the artifact, not just the
    verdict.

    ``profile=True`` runs each step under its own sampling-profiler
    session (:mod:`repro.obs.profile`): every step's report gains a
    small ``"profile"`` summary, and the *breach* step — the one whose
    attribution matters — additionally carries its collapsed stacks,
    so ``repro loadgen sweep --profile`` can write the saturation
    flamegraph.  In-process targets put the service work on the
    sampled threads; over HTTP only the injector side is visible.
    """
    if slo is None:
        slo = SLO()
    if rates is None:
        if start_rate <= 0 or growth <= 1.0 or max_steps < 1:
            raise LoadgenError(
                "need start_rate > 0, growth > 1, max_steps >= 1 "
                f"(got {start_rate}, {growth}, {max_steps})")
        rates = [start_rate * growth ** i for i in range(max_steps)]
    else:
        rates = [float(r) for r in rates]
        if not rates or any(r <= 0 for r in rates):
            raise LoadgenError(f"rates must be positive, got {rates}")
    if process == "recorded":
        raise LoadgenError(
            "a sweep imposes its own rates; use process='poisson' or "
            "'fixed'")
    if profile:
        from repro.obs.profile import active_session
        if active_session() is not None:
            raise LoadgenError(
                "a profile session is already active; stop it before "
                "sweeping with profile=True (each step owns its sampler)")
    steps: List[Dict[str, Any]] = []
    sustainable = 0.0
    breach: Optional[Dict[str, Any]] = None
    for step_no, rate in enumerate(rates):
        step_profile = None
        if profile:
            from repro.obs.profile import start_profile, stop_profile
            start_profile()
            try:
                report = replay(workload, target, rate=rate,
                                process=process, threads=threads,
                                seed=seed + step_no, duration=duration,
                                warmup=warmup if step_no == 0 else 0,
                                emit=False)
            finally:
                step_profile = stop_profile()
        else:
            report = replay(workload, target, rate=rate, process=process,
                            threads=threads, seed=seed + step_no,
                            duration=duration,
                            warmup=warmup if step_no == 0 else 0,
                            emit=False)
        breaches = slo.breaches(report)
        step = {
            "rate": round(rate, 4),
            "ok": not breaches,
            "breaches": breaches,
            "replay": report,
        }
        if step_profile is not None:
            step["profile"] = {
                "profile_id": step_profile.profile_id,
                "samples": step_profile.samples,
                "overhead_ratio": round(step_profile.overhead_ratio, 5),
                "top_functions": step_profile.top_functions(5),
            }
        steps.append(step)
        if emit:
            emit_event("loadgen.step", rate=round(rate, 4),
                       ok=not breaches,
                       p99_ms=report["corrected"]["p99_ms"],
                       achieved_qps=report["achieved_qps"],
                       errors=report["errors"])
        if breaches:
            breach = {"rate": round(rate, 4), "breaches": breaches,
                      "p99_ms": report["corrected"]["p99_ms"],
                      "error_rate": report["error_rate"]}
            if step_profile is not None:
                # The breach step is the one whose attribution matters:
                # keep its full collapsed stacks so the saturation
                # flamegraph can be rendered from the artifact.
                breach["profile"] = {
                    "profile_id": step_profile.profile_id,
                    "hz": step_profile.hz,
                    "samples": step_profile.samples,
                    "overhead_ratio": round(
                        step_profile.overhead_ratio, 5),
                    "top_functions": step_profile.top_functions(10),
                    "collapsed": step_profile.collapsed(),
                }
            if emit:
                emit_event("loadgen.slo_breach", rate=round(rate, 4),
                           breaches="; ".join(breaches),
                           p99_ms=report["corrected"]["p99_ms"],
                           slo_p99_ms=slo.p99_ms,
                           error_rate=report["error_rate"])
            break
        sustainable = max(sustainable, report["achieved_qps"])
    doc: Dict[str, Any] = {
        "schema": "repro.loadgen.sweep/1",
        "target": steps[0]["replay"]["target"] if steps else "?",
        "slo": slo.to_dict(),
        "process": process,
        "threads": threads,
        "duration_per_step": duration,
        "rates": [round(float(r), 4) for r in rates[:len(steps)]],
        "steps": steps,
        "sustainable_qps": round(sustainable, 2),
        "saturated": breach is not None,
        "breach": breach,
    }
    if emit:
        emit_event("loadgen.sweep", target=doc["target"],
                   steps=len(steps),
                   sustainable_qps=doc["sustainable_qps"],
                   saturated=doc["saturated"])
    return doc


# ---------------------------------------------------------------------------
# Rendering (the CLI's human-readable form)
# ---------------------------------------------------------------------------

def render_replay(report: Dict[str, Any]) -> str:
    """One replay report as an aligned text block."""
    c, s = report["corrected"], report["service_time"]

    def row(d: Dict[str, Any]) -> str:
        return "  ".join(
            f"{k[:-3]}={d[k]:.3g}ms" if d[k] is not None else f"{k[:-3]}=–"
            for k in ("p50_ms", "p99_ms", "p999_ms", "max_ms"))
    lines = [
        f"replay {report['target']}  ({report['process']} arrivals, "
        f"{report['offered_rate']:g} req/s offered, "
        f"{report['threads']} injector(s))",
        f"  requests {report['requests']}  errors {report['errors']}  "
        f"achieved {report['achieved_qps']:g} qps  "
        f"wall {report['elapsed_seconds']:.2f}s",
        f"  corrected (open-loop)  {row(c)}",
        f"  service-time (naive)   {row(s)}",
        f"  max injector start lag {report['max_start_lag_ms']:.3g} ms",
    ]
    if report.get("slowest"):
        worst = report["slowest"][0]
        lines.append(
            f"  slowest: {worst['kind']} at t={worst['t']:.2f}s — "
            f"corrected {worst['corrected_ms']:.3g} ms "
            f"(service {worst['service_ms']:.3g} ms)")
    for kind, ex in sorted(report.get("exemplars", {}).items()):
        lines.append(f"  exemplar[{kind}]: trace {ex.get('trace_id', '?')} "
                     f"value {float(ex.get('value', 0.0)):.3g}s")
    return "\n".join(lines)


def render_sweep(doc: Dict[str, Any]) -> str:
    """One sweep report: the rate table plus the verdict line."""
    lines = [
        f"sweep {doc['target']}  (SLO: p99 <= {doc['slo']['p99_ms']:g} ms, "
        f"errors <= {doc['slo']['max_error_rate']:.2%}; "
        f"{doc['duration_per_step']:g}s per step)",
        "  rate_req_s  achieved_qps     p99_ms    p999_ms  errors  verdict",
    ]
    for step in doc["steps"]:
        r = step["replay"]
        p99 = r["corrected"]["p99_ms"]
        p999 = r["corrected"]["p999_ms"]
        lines.append(
            f"  {step['rate']:>10g}  {r['achieved_qps']:>12g}  "
            f"{p99 if p99 is not None else float('nan'):>9.3f}  "
            f"{p999 if p999 is not None else float('nan'):>9.3f}  "
            f"{r['errors']:>6d}  {'ok' if step['ok'] else 'SLO BREACH'}")
    if doc["saturated"]:
        b = doc["breach"]
        lines.append(f"  saturated at {b['rate']:g} req/s: "
                     + "; ".join(b["breaches"]))
        if b.get("profile"):
            p = b["profile"]
            lines.append(
                f"  breach profile: {p['samples']} samples, "
                f"overhead {p['overhead_ratio']:.2%}; hottest frames:")
            for row in p.get("top_functions", [])[:5]:
                lines.append(f"    {row['self_pct']:>6.2f}%  "
                             f"{row['function']}")
    else:
        lines.append("  never saturated within the swept rates "
                     "(raise --max-steps or rates to find the knee)")
    lines.append(f"  max sustainable throughput under SLO: "
                 f"{doc['sustainable_qps']:g} qps")
    return "\n".join(lines)

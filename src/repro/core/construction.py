"""Adjacency array construction from incidence arrays.

The operation the paper is about:

    ``A = Eoutᵀ ⊕.⊗ Ein``            (Section II)
    ``Ā = Einᵀ ⊕.⊗ Eout``            (reverse graph, Corollary III.1)

plus the Definition I.5 predicate deciding whether an array *is* an
adjacency array — of a graph, or directly of an incidence pair.  The
predicate works at the level of nonzero patterns and therefore applies
even to generalized (hyperedge-like) incidence pairs such as the music
arrays of Figure 2, where a track-edge may touch several genre-vertices.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Tuple

from repro.arrays.associative import AssociativeArray
from repro.arrays.matmul import MatmulError, multiply
from repro.graphs.digraph import EdgeKeyedDigraph
from repro.values.semiring import OpPair

__all__ = [
    "adjacency_array",
    "reverse_adjacency_array",
    "correlate",
    "expected_adjacency_pattern",
    "is_adjacency_array_of",
    "is_adjacency_array_of_graph",
]


def _check_shared_edges(eout: AssociativeArray, ein: AssociativeArray) -> None:
    if eout.row_keys != ein.row_keys:
        raise MatmulError(
            "Eout and Ein must share the edge key set K as rows; re-embed "
            "with with_keys() over the union first")


def adjacency_array(
    eout: AssociativeArray,
    ein: AssociativeArray,
    op_pair: OpPair,
    *,
    mode: str = "sparse",
    kernel: str = "auto",
) -> AssociativeArray:
    """``A = Eoutᵀ ⊕.⊗ Ein : Kout × Kin → V``.

    ``mode``/``kernel`` as in :func:`repro.arrays.matmul.multiply`.  When
    ``op_pair`` satisfies the Theorem II.1 criteria the result is an
    adjacency array of the underlying graph for *any* valid incidence
    arrays; otherwise it may not be — use
    :func:`repro.core.certify.certify` to know in advance.
    """
    _check_shared_edges(eout, ein)
    return multiply(eout.transpose(), ein, op_pair, mode=mode, kernel=kernel)


def reverse_adjacency_array(
    eout: AssociativeArray,
    ein: AssociativeArray,
    op_pair: OpPair,
    *,
    mode: str = "sparse",
    kernel: str = "auto",
) -> AssociativeArray:
    """``Ā = Einᵀ ⊕.⊗ Eout``: the adjacency array of the *reverse* graph.

    Corollary III.1: under the same criteria, swapping the roles of the
    incidence arrays reverses every arrow.
    """
    _check_shared_edges(eout, ein)
    return multiply(ein.transpose(), eout, op_pair, mode=mode, kernel=kernel)


def correlate(
    e1: AssociativeArray,
    e2: AssociativeArray,
    op_pair: OpPair,
    *,
    mode: str = "sparse",
    kernel: str = "auto",
) -> AssociativeArray:
    """``E1ᵀ ⊕.⊗ E2`` — the Figure 3/5 correlation of two incidence
    sub-arrays sharing their row (edge) key set.

    This is :func:`adjacency_array` under a name that matches how the
    paper uses it on database sub-arrays (``E1`` = genre columns,
    ``E2`` = writer columns): rows of the result are ``E1``'s columns,
    columns are ``E2``'s columns.
    """
    return adjacency_array(e1, e2, op_pair, mode=mode, kernel=kernel)


def expected_adjacency_pattern(
    eout: AssociativeArray,
    ein: AssociativeArray,
) -> FrozenSet[Tuple[Any, Any]]:
    """The pattern Definition I.5 demands: ``(a, b)`` such that some edge
    ``k`` has ``Eout(k, a) ≠ 0`` and ``Ein(k, b) ≠ 0``."""
    _check_shared_edges(eout, ein)
    out_rows: dict = {}
    for (k, a) in eout.nonzero_pattern():
        out_rows.setdefault(k, []).append(a)
    pairs = set()
    for (k, b) in ein.nonzero_pattern():
        for a in out_rows.get(k, ()):
            pairs.add((a, b))
    return frozenset(pairs)


def is_adjacency_array_of(
    array: AssociativeArray,
    eout: AssociativeArray,
    ein: AssociativeArray,
    *,
    check_keys: bool = True,
) -> bool:
    """Definition I.5 against an incidence pair: ``array(a, b) ≠ 0`` iff
    some edge runs from ``a`` to ``b`` according to ``(Eout, Ein)``.

    ``check_keys=False`` relaxes the key-set comparison to pattern-only
    (useful when the array was built over pruned key sets).
    """
    if check_keys:
        if array.row_keys != eout.col_keys:
            return False
        if array.col_keys != ein.col_keys:
            return False
    return array.nonzero_pattern() == expected_adjacency_pattern(eout, ein)


def is_adjacency_array_of_graph(
    array: AssociativeArray,
    graph: EdgeKeyedDigraph,
    *,
    check_keys: bool = True,
) -> bool:
    """Definition I.5 against a graph: nonzero exactly on its edges."""
    if check_keys:
        if array.row_keys != graph.out_vertices:
            return False
        if array.col_keys != graph.in_vertices:
            return False
    return array.nonzero_pattern() == graph.adjacency_pairs()

"""The Theorem II.1 criteria, bundled.

Criterion (a) — zero-sum-free ``⊕``;
criterion (b) — no zero divisors for ``⊗``;
criterion (c) — the additive identity annihilates under ``⊗``.

:func:`check_criteria` evaluates all three over the op-pair's domain and
returns a :class:`CriteriaResult`; its :attr:`~CriteriaResult.satisfied`
is the hypothesis of Theorem II.1(i), i.e. exactly the condition under
which ``EoutᵀEin`` is guaranteed to be an adjacency array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.values.properties import (
    DEFAULT_SAMPLES,
    PropertyReport,
    check_annihilator,
    check_identity,
    check_no_zero_divisors,
    check_zero_sum_free,
)
from repro.values.semiring import OpPair

__all__ = ["CriteriaResult", "check_criteria"]


@dataclass(frozen=True)
class CriteriaResult:
    """Reports for the three criteria (plus the identity prerequisites).

    ``add_identity``/``mul_identity`` are prerequisites from the paper's
    setup ("⊕ and ⊗ each have identity elements 0 and 1") rather than
    criteria; they are reported so malformed op-pairs fail loudly instead
    of producing vacuous certifications.
    """

    zero_sum_free: PropertyReport
    no_zero_divisors: PropertyReport
    annihilator: PropertyReport
    add_identity: PropertyReport
    mul_identity: PropertyReport

    @property
    def satisfied(self) -> bool:
        """Theorem II.1(i): all three criteria hold."""
        return bool(self.zero_sum_free and self.no_zero_divisors
                    and self.annihilator)

    @property
    def well_formed(self) -> bool:
        """Identity prerequisites hold."""
        return bool(self.add_identity and self.mul_identity)

    @property
    def exhaustive(self) -> bool:
        """Whether every report was exhaustive (finite domain ⇒ proof)."""
        return all(r.exhaustive for r in self.reports())

    def reports(self) -> Tuple[PropertyReport, ...]:
        """All five reports, criteria first."""
        return (self.zero_sum_free, self.no_zero_divisors, self.annihilator,
                self.add_identity, self.mul_identity)

    def first_violation(self) -> Optional[PropertyReport]:
        """The first failing *criterion* report (identity issues excluded)."""
        for r in (self.zero_sum_free, self.no_zero_divisors, self.annihilator):
            if not r:
                return r
        return None

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [r.describe() for r in self.reports()]
        verdict = "criteria SATISFIED" if self.satisfied else "criteria VIOLATED"
        return "\n".join([verdict] + ["  " + ln for ln in lines])


def check_criteria(
    op_pair: OpPair,
    *,
    samples: int = DEFAULT_SAMPLES,
    seed: Optional[int] = None,
) -> CriteriaResult:
    """Evaluate the Theorem II.1 criteria for ``op_pair`` over its domain."""
    dom = op_pair.domain
    return CriteriaResult(
        zero_sum_free=check_zero_sum_free(
            op_pair.add, dom, zero=op_pair.zero, samples=samples, seed=seed),
        no_zero_divisors=check_no_zero_divisors(
            op_pair.mul, dom, zero=op_pair.zero, samples=samples, seed=seed),
        annihilator=check_annihilator(
            op_pair.mul, dom, zero=op_pair.zero, samples=samples, seed=seed),
        add_identity=check_identity(
            op_pair.add, dom, samples=samples, seed=seed),
        mul_identity=check_identity(
            op_pair.mul, dom, samples=samples, seed=seed),
    )

"""Provenance and validation diagnostics for adjacency construction.

When an adjacency entry looks wrong, the question is always "*which edges
contributed, with what values, in what order?*".  :func:`explain_entry`
answers it: the term-by-term provenance of one ``A(a, b)`` cell — the
contributing edges (in inner-key fold order), each edge's incidence
values, each ``⊗`` product, the running ``⊕`` fold, and both sparse and
dense final values (whose disagreement is itself the Theorem II.1
red flag).

:func:`validate_incidence_pair` lints an ``(Eout, Ein)`` pair against
Definition I.4 before it is ever multiplied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.arrays.associative import AssociativeArray
from repro.values.semiring import OpPair

__all__ = [
    "TermTrace",
    "EntryExplanation",
    "explain_entry",
    "validate_incidence_pair",
]


@dataclass(frozen=True)
class TermTrace:
    """One edge's contribution to an adjacency entry."""

    edge: Any
    out_value: Any
    in_value: Any
    product: Any
    running: Any            #: the ⊕ fold after absorbing this term


@dataclass(frozen=True)
class EntryExplanation:
    """Full provenance of one ``A(a, b)`` cell."""

    row: Any
    col: Any
    terms: Tuple[TermTrace, ...]
    sparse_value: Any
    dense_value: Any
    zero: Any

    @property
    def contributing_edges(self) -> Tuple[Any, ...]:
        """Edges with both incidence entries stored, in fold order."""
        return tuple(t.edge for t in self.terms)

    @property
    def modes_agree(self) -> bool:
        """Whether sparse and dense evaluation coincide for this cell —
        guaranteed by Theorem II.1 for certified pairs."""
        return _eq(self.sparse_value, self.dense_value)

    def describe(self) -> str:
        lines = [f"A({self.row!r}, {self.col!r}):"]
        if not self.terms:
            lines.append("  no edge has stored entries for both endpoints")
        for t in self.terms:
            lines.append(
                f"  edge {t.edge!r}: Eout = {t.out_value!r}, "
                f"Ein = {t.in_value!r}, ⊗ → {t.product!r}, "
                f"⊕ running → {t.running!r}")
        lines.append(f"  sparse value: {self.sparse_value!r}")
        lines.append(f"  dense value:  {self.dense_value!r}"
                     + ("" if self.modes_agree
                        else "   ← MODES DISAGREE (uncertified algebra?)"))
        return "\n".join(lines)


def _eq(a: Any, b: Any) -> bool:
    import math
    if isinstance(a, float) and isinstance(b, float) \
            and math.isnan(a) and math.isnan(b):
        return True
    return a == b


def explain_entry(
    eout: AssociativeArray,
    ein: AssociativeArray,
    op_pair: OpPair,
    row: Any,
    col: Any,
) -> EntryExplanation:
    """Trace ``(EoutᵀEin)(row, col)`` term by term.

    ``row`` must be a column key of ``Eout`` (an out-vertex) and ``col``
    a column key of ``Ein`` (an in-vertex); the shared row key set of the
    incidence arrays is the edge set folded over.
    """
    if eout.row_keys != ein.row_keys:
        raise ValueError("Eout and Ein must share the edge key set K")
    if row not in eout.col_keys:
        raise ValueError(f"{row!r} is not an out-vertex (Eout column)")
    if col not in ein.col_keys:
        raise ValueError(f"{col!r} is not an in-vertex (Ein column)")

    zero = op_pair.zero
    eout_d = eout.to_dict()
    ein_d = ein.to_dict()

    # Sparse trace: only edges with both entries stored.
    terms: List[TermTrace] = []
    running: Any = None
    for k in eout.row_keys:
        ov = eout_d.get((k, row))
        iv = ein_d.get((k, col))
        if ov is None or iv is None:
            continue
        product = op_pair.multiply(ov, iv)
        running = product if running is None \
            else op_pair.add(running, product)
        terms.append(TermTrace(edge=k, out_value=ov, in_value=iv,
                               product=product, running=running))
    sparse_value = zero if running is None else running

    # Dense value: the Definition I.3 fold over all of K.
    dense_terms = (op_pair.multiply(eout_d.get((k, row), zero),
                                    ein_d.get((k, col), zero))
                   for k in eout.row_keys)
    dense_value = op_pair.fold_add(dense_terms)

    return EntryExplanation(row=row, col=col, terms=tuple(terms),
                            sparse_value=sparse_value,
                            dense_value=dense_value, zero=zero)


@dataclass(frozen=True)
class _Issue:
    kind: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.kind}] {self.detail}"


def validate_incidence_pair(
    eout: AssociativeArray,
    ein: AssociativeArray,
    *,
    op_pair: Optional[OpPair] = None,
) -> List[_Issue]:
    """Lint an incidence pair against Definition I.4.

    Returns a list of issues (empty = clean):

    * mismatched edge key sets;
    * zeros mismatching the op-pair (when given);
    * edges stored in only one array (dangling);
    * edges with several sources/targets (hyperedges — legal for the
      construction, flagged as information);
    * edges with no stored entries at all (phantom edge keys).
    """
    issues: List[_Issue] = []
    if eout.row_keys != ein.row_keys:
        issues.append(_Issue("edge-keys",
                             "Eout and Ein row key sets differ"))
        return issues
    if op_pair is not None:
        for name, arr in (("Eout", eout), ("Ein", ein)):
            if not _eq(arr.zero, op_pair.zero):
                issues.append(_Issue(
                    "zero", f"{name} zero {arr.zero!r} differs from "
                            f"op-pair zero {op_pair.zero!r}"))
    out_rows: dict = {}
    in_rows: dict = {}
    for (k, a) in eout.nonzero_pattern():
        out_rows.setdefault(k, []).append(a)
    for (k, b) in ein.nonzero_pattern():
        in_rows.setdefault(k, []).append(b)
    for k in eout.row_keys:
        n_out = len(out_rows.get(k, ()))
        n_in = len(in_rows.get(k, ()))
        if n_out == 0 and n_in == 0:
            issues.append(_Issue("phantom",
                                 f"edge {k!r} has no stored entries"))
        elif n_out == 0:
            issues.append(_Issue("dangling",
                                 f"edge {k!r} has targets but no source"))
        elif n_in == 0:
            issues.append(_Issue("dangling",
                                 f"edge {k!r} has sources but no target"))
        if n_out > 1 or n_in > 1:
            issues.append(_Issue(
                "hyperedge",
                f"edge {k!r} touches {n_out} source(s) / {n_in} "
                "target(s) — legal for the construction, not an "
                "ordinary directed edge"))
    return issues

"""The paper's primary contribution, as a public API.

* :mod:`repro.core.construction` — build ``A = EoutᵀEin`` (and the reverse
  graph's ``EinᵀEout``, Corollary III.1) over any op-pair, and decide
  whether a given array *is* an adjacency array of a graph/incidence pair
  (Definition I.5);
* :mod:`repro.core.criteria` — the three Theorem II.1 criteria bundled as
  one checkable object;
* :mod:`repro.core.certify` — the certification engine: criteria checking
  plus the constructive converse (Lemmas II.2–II.4): every violation is
  turned into an explicit witness graph whose incidence product fails to
  be an adjacency array;
* :mod:`repro.core.pipeline` — the end-to-end "data processing pipeline"
  of the introduction: table → exploded incidence array → sub-array
  selection → correlation → adjacency array;
* :mod:`repro.core.streaming` — incremental construction under edge
  arrivals (the certification-gated single-accumulator counterpart of
  the sharded engine in :mod:`repro.shard`).
"""

from repro.core.construction import (
    adjacency_array,
    correlate,
    expected_adjacency_pattern,
    is_adjacency_array_of,
    is_adjacency_array_of_graph,
    reverse_adjacency_array,
)
from repro.core.criteria import CriteriaResult, check_criteria
from repro.core.certify import (
    Certification,
    Witness,
    certify,
    witness_for_violation,
)
from repro.core.pipeline import GraphConstructionPipeline
from repro.core.streaming import StreamingAdjacencyBuilder

__all__ = [
    "adjacency_array",
    "reverse_adjacency_array",
    "correlate",
    "expected_adjacency_pattern",
    "is_adjacency_array_of",
    "is_adjacency_array_of_graph",
    "CriteriaResult",
    "check_criteria",
    "Certification",
    "Witness",
    "certify",
    "witness_for_violation",
    "GraphConstructionPipeline",
    "StreamingAdjacencyBuilder",
]

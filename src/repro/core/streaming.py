"""Streaming (incremental) adjacency construction.

The introduction frames adjacency construction as a step "in a data
processing system" — where edges usually *arrive over time* rather than
as a finished incidence array.  :class:`StreamingAdjacencyBuilder`
maintains the adjacency array under edge insertions:

    ``A(a, b)  ⊕=  w_out ⊗ w_in``

which matches batch construction exactly when the op-pair satisfies the
Theorem II.1 criteria **and** ``⊕`` is associative and commutative — the
streaming order is arrival order while Definition I.3 folds in edge-key
order, so order-sensitive ``⊕`` operations can legitimately disagree.
The builder therefore takes the op-pair's certification stance seriously:

* by default it requires a certified-safe pair (pass ``unsafe_ok=True``
  to experiment with violators — the builder is then *not* guaranteed to
  produce an adjacency array, exactly as the theorem predicts);
* ``order_sensitive`` is reported when ``⊕`` is flagged non-associative
  or non-commutative, and the equivalence-to-batch guarantee is waived.

Deletions are supported by *rebuild*, not inverse ``⊕``: zero-sum-freeness
(criterion a) means compliant algebras have no non-trivial additive
inverses, so true decremental updates are impossible — a nice corollary
the docstring of :meth:`remove_edge` records.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.arrays.associative import AssociativeArray
from repro.arrays.backend import (
    VECTORIZE_MIN_NNZ,
    dict_to_numeric,
    usable_numeric_zero,
)
from repro.arrays.keys import KeySet
from repro.core.certify import certify
from repro.graphs.digraph import EdgeKeyedDigraph, GraphError
from repro.values.semiring import OpPair

__all__ = ["StreamingAdjacencyBuilder"]


class StreamingAdjacencyBuilder:
    """Build ``A = EoutᵀEin`` incrementally as edges arrive.

    Parameters
    ----------
    op_pair:
        The ``⊕.⊗`` algebra.  Certified on construction (seeded, cached
        per instance); violators are rejected unless ``unsafe_ok``.
    unsafe_ok:
        Accept non-compliant pairs (the resulting array may then fail
        Definition I.5 — useful for demonstrations, dangerous for
        production, exactly as the paper says).

    Examples
    --------
    >>> from repro.values.semiring import get_op_pair
    >>> b = StreamingAdjacencyBuilder(get_op_pair("plus_times"))
    >>> b.add_edge("e1", "alice", "bob", 120)
    >>> b.add_edge("e2", "alice", "bob", 30)
    >>> b.adjacency()["alice", "bob"]
    150
    """

    def __init__(self, op_pair: OpPair, *, unsafe_ok: bool = False,
                 certification_seed: int = 0xD4) -> None:
        self._pair = op_pair
        self._certification = certify(op_pair, seed=certification_seed,
                                      build_witness=False)
        if not self._certification.safe and not unsafe_ok:
            raise ValueError(
                "op-pair fails the Theorem II.1 criteria; streaming "
                "construction would not be guaranteed to produce an "
                "adjacency array.  Pass unsafe_ok=True to override.\n"
                + self._certification.criteria.describe())
        self._edges: Dict[Any, Tuple[Any, Any, Any, Any]] = {}
        self._acc: Dict[Tuple[Any, Any], Any] = {}

    # -- properties ------------------------------------------------------
    @property
    def op_pair(self) -> OpPair:
        """The algebra this builder accumulates over."""
        return self._pair

    @property
    def num_edges(self) -> int:
        """Edges inserted so far."""
        return len(self._edges)

    @property
    def order_sensitive(self) -> bool:
        """Whether ``⊕`` is flagged non-associative/non-commutative, in
        which case streaming order may differ from batch key order."""
        return not (self._pair.add.associative
                    and self._pair.add.commutative)

    # -- updates -----------------------------------------------------------
    def add_edge(self, key: Any, src: Any, dst: Any,
                 out_value: Optional[Any] = None,
                 in_value: Optional[Any] = None) -> None:
        """Insert one edge and fold its term into ``A(src, dst)``.

        ``out_value``/``in_value`` default to the op-pair's one; both must
        be nonzero (Definition I.4).
        """
        if key in self._edges:
            raise GraphError(f"duplicate edge key {key!r}")
        ov = self._pair.one if out_value is None else out_value
        iv = self._pair.one if in_value is None else in_value
        if self._pair.is_zero(ov) or self._pair.is_zero(iv):
            raise GraphError(
                f"incidence values for edge {key!r} must be nonzero")
        self._edges[key] = (src, dst, ov, iv)
        term = self._pair.multiply(ov, iv)
        rc = (src, dst)
        if rc in self._acc:
            self._acc[rc] = self._pair.add(self._acc[rc], term)
        else:
            self._acc[rc] = term

    def add_edges(self, triples) -> None:
        """Insert ``(key, src, dst)`` or ``(key, src, dst, w_out, w_in)``
        tuples in order."""
        for item in triples:
            if len(item) == 3:
                self.add_edge(*item)
            elif len(item) == 5:
                self.add_edge(*item)
            else:
                raise GraphError(
                    f"expected 3- or 5-tuples, got {len(item)}-tuple")

    def remove_edge(self, key: Any) -> None:
        """Remove an edge; the affected entry is **rebuilt**, not
        decremented.

        Zero-sum-freeness — criterion (a), required for this builder's
        algebra — forbids non-trivial additive inverses, so compliant
        algebras admit no true decremental ``⊕``.  Rebuilding the affected
        (src, dst) cell from the surviving parallel edges (in edge-key
        order) is the honest alternative; cost is O(parallel edges).
        """
        try:
            src, dst, _ov, _iv = self._edges.pop(key)
        except KeyError:
            raise GraphError(f"unknown edge key {key!r}") from None
        survivors = sorted(
            (k for k, (s, t, _o, _i) in self._edges.items()
             if s == src and t == dst))
        rc = (src, dst)
        if not survivors:
            self._acc.pop(rc, None)
            return
        terms = []
        for k in survivors:
            _s, _t, ov, iv = self._edges[k]
            terms.append(self._pair.multiply(ov, iv))
        self._acc[rc] = self._pair.fold_add(terms)

    # -- outputs ------------------------------------------------------------
    def graph(self) -> EdgeKeyedDigraph:
        """The multigraph of edges inserted so far."""
        return EdgeKeyedDigraph(
            (k, s, t) for k, (s, t, _o, _i) in sorted(self._edges.items()))

    def incidence_arrays(self) -> Tuple[AssociativeArray, AssociativeArray]:
        """Batch incidence arrays of the current edge set."""
        keys = KeySet(self._edges)
        kout = KeySet({s for (s, _t, _o, _i) in self._edges.values()})
        kin = KeySet({t for (_s, t, _o, _i) in self._edges.values()})
        zero = self._pair.zero
        out_data = {(k, s): o
                    for k, (s, _t, o, _i) in self._edges.items()}
        in_data = {(k, t): i
                   for k, (_s, t, _o, i) in self._edges.items()}
        return (AssociativeArray(out_data, row_keys=keys, col_keys=kout,
                                 zero=zero),
                AssociativeArray(in_data, row_keys=keys, col_keys=kin,
                                 zero=zero))

    def adjacency(self, *, backend: str = "auto") -> AssociativeArray:
        """The current adjacency array (accumulated, O(1) per lookup).

        ``backend`` selects the result's storage backend
        (:mod:`repro.arrays.backend`).  Under ``"auto"`` the accumulator
        is adopted straight into the columnar/CSR form when the zero and
        every accumulated value are plain numbers and the array is large
        enough to benefit (``VECTORIZE_MIN_NNZ``) — so consumers that
        keep computing on the result (the ⊕-merge tree, service
        snapshots) start on the fast backend without a second
        conversion.  Small or non-numeric accumulators keep today's
        dict path, preserving exact Python value types.  ``"numeric"``
        forces the columnar form (raising when values don't qualify);
        ``"dict"`` pins the generic representation.
        """
        kout = KeySet({s for (s, _t, _o, _i) in self._edges.values()})
        kin = KeySet({t for (_s, t, _o, _i) in self._edges.values()})
        zero = self._pair.zero
        data = {rc: v for rc, v in self._acc.items()
                if not self._pair.is_zero(v)}
        if (backend == "auto" and len(data) >= VECTORIZE_MIN_NNZ
                and usable_numeric_zero(zero)):
            nb = dict_to_numeric(data, kout.position_map(),
                                 kin.position_map(),
                                 (len(kout), len(kin)))
            if nb is not None:
                return AssociativeArray._adopt(nb, kout, kin, zero)
        return AssociativeArray(data, row_keys=kout, col_keys=kin,
                                zero=zero, backend=backend)

    def batch_adjacency(self) -> AssociativeArray:
        """Reference: rebuild ``EoutᵀEin`` from scratch (edge-key fold
        order).  Equal to :meth:`adjacency` for associative+commutative
        certified pairs; property-tested."""
        from repro.core.construction import adjacency_array
        eout, ein = self.incidence_arrays()
        return adjacency_array(eout, ein, self._pair, kernel="generic")
